# Empty dependencies file for telecom_usage.
# This may be replaced when dependencies are built.
