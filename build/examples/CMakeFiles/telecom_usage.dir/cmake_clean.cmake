file(REMOVE_RECURSE
  "CMakeFiles/telecom_usage.dir/telecom_usage.cpp.o"
  "CMakeFiles/telecom_usage.dir/telecom_usage.cpp.o.d"
  "telecom_usage"
  "telecom_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
