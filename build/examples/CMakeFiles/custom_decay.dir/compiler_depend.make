# Empty compiler generated dependencies file for custom_decay.
# This may be replaced when dependencies are built.
