file(REMOVE_RECURSE
  "CMakeFiles/custom_decay.dir/custom_decay.cpp.o"
  "CMakeFiles/custom_decay.dir/custom_decay.cpp.o.d"
  "custom_decay"
  "custom_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
