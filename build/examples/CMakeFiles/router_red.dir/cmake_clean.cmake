file(REMOVE_RECURSE
  "CMakeFiles/router_red.dir/router_red.cpp.o"
  "CMakeFiles/router_red.dir/router_red.cpp.o.d"
  "router_red"
  "router_red.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_red.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
