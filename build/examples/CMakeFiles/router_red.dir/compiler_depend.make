# Empty compiler generated dependencies file for router_red.
# This may be replaced when dependencies are built.
