# Empty compiler generated dependencies file for holding_policy.
# This may be replaced when dependencies are built.
