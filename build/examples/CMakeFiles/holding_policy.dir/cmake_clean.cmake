file(REMOVE_RECURSE
  "CMakeFiles/holding_policy.dir/holding_policy.cpp.o"
  "CMakeFiles/holding_policy.dir/holding_policy.cpp.o.d"
  "holding_policy"
  "holding_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holding_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
