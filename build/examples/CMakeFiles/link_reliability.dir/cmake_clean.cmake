file(REMOVE_RECURSE
  "CMakeFiles/link_reliability.dir/link_reliability.cpp.o"
  "CMakeFiles/link_reliability.dir/link_reliability.cpp.o.d"
  "link_reliability"
  "link_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
