# Empty compiler generated dependencies file for link_reliability.
# This may be replaced when dependencies are built.
