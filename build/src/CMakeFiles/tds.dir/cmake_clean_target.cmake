file(REMOVE_RECURSE
  "libtds.a"
)
