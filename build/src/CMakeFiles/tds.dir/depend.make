# Empty dependencies file for tds.
# This may be replaced when dependencies are built.
