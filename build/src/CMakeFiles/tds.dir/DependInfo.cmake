
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gateway.cc" "src/CMakeFiles/tds.dir/apps/gateway.cc.o" "gcc" "src/CMakeFiles/tds.dir/apps/gateway.cc.o.d"
  "/root/repo/src/apps/holding_policy.cc" "src/CMakeFiles/tds.dir/apps/holding_policy.cc.o" "gcc" "src/CMakeFiles/tds.dir/apps/holding_policy.cc.o.d"
  "/root/repo/src/apps/red.cc" "src/CMakeFiles/tds.dir/apps/red.cc.o" "gcc" "src/CMakeFiles/tds.dir/apps/red.cc.o.d"
  "/root/repo/src/apps/usage_profile.cc" "src/CMakeFiles/tds.dir/apps/usage_profile.cc.o" "gcc" "src/CMakeFiles/tds.dir/apps/usage_profile.cc.o.d"
  "/root/repo/src/core/ceh.cc" "src/CMakeFiles/tds.dir/core/ceh.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/ceh.cc.o.d"
  "/root/repo/src/core/coarse_ceh.cc" "src/CMakeFiles/tds.dir/core/coarse_ceh.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/coarse_ceh.cc.o.d"
  "/root/repo/src/core/decayed_average.cc" "src/CMakeFiles/tds.dir/core/decayed_average.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/decayed_average.cc.o.d"
  "/root/repo/src/core/ewma.cc" "src/CMakeFiles/tds.dir/core/ewma.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/ewma.cc.o.d"
  "/root/repo/src/core/exact.cc" "src/CMakeFiles/tds.dir/core/exact.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/exact.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/tds.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/factory.cc.o.d"
  "/root/repo/src/core/polyexp_counter.cc" "src/CMakeFiles/tds.dir/core/polyexp_counter.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/polyexp_counter.cc.o.d"
  "/root/repo/src/core/recent_items.cc" "src/CMakeFiles/tds.dir/core/recent_items.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/recent_items.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/tds.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/wbmh.cc" "src/CMakeFiles/tds.dir/core/wbmh.cc.o" "gcc" "src/CMakeFiles/tds.dir/core/wbmh.cc.o.d"
  "/root/repo/src/decay/custom.cc" "src/CMakeFiles/tds.dir/decay/custom.cc.o" "gcc" "src/CMakeFiles/tds.dir/decay/custom.cc.o.d"
  "/root/repo/src/decay/decay_function.cc" "src/CMakeFiles/tds.dir/decay/decay_function.cc.o" "gcc" "src/CMakeFiles/tds.dir/decay/decay_function.cc.o.d"
  "/root/repo/src/decay/exponential.cc" "src/CMakeFiles/tds.dir/decay/exponential.cc.o" "gcc" "src/CMakeFiles/tds.dir/decay/exponential.cc.o.d"
  "/root/repo/src/decay/polyexponential.cc" "src/CMakeFiles/tds.dir/decay/polyexponential.cc.o" "gcc" "src/CMakeFiles/tds.dir/decay/polyexponential.cc.o.d"
  "/root/repo/src/decay/polynomial.cc" "src/CMakeFiles/tds.dir/decay/polynomial.cc.o" "gcc" "src/CMakeFiles/tds.dir/decay/polynomial.cc.o.d"
  "/root/repo/src/decay/sliding_window.cc" "src/CMakeFiles/tds.dir/decay/sliding_window.cc.o" "gcc" "src/CMakeFiles/tds.dir/decay/sliding_window.cc.o.d"
  "/root/repo/src/histogram/exponential_histogram.cc" "src/CMakeFiles/tds.dir/histogram/exponential_histogram.cc.o" "gcc" "src/CMakeFiles/tds.dir/histogram/exponential_histogram.cc.o.d"
  "/root/repo/src/histogram/wbmh_counter.cc" "src/CMakeFiles/tds.dir/histogram/wbmh_counter.cc.o" "gcc" "src/CMakeFiles/tds.dir/histogram/wbmh_counter.cc.o.d"
  "/root/repo/src/histogram/wbmh_layout.cc" "src/CMakeFiles/tds.dir/histogram/wbmh_layout.cc.o" "gcc" "src/CMakeFiles/tds.dir/histogram/wbmh_layout.cc.o.d"
  "/root/repo/src/moments/decayed_variance.cc" "src/CMakeFiles/tds.dir/moments/decayed_variance.cc.o" "gcc" "src/CMakeFiles/tds.dir/moments/decayed_variance.cc.o.d"
  "/root/repo/src/moments/window_variance.cc" "src/CMakeFiles/tds.dir/moments/window_variance.cc.o" "gcc" "src/CMakeFiles/tds.dir/moments/window_variance.cc.o.d"
  "/root/repo/src/sampling/bottom_k_mvd.cc" "src/CMakeFiles/tds.dir/sampling/bottom_k_mvd.cc.o" "gcc" "src/CMakeFiles/tds.dir/sampling/bottom_k_mvd.cc.o.d"
  "/root/repo/src/sampling/decayed_quantile.cc" "src/CMakeFiles/tds.dir/sampling/decayed_quantile.cc.o" "gcc" "src/CMakeFiles/tds.dir/sampling/decayed_quantile.cc.o.d"
  "/root/repo/src/sampling/decayed_sampler.cc" "src/CMakeFiles/tds.dir/sampling/decayed_sampler.cc.o" "gcc" "src/CMakeFiles/tds.dir/sampling/decayed_sampler.cc.o.d"
  "/root/repo/src/sampling/mvd_list.cc" "src/CMakeFiles/tds.dir/sampling/mvd_list.cc.o" "gcc" "src/CMakeFiles/tds.dir/sampling/mvd_list.cc.o.d"
  "/root/repo/src/sketch/decayed_lp_norm.cc" "src/CMakeFiles/tds.dir/sketch/decayed_lp_norm.cc.o" "gcc" "src/CMakeFiles/tds.dir/sketch/decayed_lp_norm.cc.o.d"
  "/root/repo/src/stream/adversarial.cc" "src/CMakeFiles/tds.dir/stream/adversarial.cc.o" "gcc" "src/CMakeFiles/tds.dir/stream/adversarial.cc.o.d"
  "/root/repo/src/stream/generators.cc" "src/CMakeFiles/tds.dir/stream/generators.cc.o" "gcc" "src/CMakeFiles/tds.dir/stream/generators.cc.o.d"
  "/root/repo/src/stream/replay.cc" "src/CMakeFiles/tds.dir/stream/replay.cc.o" "gcc" "src/CMakeFiles/tds.dir/stream/replay.cc.o.d"
  "/root/repo/src/util/approx_age.cc" "src/CMakeFiles/tds.dir/util/approx_age.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/approx_age.cc.o.d"
  "/root/repo/src/util/codec.cc" "src/CMakeFiles/tds.dir/util/codec.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/codec.cc.o.d"
  "/root/repo/src/util/morris.cc" "src/CMakeFiles/tds.dir/util/morris.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/morris.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/tds.dir/util/random.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/random.cc.o.d"
  "/root/repo/src/util/rounded_counter.cc" "src/CMakeFiles/tds.dir/util/rounded_counter.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/rounded_counter.cc.o.d"
  "/root/repo/src/util/stable.cc" "src/CMakeFiles/tds.dir/util/stable.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/stable.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/tds.dir/util/status.cc.o" "gcc" "src/CMakeFiles/tds.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
