# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/decay_test[1]_include.cmake")
include("/root/repo/build/tests/eh_test[1]_include.cmake")
include("/root/repo/build/tests/wbmh_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/coarse_ceh_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/moments_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
