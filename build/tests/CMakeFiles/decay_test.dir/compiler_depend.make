# Empty compiler generated dependencies file for decay_test.
# This may be replaced when dependencies are built.
