# Empty compiler generated dependencies file for sampling_test.
# This may be replaced when dependencies are built.
