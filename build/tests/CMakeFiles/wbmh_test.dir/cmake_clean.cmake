file(REMOVE_RECURSE
  "CMakeFiles/wbmh_test.dir/wbmh_test.cc.o"
  "CMakeFiles/wbmh_test.dir/wbmh_test.cc.o.d"
  "wbmh_test"
  "wbmh_test.pdb"
  "wbmh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbmh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
