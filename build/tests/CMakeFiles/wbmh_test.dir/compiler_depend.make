# Empty compiler generated dependencies file for wbmh_test.
# This may be replaced when dependencies are built.
