# Empty compiler generated dependencies file for coarse_ceh_test.
# This may be replaced when dependencies are built.
