file(REMOVE_RECURSE
  "CMakeFiles/coarse_ceh_test.dir/coarse_ceh_test.cc.o"
  "CMakeFiles/coarse_ceh_test.dir/coarse_ceh_test.cc.o.d"
  "coarse_ceh_test"
  "coarse_ceh_test.pdb"
  "coarse_ceh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_ceh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
