file(REMOVE_RECURSE
  "CMakeFiles/sketch_test.dir/sketch_test.cc.o"
  "CMakeFiles/sketch_test.dir/sketch_test.cc.o.d"
  "sketch_test"
  "sketch_test.pdb"
  "sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
