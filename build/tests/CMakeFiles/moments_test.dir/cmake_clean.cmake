file(REMOVE_RECURSE
  "CMakeFiles/moments_test.dir/moments_test.cc.o"
  "CMakeFiles/moments_test.dir/moments_test.cc.o.d"
  "moments_test"
  "moments_test.pdb"
  "moments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
