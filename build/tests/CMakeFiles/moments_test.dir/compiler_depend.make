# Empty compiler generated dependencies file for moments_test.
# This may be replaced when dependencies are built.
