file(REMOVE_RECURSE
  "CMakeFiles/stream_test.dir/stream_test.cc.o"
  "CMakeFiles/stream_test.dir/stream_test.cc.o.d"
  "stream_test"
  "stream_test.pdb"
  "stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
