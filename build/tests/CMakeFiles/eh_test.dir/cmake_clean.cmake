file(REMOVE_RECURSE
  "CMakeFiles/eh_test.dir/eh_test.cc.o"
  "CMakeFiles/eh_test.dir/eh_test.cc.o.d"
  "eh_test"
  "eh_test.pdb"
  "eh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
