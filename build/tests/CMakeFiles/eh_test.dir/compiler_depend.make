# Empty compiler generated dependencies file for eh_test.
# This may be replaced when dependencies are built.
