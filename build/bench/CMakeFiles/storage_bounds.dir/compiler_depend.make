# Empty compiler generated dependencies file for storage_bounds.
# This may be replaced when dependencies are built.
