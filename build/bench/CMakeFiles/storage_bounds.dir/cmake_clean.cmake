file(REMOVE_RECURSE
  "CMakeFiles/storage_bounds.dir/storage_bounds.cc.o"
  "CMakeFiles/storage_bounds.dir/storage_bounds.cc.o.d"
  "storage_bounds"
  "storage_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
