# Empty dependencies file for accuracy.
# This may be replaced when dependencies are built.
