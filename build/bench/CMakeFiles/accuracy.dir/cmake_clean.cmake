file(REMOVE_RECURSE
  "CMakeFiles/accuracy.dir/accuracy.cc.o"
  "CMakeFiles/accuracy.dir/accuracy.cc.o.d"
  "accuracy"
  "accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
