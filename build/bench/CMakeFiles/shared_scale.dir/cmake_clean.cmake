file(REMOVE_RECURSE
  "CMakeFiles/shared_scale.dir/shared_scale.cc.o"
  "CMakeFiles/shared_scale.dir/shared_scale.cc.o.d"
  "shared_scale"
  "shared_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
