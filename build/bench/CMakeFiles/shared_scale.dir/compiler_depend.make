# Empty compiler generated dependencies file for shared_scale.
# This may be replaced when dependencies are built.
