# Empty compiler generated dependencies file for lower_bound.
# This may be replaced when dependencies are built.
