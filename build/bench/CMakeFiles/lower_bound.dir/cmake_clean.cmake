file(REMOVE_RECURSE
  "CMakeFiles/lower_bound.dir/lower_bound.cc.o"
  "CMakeFiles/lower_bound.dir/lower_bound.cc.o.d"
  "lower_bound"
  "lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
