file(REMOVE_RECURSE
  "CMakeFiles/sampling.dir/sampling.cc.o"
  "CMakeFiles/sampling.dir/sampling.cc.o.d"
  "sampling"
  "sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
