# Empty compiler generated dependencies file for sampling.
# This may be replaced when dependencies are built.
