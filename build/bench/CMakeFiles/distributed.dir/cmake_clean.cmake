file(REMOVE_RECURSE
  "CMakeFiles/distributed.dir/distributed.cc.o"
  "CMakeFiles/distributed.dir/distributed.cc.o.d"
  "distributed"
  "distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
