# Empty dependencies file for distributed.
# This may be replaced when dependencies are built.
