# Empty compiler generated dependencies file for lp_norm.
# This may be replaced when dependencies are built.
