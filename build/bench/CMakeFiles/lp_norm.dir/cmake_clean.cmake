file(REMOVE_RECURSE
  "CMakeFiles/lp_norm.dir/lp_norm.cc.o"
  "CMakeFiles/lp_norm.dir/lp_norm.cc.o.d"
  "lp_norm"
  "lp_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
