# Empty compiler generated dependencies file for fig1_link_reliability.
# This may be replaced when dependencies are built.
