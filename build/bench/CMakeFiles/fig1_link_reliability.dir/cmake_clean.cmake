file(REMOVE_RECURSE
  "CMakeFiles/fig1_link_reliability.dir/fig1_link_reliability.cc.o"
  "CMakeFiles/fig1_link_reliability.dir/fig1_link_reliability.cc.o.d"
  "fig1_link_reliability"
  "fig1_link_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_link_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
