file(REMOVE_RECURSE
  "CMakeFiles/decay_families.dir/decay_families.cc.o"
  "CMakeFiles/decay_families.dir/decay_families.cc.o.d"
  "decay_families"
  "decay_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decay_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
