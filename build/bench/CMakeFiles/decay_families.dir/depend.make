# Empty dependencies file for decay_families.
# This may be replaced when dependencies are built.
