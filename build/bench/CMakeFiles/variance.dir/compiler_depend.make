# Empty compiler generated dependencies file for variance.
# This may be replaced when dependencies are built.
