file(REMOVE_RECURSE
  "CMakeFiles/variance.dir/variance.cc.o"
  "CMakeFiles/variance.dir/variance.cc.o.d"
  "variance"
  "variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
