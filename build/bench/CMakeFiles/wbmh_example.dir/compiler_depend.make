# Empty compiler generated dependencies file for wbmh_example.
# This may be replaced when dependencies are built.
