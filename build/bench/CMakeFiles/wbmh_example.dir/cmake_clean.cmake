file(REMOVE_RECURSE
  "CMakeFiles/wbmh_example.dir/wbmh_example.cc.o"
  "CMakeFiles/wbmh_example.dir/wbmh_example.cc.o.d"
  "wbmh_example"
  "wbmh_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbmh_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
