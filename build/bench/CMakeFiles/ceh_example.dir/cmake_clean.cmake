file(REMOVE_RECURSE
  "CMakeFiles/ceh_example.dir/ceh_example.cc.o"
  "CMakeFiles/ceh_example.dir/ceh_example.cc.o.d"
  "ceh_example"
  "ceh_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceh_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
