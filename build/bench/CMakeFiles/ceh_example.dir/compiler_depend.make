# Empty compiler generated dependencies file for ceh_example.
# This may be replaced when dependencies are built.
