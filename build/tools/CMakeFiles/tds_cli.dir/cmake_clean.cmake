file(REMOVE_RECURSE
  "CMakeFiles/tds_cli.dir/tds_cli.cc.o"
  "CMakeFiles/tds_cli.dir/tds_cli.cc.o.d"
  "tds_cli"
  "tds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
