# Empty dependencies file for tds_cli.
# This may be replaced when dependencies are built.
