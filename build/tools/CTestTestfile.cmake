# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/tools/cli_test.sh" "/root/repo/build/tools/tds_cli")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
