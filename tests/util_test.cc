#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/common.h"
#include "util/morris.h"
#include "util/random.h"
#include "util/rounded_counter.h"
#include "util/schedule_chaos.h"
#include "util/stable.h"
#include "util/status.h"

#include "fuzz/fuzz_util.h"

namespace tds {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad epsilon");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::OutOfRange("too big"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(AgeAtTest, MatchesConvention) {
  // An item observed at its arrival tick has age 1.
  EXPECT_EQ(AgeAt(10, 10), 1);
  EXPECT_EQ(AgeAt(10, 15), 6);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UnitDoublesInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double o = rng.NextOpenDouble();
    EXPECT_GT(o, 0.0);
    EXPECT_LT(o, 1.0);
  }
}

TEST(RngTest, NextBelowUnbiasedish) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(HashTest, HashedUniformIsStable) {
  const double u = HashedUniform(42, 7);
  EXPECT_EQ(u, HashedUniform(42, 7));
  EXPECT_NE(u, HashedUniform(42, 8));
  EXPECT_GT(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(1, 2, 3), HashCombine(3, 2, 1));
}

TEST(StableSamplerTest, RejectsBadP) {
  EXPECT_FALSE(StableSampler::Create(0.0).ok());
  EXPECT_FALSE(StableSampler::Create(-1.0).ok());
  EXPECT_FALSE(StableSampler::Create(2.5).ok());
  EXPECT_TRUE(StableSampler::Create(2.0).ok());
}

TEST(StableSamplerTest, CauchyMedianAbsIsOne) {
  auto sampler = StableSampler::Create(1.0);
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ(sampler->MedianAbs(), 1.0);
  // Empirical check of the median of |samples|.
  Rng rng(3);
  std::vector<double> abs_values;
  for (int i = 0; i < 100001; ++i) {
    abs_values.push_back(std::fabs(
        sampler->FromUniforms(rng.NextOpenDouble(), rng.NextOpenDouble())));
  }
  std::nth_element(abs_values.begin(), abs_values.begin() + 50000,
                   abs_values.end());
  EXPECT_NEAR(abs_values[50000], 1.0, 0.03);
}

TEST(StableSamplerTest, StabilityProperty) {
  // For p-stable X1, X2 iid: a X1 + b X2 =d (a^p + b^p)^{1/p} X. Verify via
  // quantile comparison for p = 1.
  auto sampler = StableSampler::Create(1.0);
  ASSERT_TRUE(sampler.ok());
  Rng rng(17);
  std::vector<double> combo, scaled;
  const double a = 3.0, b = 4.0;
  const double scale = a + b;  // p = 1
  for (int i = 0; i < 80000; ++i) {
    const double x1 =
        sampler->FromUniforms(rng.NextOpenDouble(), rng.NextOpenDouble());
    const double x2 =
        sampler->FromUniforms(rng.NextOpenDouble(), rng.NextOpenDouble());
    combo.push_back(a * x1 + b * x2);
    const double x3 =
        sampler->FromUniforms(rng.NextOpenDouble(), rng.NextOpenDouble());
    scaled.push_back(scale * x3);
  }
  std::sort(combo.begin(), combo.end());
  std::sort(scaled.begin(), scaled.end());
  for (double q : {0.25, 0.5, 0.75}) {
    const size_t index = static_cast<size_t>(q * combo.size());
    EXPECT_NEAR(combo[index], scaled[index],
                0.1 * (std::fabs(scaled[index]) + 1.0))
        << "q=" << q;
  }
}

TEST(StableSamplerTest, GeneralPCalibrationConsistent) {
  auto sampler = StableSampler::Create(1.5);
  ASSERT_TRUE(sampler.ok());
  // Recreating must give the identical deterministic calibration.
  auto again = StableSampler::Create(1.5);
  EXPECT_DOUBLE_EQ(sampler->MedianAbs(), again->MedianAbs());
  EXPECT_GT(sampler->MedianAbs(), 0.1);
  EXPECT_LT(sampler->MedianAbs(), 10.0);
}

TEST(MorrisCounterTest, SmallCountsRoughlyUnbiased) {
  const int trials = 400;
  const uint64_t target = 1000;
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    MorrisCounter::Options options;
    options.a = 0.1;
    options.seed = 1000 + trial;
    auto counter = MorrisCounter::Create(options);
    ASSERT_TRUE(counter.ok());
    counter->Add(target);
    total += counter->Estimate();
  }
  EXPECT_NEAR(total / trials, static_cast<double>(target),
              0.1 * static_cast<double>(target));
}

TEST(MorrisCounterTest, StorageIsLogLog) {
  MorrisCounter::Options options;
  options.a = 0.5;
  auto counter = MorrisCounter::Create(options);
  ASSERT_TRUE(counter.ok());
  counter->Add(1u << 20);
  // Register ~ log_{1.5}(2^20 * 0.5): a few dozen; bits stay single-digit.
  EXPECT_LE(counter->StorageBits(), 10);
}

TEST(MorrisCounterTest, RejectsBadBase) {
  MorrisCounter::Options options;
  options.a = 0.0;
  EXPECT_FALSE(MorrisCounter::Create(options).ok());
}

TEST(MorrisEnsembleTest, AveragingTightens) {
  MorrisEnsemble::Options options;
  options.a = 0.3;
  options.copies = 16;
  options.seed = 77;
  auto ensemble = MorrisEnsemble::Create(options);
  ASSERT_TRUE(ensemble.ok());
  ensemble->Add(5000);
  EXPECT_NEAR(ensemble->Estimate(), 5000.0, 1500.0);
}

TEST(RoundedCounterTest, RoundValueIsUpperBoundWithinFactor) {
  for (int bits : {3, 8, 16}) {
    const double beta = std::ldexp(1.0, 1 - bits);
    for (double x : {1.0, 3.0, 100.0, 12345.678, 1e12}) {
      const double rounded = RoundedCounter::RoundValue(x, bits);
      EXPECT_GE(rounded, x);
      EXPECT_LE(rounded, x * (1.0 + beta) + 1e-12);
    }
  }
}

TEST(RoundedCounterTest, ZeroBitsMeansExact) {
  EXPECT_DOUBLE_EQ(RoundedCounter::RoundValue(12345.678, 0), 12345.678);
}

TEST(RoundedCounterTest, AddIsExactMergeRounds) {
  RoundedCounter counter(4);
  counter.Add(1000.0);
  counter.Add(3.0);
  EXPECT_DOUBLE_EQ(counter.Value(), 1003.0);  // leaf adds are exact
  RoundedCounter other(4);
  other.Add(1.0);
  counter.Merge(other);
  EXPECT_GE(counter.Value(), 1004.0);
  EXPECT_LE(counter.Value(), 1004.0 * (1.0 + std::ldexp(1.0, -3)));
}

TEST(RoundedCounterTest, StorageBitsAccounting) {
  RoundedCounter exact(0);
  exact.Add(1000);
  EXPECT_EQ(exact.StorageBits(1000.0), 10);  // ceil(log2(1001))
  RoundedCounter rounded(8);
  EXPECT_GE(rounded.StorageBits(1e6), 8 + 4);  // mantissa + exponent field
  EXPECT_LE(rounded.StorageBits(1e6), 8 + 6);
}

// --- FuzzInput: the byte-stream contract behind the dual-mode drivers ---

TEST(FuzzInputTest, FromSeedIsDeterministic) {
  FuzzInput a = FuzzInput::FromSeed(0xE401, 256);
  FuzzInput b = FuzzInput::FromSeed(0xE401, 256);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a.Byte(), b.Byte()) << "byte " << i;
  // A different seed diverges (first word is HashCombine(seed, 0)).
  FuzzInput c = FuzzInput::FromSeed(0xE402, 8);
  FuzzInput d = FuzzInput::FromSeed(0xE401, 8);
  EXPECT_NE(c.U64(), d.U64());
}

TEST(FuzzInputTest, FromSeedMatchesRngWordStream) {
  // FromSeed materializes FuzzRng words 8 little-endian bytes at a time —
  // the contract tools/make_fuzz_corpus.py's python twin replays.
  FuzzInput in = FuzzInput::FromSeed(42, 32);
  FuzzRng rng(42);
  for (int word = 0; word < 4; ++word) EXPECT_EQ(in.U64(), rng.Next());
}

TEST(FuzzInputTest, BelowConsumesMinimumWidthAndRespectsBound) {
  const uint8_t bytes[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  FuzzInput in(bytes, sizeof(bytes));
  EXPECT_LT(in.Below(16), 16u);
  EXPECT_EQ(in.consumed(), 1u);  // bound <= 2^8: one byte
  EXPECT_LT(in.Below(1000), 1000u);
  EXPECT_EQ(in.consumed(), 3u);  // bound <= 2^16: two bytes
  EXPECT_EQ(in.Below(1), 0u);    // degenerate bound consumes nothing
  EXPECT_EQ(in.consumed(), 3u);
  FuzzInput wide(bytes, sizeof(bytes));
  EXPECT_LT(wide.Below(UINT64_C(1) << 20), UINT64_C(1) << 20);
  EXPECT_EQ(wide.consumed(), 4u);  // bound <= 2^32: four bytes
}

TEST(FuzzInputTest, ExhaustionIsZeroAndSticky) {
  const uint8_t bytes[] = {0xAB, 0xCD};
  FuzzInput in(bytes, sizeof(bytes));
  EXPECT_FALSE(in.exhausted());
  EXPECT_EQ(in.remaining(), 2u);
  EXPECT_EQ(in.Byte(), 0xAB);
  EXPECT_EQ(in.Byte(), 0xCD);
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(in.remaining(), 0u);
  // Every draw past the end is a deterministic zero, never UB.
  EXPECT_EQ(in.Byte(), 0u);
  EXPECT_EQ(in.U64(), 0u);
  EXPECT_EQ(in.Below(100), 0u);
  EXPECT_TRUE(in.exhausted());
}

// --- Schedule chaos: the seeded perturbation policy (src/util/schedule_chaos.h)
// is compiled and testable even when TDS_SCHED_CHAOS is off; the macro must
// also be usable (as a no-op) in unperturbed builds. ---

TEST(ScheduleChaosTest, MacroCompilesInAnyBuild) {
  TDS_INTERLEAVE_POINT("util_test.noop");
}

TEST(ScheduleChaosTest, DecisionIsPureFunctionOfInputs) {
  for (uint64_t hit = 0; hit < 64; ++hit) {
    EXPECT_EQ(sched_chaos::DecisionFor(7, "ring.push.publish", hit),
              sched_chaos::DecisionFor(7, "ring.push.publish", hit));
    EXPECT_EQ(sched_chaos::SleepMicrosFor(7, "ring.push.publish", hit),
              sched_chaos::SleepMicrosFor(7, "ring.push.publish", hit));
  }
}

TEST(ScheduleChaosTest, MixCoversAllDecisionsAtDocumentedRates) {
  int sleeps = 0;
  int yields = 0;
  int nones = 0;
  constexpr int kHits = 4096;
  for (uint64_t hit = 0; hit < kHits; ++hit) {
    switch (sched_chaos::DecisionFor(1, "engine.park.window", hit)) {
      case sched_chaos::Decision::kSleep: ++sleeps; break;
      case sched_chaos::Decision::kYield: ++yields; break;
      case sched_chaos::Decision::kNone: ++nones; break;
    }
  }
  // ~1/16 sleep, ~3/16 yield, rest undisturbed; generous 2x bands.
  EXPECT_GT(sleeps, kHits / 32);
  EXPECT_LT(sleeps, kHits / 8);
  EXPECT_GT(yields, kHits / 11);
  EXPECT_LT(yields, kHits / 3);
  EXPECT_GT(nones, kHits / 2);
}

TEST(ScheduleChaosTest, SeedAndPointNameChangeTheSchedule) {
  int diverged_by_seed = 0;
  int diverged_by_name = 0;
  for (uint64_t hit = 0; hit < 256; ++hit) {
    if (sched_chaos::DecisionFor(1, "ring.pop.claim", hit) !=
        sched_chaos::DecisionFor(2, "ring.pop.claim", hit)) {
      ++diverged_by_seed;
    }
    if (sched_chaos::DecisionFor(1, "ring.pop.claim", hit) !=
        sched_chaos::DecisionFor(1, "ring.push.claim", hit)) {
      ++diverged_by_name;
    }
  }
  EXPECT_GT(diverged_by_seed, 0);
  EXPECT_GT(diverged_by_name, 0);
}

TEST(ScheduleChaosTest, SleepsAreBounded) {
  for (uint64_t hit = 0; hit < 512; ++hit) {
    const uint64_t micros =
        sched_chaos::SleepMicrosFor(1, "engine.route.publish", hit);
    EXPECT_GE(micros, 1u);
    EXPECT_LE(micros, 100u);
  }
}

}  // namespace
}  // namespace tds
