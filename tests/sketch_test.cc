#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "core/snapshot.h"
#include "sketch/decayed_lp_norm.h"
#include "stream/generators.h"
#include "util/random.h"

namespace tds {
namespace {

struct CoordUpdate {
  Tick t;
  uint64_t coord;
  uint64_t amount;
};

double ExactDecayedNorm(const std::vector<CoordUpdate>& updates,
                        const DecayFunction& g, Tick now, double p) {
  std::map<uint64_t, double> coords;
  for (const CoordUpdate& u : updates) {
    const Tick age = AgeAt(u.t, now);
    if (age > g.Horizon()) continue;
    coords[u.coord] += static_cast<double>(u.amount) * g.Weight(age);
  }
  double sum = 0.0;
  for (const auto& [coord, value] : coords) {
    sum += std::pow(std::fabs(value), p);
  }
  return std::pow(sum, 1.0 / p);
}

std::vector<CoordUpdate> RandomUpdates(int n, uint64_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<CoordUpdate> updates;
  updates.reserve(n);
  Tick t = 1;
  for (int i = 0; i < n; ++i) {
    t += static_cast<Tick>(rng.NextBelow(3));
    updates.push_back(
        CoordUpdate{t, rng.NextBelow(dims), 1 + rng.NextBelow(9)});
  }
  return updates;
}

TEST(DecayedLpNormTest, CreateValidates) {
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedLpNorm::Options options;
  options.rows = 0;
  EXPECT_FALSE(DecayedLpNorm::Create(decay, options).ok());
  options.rows = 8;
  options.quantization = 0.0;
  EXPECT_FALSE(DecayedLpNorm::Create(decay, options).ok());
  options.quantization = 64.0;
  options.p = 3.0;
  EXPECT_FALSE(DecayedLpNorm::Create(decay, options).ok());
  options.p = 1.0;
  EXPECT_TRUE(DecayedLpNorm::Create(decay, options).ok());
  EXPECT_FALSE(DecayedLpNorm::Create(nullptr, options).ok());
}

TEST(DecayedLpNormTest, ProjectionEntriesAreDeterministic) {
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedLpNorm::Options options;
  options.rows = 4;
  auto a = DecayedLpNorm::Create(decay, options);
  auto b = DecayedLpNorm::Create(decay, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int row = 0; row < 4; ++row) {
    for (uint64_t coord : {0u, 1u, 99u}) {
      EXPECT_EQ(a->ProjectionEntry(row, coord), b->ProjectionEntry(row, coord));
    }
  }
  EXPECT_NE(a->ProjectionEntry(0, 1), a->ProjectionEntry(1, 1));
}

struct LpParam {
  double p;
  uint64_t seed;
};

class LpAccuracyTest : public ::testing::TestWithParam<LpParam> {};

TEST_P(LpAccuracyTest, EstimatesDecayedNormWithinMedianError) {
  const LpParam param = GetParam();
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedLpNorm::Options options;
  options.p = param.p;
  options.rows = 128;
  options.epsilon = 0.1;
  options.seed = param.seed;
  auto sketch = DecayedLpNorm::Create(decay, options);
  ASSERT_TRUE(sketch.ok());
  const auto updates = RandomUpdates(800, 64, param.seed);
  for (const CoordUpdate& u : updates) sketch->Update(u.t, u.coord, u.amount);
  const Tick now = updates.back().t;
  const double exact = ExactDecayedNorm(updates, *decay, now, param.p);
  const double estimate = sketch->Query(now);
  ASSERT_GT(exact, 0.0);
  // Median-of-128-rows estimator: statistical spread ~0.13, allow 3 sigma.
  EXPECT_NEAR(estimate / exact, 1.0, 0.4)
      << "p=" << param.p << " exact=" << exact << " est=" << estimate;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpAccuracyTest,
                         ::testing::Values(LpParam{1.0, 11}, LpParam{1.0, 12},
                                           LpParam{1.5, 13}, LpParam{2.0, 14},
                                           LpParam{2.0, 15}));

TEST(DecayedLpNormTest, DecayForgetsOldMass) {
  // Under sliding-window decay, mass outside the window must vanish from
  // the norm.
  auto decay = SlidingWindowDecay::Create(100).value();
  DecayedLpNorm::Options options;
  options.p = 1.0;
  options.rows = 32;
  options.seed = 5;
  auto sketch = DecayedLpNorm::Create(decay, options);
  ASSERT_TRUE(sketch.ok());
  for (Tick t = 1; t <= 50; ++t) sketch->Update(t, t % 8, 10);
  const double early = sketch->Query(50);
  EXPECT_GT(early, 0.0);
  const double late = sketch->Query(500);  // everything expired
  EXPECT_NEAR(late, 0.0, 1e-6);
}

TEST(DecayedLpNormTest, ScalesLinearly) {
  // ||c * H||_p = c ||H||_p: doubling every amount should double the
  // estimate (same randomness).
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedLpNorm::Options options;
  options.rows = 32;
  options.seed = 9;
  auto sketch1 = DecayedLpNorm::Create(decay, options);
  auto sketch2 = DecayedLpNorm::Create(decay, options);
  ASSERT_TRUE(sketch1.ok());
  ASSERT_TRUE(sketch2.ok());
  const auto updates = RandomUpdates(300, 32, 17);
  for (const CoordUpdate& u : updates) {
    sketch1->Update(u.t, u.coord, u.amount);
    sketch2->Update(u.t, u.coord, 2 * u.amount);
  }
  const Tick now = updates.back().t;
  const double e1 = sketch1->Query(now);
  const double e2 = sketch2->Query(now);
  EXPECT_NEAR(e2 / e1, 2.0, 0.15);
}

TEST(DecayedLpNormTest, StorageIndependentOfDimensions) {
  // o(d) storage: feeding many distinct coordinates must not blow up the
  // state (rows * polylog, not per-coordinate).
  auto decay = SlidingWindowDecay::Create(512).value();
  DecayedLpNorm::Options options;
  options.rows = 16;
  options.seed = 23;
  auto sketch = DecayedLpNorm::Create(decay, options);
  ASSERT_TRUE(sketch.ok());
  Rng rng(23);
  for (Tick t = 1; t <= 2000; ++t) {
    sketch->Update(t, rng.NextBelow(1u << 20), 1 + rng.NextBelow(4));
  }
  // 32 CEHs of polylog size; generous cap far below 2^20 coordinates.
  EXPECT_LT(sketch->StorageBits(), 400000u);
}


TEST(DecayedLpNormTest, SnapshotRoundTripContinuesIdentically) {
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedLpNorm::Options options;
  options.rows = 32;
  options.seed = 77;
  auto original = DecayedLpNorm::Create(decay, options);
  ASSERT_TRUE(original.ok());
  const auto updates = RandomUpdates(400, 64, 55);
  const size_t half = updates.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    original->Update(updates[i].t, updates[i].coord, updates[i].amount);
  }
  std::string bytes;
  ASSERT_TRUE(EncodeDecayedLpNorm(*original, &bytes).ok());
  auto restored = DecodeDecayedLpNorm(decay, bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (size_t i = half; i < updates.size(); ++i) {
    original->Update(updates[i].t, updates[i].coord, updates[i].amount);
    restored->Update(updates[i].t, updates[i].coord, updates[i].amount);
  }
  const Tick now = updates.back().t + 10;
  EXPECT_DOUBLE_EQ(original->Query(now), restored->Query(now));
  // Wrong decay rejected; corrupt data rejected.
  EXPECT_FALSE(
      DecodeDecayedLpNorm(PolynomialDecay::Create(2.0).value(), bytes).ok());
  EXPECT_FALSE(DecodeDecayedLpNorm(decay, "nope").ok());
}

}  // namespace
}  // namespace tds
