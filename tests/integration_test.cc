// End-to-end scenarios through the public API: multiple structures, long
// mixed workloads, the paper's Figure 1 story, and the Section 6
// lower-bound family decoded by the approximate structures.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "stream/adversarial.h"
#include "stream/generators.h"
#include "stream/replay.h"
#include "util/random.h"

namespace tds {
namespace {

TEST(IntegrationTest, AllBackendsAgreeOnLongBurstyWorkload) {
  const Stream stream = BurstyStream(20000, 40, 60, 3.0, 1234);
  struct Subject {
    DecayPtr decay;
    Backend backend;
    double tolerance;
  };
  std::vector<Subject> subjects = {
      {ExponentialDecay::Create(0.002).value(), Backend::kEwma, 0.01},
      {SlidingWindowDecay::Create(2048).value(), Backend::kCeh, 0.11},
      {PolynomialDecay::Create(1.0).value(), Backend::kCeh, 0.3},
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh, 0.35},
      {PolynomialDecay::Create(2.5).value(), Backend::kWbmh, 0.35},
  };
  for (const Subject& s : subjects) {
    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(s.backend)
                                     .epsilon(0.1)
                                     .Build()
                                     .value();
    auto subject = MakeDecayedSum(s.decay, options);
    ASSERT_TRUE(subject.ok());
    auto reference = ExactDecayedSum::Create(s.decay);
    const ReplayReport report =
        ReplayAndCompare(stream, **subject, **reference, 977);
    EXPECT_LE(report.max_relative_error, s.tolerance)
        << (*subject)->Name() << " / " << s.decay->Name();
  }
}

TEST(IntegrationTest, UpdatesAndQueriesInterleave) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject.ok());
  auto reference = ExactDecayedSum::Create(decay);
  Rng rng(55);
  Tick t = 1;
  for (int step = 0; step < 5000; ++step) {
    t += static_cast<Tick>(rng.NextBelow(5));
    const uint64_t value = rng.NextBelow(3);
    (*subject)->Update(t, value);
    (*reference)->Update(t, value);
    if (step % 37 == 0) {
      const double truth = (*reference)->Query(t);
      const double estimate = (*subject)->Query(t);
      if (truth > 0.0) {
        EXPECT_NEAR(estimate / truth, 1.0, 0.35) << "t=" << t;
      }
    }
  }
}

// Theorem 2 operationalized: the adversarial family's slot choices must be
// recoverable from the *approximate* structures' answers, demonstrating
// that the structures really retain the Omega(log N) distinguishing bits.
TEST(IntegrationTest, ApproximateStructuresDecodeAdversarialSlots) {
  const double alpha = 1.0;
  auto family = MakeAdversarialFamily(alpha, 10, 1 << 14).value();
  auto decay = PolynomialDecay::Create(alpha).value();
  Rng rng(77);
  for (Backend backend : {Backend::kCeh, Backend::kWbmh}) {
    // Random member of the 2^r family.
    std::vector<int> choices(family.slots);
    for (int& c : choices) c = 1 + static_cast<int>(rng.NextBelow(2));
    const Stream stream = MakeAdversarialStream(family, choices);

    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(backend)
                                     .epsilon(0.02)
                                     .Build()
                                     .value();
    auto subject = MakeDecayedSum(decay, options);
    ASSERT_TRUE(subject.ok());
    for (const StreamItem& item : stream) {
      (*subject)->Update(item.t, item.value);
    }
    // Decode each slot by comparing against the two exact candidate sums.
    for (int i = 0; i < family.slots; ++i) {
      const double estimate = (*subject)->Query(family.probe_ticks[i]);
      double candidate[3] = {0.0, 0.0, 0.0};
      for (int n : {1, 2}) {
        std::vector<int> hypothetical = choices;
        hypothetical[i] = n;
        auto exact = ExactDecayedSum::Create(decay);
        for (const StreamItem& item :
             MakeAdversarialStream(family, hypothetical)) {
          (*exact)->Update(item.t, item.value);
        }
        candidate[n] = (*exact)->Query(family.probe_ticks[i]);
      }
      const int decoded =
          std::fabs(estimate - candidate[1]) < std::fabs(estimate - candidate[2])
              ? 1
              : 2;
      EXPECT_EQ(decoded, choices[i])
          << "backend=" << static_cast<int>(backend) << " slot=" << i;
    }
  }
}

TEST(IntegrationTest, DecayedAverageAcrossBackendsConsistent) {
  auto decay = PolynomialDecay::Create(1.5).value();
  const AggregateOptions wbmh = AggregateOptions::Builder()
                                .backend(Backend::kWbmh)
                                .epsilon(0.1)
                                .Build()
                                .value();
  const AggregateOptions exact = AggregateOptions::Builder()
                                 .backend(Backend::kExact)
                                 .Build()
                                 .value();
  auto approx_avg = MakeDecayedAverage(decay, wbmh);
  auto exact_avg = MakeDecayedAverage(decay, exact);
  ASSERT_TRUE(approx_avg.ok());
  ASSERT_TRUE(exact_avg.ok());
  const Stream stream = LevelShiftStream(4000, 2000, 5.0, 15.0, 31);
  for (const StreamItem& item : stream) {
    approx_avg->Observe(item.t, item.value);
    exact_avg->Observe(item.t, item.value);
  }
  const double truth = exact_avg->Query(4000);
  EXPECT_NEAR(approx_avg->Query(4000) / truth, 1.0, 0.25);
}

TEST(IntegrationTest, StorageOrderingMatchesPaper) {
  // At equal epsilon and horizon, the paper's storage ordering must emerge:
  // EWMA (log N)  <  WBMH-POLYD (log N log log N)  <  CEH (log^2 N).
  // Constants matter at finite N: WBMH carries a log D(g) = alpha log N
  // factor, so alpha = 1 at N = 2^15 (the full alpha/N sweep with measured
  // crossovers is bench/storage_bounds).
  const Tick n = 1 << 15;
  const double epsilon = 0.1;

  const auto with_backend = [&](Backend backend) {
    return AggregateOptions::Builder()
        .backend(backend)
        .epsilon(epsilon)
        .Build()
        .value();
  };
  auto ewma = MakeDecayedSum(ExponentialDecay::Create(0.001).value(),
                             with_backend(Backend::kEwma));
  auto wbmh = MakeDecayedSum(PolynomialDecay::Create(1.0).value(),
                             with_backend(Backend::kWbmh));
  auto ceh = MakeDecayedSum(PolynomialDecay::Create(1.0).value(),
                            with_backend(Backend::kCeh));
  ASSERT_TRUE(ewma.ok());
  ASSERT_TRUE(wbmh.ok());
  ASSERT_TRUE(ceh.ok());
  for (Tick t = 1; t <= n; ++t) {
    (*ewma)->Update(t, 1);
    (*wbmh)->Update(t, 1);
    (*ceh)->Update(t, 1);
  }
  const size_t ewma_bits = (*ewma)->StorageBits();
  const size_t wbmh_bits = (*wbmh)->StorageBits();
  const size_t ceh_bits = (*ceh)->StorageBits();
  EXPECT_LT(ewma_bits, wbmh_bits);
  EXPECT_LT(wbmh_bits, ceh_bits);
}

}  // namespace
}  // namespace tds
