#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ceh.h"
#include "core/decayed_average.h"
#include "core/ewma.h"
#include "core/exact.h"
#include "core/factory.h"
#include "core/polyexp_counter.h"
#include "core/recent_items.h"
#include "core/wbmh.h"
#include "decay/custom.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "stream/generators.h"
#include "util/random.h"

namespace tds {
namespace {

double BruteDecayedSum(const Stream& stream, const DecayFunction& g,
                       Tick now) {
  double sum = 0.0;
  for (const StreamItem& item : stream) {
    const Tick age = AgeAt(item.t, now);
    if (age > g.Horizon()) continue;
    sum += static_cast<double>(item.value) * g.Weight(age);
  }
  return sum;
}

TEST(ExactDecayedSumTest, MatchesBruteForce) {
  auto decay = PolynomialDecay::Create(1.5).value();
  auto exact = ExactDecayedSum::Create(decay);
  ASSERT_TRUE(exact.ok());
  const Stream stream = PoissonStream(500, 1.3, 5);
  for (const StreamItem& item : stream) (*exact)->Update(item.t, item.value);
  for (Tick now : {500, 600, 1000}) {
    EXPECT_NEAR((*exact)->Query(now), BruteDecayedSum(stream, *decay, now),
                1e-9);
  }
}

TEST(ExactDecayedSumTest, PrunesPastHorizon) {
  auto decay = SlidingWindowDecay::Create(50).value();
  auto exact = ExactDecayedSum::Create(decay);
  for (Tick t = 1; t <= 1000; ++t) (*exact)->Update(t, 1);
  EXPECT_LE((*exact)->ItemCount(), 51u);
  EXPECT_DOUBLE_EQ((*exact)->Query(1000), 50.0);
}

// Regression: a zero-value update advances the clock and must still prune —
// the early-return path once left expired entries resident (caught by
// AuditInvariants in the core fuzz driver).
TEST(ExactDecayedSumTest, ZeroValueUpdatePrunesExpiredEntries) {
  auto decay = SlidingWindowDecay::Create(10).value();
  auto exact = ExactDecayedSum::Create(decay);
  (*exact)->Update(1, 7);
  (*exact)->Update(1000, 0);  // far past the horizon, adds nothing
  EXPECT_EQ((*exact)->ItemCount(), 0u);
  EXPECT_TRUE((*exact)->AuditInvariants().ok());
}

TEST(EwmaCounterTest, MatchesExactExponentialSum) {
  auto decay = ExponentialDecay::Create(0.05).value();
  auto ewma = EwmaCounter::Create(decay, {});
  ASSERT_TRUE(ewma.ok());
  const Stream stream = BernoulliStream(2000, 0.6, 3);
  for (const StreamItem& item : stream) (*ewma)->Update(item.t, item.value);
  for (Tick now : {2000, 2100}) {
    const double truth = BruteDecayedSum(stream, *decay, now);
    EXPECT_NEAR((*ewma)->Query(now), truth, 1e-6 * truth + 1e-12);
  }
}

TEST(EwmaCounterTest, QuantizedRegisterStaysAccurate) {
  auto decay = ExponentialDecay::Create(0.02).value();
  EwmaCounter::Options options;
  options.mantissa_bits = 24;
  auto ewma = EwmaCounter::Create(decay, options);
  ASSERT_TRUE(ewma.ok());
  auto exact = ExactDecayedSum::Create(decay);
  for (Tick t = 1; t <= 5000; ++t) {
    (*ewma)->Update(t, 1);
    (*exact)->Update(t, 1);
  }
  const double truth = (*exact)->Query(5000);
  EXPECT_NEAR((*ewma)->Query(5000), truth, 0.01 * truth);
}

TEST(EwmaCounterTest, RequiresExponentialDecay) {
  auto poly = PolynomialDecay::Create(2.0).value();
  EXPECT_FALSE(EwmaCounter::Create(poly, {}).ok());
}

TEST(RecentItemsTest, TracksExponentialSumWithinEpsilon) {
  const double epsilon = 0.1;
  auto decay = ExponentialDecay::Create(0.1).value();
  RecentItemsExpCounter::Options options;
  options.epsilon = epsilon;
  auto counter = RecentItemsExpCounter::Create(decay, options);
  ASSERT_TRUE(counter.ok());
  const Stream stream = BernoulliStream(3000, 0.5, 9);
  for (const StreamItem& item : stream) (*counter)->Update(item.t, item.value);
  const double truth = BruteDecayedSum(stream, *decay, 3000);
  const double estimate = (*counter)->Query(3000);
  EXPECT_LE(std::fabs(estimate - truth), epsilon * truth + 1e-12);
  // Capacity is a constant independent of stream length (Lemma 3.1).
  EXPECT_LE((*counter)->capacity(), 80u);
}

TEST(RecentItemsTest, ValueShiftingPreservesContributions) {
  auto decay = ExponentialDecay::Create(0.05).value();
  RecentItemsExpCounter::Options options;
  options.epsilon = 0.05;
  auto counter = RecentItemsExpCounter::Create(decay, options);
  ASSERT_TRUE(counter.ok());
  Stream stream;
  stream.push_back(StreamItem{10, 7});
  stream.push_back(StreamItem{20, 3});
  stream.push_back(StreamItem{40, 11});
  for (const StreamItem& item : stream) (*counter)->Update(item.t, item.value);
  const double truth = BruteDecayedSum(stream, *decay, 50);
  EXPECT_NEAR((*counter)->Query(50), truth, 0.05 * truth + 1e-9);
}

TEST(PolyExpCounterTest, MatchesBruteForcePolyexpSum) {
  for (int k : {0, 1, 2, 3}) {
    auto counter = PolyExpCounter::Create(k, 0.05);
    ASSERT_TRUE(counter.ok());
    const DecayPtr decay = (*counter)->decay();
    const Stream stream = PoissonStream(800, 0.8, 13 + k);
    for (const StreamItem& item : stream) {
      (*counter)->Update(item.t, item.value);
    }
    for (Tick now : {800, 900}) {
      const double truth = BruteDecayedSum(stream, *decay, now);
      EXPECT_NEAR((*counter)->Query(now), truth, 1e-6 * truth + 1e-9)
          << "k=" << k << " now=" << now;
    }
  }
}

TEST(PolyExpCounterTest, QueryPolynomialCombinesMoments) {
  auto counter = PolyExpCounter::Create(2, 0.1);
  ASSERT_TRUE(counter.ok());
  Stream stream;
  stream.push_back(StreamItem{5, 2});
  stream.push_back(StreamItem{9, 1});
  for (const StreamItem& item : stream) (*counter)->Update(item.t, item.value);
  // p(x) = 3 + 2 x^2: brute force.
  const Tick now = 20;
  double truth = 0.0;
  for (const StreamItem& item : stream) {
    const double x = static_cast<double>(AgeAt(item.t, now));
    truth += static_cast<double>(item.value) * (3.0 + 2.0 * x * x) *
             std::exp(-0.1 * x);
  }
  EXPECT_NEAR((*counter)->QueryPolynomial({3.0, 0.0, 2.0}, now), truth, 1e-9);
}

struct CehParam {
  const char* name;
  double epsilon;
  double density;
  uint64_t seed;
};

class CehSliwinTest : public ::testing::TestWithParam<CehParam> {};

TEST_P(CehSliwinTest, MatchesSlidingWindowWithinEpsilon) {
  const auto param = GetParam();
  auto decay = SlidingWindowDecay::Create(300).value();
  CehDecayedSum::Options options;
  options.epsilon = param.epsilon;
  auto subject = CehDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok());
  const Stream stream = BernoulliStream(4000, param.density, param.seed);
  auto exact = ExactDecayedSum::Create(decay);
  size_t i = 0;
  for (Tick t = 1; t <= 4000; ++t) {
    if (i < stream.size() && stream[i].t == t) {
      (*subject)->Update(t, stream[i].value);
      (*exact)->Update(t, stream[i].value);
      ++i;
    }
    if (t % 97 == 0) {
      const double truth = (*exact)->Query(t);
      const double estimate = (*subject)->Query(t);
      if (truth == 0.0) continue;
      EXPECT_LE(std::fabs(estimate - truth), param.epsilon * truth + 1e-9)
          << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CehSliwinTest,
                         ::testing::Values(CehParam{"loose", 0.5, 0.5, 1},
                                           CehParam{"mid", 0.1, 0.5, 2},
                                           CehParam{"tight", 0.05, 0.8, 3},
                                           CehParam{"sparse", 0.1, 0.05, 4}));

struct CehDecayCase {
  DecayPtr decay;
  double tolerance;  // allowed relative error
};

std::vector<CehDecayCase> CehDecayCases(double epsilon) {
  std::vector<CehDecayCase> cases;
  // Bucket-granularity weighting adds to the EH count error; allow ~3 eps.
  cases.push_back({PolynomialDecay::Create(0.5).value(), 3 * epsilon});
  cases.push_back({PolynomialDecay::Create(1.0).value(), 3 * epsilon});
  cases.push_back({PolynomialDecay::Create(2.0).value(), 3 * epsilon});
  cases.push_back({ExponentialDecay::Create(0.01).value(), 3 * epsilon});
  return cases;
}

TEST(CehDecayedSumTest, TracksGeneralDecaysWithinTolerance) {
  const double epsilon = 0.05;
  for (const auto& test_case : CehDecayCases(epsilon)) {
    CehDecayedSum::Options options;
    options.epsilon = epsilon;
    auto subject = CehDecayedSum::Create(test_case.decay, options);
    ASSERT_TRUE(subject.ok());
    auto exact = ExactDecayedSum::Create(test_case.decay);
    const Stream stream = BernoulliStream(3000, 0.5, 21);
    size_t i = 0;
    double max_rel = 0.0;
    for (Tick t = 1; t <= 3000; ++t) {
      if (i < stream.size() && stream[i].t == t) {
        (*subject)->Update(t, stream[i].value);
        (*exact)->Update(t, stream[i].value);
        ++i;
      }
      if (t % 101 == 0 || t == 3000) {
        const double truth = (*exact)->Query(t);
        if (truth <= 0.0) continue;
        const double estimate = (*subject)->Query(t);
        max_rel = std::max(max_rel, std::fabs(estimate - truth) / truth);
      }
    }
    EXPECT_LE(max_rel, test_case.tolerance)
        << "decay=" << test_case.decay->Name();
  }
}

TEST(CehDecayedSumTest, HandlesTableDecay) {
  // Piecewise-constant decay through the fully-general path (Theorem 1:
  // *any* decay function).
  auto decay = MakeTableDecay({1.0, 0.5, 0.25, 0.1, 0.0}, 20, "steps").value();
  CehDecayedSum::Options options;
  options.epsilon = 0.05;
  auto subject = CehDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok());
  auto exact = ExactDecayedSum::Create(decay);
  for (Tick t = 1; t <= 500; ++t) {
    (*subject)->Update(t, 1);
    (*exact)->Update(t, 1);
  }
  const double truth = (*exact)->Query(500);
  EXPECT_NEAR((*subject)->Query(500), truth, 0.2 * truth);
}

TEST(DecayedAverageTest, TracksWeightedAverage) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .epsilon(0.05)
                                   .Build()
                                   .value();
  auto average = MakeDecayedAverage(decay, options);
  ASSERT_TRUE(average.ok());
  // Values around 10 then around 20: the decayed average must move toward
  // 20 and sit between the two levels.
  Rng rng(5);
  Tick t = 1;
  for (; t <= 1000; ++t) average->Observe(t, 8 + rng.NextBelow(5));
  for (; t <= 2000; ++t) average->Observe(t, 18 + rng.NextBelow(5));
  const double avg = average->Query(2000);
  EXPECT_GT(avg, 10.0);
  EXPECT_LT(avg, 21.0);
  // EXPD-style responsiveness comparison is in the benches; here check the
  // estimate against the exact weighted average.
  auto exact_avg =
      MakeDecayedAverage(
          decay,
          AggregateOptions::Builder().backend(Backend::kExact).Build().value());
  ASSERT_TRUE(exact_avg.ok());
  Rng rng2(5);
  for (Tick u = 1; u <= 1000; ++u) exact_avg->Observe(u, 8 + rng2.NextBelow(5));
  for (Tick u = 1001; u <= 2000; ++u) {
    exact_avg->Observe(u, 18 + rng2.NextBelow(5));
  }
  EXPECT_NEAR(avg, exact_avg->Query(2000), 0.2 * exact_avg->Query(2000));
}

TEST(DecayedAverageTest, FallbackWhenEmpty) {
  auto decay = SlidingWindowDecay::Create(10).value();
  auto average = MakeDecayedAverage(decay, AggregateOptions{});
  ASSERT_TRUE(average.ok());
  EXPECT_DOUBLE_EQ(average->Query(5, -1.0), -1.0);
  average->Observe(6, 4);
  EXPECT_NEAR(average->Query(6), 4.0, 1e-9);
  // After the window passes, it reverts to the fallback.
  EXPECT_DOUBLE_EQ(average->Query(100, -1.0), -1.0);
}

TEST(FactoryTest, AutoSelectsPaperRecommendedBackends) {
  AggregateOptions options;
  auto expd = MakeDecayedSum(ExponentialDecay::Create(0.1).value(), options);
  ASSERT_TRUE(expd.ok());
  EXPECT_EQ((*expd)->Name(), "EWMA");

  auto sliwin = MakeDecayedSum(SlidingWindowDecay::Create(64).value(), options);
  ASSERT_TRUE(sliwin.ok());
  EXPECT_EQ((*sliwin)->Name(), "CEH");

  auto polyd = MakeDecayedSum(PolynomialDecay::Create(2.0).value(), options);
  ASSERT_TRUE(polyd.ok());
  EXPECT_EQ((*polyd)->Name(), "WBMH");

  auto polyexp =
      MakeDecayedSum(PolyExponentialDecay::Create(2, 0.1).value(), options);
  ASSERT_TRUE(polyexp.ok());
  EXPECT_EQ((*polyexp)->Name(), "POLYEXP_PIPE");
}

TEST(FactoryTest, ExplicitBackendsHonored) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const auto with_backend = [](Backend backend) {
    return AggregateOptions::Builder().backend(backend).Build().value();
  };
  EXPECT_EQ((*MakeDecayedSum(decay, with_backend(Backend::kExact)))->Name(),
            "EXACT");
  EXPECT_EQ((*MakeDecayedSum(decay, with_backend(Backend::kCeh)))->Name(),
            "CEH");
  EXPECT_EQ((*MakeDecayedSum(decay, with_backend(Backend::kWbmh)))->Name(),
            "WBMH");
  // Mismatched decay family for the explicit backend.
  EXPECT_FALSE(MakeDecayedSum(decay, with_backend(Backend::kEwma)).ok());
}


TEST(GeneralPolyExpTest, DecayShapeAndValidation) {
  EXPECT_FALSE(GeneralPolyExpDecay::Create({}, 0.1).ok());
  EXPECT_FALSE(GeneralPolyExpDecay::Create({1.0, -2.0}, 0.1).ok());
  EXPECT_FALSE(GeneralPolyExpDecay::Create({0.0, 0.0}, 0.1).ok());
  EXPECT_FALSE(GeneralPolyExpDecay::Create({1.0}, 0.0).ok());
  auto decay = GeneralPolyExpDecay::Create({2.0, 0.0, 3.0}, 0.1);
  ASSERT_TRUE(decay.ok());
  // g(x) = (2 + 3x^2) e^{-x/10}.
  EXPECT_NEAR((*decay)->Weight(2), (2.0 + 12.0) * std::exp(-0.2), 1e-12);
  EXPECT_FALSE((*decay)->IsWbmhAdmissible());
  EXPECT_TRUE(
      GeneralPolyExpDecay::Create({5.0}, 0.1).value()->IsWbmhAdmissible());
}

TEST(GeneralPolyExpTest, CounterTracksExactSum) {
  auto decay = GeneralPolyExpDecay::Create({1.0, 0.5, 0.0, 0.25}, 0.08);
  ASSERT_TRUE(decay.ok());
  auto counter = PolyExpCounter::Create(decay.value());
  ASSERT_TRUE(counter.ok());
  const Stream stream = PoissonStream(600, 1.1, 99);
  for (const StreamItem& item : stream) {
    (*counter)->Update(item.t, item.value);
  }
  for (Tick now : {600, 700, 1200}) {
    const double truth = BruteDecayedSum(stream, *decay.value(), now);
    EXPECT_NEAR((*counter)->Query(now), truth, 1e-6 * truth + 1e-9)
        << "now=" << now;
  }
}

TEST(GeneralPolyExpTest, FactoryAutoSelectsPipeline) {
  auto decay = GeneralPolyExpDecay::Create({1.0, 1.0}, 0.05).value();
  auto subject = MakeDecayedSum(decay, AggregateOptions{});
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ((*subject)->Name(), "POLYEXP_PIPE");
}

TEST(FactoryTest, CoarseCehBackend) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kCoarseCeh)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ((*subject)->Name(), "COARSE_CEH");
  for (Tick t = 1; t <= 100; ++t) (*subject)->Update(t, 1);
  EXPECT_GT((*subject)->Query(100), 0.0);
}

TEST(FactoryTest, NullDecayRejected) {
  EXPECT_FALSE(MakeDecayedSum(nullptr, AggregateOptions{}).ok());
}

TEST(FactoryTest, ResolveBackendCoversEveryDecayFamily) {
  const auto expd = ExponentialDecay::Create(0.2).value();
  const auto sliwin = SlidingWindowDecay::Create(128).value();
  const auto polyd = PolynomialDecay::Create(1.0).value();
  const auto polyexp = PolyExponentialDecay::Create(2, 0.1).value();
  const auto general = GeneralPolyExpDecay::Create({1.0, 1.0}, 0.05).value();

  // kAuto resolves to the paper's storage-optimal backend per family.
  EXPECT_EQ(ResolveBackend(*expd, Backend::kAuto), Backend::kEwma);
  EXPECT_EQ(ResolveBackend(*sliwin, Backend::kAuto), Backend::kCeh);
  EXPECT_EQ(ResolveBackend(*polyd, Backend::kAuto), Backend::kWbmh);
  EXPECT_EQ(ResolveBackend(*polyexp, Backend::kAuto), Backend::kPolyExp);
  EXPECT_EQ(ResolveBackend(*general, Backend::kAuto), Backend::kPolyExp);

  // Custom decays have no closed-form family: the numeric admissibility
  // probe routes smooth sub-exponential shapes to WBMH and everything else
  // to the works-for-anything CEH.
  const auto smooth = CustomDecay::Create(
      [](Tick age) { return 1.0 / std::sqrt(static_cast<double>(age)); },
      kInfiniteHorizon, "inv-sqrt");
  ASSERT_TRUE(smooth.ok());
  EXPECT_TRUE((*smooth)->IsWbmhAdmissible());
  EXPECT_EQ(ResolveBackend(**smooth, Backend::kAuto), Backend::kWbmh);

  const auto step = CustomDecay::Create(
      [](Tick age) { return age <= 10 ? 1.0 : 0.5; }, kInfiniteHorizon,
      "step");
  ASSERT_TRUE(step.ok());
  EXPECT_FALSE((*step)->IsWbmhAdmissible());
  EXPECT_EQ(ResolveBackend(**step, Backend::kAuto), Backend::kCeh);

  // Concrete requests pass through untouched, even against the guidance.
  EXPECT_EQ(ResolveBackend(*polyd, Backend::kCeh), Backend::kCeh);
  EXPECT_EQ(ResolveBackend(*expd, Backend::kExact), Backend::kExact);
  EXPECT_EQ(ResolveBackend(*sliwin, Backend::kCoarseCeh),
            Backend::kCoarseCeh);
}

TEST(AggregateOptionsTest, BuilderValidates) {
  const auto with_epsilon = [](double epsilon) {
    return AggregateOptions::Builder().epsilon(epsilon).Build();
  };
  EXPECT_FALSE(with_epsilon(0.0).ok());
  EXPECT_FALSE(with_epsilon(-1.0).ok());
  EXPECT_FALSE(with_epsilon(1.5).ok());
  EXPECT_FALSE(with_epsilon(NAN).ok());
  EXPECT_FALSE(with_epsilon(INFINITY).ok());
  EXPECT_TRUE(with_epsilon(1.0).ok());
  EXPECT_TRUE(with_epsilon(0.05).ok());

  EXPECT_FALSE(AggregateOptions::Builder().start(0).Build().ok());
  EXPECT_FALSE(AggregateOptions::Builder().start(-5).Build().ok());
  const auto built = AggregateOptions::Builder()
                         .backend(Backend::kWbmh)
                         .epsilon(0.25)
                         .start(7)
                         .Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->backend(), Backend::kWbmh);
  EXPECT_DOUBLE_EQ(built->epsilon(), 0.25);
  EXPECT_EQ(built->start(), 7);

  // Defaults are valid by construction.
  const AggregateOptions defaults;
  EXPECT_EQ(defaults.backend(), Backend::kAuto);
  EXPECT_DOUBLE_EQ(defaults.epsilon(), 0.1);
  EXPECT_EQ(defaults.start(), 1);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(FactoryTest, LegacyOptionsShimStillWorks) {
  auto decay = SlidingWindowDecay::Create(32).value();
  LegacyAggregateOptions legacy;
  legacy.backend = Backend::kCeh;
  legacy.epsilon = 0.2;
  auto sum = MakeDecayedSum(decay, legacy);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->Name(), "CEH");

  auto average = MakeDecayedAverage(decay, legacy);
  ASSERT_TRUE(average.ok());

  // The shim funnels through the Builder, so bad values now fail with a
  // Status instead of reaching a backend.
  legacy.epsilon = -1.0;
  EXPECT_FALSE(MakeDecayedSum(decay, legacy).ok());
  legacy.epsilon = 0.2;
  legacy.start = 0;
  EXPECT_FALSE(MakeDecayedSum(decay, legacy).ok());
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace tds
