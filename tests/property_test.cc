// Parameterized property sweeps: every approximate decayed-sum backend, fed
// a grid of (decay function, stream shape, epsilon), must stay within its
// accuracy envelope against the exact reference, never go negative, and be
// stable under repeated queries. This is the broad invariant net on top of
// the targeted unit tests.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/factory.h"
#include "decay/custom.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/registry.h"
#include "stream/generators.h"
#include "stream/replay.h"
#include "util/random.h"

namespace tds {
namespace {

enum class DecayKind { kExpd, kSliwin, kPolyHalf, kPolyOne, kPolyTwo, kTable };
enum class StreamKind { kBernoulli, kBursty, kPoisson, kSparse, kConstant };

DecayPtr MakeDecay(DecayKind kind) {
  switch (kind) {
    case DecayKind::kExpd:
      return ExponentialDecay::Create(0.01).value();
    case DecayKind::kSliwin:
      return SlidingWindowDecay::Create(400).value();
    case DecayKind::kPolyHalf:
      return PolynomialDecay::Create(0.5).value();
    case DecayKind::kPolyOne:
      return PolynomialDecay::Create(1.0).value();
    case DecayKind::kPolyTwo:
      return PolynomialDecay::Create(2.0).value();
    case DecayKind::kTable:
      return MakeTableDecay({1.0, 0.6, 0.3, 0.1, 0.02}, 150, "table").value();
  }
  return nullptr;
}

Stream MakeStream(StreamKind kind, Tick length, uint64_t seed) {
  switch (kind) {
    case StreamKind::kBernoulli:
      return BernoulliStream(length, 0.5, seed);
    case StreamKind::kBursty:
      return BurstyStream(length, 20, 30, 2.0, seed);
    case StreamKind::kPoisson:
      return PoissonStream(length, 1.0, seed);
    case StreamKind::kSparse:
      return SparseStream(length, std::max<Tick>(4, length / 50), seed);
    case StreamKind::kConstant:
      return ConstantStream(length, 2);
  }
  return {};
}

struct PropertyParam {
  Backend backend;
  DecayKind decay;
  StreamKind stream;
  double epsilon;
  // Allowed max relative error (backend-specific envelope; see comments at
  // the instantiation site).
  double envelope;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto& p = info.param;
  std::string name;
  switch (p.backend) {
    case Backend::kCeh: name += "Ceh"; break;
    case Backend::kWbmh: name += "Wbmh"; break;
    case Backend::kEwma: name += "Ewma"; break;
    case Backend::kRecentItems: name += "Recent"; break;
    case Backend::kCoarseCeh: name += "Coarse"; break;
    default: name += "Other"; break;
  }
  switch (p.decay) {
    case DecayKind::kExpd: name += "Expd"; break;
    case DecayKind::kSliwin: name += "Sliwin"; break;
    case DecayKind::kPolyHalf: name += "PolyHalf"; break;
    case DecayKind::kPolyOne: name += "PolyOne"; break;
    case DecayKind::kPolyTwo: name += "PolyTwo"; break;
    case DecayKind::kTable: name += "Table"; break;
  }
  switch (p.stream) {
    case StreamKind::kBernoulli: name += "Bern"; break;
    case StreamKind::kBursty: name += "Bursty"; break;
    case StreamKind::kPoisson: name += "Poisson"; break;
    case StreamKind::kSparse: name += "Sparse"; break;
    case StreamKind::kConstant: name += "Const"; break;
  }
  name += "Eps" + std::to_string(static_cast<int>(p.epsilon * 100));
  return name;
}

class AccuracyEnvelopeTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(AccuracyEnvelopeTest, MaxRelativeErrorWithinEnvelope) {
  const PropertyParam param = GetParam();
  const DecayPtr decay = MakeDecay(param.decay);
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(param.backend)
                                   .epsilon(param.epsilon)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  auto reference = ExactDecayedSum::Create(decay);
  ASSERT_TRUE(reference.ok());
  const Stream stream = MakeStream(param.stream, 3000, param.seed);
  if (stream.empty()) GTEST_SKIP();
  const ReplayReport report =
      ReplayAndCompare(stream, **subject, **reference, 73);
  EXPECT_LE(report.max_relative_error, param.envelope)
      << (*subject)->Name() << " over " << decay->Name();
  // Estimates are never negative and storage accounting is alive.
  for (const ProbeResult& probe : report.probes) {
    EXPECT_GE(probe.estimate, 0.0);
  }
  EXPECT_GT(report.max_storage_bits, 0u);
}

// Envelopes: CEH's guarantee is per-window (1 +- eps) cascaded through the
// decay — allow 3*eps. WBMH is one-sided (1+eps) bucketing times (1+eps)
// count rounding — allow 2.5*eps + cross terms. EWMA/RecentItems are
// essentially exact / eps respectively.
INSTANTIATE_TEST_SUITE_P(
    Grid, AccuracyEnvelopeTest,
    ::testing::Values(
        // CEH across every decay family and stream shape.
        PropertyParam{Backend::kCeh, DecayKind::kSliwin, StreamKind::kBernoulli, 0.1, 0.1, 1},
        PropertyParam{Backend::kCeh, DecayKind::kSliwin, StreamKind::kBursty, 0.1, 0.1, 2},
        PropertyParam{Backend::kCeh, DecayKind::kSliwin, StreamKind::kSparse, 0.1, 0.1, 3},
        PropertyParam{Backend::kCeh, DecayKind::kPolyOne, StreamKind::kBernoulli, 0.1, 0.3, 4},
        PropertyParam{Backend::kCeh, DecayKind::kPolyOne, StreamKind::kPoisson, 0.1, 0.3, 5},
        PropertyParam{Backend::kCeh, DecayKind::kPolyTwo, StreamKind::kBursty, 0.1, 0.3, 6},
        PropertyParam{Backend::kCeh, DecayKind::kPolyHalf, StreamKind::kConstant, 0.1, 0.3, 7},
        PropertyParam{Backend::kCeh, DecayKind::kExpd, StreamKind::kBernoulli, 0.1, 0.3, 8},
        PropertyParam{Backend::kCeh, DecayKind::kTable, StreamKind::kBernoulli, 0.1, 0.35, 9},
        PropertyParam{Backend::kCeh, DecayKind::kPolyTwo, StreamKind::kSparse, 0.1, 0.35, 10},
        PropertyParam{Backend::kCeh, DecayKind::kPolyOne, StreamKind::kBernoulli, 0.02, 0.06, 11},
        PropertyParam{Backend::kCeh, DecayKind::kSliwin, StreamKind::kBernoulli, 0.5, 0.5, 12},
        // WBMH across admissible decays.
        PropertyParam{Backend::kWbmh, DecayKind::kPolyHalf, StreamKind::kBernoulli, 0.2, 0.5, 13},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyOne, StreamKind::kBursty, 0.2, 0.5, 14},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyTwo, StreamKind::kPoisson, 0.2, 0.5, 15},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyTwo, StreamKind::kSparse, 0.2, 0.5, 16},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyOne, StreamKind::kConstant, 0.1, 0.25, 17},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyOne, StreamKind::kBernoulli, 0.05, 0.13, 18},
        // Coarse-boundary CEH (constant-factor contract, POLYD only).
        PropertyParam{Backend::kCoarseCeh, DecayKind::kPolyOne, StreamKind::kBernoulli, 0.1, 0.8, 24},
        PropertyParam{Backend::kCoarseCeh, DecayKind::kPolyTwo, StreamKind::kBursty, 0.1, 1.6, 25},
        PropertyParam{Backend::kCoarseCeh, DecayKind::kPolyHalf, StreamKind::kSparse, 0.1, 0.8, 26},
        // Single-register EXPD algorithms.
        PropertyParam{Backend::kEwma, DecayKind::kExpd, StreamKind::kBernoulli, 0.1, 0.001, 19},
        PropertyParam{Backend::kEwma, DecayKind::kExpd, StreamKind::kBursty, 0.1, 0.001, 20},
        PropertyParam{Backend::kEwma, DecayKind::kExpd, StreamKind::kSparse, 0.1, 0.001, 21},
        PropertyParam{Backend::kRecentItems, DecayKind::kExpd, StreamKind::kBernoulli, 0.1, 0.1, 22},
        PropertyParam{Backend::kRecentItems, DecayKind::kExpd, StreamKind::kPoisson, 0.1, 0.1, 23}),
    ParamName);

class MonotonicityTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(MonotonicityTest, RepeatedQueriesAreStableAndDecaying) {
  const PropertyParam param = GetParam();
  const DecayPtr decay = MakeDecay(param.decay);
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(param.backend)
                                   .epsilon(param.epsilon)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject.ok());
  // One burst, then silence: the estimate decays over time. WBMH may tick
  // *up* by at most its (1+eps) bucketing factor when a merge re-anchors a
  // count to a newer slot; everything else must be non-increasing.
  (*subject)->Update(10, 50);
  double prev = (*subject)->Query(10);
  // Repeated query at the same tick is stable.
  EXPECT_DOUBLE_EQ((*subject)->Query(10), prev);
  const double slack = param.backend == Backend::kWbmh
                           ? (1.0 + param.epsilon) * (1.0 + param.epsilon)
                           : 1.0;
  for (Tick t = 20; t <= 2000; t += 10) {
    const double current = (*subject)->Query(t);
    EXPECT_LE(current, prev * slack * (1.0 + 1e-9)) << "t=" << t;
    prev = std::min(prev, current);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonotonicityTest,
    ::testing::Values(
        PropertyParam{Backend::kCeh, DecayKind::kPolyOne, StreamKind::kBernoulli, 0.1, 0, 1},
        PropertyParam{Backend::kCeh, DecayKind::kSliwin, StreamKind::kBernoulli, 0.1, 0, 2},
        PropertyParam{Backend::kCeh, DecayKind::kTable, StreamKind::kBernoulli, 0.1, 0, 3},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyTwo, StreamKind::kBernoulli, 0.3, 0, 4},
        PropertyParam{Backend::kEwma, DecayKind::kExpd, StreamKind::kBernoulli, 0.1, 0, 5},
        PropertyParam{Backend::kRecentItems, DecayKind::kExpd, StreamKind::kBernoulli, 0.1, 0, 6},
        PropertyParam{Backend::kExact, DecayKind::kPolyOne, StreamKind::kBernoulli, 0.1, 0, 7}),
    ParamName);

class StorageSanityTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(StorageSanityTest, StorageStaysPolylogarithmic) {
  const PropertyParam param = GetParam();
  const DecayPtr decay = MakeDecay(param.decay);
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(param.backend)
                                   .epsilon(param.epsilon)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject.ok());
  size_t bits_at_4k = 0;
  for (Tick t = 1; t <= 16384; ++t) {
    (*subject)->Update(t, 1);
    if (t == 4096) bits_at_4k = (*subject)->StorageBits();
  }
  const size_t bits_at_16k = (*subject)->StorageBits();
  // Quadrupling the stream must grow storage by far less than 4x.
  EXPECT_LT(static_cast<double>(bits_at_16k),
            2.0 * static_cast<double>(bits_at_4k) + 256.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StorageSanityTest,
    ::testing::Values(
        PropertyParam{Backend::kCeh, DecayKind::kPolyOne, StreamKind::kConstant, 0.1, 0, 1},
        PropertyParam{Backend::kCeh, DecayKind::kSliwin, StreamKind::kConstant, 0.1, 0, 2},
        PropertyParam{Backend::kWbmh, DecayKind::kPolyTwo, StreamKind::kConstant, 0.5, 0, 3},
        PropertyParam{Backend::kEwma, DecayKind::kExpd, StreamKind::kConstant, 0.1, 0, 4}),
    ParamName);

// Prefetch oracle: the registry's grouped-batch prefetch pipeline issues
// cache hints and nothing else, so a registry with prefetching disabled
// must stay byte-for-byte identical — same EncodeState output, same
// queries, same arena accounting — through grouped batch ingest, including
// across slot-arena growth boundaries (the arena allocates 4096-slot
// chunks, so >8192 distinct keys force two chunk-boundary crossings while
// pending prefetch targets go stale).
TEST(PrefetchOracleTest, PrefetchedIngestIsByteIdenticalAcrossArenaGrowth) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {SlidingWindowDecay::Create(400).value(), Backend::kCeh},
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  constexpr uint64_t kKeySpace = 9000;  // crosses the 4096/8192 boundaries
  for (const Config& config : configs) {
    AggregateRegistry::Options with;
    with.aggregate = AggregateOptions::Builder()
                         .backend(config.backend)
                         .epsilon(0.1)
                         .Build()
                         .value();
    with.prefetch = true;
    AggregateRegistry::Options without = with;
    without.prefetch = false;
    auto pf = AggregateRegistry::Create(config.decay, with);
    auto nopf = AggregateRegistry::Create(config.decay, without);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE(nopf.ok());

    Rng rng(0x9e3779b9);
    Tick t = 1;
    uint64_t next_key = 0;
    for (int round = 0; round < 40; ++round) {
      // Grouped batches: several same-tick segments, each mixing brand-new
      // keys (arena growth) with revisits (prefetch guesses that hit).
      std::vector<KeyedItem> batch;
      const size_t segments = 1 + rng.NextBelow(3);
      for (size_t s = 0; s < segments; ++s) {
        const size_t n = 100 + rng.NextBelow(300);
        for (size_t i = 0; i < n; ++i) {
          const uint64_t key = rng.NextBelow(4) == 0 && next_key > 0
                                   ? rng.NextBelow(next_key)
                                   : next_key++ % kKeySpace;
          batch.push_back(KeyedItem{key, t, 1 + rng.NextBelow(4)});
        }
        t += static_cast<Tick>(rng.NextBelow(3));
      }
      pf->UpdateBatch(batch);
      nopf->UpdateBatch(batch);
      ASSERT_EQ(pf->KeyCount(), nopf->KeyCount()) << "round=" << round;
      ASSERT_EQ(pf->ArenaExtent(), nopf->ArenaExtent()) << "round=" << round;
      ASSERT_EQ(pf->QueryTotal(t), nopf->QueryTotal(t)) << "round=" << round;
      std::string pf_bytes, nopf_bytes;
      ASSERT_TRUE(pf->EncodeState(&pf_bytes).ok());
      ASSERT_TRUE(nopf->EncodeState(&nopf_bytes).ok());
      ASSERT_EQ(pf_bytes, nopf_bytes)
          << config.decay->Name() << " round=" << round;
    }
    // Both registries must have actually grown past two chunk boundaries,
    // or the "across growth" claim in this test's name is vacuous.
    ASSERT_GT(pf->ArenaExtent(), 8192u);
    ASSERT_TRUE(pf->AuditInvariants().ok());
    ASSERT_TRUE(nopf->AuditInvariants().ok());
  }
}

}  // namespace
}  // namespace tds
