// Crash-consistent checkpoint/recovery tests (engine/checkpoint.h):
// checkpoint → restore must be byte-identical, and every torn-write shape
// — truncation, bit flips, a crash between the commit renames — must be
// *detected* and fall back to the last good checkpoint instead of loading
// garbage.
#include "engine/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine_test_util.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

struct EngineCase {
  const char* label;
  Backend backend;
  DecayPtr decay;
};

std::vector<EngineCase> Cases() {
  return {
      {"ceh-sliwin", Backend::kCeh, SlidingWindowDecay::Create(512).value()},
      {"wbmh-poly", Backend::kWbmh, PolynomialDecay::Create(1.0).value()},
  };
}

ShardedAggregateEngine::Options EngineOptions(const EngineCase& ec) {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(ec.backend, 0.15);
  options.shards = 3;
  options.route_slices = 24;
  return options;
}

std::unique_ptr<ShardedAggregateEngine> MakeEngine(const EngineCase& ec) {
  auto engine = ShardedAggregateEngine::Create(ec.decay, EngineOptions(ec));
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

/// Deterministic keyed stream; `phase` offsets the RNG so successive
/// segments differ while staying tick-ordered from `start_tick`.
std::vector<KeyedItem> Stream(uint64_t phase, Tick start_tick, int count,
                              Tick* end_tick) {
  Rng rng(900 + phase);
  std::vector<KeyedItem> items;
  Tick t = start_tick;
  for (int i = 0; i < count; ++i) {
    if (rng.NextBelow(4) == 0) ++t;
    items.push_back(KeyedItem{rng.NextBelow(80), t, 1 + rng.NextBelow(3)});
  }
  *end_tick = t;
  return items;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "tds_ckpt_" + name;
}

void RemoveCheckpointFiles(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".prev", ec);
  std::filesystem::remove(path + ".tmp", ec);
}

/// The engine-wide registry blob — the byte-identity oracle.
std::string MergedBlob(ShardedAggregateEngine& engine) {
  auto merged = engine.Snapshot();
  EXPECT_TRUE(merged.ok());
  std::string blob;
  EXPECT_TRUE(merged->EncodeRegistryState(&blob).ok());
  return blob;
}

TEST(CheckpointTest, RoundTripIsByteIdentical) {
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string path = TempPath(std::string("roundtrip_") + ec.label);
    RemoveCheckpointFiles(path);

    auto source = MakeEngine(ec);
    Tick t = 0;
    ASSERT_TRUE(SessionIngest(*source, Stream(1, 1, 5000, &t)).ok());
    ASSERT_TRUE(WriteCheckpoint(*source, path).ok());
    const std::string source_blob = MergedBlob(*source);

    auto restored = MakeEngine(ec);
    ASSERT_TRUE(RestoreFromCheckpoint(*restored, path).ok());
    EXPECT_EQ(MergedBlob(*restored), source_blob);
    EXPECT_EQ(restored->KeyCount(), source->KeyCount());
    for (uint64_t key = 0; key < 80; ++key) {
      EXPECT_DOUBLE_EQ(restored->QueryKey(key, t), source->QueryKey(key, t))
          << "key=" << key;
    }
    auto merged = restored->Snapshot();
    ASSERT_TRUE(merged.ok());
    const auto source_top = source->Snapshot();
    ASSERT_TRUE(source_top.ok());
    const auto top_restored = merged->TopK(10, t);
    const auto top_source = source_top->TopK(10, t);
    ASSERT_EQ(top_restored.size(), top_source.size());
    for (size_t i = 0; i < top_source.size(); ++i) {
      EXPECT_EQ(top_restored[i].key, top_source[i].key);
      EXPECT_DOUBLE_EQ(top_restored[i].weight, top_source[i].weight);
    }
    RemoveCheckpointFiles(path);
  }
}

TEST(CheckpointTest, IngestAfterRestoreStaysByteIdenticalToUninterrupted) {
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string path = TempPath(std::string("resume_") + ec.label);
    RemoveCheckpointFiles(path);

    // Checkpoint mid-stream, "crash" (destroy the engine), restore, feed
    // the rest: the result must match an engine that never went down.
    auto uninterrupted = MakeEngine(ec);
    Tick t1 = 0;
    const auto first = Stream(2, 1, 4000, &t1);
    Tick t2 = 0;
    const auto second = Stream(3, t1, 4000, &t2);
    ASSERT_TRUE(SessionIngest(*uninterrupted, first).ok());
    ASSERT_TRUE(SessionIngest(*uninterrupted, second).ok());
    ASSERT_TRUE(uninterrupted->Flush().ok());

    {
      auto crashing = MakeEngine(ec);
      ASSERT_TRUE(SessionIngest(*crashing, first).ok());
      ASSERT_TRUE(WriteCheckpoint(*crashing, path).ok());
    }  // destroyed: everything after the checkpoint is lost, as in a crash

    auto restored = MakeEngine(ec);
    ASSERT_TRUE(RestoreFromCheckpoint(*restored, path).ok());
    ASSERT_TRUE(SessionIngest(*restored, second).ok());
    ASSERT_TRUE(restored->Flush().ok());
    EXPECT_EQ(MergedBlob(*restored), MergedBlob(*uninterrupted));
    RemoveCheckpointFiles(path);
  }
}

TEST(CheckpointTest, CorruptionIsDetected) {
  const EngineCase ec = Cases()[0];
  const std::string path = TempPath("corrupt");
  auto source = MakeEngine(ec);
  Tick t = 0;
  ASSERT_TRUE(SessionIngest(*source, Stream(4, 1, 2000, &t)).ok());

  struct Mutilation {
    const char* label;
    void (*apply)(const std::string& path);
  };
  const Mutilation mutilations[] = {
      {"truncate-1", [](const std::string& p) {
         std::filesystem::resize_file(p, std::filesystem::file_size(p) - 1);
       }},
      {"truncate-half", [](const std::string& p) {
         std::filesystem::resize_file(p, std::filesystem::file_size(p) / 2);
       }},
      {"truncate-empty", [](const std::string& p) {
         std::filesystem::resize_file(p, 0);
       }},
      {"bitflip-middle", [](const std::string& p) {
         std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
         const auto size =
             static_cast<std::streamoff>(std::filesystem::file_size(p));
         f.seekg(size / 2);
         char byte = 0;
         f.read(&byte, 1);
         byte = static_cast<char>(byte ^ 0x40);
         f.seekp(size / 2);
         f.write(&byte, 1);
       }},
      {"bitflip-footer", [](const std::string& p) {
         std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
         const auto size =
             static_cast<std::streamoff>(std::filesystem::file_size(p));
         f.seekp(size - 4);
         const char byte = 0x01;
         f.write(&byte, 1);
       }},
  };
  for (const Mutilation& m : mutilations) {
    SCOPED_TRACE(m.label);
    RemoveCheckpointFiles(path);
    ASSERT_TRUE(WriteCheckpoint(*source, path).ok());
    m.apply(path);
    // No intact .prev exists, so the load must fail outright — never
    // return a snapshot decoded from a damaged file.
    auto loaded = LoadCheckpoint(ec.decay, EngineOptions(ec).registry, path);
    EXPECT_FALSE(loaded.ok());
    auto restored = MakeEngine(ec);
    EXPECT_FALSE(RestoreFromCheckpoint(*restored, path).ok());
    // The failed restore left the engine fresh and usable.
    EXPECT_TRUE(SessionIngest(*restored, 1, 1, 1).ok());
    EXPECT_TRUE(restored->Flush().ok());
  }
  RemoveCheckpointFiles(path);
}

TEST(CheckpointTest, CorruptPrimaryFallsBackToPreviousCheckpoint) {
  const EngineCase ec = Cases()[0];
  const std::string path = TempPath("fallback");
  RemoveCheckpointFiles(path);

  auto engine = MakeEngine(ec);
  Tick t1 = 0;
  ASSERT_TRUE(SessionIngest(*engine, Stream(5, 1, 3000, &t1)).ok());
  ASSERT_TRUE(WriteCheckpoint(*engine, path).ok());
  const std::string old_blob = MergedBlob(*engine);

  // Second checkpoint rotates the first to .prev; then the primary is
  // torn. Recovery must land on the *previous* checkpoint, byte-exact.
  Tick t2 = 0;
  ASSERT_TRUE(SessionIngest(*engine, Stream(6, t1, 3000, &t2)).ok());
  ASSERT_TRUE(WriteCheckpoint(*engine, path).ok());
  ASSERT_TRUE(std::filesystem::exists(path + ".prev"));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 3);

  auto restored = MakeEngine(ec);
  ASSERT_TRUE(RestoreFromCheckpoint(*restored, path).ok());
  EXPECT_EQ(MergedBlob(*restored), old_blob);
  RemoveCheckpointFiles(path);
}

TEST(CheckpointTest, BothGenerationsFailingReportsBothErrors) {
  // Regression: with the primary *and* .prev both damaged, the error used
  // to surface only the primary's failure — hiding that the fallback was
  // also tried (and why it failed). Both must be named.
  const EngineCase ec = Cases()[0];
  const std::string path = TempPath("both_bad");
  RemoveCheckpointFiles(path);
  auto engine = MakeEngine(ec);
  Tick t1 = 0;
  ASSERT_TRUE(SessionIngest(*engine, Stream(11, 1, 1000, &t1)).ok());
  ASSERT_TRUE(WriteCheckpoint(*engine, path).ok());
  Tick t2 = 0;
  ASSERT_TRUE(SessionIngest(*engine, Stream(12, t1, 1000, &t2)).ok());
  ASSERT_TRUE(WriteCheckpoint(*engine, path).ok());
  ASSERT_TRUE(std::filesystem::exists(path + ".prev"));

  // Different failure shapes: truncate the primary below the footer,
  // corrupt a payload byte in the fallback.
  std::filesystem::resize_file(path, 5);
  {
    std::fstream f(path + ".prev",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    const char byte = 0x3c;
    f.write(&byte, 1);
  }
  auto loaded = LoadCheckpoint(ec.decay, EngineOptions(ec).registry, path);
  ASSERT_FALSE(loaded.ok());
  const std::string& msg = loaded.status().message();
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fallback"), std::string::npos) << msg;
  EXPECT_NE(msg.find(".prev"), std::string::npos) << msg;
  EXPECT_NE(msg.find("mismatch"), std::string::npos) << msg;
  RemoveCheckpointFiles(path);
}

TEST(CheckpointTest, RestoreRequiresFreshEngine) {
  const EngineCase ec = Cases()[0];
  const std::string path = TempPath("fresh");
  RemoveCheckpointFiles(path);
  auto source = MakeEngine(ec);
  Tick t = 0;
  ASSERT_TRUE(SessionIngest(*source, Stream(7, 1, 500, &t)).ok());
  ASSERT_TRUE(WriteCheckpoint(*source, path).ok());

  auto dirty = MakeEngine(ec);
  ASSERT_TRUE(SessionIngest(*dirty, 1, 1, 1).ok());
  ASSERT_TRUE(dirty->Flush().ok());
  EXPECT_EQ(RestoreFromCheckpoint(*dirty, path).code(),
            StatusCode::kFailedPrecondition);
  RemoveCheckpointFiles(path);
}

TEST(CheckpointTest, OptionsMismatchIsRejected) {
  const std::string path = TempPath("mismatch");
  RemoveCheckpointFiles(path);
  const EngineCase ec = Cases()[0];
  auto source = MakeEngine(ec);
  Tick t = 0;
  ASSERT_TRUE(SessionIngest(*source, Stream(8, 1, 500, &t)).ok());
  ASSERT_TRUE(WriteCheckpoint(*source, path).ok());

  // Same decay, different epsilon: the snapshot header check must refuse.
  ShardedAggregateEngine::Options other = EngineOptions(ec);
  other.registry = RegistryOptions(ec.backend, 0.3);
  auto mismatched = ShardedAggregateEngine::Create(ec.decay, other);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(RestoreFromCheckpoint(**mismatched, path).ok());
  RemoveCheckpointFiles(path);
}

TEST(CheckpointTest, MissingFileFailsCleanly) {
  const EngineCase ec = Cases()[0];
  auto engine = MakeEngine(ec);
  EXPECT_FALSE(
      RestoreFromCheckpoint(*engine, TempPath("does_not_exist")).ok());
}

TEST(CheckpointTest, InjectedCommitCrashKeepsPreviousCheckpoint) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  const EngineCase ec = Cases()[0];
  const std::string path = TempPath("commit_crash");
  RemoveCheckpointFiles(path);

  auto engine = MakeEngine(ec);
  Tick t1 = 0;
  ASSERT_TRUE(SessionIngest(*engine, Stream(9, 1, 2000, &t1)).ok());
  ASSERT_TRUE(WriteCheckpoint(*engine, path).ok());
  const std::string old_blob = MergedBlob(*engine);

  // "checkpoint.write" refuses before any IO; "checkpoint.commit" dies
  // after the temp file but before the renames. Either way the previous
  // checkpoint must remain the loadable state.
  Tick t2 = 0;
  ASSERT_TRUE(SessionIngest(*engine, Stream(10, t1, 2000, &t2)).ok());
  failpoint::ArmNthHit("checkpoint.write", 1);
  EXPECT_EQ(WriteCheckpoint(*engine, path).code(), StatusCode::kUnavailable);
  failpoint::ArmNthHit("checkpoint.commit", 1);
  EXPECT_EQ(WriteCheckpoint(*engine, path).code(), StatusCode::kUnavailable);
  failpoint::DisarmAll();

  auto restored = MakeEngine(ec);
  ASSERT_TRUE(RestoreFromCheckpoint(*restored, path).ok());
  EXPECT_EQ(MergedBlob(*restored), old_blob);

  // With the faults cleared the interrupted checkpoint completes, and the
  // crash-era checkpoint is what rotates to .prev.
  ASSERT_TRUE(WriteCheckpoint(*engine, path).ok());
  auto newest = MakeEngine(ec);
  ASSERT_TRUE(RestoreFromCheckpoint(*newest, path).ok());
  EXPECT_EQ(MergedBlob(*newest), MergedBlob(*engine));
  RemoveCheckpointFiles(path);
}

}  // namespace
}  // namespace tds
