// Warm-standby follower tests (engine/standby.h): the follower tails the
// checkpoint log's manifest, catches up in time proportional to what was
// committed since its last apply, survives compactions rewriting history
// underneath it, serves its last consistent view across injected apply
// faults, and promotes to an engine byte-identical to the primary's last
// committed checkpoint — including after crashes at every failpoint.
#include "engine/standby.h"

#include <chrono>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/checkpoint_log.h"
#include "engine/engine.h"
#include "engine_test_util.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

struct EngineCase {
  const char* label;
  Backend backend;
  DecayPtr decay;
};

std::vector<EngineCase> Cases() {
  return {
      {"ceh-sliwin", Backend::kCeh, SlidingWindowDecay::Create(512).value()},
      {"wbmh-poly", Backend::kWbmh, PolynomialDecay::Create(1.0).value()},
  };
}

ShardedAggregateEngine::Options EngineOptions(const EngineCase& ec) {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(ec.backend, 0.15);
  options.shards = 3;
  options.route_slices = 24;
  return options;
}

std::unique_ptr<ShardedAggregateEngine> MakeTrackedEngine(
    const EngineCase& ec) {
  auto engine = ShardedAggregateEngine::Create(ec.decay, EngineOptions(ec));
  EXPECT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->EnableCheckpointTracking().ok());
  return std::move(engine).value();
}

std::vector<KeyedItem> Stream(uint64_t phase, Tick start_tick, int count,
                              Tick* end_tick) {
  Rng rng(8200 + phase);
  std::vector<KeyedItem> items;
  Tick t = start_tick;
  for (int i = 0; i < count; ++i) {
    if (rng.NextBelow(4) == 0) ++t;
    items.push_back(KeyedItem{rng.NextBelow(80), t, 1 + rng.NextBelow(3)});
  }
  *end_tick = t;
  return items;
}

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tds_standby_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string MergedBlob(ShardedAggregateEngine& engine) {
  auto merged = engine.Snapshot();
  EXPECT_TRUE(merged.ok());
  std::string blob;
  EXPECT_TRUE(merged->EncodeRegistryState(&blob).ok());
  return blob;
}

CheckpointLog MakeLog(ShardedAggregateEngine& engine, const std::string& dir,
                      const CheckpointLog::Options& options = {}) {
  auto log = CheckpointLog::Create(engine, dir, options);
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  return std::move(log).value();
}

StandbyFollower MakeFollower(const EngineCase& ec, const std::string& dir) {
  auto follower =
      StandbyFollower::Create(ec.decay, EngineOptions(ec).registry, dir);
  EXPECT_TRUE(follower.ok()) << follower.status().ToString();
  return std::move(follower).value();
}

TEST(StandbyTest, EmptyDirectoryIsNotAnError) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("empty");
  std::filesystem::create_directories(dir);
  auto follower = MakeFollower(ec, dir);
  EXPECT_TRUE(follower.ApplyNew().ok());
  EXPECT_EQ(follower.applied_generation(), 0u);
  EXPECT_EQ(follower.KeyCount(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(StandbyTest, FollowerTracksPrimaryThroughIncrementalApplies) {
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string dir = TempDir(std::string("tail_") + ec.label);
    auto primary = MakeTrackedEngine(ec);
    auto log = MakeLog(*primary, dir);
    auto follower = MakeFollower(ec, dir);

    Tick t = 1;
    for (uint64_t round = 0; round < 4; ++round) {
      ASSERT_TRUE(SessionIngest(*primary, Stream(round, t, 1500, &t)).ok());
      ASSERT_TRUE(log.WriteIncremental().ok());
      ASSERT_TRUE(follower.ApplyNew().ok());
      EXPECT_EQ(follower.applied_generation(), log.manifest().generation);
      EXPECT_EQ(follower.KeyCount(), primary->KeyCount());
      // The follower serves const reads (no representation advance), so
      // WBMH answers may differ from the primary's advancing query path
      // within the accuracy bound; byte-identity is checked at promotion.
      const double total = primary->QueryTotal(t);
      EXPECT_NEAR(follower.QueryTotal(t), total, 0.2 * total + 1e-9);
      for (uint64_t key = 0; key < 80; key += 9) {
        const double expected = primary->QueryKey(key, t);
        EXPECT_NEAR(follower.Query(key, t), expected, 0.2 * expected + 1e-9)
            << "key=" << key;
      }
    }
    // Promotion: the follower's state becomes a live engine byte-identical
    // to the primary's last committed checkpoint.
    const std::string committed = MergedBlob(*primary);
    auto promoted = follower.Promote(EngineOptions(ec));
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    EXPECT_EQ(MergedBlob(**promoted), committed);
    std::filesystem::remove_all(dir);
  }
}

TEST(StandbyTest, ApplyIsIdempotentWhenNothingNewCommitted) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("idempotent");
  auto primary = MakeTrackedEngine(ec);
  auto log = MakeLog(*primary, dir);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*primary, Stream(10, t, 1000, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());

  auto follower = MakeFollower(ec, dir);
  ASSERT_TRUE(follower.ApplyNew().ok());
  const double total = follower.QueryTotal(t);
  ASSERT_TRUE(follower.ApplyNew().ok());
  ASSERT_TRUE(follower.ApplyNew().ok());
  EXPECT_EQ(follower.applied_generation(), 1u);
  EXPECT_DOUBLE_EQ(follower.QueryTotal(t), total);
  std::filesystem::remove_all(dir);
}

TEST(StandbyTest, FollowerSurvivesCompactionRewritingHistory) {
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string dir = TempDir(std::string("compaction_") + ec.label);
    auto primary = MakeTrackedEngine(ec);
    CheckpointLog::Options options;
    options.compact_min_segments = 0;
    auto log = MakeLog(*primary, dir, options);
    auto follower = MakeFollower(ec, dir);

    Tick t = 1;
    ASSERT_TRUE(SessionIngest(*primary, Stream(20, t, 1000, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    ASSERT_TRUE(follower.ApplyNew().ok());

    // The primary writes more, then compacts: the base now covers the
    // generations the follower already applied, forcing the rebuild path.
    ASSERT_TRUE(SessionIngest(*primary, Stream(21, t, 1000, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    ASSERT_TRUE(log.Compact().ok());
    ASSERT_TRUE(follower.ApplyNew().ok());
    EXPECT_EQ(follower.applied_generation(), log.manifest().generation);

    // Then an ordinary incremental lands on top of the rebuilt view.
    ASSERT_TRUE(SessionIngest(*primary, Stream(22, t, 1000, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    ASSERT_TRUE(follower.ApplyNew().ok());

    const std::string committed = MergedBlob(*primary);
    auto promoted = follower.Promote(EngineOptions(ec));
    ASSERT_TRUE(promoted.ok());
    EXPECT_EQ(MergedBlob(**promoted), committed);
    std::filesystem::remove_all(dir);
  }
}

TEST(StandbyTest, FailedApplyLeavesLastConsistentView) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("apply_fault");
  auto primary = MakeTrackedEngine(ec);
  auto log = MakeLog(*primary, dir);
  auto follower = MakeFollower(ec, dir);

  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*primary, Stream(30, t, 1000, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  ASSERT_TRUE(follower.ApplyNew().ok());
  const Tick t_view = t;
  const double view_total = follower.QueryTotal(t_view);
  const size_t view_keys = follower.KeyCount();

  ASSERT_TRUE(SessionIngest(*primary, Stream(31, t, 1000, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());

  // The injected fault fails the apply; the follower keeps serving its
  // generation-1 view as if the new manifest had never been seen.
  failpoint::ArmNthHit("standby.apply", 1);
  EXPECT_EQ(follower.ApplyNew().code(), StatusCode::kUnavailable);
  EXPECT_EQ(follower.applied_generation(), 1u);
  EXPECT_EQ(follower.KeyCount(), view_keys);
  EXPECT_DOUBLE_EQ(follower.QueryTotal(t_view), view_total);
  failpoint::DisarmAll();

  // Cleared, the follower catches up and promotion matches the primary.
  ASSERT_TRUE(follower.ApplyNew().ok());
  EXPECT_EQ(follower.applied_generation(), 2u);
  const std::string committed = MergedBlob(*primary);
  auto promoted = follower.Promote(EngineOptions(ec));
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(MergedBlob(**promoted), committed);
  std::filesystem::remove_all(dir);
}

TEST(StandbyTest, PromotedEngineResumesIngestByteIdentical) {
  // The acceptance scenario: checkpoint → crash → Promote() → feed the
  // tail — the promoted engine must end byte-identical to one restored
  // from the same checkpoint that never failed over.
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string dir = TempDir(std::string("resume_") + ec.label);
    Tick t1 = 0;
    Tick scratch = 0;
    const auto first = Stream(40, 1, 3000, &t1);
    const auto second = Stream(41, t1, 3000, &scratch);

    {
      auto primary = MakeTrackedEngine(ec);
      auto log = MakeLog(*primary, dir);
      ASSERT_TRUE(SessionIngest(*primary, first).ok());
      ASSERT_TRUE(log.WriteIncremental().ok());
    }  // primary crashes; everything after the checkpoint is lost

    auto reference = ShardedAggregateEngine::Create(ec.decay,
                                                    EngineOptions(ec));
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(RestoreFromCheckpointLog(**reference, dir).ok());
    ASSERT_TRUE(SessionIngest(**reference, second).ok());
    ASSERT_TRUE((*reference)->Flush().ok());

    auto follower = MakeFollower(ec, dir);
    auto promoted = follower.Promote(EngineOptions(ec));
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    ASSERT_TRUE(SessionIngest(**promoted, second).ok());
    ASSERT_TRUE((*promoted)->Flush().ok());
    EXPECT_EQ(MergedBlob(**promoted), MergedBlob(**reference));
    std::filesystem::remove_all(dir);
  }
}

TEST(StandbyTest, FailoverAfterCrashAtEveryFailpoint) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  const EngineCase ec = Cases()[0];
  failpoint::Scenario sticky;
  sticky.fire_on_hit = 1;
  sticky.sticky = true;

  // For each failpoint: the primary commits once, a fault kills its next
  // operation, and failover must promote exactly the committed state.
  const char* kFaults[] = {"ckptlog.segment.write", "ckptlog.manifest.commit",
                           "ckptlog.compact"};
  for (const char* fp : kFaults) {
    SCOPED_TRACE(fp);
    const std::string dir = TempDir(std::string("failover_") +
                                    (fp + sizeof("ckptlog.") - 1));
    auto primary = MakeTrackedEngine(ec);
    CheckpointLog::Options options;
    options.io_retries = 1;
    options.backoff.sleeper = [](std::chrono::nanoseconds) {};
    options.compact_min_segments = 0;
    auto log = MakeLog(*primary, dir, options);

    Tick t = 1;
    ASSERT_TRUE(SessionIngest(*primary, Stream(50, t, 1200, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    const std::string committed = MergedBlob(*primary);

    ASSERT_TRUE(SessionIngest(*primary, Stream(51, t, 600, &t)).ok());
    failpoint::Arm(fp, sticky);
    if (std::string(fp) == "ckptlog.compact") {
      EXPECT_EQ(log.Compact().code(), StatusCode::kUnavailable);
    } else {
      EXPECT_EQ(log.WriteIncremental().code(), StatusCode::kUnavailable);
    }
    failpoint::DisarmAll();

    auto follower = MakeFollower(ec, dir);
    ASSERT_TRUE(follower.ApplyNew().ok());
    auto promoted = follower.Promote(EngineOptions(ec));
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    EXPECT_EQ(MergedBlob(**promoted), committed);
    std::filesystem::remove_all(dir);
  }
}

TEST(StandbyTest, PromoteConsumesTheFollower) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("consumed");
  auto primary = MakeTrackedEngine(ec);
  auto log = MakeLog(*primary, dir);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*primary, Stream(60, t, 500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());

  auto follower = MakeFollower(ec, dir);
  auto promoted = follower.Promote(EngineOptions(ec));
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(follower.ApplyNew().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(follower.Promote(EngineOptions(ec)).status().code(),
            StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tds
