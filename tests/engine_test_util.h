#ifndef TDS_TESTS_ENGINE_TEST_UTIL_H_
#define TDS_TESTS_ENGINE_TEST_UTIL_H_

#include <span>

#include "engine/engine.h"
#include "engine/producer_session.h"
#include "engine/registry.h"
#include "util/status.h"

namespace tds {

/// Stages `items` on a one-shot ProducerSession and flushes them — the
/// canonical way for a test to feed an engine a whole batch since the
/// producer-session redesign (the deprecated engine-global shims are only
/// called by the tests that pin their contracts).
inline Status SessionIngest(ShardedAggregateEngine& engine,
                            std::span<const KeyedItem> items) {
  ProducerSessionOptions options;
  options.staging_capacity = items.size() + 1;  // one flush, whole batch
  auto session = engine.NewProducer(options);
  if (!session.ok()) return session.status();
  const Status staged = (*session)->AddBatch(items);
  if (!staged.ok()) return staged;
  return (*session)->Flush();
}

inline Status SessionIngest(ShardedAggregateEngine& engine, uint64_t key,
                            Tick t, uint64_t value) {
  const KeyedItem item{key, t, value};
  return SessionIngest(engine, {&item, 1});
}

}  // namespace tds

#endif  // TDS_TESTS_ENGINE_TEST_UTIL_H_
