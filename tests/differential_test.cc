// Randomized differential testing: drive every backend with randomized
// op sequences (bursty updates, idle gaps, interleaved queries, value
// spikes, snapshot round-trips at random points) against the exact
// reference, under generous per-backend error envelopes. Any crash, CHECK
// failure, negative estimate, or envelope violation is a bug.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/factory.h"
#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "util/random.h"

namespace tds {
namespace {

struct FuzzParam {
  Backend backend;
  int decay_kind;  // 0 = POLYD(1), 1 = POLYD(2.5), 2 = SLIWIN, 3 = EXPD
  double envelope;
  uint64_t seed;
};

DecayPtr MakeDecay(int kind) {
  switch (kind) {
    case 0: return PolynomialDecay::Create(1.0).value();
    case 1: return PolynomialDecay::Create(2.5).value();
    case 2: return SlidingWindowDecay::Create(700).value();
    default: return ExponentialDecay::Create(0.01).value();
  }
}

std::string FuzzName(const ::testing::TestParamInfo<FuzzParam>& info) {
  const auto& p = info.param;
  std::string name;
  switch (p.backend) {
    case Backend::kCeh: name = "Ceh"; break;
    case Backend::kWbmh: name = "Wbmh"; break;
    case Backend::kCoarseCeh: name = "Coarse"; break;
    case Backend::kEwma: name = "Ewma"; break;
    case Backend::kRecentItems: name = "Recent"; break;
    default: name = "Other"; break;
  }
  name += "Decay" + std::to_string(p.decay_kind);
  name += "Seed" + std::to_string(p.seed);
  return name;
}

class DifferentialFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(DifferentialFuzzTest, RandomOpSequenceStaysInEnvelope) {
  const FuzzParam param = GetParam();
  const DecayPtr decay = MakeDecay(param.decay_kind);
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(param.backend)
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  auto subject_or = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject_or.ok());
  std::unique_ptr<DecayedAggregate> subject = std::move(subject_or).value();
  auto exact = ExactDecayedSum::Create(decay);
  ASSERT_TRUE(exact.ok());

  Rng rng(param.seed);
  Tick t = 1;
  int violations = 0;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 60) {
      // Common case: small advance + small update.
      t += rng.NextBelow(3);
      const uint64_t value = rng.NextBelow(4);
      subject->Update(t, value);
      (*exact)->Update(t, value);
    } else if (dice < 70) {
      // Idle gap.
      t += 1 + rng.NextBelow(500);
      subject->Update(t, 0);
      (*exact)->Update(t, 0);
    } else if (dice < 75) {
      // Value spike.
      t += 1;
      const uint64_t value = 1 + rng.NextBelow(5000);
      subject->Update(t, value);
      (*exact)->Update(t, value);
    } else if (dice < 95) {
      // Query and compare.
      const double estimate = subject->Query(t);
      const double truth = (*exact)->Query(t);
      ASSERT_GE(estimate, 0.0) << "step " << step;
      if (truth > 1.0) {  // skip near-zero denominators
        const double rel = std::fabs(estimate - truth) / truth;
        if (rel > param.envelope) {
          ++violations;
          ASSERT_LE(violations, 0)
              << "step " << step << " t=" << t << " est=" << estimate
              << " truth=" << truth << " rel=" << rel;
        }
      }
    } else {
      // Snapshot round-trip at a random point.
      std::string bytes;
      const Status encoded = EncodeDecayedSum(*subject, &bytes);
      ASSERT_TRUE(encoded.ok()) << encoded.ToString();
      auto restored = DecodeDecayedSum(decay, bytes);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      subject = std::move(restored).value();
    }
  }
  // Final consistency probe.
  const double estimate = subject->Query(t + 100);
  const double truth = (*exact)->Query(t + 100);
  if (truth > 1.0) {
    EXPECT_LE(std::fabs(estimate - truth) / truth, param.envelope);
  }
}

std::vector<FuzzParam> MakeGrid() {
  std::vector<FuzzParam> grid;
  uint64_t seed = 1;
  for (int decay_kind : {0, 1, 2, 3}) {
    for (uint64_t s = 0; s < 3; ++s) {
      // CEH handles every decay; envelope 3*eps for bucket-granularity.
      grid.push_back(FuzzParam{Backend::kCeh, decay_kind, 0.35, seed++});
    }
  }
  for (int decay_kind : {0, 1}) {  // WBMH: admissible decays
    for (uint64_t s = 0; s < 3; ++s) {
      grid.push_back(FuzzParam{Backend::kWbmh, decay_kind, 0.35, seed++});
    }
  }
  for (uint64_t s = 0; s < 3; ++s) {
    // Coarse CEH: constant-factor contract.
    grid.push_back(FuzzParam{Backend::kCoarseCeh, 0, 1.6, seed++});
    grid.push_back(FuzzParam{Backend::kEwma, 3, 0.001, seed++});
    grid.push_back(FuzzParam{Backend::kRecentItems, 3, 0.12, seed++});
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialFuzzTest,
                         ::testing::ValuesIn(MakeGrid()), FuzzName);

}  // namespace
}  // namespace tds
