#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/wbmh.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "histogram/wbmh_counter.h"
#include "histogram/wbmh_layout.h"
#include "stream/generators.h"
#include "util/random.h"

namespace tds {
namespace {

std::shared_ptr<WbmhLayout> MakeLayout(DecayPtr decay, double epsilon,
                                       Tick start = 1) {
  WbmhLayout::Options options;
  options.decay = std::move(decay);
  options.epsilon = epsilon;
  options.start = start;
  auto layout = WbmhLayout::Create(options);
  EXPECT_TRUE(layout.ok()) << layout.status().ToString();
  return std::make_shared<WbmhLayout>(std::move(layout).value());
}

DecayPtr InverseSquare() {
  auto decay = PolynomialDecay::Create(2.0);
  EXPECT_TRUE(decay.ok());
  return decay.value();
}

// Paper Section 5 worked example: g(x) = 1/x^2, (1 + eps) = 5 gives region
// boundaries b_1 = 3, b_2 = 7, b_3 = 16.
TEST(WbmhLayoutTest, PaperExampleRegionBoundaries) {
  auto layout = MakeLayout(InverseSquare(), 4.0);
  EXPECT_EQ(layout->SealPeriod(), 2);
  ASSERT_GE(layout->RegionStarts().size(), 2u);
  EXPECT_EQ(layout->RegionStarts()[0], 1);
  EXPECT_EQ(layout->RegionStarts()[1], 3);
  // Force extension.
  EXPECT_EQ(layout->RegionIndex(3), 1);
  EXPECT_EQ(layout->RegionIndex(6), 1);
  EXPECT_EQ(layout->RegionIndex(7), 2);
  EXPECT_EQ(layout->RegionIndex(15), 2);
  EXPECT_EQ(layout->RegionIndex(16), 3);
  ASSERT_GE(layout->RegionStarts().size(), 4u);
  EXPECT_EQ(layout->RegionStarts()[2], 7);
  EXPECT_EQ(layout->RegionStarts()[3], 16);
}

std::vector<std::pair<Tick, Tick>> SettledSpans(WbmhLayout& layout, Tick t) {
  layout.AdvanceTo(t);
  layout.Settle();
  std::vector<std::pair<Tick, Tick>> spans;
  for (const auto& span : layout.Spans()) {
    // Skip a not-yet-started open bucket (created by a seal at t).
    if (span.start > t) continue;
    spans.emplace_back(span.start, std::min(span.end, t));
  }
  return spans;
}

// Paper Section 5 worked example: the exact bucket configurations printed
// for T = 1..10 (weights translate to covered arrival-tick spans).
TEST(WbmhLayoutTest, PaperExampleBucketEvolution) {
  auto layout = MakeLayout(InverseSquare(), 4.0);
  using Spans = std::vector<std::pair<Tick, Tick>>;
  EXPECT_EQ(SettledSpans(*layout, 1), (Spans{{1, 1}}));
  EXPECT_EQ(SettledSpans(*layout, 2), (Spans{{1, 2}}));
  EXPECT_EQ(SettledSpans(*layout, 3), (Spans{{1, 2}, {3, 3}}));
  EXPECT_EQ(SettledSpans(*layout, 4), (Spans{{1, 2}, {3, 4}}));
  EXPECT_EQ(SettledSpans(*layout, 6), (Spans{{1, 4}, {5, 6}}));
  EXPECT_EQ(SettledSpans(*layout, 8), (Spans{{1, 4}, {5, 6}, {7, 8}}));
  EXPECT_EQ(SettledSpans(*layout, 9),
            (Spans{{1, 4}, {5, 6}, {7, 8}, {9, 9}}));
  EXPECT_EQ(SettledSpans(*layout, 10), (Spans{{1, 4}, {5, 8}, {9, 10}}));
}

// The newest sealed bucket alternates between time-width 1 and 2 (paper).
TEST(WbmhLayoutTest, OpenBucketAlternatesWidthOneAndTwo) {
  auto layout = MakeLayout(InverseSquare(), 4.0);
  for (Tick t = 1; t <= 50; ++t) {
    layout->AdvanceTo(t);
    layout->Settle();
    const auto spans = layout->Spans();
    ASSERT_FALSE(spans.empty());
    const auto& newest = spans.back();
    const Tick width = std::min(newest.end, t) - newest.start + 1;
    if (newest.start > t) continue;  // future open bucket right after seal
    EXPECT_LE(width, 2);
    EXPECT_GE(width, 1);
  }
}

// Every sealed bucket's age span must fit within weights differing by at
// most the (1+eps) factor whenever the merge rule allowed it to form.
TEST(WbmhLayoutTest, MergedBucketsRespectRegionContainment) {
  auto decay = InverseSquare();
  auto layout = MakeLayout(decay, 1.0);
  layout->AdvanceTo(3000);
  layout->Settle();
  const Tick now = layout->now();
  const auto spans = layout->Spans();
  for (size_t i = 0; i + 1 < spans.size(); ++i) {  // sealed buckets
    const auto& span = spans[i];
    if (span.end - span.start + 1 <= layout->SealPeriod()) continue;
    // Merged bucket: at the time it merged its span fitted one region, so
    // the weight ratio across it stays within (1+eps) forever after
    // (the monotone-ratio property).
    const double newest_weight = decay->Weight(AgeAt(span.end, now));
    const double oldest_weight = decay->Weight(AgeAt(span.start, now));
    EXPECT_LE(newest_weight, (1.0 + 1.0) * oldest_weight * (1 + 1e-9))
        << "span [" << span.start << "," << span.end << "]";
  }
}

TEST(WbmhLayoutTest, BucketCountStaysLogarithmic) {
  auto layout = MakeLayout(InverseSquare(), 0.5);
  std::vector<size_t> counts;
  for (Tick t : {Tick{1} << 8, Tick{1} << 10, Tick{1} << 12, Tick{1} << 14}) {
    layout->AdvanceTo(t);
    layout->Settle();
    counts.push_back(layout->BucketCount());
  }
  // log D(g) growth: bucket count should grow by O(1) per doubling (here,
  // 4x time per step), not multiplicatively.
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], counts[i - 1] + 40);
  }
  // Paper bound: O(eps^{-1} log D(g)) with D = N^2.
  const double regions = layout->RegionCountUpTo(Tick{1} << 14);
  EXPECT_LE(static_cast<double>(counts.back()), 2.5 * regions + 4);
}

TEST(WbmhLayoutTest, SpansPartitionTimeline) {
  auto layout = MakeLayout(InverseSquare(), 2.0);
  layout->AdvanceTo(1234);
  layout->Settle();
  const auto spans = layout->Spans();
  Tick expected_start = 1;
  for (const auto& span : spans) {
    EXPECT_EQ(span.start, expected_start);
    expected_start = span.end + 1;
  }
  EXPECT_GE(spans.back().end, 1234 - layout->SealPeriod());
}

TEST(WbmhLayoutTest, FiniteHorizonDropsBuckets) {
  // A table decay with horizon 64 (monotone ratio fails, but the layout
  // machinery itself must still expire buckets past the horizon).
  auto decay = PolynomialDecay::Create(1.0).value();
  // POLYD has infinite horizon; emulate finite horizon via custom table.
  auto layout = MakeLayout(decay, 1.0);
  layout->AdvanceTo(5000);
  layout->Settle();
  // Infinite horizon: the oldest bucket still starts at 1.
  EXPECT_EQ(layout->Spans().front().start, 1);
}

TEST(WbmhCounterTest, CountsAreConservedAcrossMerges) {
  auto layout = MakeLayout(InverseSquare(), 4.0);
  WbmhCounter counter(layout, WbmhCounter::Options{0.0});  // exact counts
  uint64_t total = 0;
  for (Tick t = 1; t <= 500; ++t) {
    const uint64_t value = 1 + (t % 3);
    counter.Add(t, value);
    total += value;
  }
  counter.Sync();
  EXPECT_DOUBLE_EQ(counter.RawTotal(), static_cast<double>(total));
}

TEST(WbmhCounterTest, RoundedCountsStayWithinEpsilon) {
  auto layout = MakeLayout(InverseSquare(), 4.0);
  const double count_epsilon = 0.1;
  WbmhCounter rounded(layout, WbmhCounter::Options{count_epsilon});
  WbmhCounter exact(layout, WbmhCounter::Options{0.0});
  uint64_t total = 0;
  for (Tick t = 1; t <= 4000; ++t) {
    rounded.Add(t, 1);
    exact.Add(t, 1);
    ++total;
  }
  // Rounding drift is one-sided (up) and bounded by (1 + eps).
  EXPECT_GE(rounded.RawTotal(), static_cast<double>(total));
  EXPECT_LE(rounded.RawTotal(),
            (1.0 + count_epsilon) * static_cast<double>(total));
}

TEST(WbmhCounterTest, SharedLayoutCountersAgree) {
  // Two counters over one shared layout, fed different streams, must each
  // behave exactly as a privately-owned structure would.
  auto decay = InverseSquare();
  auto shared = MakeLayout(decay, 1.0);
  WbmhDecayedSum::Options options;
  options.epsilon = 1.0;
  options.count_epsilon = 0.0;
  auto a = WbmhDecayedSum::CreateShared(shared, options);
  auto b = WbmhDecayedSum::CreateShared(shared, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto solo = WbmhDecayedSum::Create(decay, options);
  ASSERT_TRUE(solo.ok());

  const Stream stream_a = BernoulliStream(2000, 0.5, 11);
  const Stream stream_b = BernoulliStream(2000, 0.2, 22);
  size_t ia = 0, ib = 0;
  for (Tick t = 1; t <= 2000; ++t) {
    if (ia < stream_a.size() && stream_a[ia].t == t) {
      (*a)->Update(t, stream_a[ia].value);
      (*solo)->Update(t, stream_a[ia].value);
      ++ia;
    }
    if (ib < stream_b.size() && stream_b[ib].t == t) {
      (*b)->Update(t, stream_b[ib].value);
      ++ib;
    }
  }
  EXPECT_DOUBLE_EQ((*a)->Query(2000), (*solo)->Query(2000));
  EXPECT_GT((*b)->Query(2000), 0.0);
}

struct WbmhAccuracyParam {
  double alpha;
  double epsilon;
  double density;
  uint64_t seed;
};

class WbmhAccuracyTest : public ::testing::TestWithParam<WbmhAccuracyParam> {};

TEST_P(WbmhAccuracyTest, TracksPolynomialDecayWithinEpsilon) {
  const auto param = GetParam();
  auto decay = PolynomialDecay::Create(param.alpha).value();
  WbmhDecayedSum::Options options;
  options.epsilon = param.epsilon;
  auto subject = WbmhDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok());
  auto exact = ExactDecayedSum::Create(decay);
  ASSERT_TRUE(exact.ok());

  const Stream stream = BernoulliStream(3000, param.density, param.seed);
  for (const StreamItem& item : stream) {
    (*subject)->Update(item.t, item.value);
    (*exact)->Update(item.t, item.value);
  }
  for (Tick probe : {100, 500, 1500, 3000, 5000}) {
    if (probe < StreamEnd(stream)) continue;
    const double estimate = (*subject)->Query(probe);
    const double truth = (*exact)->Query(probe);
    if (truth <= 0.0) continue;
    // Bucketing error (1+eps) one-sided high, count rounding (1+eps) high;
    // weighting by the newest slot also over-weights: the estimate must be
    // an overestimate within (1+eps)^2-ish.
    EXPECT_GE(estimate, truth * (1.0 - 1e-9)) << "probe=" << probe;
    EXPECT_LE(estimate, truth * (1.0 + param.epsilon) * (1.0 + param.epsilon) *
                            (1.0 + 1e-9))
        << "probe=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WbmhAccuracyTest,
    ::testing::Values(WbmhAccuracyParam{0.5, 0.5, 0.5, 1},
                      WbmhAccuracyParam{1.0, 0.5, 0.5, 2},
                      WbmhAccuracyParam{2.0, 0.5, 0.5, 3},
                      WbmhAccuracyParam{2.0, 0.2, 0.5, 4},
                      WbmhAccuracyParam{1.0, 0.1, 0.8, 5},
                      WbmhAccuracyParam{3.0, 0.3, 0.3, 6},
                      WbmhAccuracyParam{1.5, 0.05, 1.0, 7}));

TEST(WbmhDecayedSumTest, TracksShiftedPolynomialDecay) {
  auto decay = ShiftedPolynomialDecay::Create(2.0, 50.0).value();
  WbmhDecayedSum::Options options;
  options.epsilon = 0.2;
  auto subject = WbmhDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  auto exact = ExactDecayedSum::Create(decay);
  const Stream stream = BernoulliStream(4000, 0.5, 41);
  for (const StreamItem& item : stream) {
    (*subject)->Update(item.t, item.value);
    (*exact)->Update(item.t, item.value);
  }
  const double truth = (*exact)->Query(4000);
  const double estimate = (*subject)->Query(4000);
  EXPECT_GE(estimate, truth * (1 - 1e-9));
  EXPECT_LE(estimate, truth * 1.45);  // (1+eps)^2
}

TEST(WbmhDecayedSumTest, RejectsNonAdmissibleDecay) {
  auto sliwin = SlidingWindowDecay::Create(100);
  ASSERT_TRUE(sliwin.ok());
  WbmhDecayedSum::Options options;
  auto result = WbmhDecayedSum::Create(sliwin.value(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WbmhDecayedSumTest, ExponentialDecayIsAdmissibleButBucketHeavy) {
  // EXPD is admissible (constant ratio) but WBMH needs Theta(N) buckets for
  // it (paper Section 5) — verify it still *works*.
  auto decay = ExponentialDecay::Create(0.01).value();
  WbmhDecayedSum::Options options;
  options.epsilon = 1.0;
  auto subject = WbmhDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  auto exact = ExactDecayedSum::Create(decay);
  for (Tick t = 1; t <= 800; ++t) {
    (*subject)->Update(t, 1);
    (*exact)->Update(t, 1);
  }
  const double estimate = (*subject)->Query(800);
  const double truth = (*exact)->Query(800);
  EXPECT_NEAR(estimate, truth, truth);  // within (1+eps) = 2x
  EXPECT_GE(estimate, truth * (1 - 1e-9));
}

TEST(WbmhLayoutTest, OpLogTrimContract) {
  auto layout = MakeLayout(InverseSquare(), 2.0);
  layout->AdvanceTo(100);
  layout->Settle();
  const uint64_t seq = layout->OpSeq();
  EXPECT_GT(seq, 0u);
  layout->TrimLog(seq);
  EXPECT_EQ(layout->LogStart(), seq);
  // A counter created now starts at the trimmed position and never looks
  // back.
  WbmhCounter counter(layout, WbmhCounter::Options{0.0});
  counter.Add(100, 5);
  EXPECT_DOUBLE_EQ(counter.RawTotal(), 5.0);
}

TEST(WbmhCounterTest, SparseStreamLargeGaps) {
  auto decay = PolynomialDecay::Create(1.0).value();
  WbmhDecayedSum::Options options;
  options.epsilon = 0.5;
  auto subject = WbmhDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok());
  auto exact = ExactDecayedSum::Create(decay);
  const Stream stream = SparseStream(200000, 50, 17);
  for (const StreamItem& item : stream) {
    (*subject)->Update(item.t, item.value);
    (*exact)->Update(item.t, item.value);
  }
  const Tick end = StreamEnd(stream) + 5000;
  const double estimate = (*subject)->Query(end);
  const double truth = (*exact)->Query(end);
  EXPECT_GE(estimate, truth * (1 - 1e-9));
  EXPECT_LE(estimate, truth * 2.5);
}


// The boundary process is a pure function of (g, eps, T): advancing one
// layout tick-by-tick and another in arbitrary jumps must produce the
// identical op sequence and final spans.
TEST(WbmhLayoutTest, DeterministicUnderAdvancementPattern) {
  auto decay = PolynomialDecay::Create(1.5).value();
  auto steps = MakeLayout(decay, 0.7);
  auto jumps = MakeLayout(decay, 0.7);
  Rng rng(2025);
  Tick t = 1;
  while (t < 4000) {
    t += 1 + static_cast<Tick>(rng.NextBelow(37));
    jumps->AdvanceTo(t);
  }
  for (Tick u = 1; u <= t; ++u) steps->AdvanceTo(u);
  ASSERT_EQ(steps->OpSeq(), jumps->OpSeq());
  for (uint64_t seq = 0; seq < steps->OpSeq(); ++seq) {
    const auto& a = steps->OpAt(seq);
    const auto& b = jumps->OpAt(seq);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << seq;
    ASSERT_EQ(a.a, b.a) << seq;
    ASSERT_EQ(a.b, b.b) << seq;
  }
  const auto spans_a = steps->Spans();
  const auto spans_b = jumps->Spans();
  ASSERT_EQ(spans_a.size(), spans_b.size());
  for (size_t i = 0; i < spans_a.size(); ++i) {
    EXPECT_EQ(spans_a[i].start, spans_b[i].start);
    EXPECT_EQ(spans_a[i].end, spans_b[i].end);
  }
}

// Counters must be insensitive to how their updates interleave with other
// counters' syncs on a shared layout.
TEST(WbmhCounterTest, SyncOrderIndependence) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto shared = MakeLayout(decay, 0.8);
  WbmhCounter eager(shared, WbmhCounter::Options{0.0});
  WbmhCounter lazy(shared, WbmhCounter::Options{0.0});
  const Stream stream = BernoulliStream(3000, 0.4, 5);
  for (const StreamItem& item : stream) {
    eager.Add(item.t, item.value);
    eager.Sync();  // syncs after every update
    lazy.Add(item.t, item.value);  // relies on Add's internal sync only
  }
  EXPECT_DOUBLE_EQ(eager.Query(3000), lazy.Query(3000));
}

TEST(WbmhLayoutTest, NonUnitStartOffset) {
  // Streams whose life begins late: boundaries anchor at `start`.
  WbmhLayout::Options options;
  options.decay = InverseSquare();
  options.epsilon = 4.0;
  options.start = 1001;
  auto layout = WbmhLayout::Create(options);
  ASSERT_TRUE(layout.ok());
  layout->AdvanceTo(1010);
  layout->Settle();
  std::vector<WbmhLayout::BucketSpan> spans;
  for (const auto& span : layout->Spans()) {
    if (span.start <= 1010) spans.push_back(span);  // drop future open bucket
  }
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().start, 1001);
  // Same shape as the paper example at T = 10 relative ticks:
  // {1..4},{5..8},{9,10} shifted by 1000.
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].end, 1004);
  EXPECT_EQ(spans[1].end, 1008);
}

}  // namespace
}  // namespace tds
