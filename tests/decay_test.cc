#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "decay/custom.h"
#include "decay/decay_function.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"

namespace tds {
namespace {

TEST(ExponentialDecayTest, WeightsAndValidation) {
  EXPECT_FALSE(ExponentialDecay::Create(0.0).ok());
  EXPECT_FALSE(ExponentialDecay::Create(-1.0).ok());
  auto decay = ExponentialDecay::Create(0.5).value();
  EXPECT_DOUBLE_EQ(decay->Weight(1), std::exp(-0.5));
  EXPECT_DOUBLE_EQ(decay->Weight(4), std::exp(-2.0));
  EXPECT_EQ(decay->Horizon(), kInfiniteHorizon);
  EXPECT_TRUE(decay->IsWbmhAdmissible());
}

TEST(ExponentialDecayTest, HalfLifeHelper) {
  const double lambda = ExponentialDecay::LambdaForHalfLife(100.0);
  auto decay = ExponentialDecay::Create(lambda).value();
  EXPECT_NEAR(decay->Weight(101) / decay->Weight(1), 0.5, 1e-12);
}

TEST(SlidingWindowDecayTest, StepShape) {
  EXPECT_FALSE(SlidingWindowDecay::Create(0).ok());
  auto decay = SlidingWindowDecay::Create(64).value();
  EXPECT_DOUBLE_EQ(decay->Weight(1), 1.0);
  EXPECT_DOUBLE_EQ(decay->Weight(64), 1.0);
  EXPECT_DOUBLE_EQ(decay->Weight(65), 0.0);
  EXPECT_EQ(decay->Horizon(), 64);
  // The weight ratio diverges at the edge: not WBMH-admissible.
  EXPECT_FALSE(decay->IsWbmhAdmissible());
}

TEST(PolynomialDecayTest, WeightsAndAdmissibility) {
  EXPECT_FALSE(PolynomialDecay::Create(0.0).ok());
  auto decay = PolynomialDecay::Create(2.0).value();
  EXPECT_DOUBLE_EQ(decay->Weight(1), 1.0);
  EXPECT_DOUBLE_EQ(decay->Weight(10), 0.01);
  EXPECT_TRUE(decay->IsWbmhAdmissible());
  EXPECT_EQ(decay->Horizon(), kInfiniteHorizon);
}

TEST(PolynomialDecayTest, WeightRatiosApproachOne) {
  // The paper's motivating property: the ratio of two items' weights tends
  // to 1 as time passes (severity can outlast recency).
  auto decay = PolynomialDecay::Create(1.0).value();
  const Tick gap = 100;
  double prev_ratio = std::numeric_limits<double>::infinity();
  for (Tick age = 1; age < Tick{1} << 16; age *= 4) {
    const double ratio = decay->Weight(age) / decay->Weight(age + gap);
    EXPECT_LT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_LT(prev_ratio, 1.01);
}

TEST(ExponentialDecayTest, WeightRatiosStayFixed) {
  // Contrast: EXPD's relative weights are frozen forever (paper's critique).
  auto decay = ExponentialDecay::Create(0.01).value();
  const Tick gap = 100;
  const double first = decay->Weight(1) / decay->Weight(1 + gap);
  for (Tick age : {10, 100, 1000, 10000}) {
    EXPECT_NEAR(decay->Weight(age) / decay->Weight(age + gap), first,
                1e-9 * first);
  }
}

TEST(PolyExponentialDecayTest, ShapeAndValidation) {
  EXPECT_FALSE(PolyExponentialDecay::Create(-1, 0.1).ok());
  EXPECT_FALSE(PolyExponentialDecay::Create(2, 0.0).ok());
  EXPECT_FALSE(PolyExponentialDecay::Create(25, 0.1).ok());
  auto decay = PolyExponentialDecay::Create(2, 0.1).value();
  // g(x) = x^2 e^{-x/10} / 2 rises to x = 20 then decays.
  EXPECT_LT(decay->Weight(1), decay->Weight(20));
  EXPECT_GT(decay->Weight(20), decay->Weight(100));
  EXPECT_FALSE(decay->IsWbmhAdmissible());
  // k = 0 is plain exponential: admissible.
  EXPECT_TRUE(PolyExponentialDecay::Create(0, 0.1).value()->IsWbmhAdmissible());
}

TEST(PolyExponentialDecayTest, MatchesClosedForm) {
  auto decay = PolyExponentialDecay::Create(3, 0.2).value();
  const double x = 7.0;
  EXPECT_NEAR(decay->Weight(7),
              std::pow(x, 3) * std::exp(-0.2 * x) / 6.0, 1e-12);
}

TEST(CustomDecayTest, ValidatesShape) {
  EXPECT_FALSE(CustomDecay::Create(nullptr, 10, "null").ok());
  EXPECT_FALSE(
      CustomDecay::Create([](Tick) { return -1.0; }, 10, "negative").ok());
  EXPECT_FALSE(
      CustomDecay::Create([](Tick age) { return static_cast<double>(age); },
                          1000, "increasing")
          .ok());
  auto ok = CustomDecay::Create(
      [](Tick age) { return 1.0 / (1.0 + static_cast<double>(age)); },
      kInfiniteHorizon, "harmonic");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->Name(), "harmonic");
  EXPECT_DOUBLE_EQ((*ok)->Weight(1), 0.5);
}

TEST(CustomDecayTest, HorizonZeroesWeight) {
  auto decay = CustomDecay::Create([](Tick) { return 1.0; }, 50, "box");
  ASSERT_TRUE(decay.ok());
  EXPECT_DOUBLE_EQ((*decay)->Weight(50), 1.0);
  EXPECT_DOUBLE_EQ((*decay)->Weight(51), 0.0);
}

TEST(TableDecayTest, StepsAndValidation) {
  EXPECT_FALSE(MakeTableDecay({}, 10, "empty").ok());
  EXPECT_FALSE(MakeTableDecay({1.0, 2.0}, 10, "rising").ok());
  EXPECT_FALSE(MakeTableDecay({1.0}, 0, "zerostep").ok());
  auto decay = MakeTableDecay({1.0, 0.5, 0.25}, 10, "steps").value();
  EXPECT_DOUBLE_EQ(decay->Weight(1), 1.0);
  EXPECT_DOUBLE_EQ(decay->Weight(10), 1.0);
  EXPECT_DOUBLE_EQ(decay->Weight(11), 0.5);
  EXPECT_DOUBLE_EQ(decay->Weight(21), 0.25);
  EXPECT_DOUBLE_EQ(decay->Weight(31), 0.0);
  EXPECT_EQ(decay->Horizon(), 30);
}

TEST(ShiftedPolynomialDecayTest, ShapeAndAdmissibility) {
  EXPECT_FALSE(ShiftedPolynomialDecay::Create(0.0, 10.0).ok());
  EXPECT_FALSE(ShiftedPolynomialDecay::Create(1.0, -1.0).ok());
  auto decay = ShiftedPolynomialDecay::Create(2.0, 100.0).value();
  EXPECT_DOUBLE_EQ(decay->Weight(1), 1.0);  // normalized at age 1
  // Young ages barely decay...
  EXPECT_GT(decay->Weight(10), 0.8);
  // ...but the polynomial tail eventually takes over.
  EXPECT_LT(decay->Weight(10000), 0.001);
  EXPECT_TRUE(decay->IsWbmhAdmissible());
  // Zero shift coincides with plain POLYD.
  auto unshifted = ShiftedPolynomialDecay::Create(1.5, 0.0).value();
  auto plain = PolynomialDecay::Create(1.5).value();
  for (Tick age : {1, 7, 100, 5000}) {
    EXPECT_NEAR(unshifted->Weight(age), plain->Weight(age), 1e-12);
  }
}

TEST(DecayFunctionTest, DynamicRange) {
  auto poly = PolynomialDecay::Create(2.0).value();
  EXPECT_DOUBLE_EQ(poly->DynamicRange(100), 10000.0);  // (100)^2
  auto sliwin = SlidingWindowDecay::Create(10).value();
  EXPECT_DOUBLE_EQ(sliwin->DynamicRange(10), 1.0);
  EXPECT_TRUE(std::isinf(sliwin->DynamicRange(11)));
}

TEST(DecayFunctionTest, NumericAdmissibilityProbe) {
  // Default probe (no closed-form override) through CustomDecay-like class:
  // 1/(1+x) has non-increasing ratio -> admissible.
  class Harmonic : public DecayFunction {
   public:
    double Weight(Tick age) const override {
      return 1.0 / (1.0 + static_cast<double>(age));
    }
    std::string Name() const override { return "harmonic"; }
  };
  EXPECT_TRUE(Harmonic().IsWbmhAdmissible());

  // A decay with an abrupt cliff has an increasing ratio near the cliff.
  class Cliff : public DecayFunction {
   public:
    double Weight(Tick age) const override { return age <= 100 ? 1.0 : 0.01; }
    std::string Name() const override { return "cliff"; }
  };
  EXPECT_FALSE(Cliff().IsWbmhAdmissible());
}

}  // namespace
}  // namespace tds
