// Backpressure and admission-control tests for ShardedAggregateEngine —
// both the ProducerSession surface and the deprecated engine-global
// shims, whose historical contracts these tests pin (hence the
// deliberate tds-lint allow markers on the legacy calls).
//
// staged producer waits, TryUpdateBatch deadlines, overload counters, and
// the stopped-engine ingest contract (the regression that used to spin a
// producer forever against a ring whose writer had already exited).
//
// The writer is stalled *deterministically* through RunOnWriterForTest: a
// helper thread posts a command that blocks the shard writer on an atomic
// until the test releases it — no sleeps-as-synchronization.
#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/sliding_window.h"
#include "engine/producer_session.h"
#include "engine/registry.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

ShardedAggregateEngine::Options TinyRingOptions() {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kExact, 0.1);
  options.shards = 1;
  options.route_slices = 16;
  options.queue_capacity = 64;
  return options;
}

/// Blocks one shard's writer inside a writer command until Release() (or
/// destruction). While stalled, nothing is drained from that shard's ring,
/// so the test can fill it to capacity deterministically.
class WriterStall {
 public:
  WriterStall(ShardedAggregateEngine& engine, uint32_t shard) {
    std::atomic<bool> entered{false};
    helper_ = std::thread([&engine, shard, this, &entered] {
      engine.RunOnWriterForTest(shard, [this, &entered](AggregateRegistry&) {
        entered.store(true, std::memory_order_release);
        while (!release_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
    });
    // Wait until the writer is actually inside the command: from here on
    // the ring cannot drain until Release().
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  void Release() {
    release_.store(true, std::memory_order_release);
    if (helper_.joinable()) helper_.join();
  }

  ~WriterStall() { Release(); }

 private:
  std::atomic<bool> release_{false};
  std::thread helper_;
};

TEST(BackpressureTest, TryUpdateBatchRejectsOnFullRingWithoutBlocking) {
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), TinyRingOptions());
  ASSERT_TRUE(engine.ok());
  {
    WriterStall stall(**engine, 0);

    // Fill the stalled ring one item at a time until admission fails. The
    // zero deadline means each call makes exactly one push attempt, so
    // this loop is bounded by the ring capacity.
    const KeyedItem item{7, 1, 1};
    uint64_t accepted = 0;
    Status status = Status::OK();
    for (int i = 0; i < 1000 && status.ok(); ++i) {
      status = (*engine)->TryUpdateBatch(  // tds-lint: allow(deprecated-ingest)
          {&item, 1},
                                         std::chrono::nanoseconds(0));
      if (status.ok()) ++accepted;
    }
    ASSERT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_GE(accepted, 64u);  // at least the configured capacity fit

    // Rejections are counted while the engine keeps running.
    const auto stats = (*engine)->Stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_GE(stats[0].items_rejected, 1u);

    stall.Release();
    ASSERT_TRUE((*engine)->Flush().ok());
    // Every *accepted* item (and only those) was applied.
    EXPECT_EQ((*engine)->ItemsApplied(), accepted);
    EXPECT_DOUBLE_EQ((*engine)->QueryKey(7, 1),
                     static_cast<double>(accepted));
  }
}

TEST(BackpressureTest, TryUpdateBatchDeadlineOutlastsStall) {
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), TinyRingOptions());
  ASSERT_TRUE(engine.ok());
  WriterStall stall(**engine, 0);

  // Fill the ring to the brim, then issue one oversized batch with a
  // generous deadline while another thread releases the writer: the batch
  // must be admitted in full once the writer drains.
  std::vector<KeyedItem> fill(64, KeyedItem{1, 1, 1});
  ASSERT_TRUE(
      // The deprecated shim itself is the thing under test here.
      (*engine)->TryUpdateBatch(fill, std::chrono::nanoseconds(0)).ok());  // tds-lint: allow(deprecated-ingest)
  std::vector<KeyedItem> batch(256, KeyedItem{2, 1, 1});
  std::thread releaser([&stall] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stall.Release();
  });
  const Status status =
      // The deprecated shim itself is the thing under test here.
      (*engine)->TryUpdateBatch(batch, std::chrono::seconds(60));  // tds-lint: allow(deprecated-ingest)
  releaser.join();
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_DOUBLE_EQ((*engine)->QueryKey(2, 1), 256.0);
  // The producer parked while it waited out the stall (it did not burn a
  // core through a 20ms block), and the stall length was recorded.
  const auto stats = (*engine)->Stats();
  EXPECT_GE(stats[0].park_count, 1u);
  EXPECT_GE(stats[0].max_queue_stall,
            StagedWait::kSpinRounds + StagedWait::kYieldRounds);
}

TEST(BackpressureTest, BlockWithDeadlinePolicyRejectsAndCounts) {
  auto options = TinyRingOptions();
  options.backpressure = BackpressurePolicy::kBlockWithDeadline;
  options.block_deadline = std::chrono::milliseconds(5);
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), options);
  ASSERT_TRUE(engine.ok());
  {
    WriterStall stall(**engine, 0);
    // More items than the stalled ring can hold: the call must give up
    // after ~block_deadline instead of blocking forever.
    std::vector<KeyedItem> batch(1024, KeyedItem{3, 1, 1});
    const Status status = (*engine)->IngestBatch(batch);  // tds-lint: allow(deprecated-ingest)
    ASSERT_EQ(status.code(), StatusCode::kUnavailable);
    const auto stats = (*engine)->Stats();
    EXPECT_GE(stats[0].items_rejected, 1u);
    stall.Release();
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  // What was admitted is exactly what was applied — nothing lost inside
  // the engine, nothing duplicated by the rejected retry-less remainder.
  const auto stats = (*engine)->Stats();
  EXPECT_EQ(stats[0].items_applied + stats[0].items_rejected, 1024u);
}

TEST(BackpressureTest, SpinPolicyStillDrains) {
  auto options = TinyRingOptions();
  options.backpressure = BackpressurePolicy::kSpin;
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), options);
  ASSERT_TRUE(engine.ok());
  std::vector<KeyedItem> batch(4096, KeyedItem{5, 1, 1});
  ASSERT_TRUE((*engine)->IngestBatch(batch).ok());  // tds-lint: allow(deprecated-ingest)
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 4096u);
}

TEST(BackpressureTest, StoppedEngineFailsFastInsteadOfSpinning) {
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), TinyRingOptions());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Ingest(9, 1, 4).ok());  // tds-lint: allow(deprecated-ingest)
  ASSERT_TRUE((*engine)->Flush().ok());
  (*engine)->Stop();

  // The regression: a batch larger than the ring used to spin forever
  // against writers that had already exited. It must now fail fast.
  std::vector<KeyedItem> batch(1024, KeyedItem{9, 2, 1});
  EXPECT_EQ((*engine)->IngestBatch(batch).code(),  // tds-lint: allow(deprecated-ingest)
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*engine)->Ingest(9, 2, 1).code(),  // tds-lint: allow(deprecated-ingest)
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      // The deprecated shim itself is the thing under test here.
      (*engine)->TryUpdateBatch(batch, std::chrono::seconds(60)).code(),  // tds-lint: allow(deprecated-ingest)
      StatusCode::kFailedPrecondition);
  // Nothing was admitted, so nothing counts as rejected-by-overload.
  EXPECT_EQ((*engine)->Stats()[0].items_rejected, 0u);

  // Flush on a drained stopped engine is a no-op success; Stop is
  // idempotent; queries keep serving the final published snapshot.
  EXPECT_TRUE((*engine)->Flush().ok());
  (*engine)->Stop();
  EXPECT_DOUBLE_EQ((*engine)->QueryKey(9, 1), 4.0);
  EXPECT_EQ((*engine)->KeyCount(), 1u);

  // Route mutations on a stopped engine refuse instead of hanging on a
  // writer command nobody will serve.
  const std::vector<uint32_t> slices = {0, 1};
  EXPECT_EQ((*engine)->MigrateSlices(slices, 0).code(),
            StatusCode::kFailedPrecondition);
  auto rebalanced = (*engine)->RebalanceIfSkewed();
  EXPECT_FALSE(rebalanced.ok());
}

// Session flushes honor the per-session kBlockWithDeadline admission
// contract: a flush that cannot place its staged runs before the deadline
// rejects the remainder (dropped + counted), and the session is reusable
// afterwards.
TEST(BackpressureTest, SessionFlushRespectsBlockDeadline) {
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), TinyRingOptions());
  ASSERT_TRUE(engine.ok());

  ProducerSessionOptions session_options;
  session_options.backpressure = BackpressurePolicy::kBlockWithDeadline;
  session_options.block_deadline = std::chrono::milliseconds(5);
  session_options.staging_capacity = 2048;  // no auto-flush mid-test
  auto session = (*engine)->NewProducer(session_options);
  ASSERT_TRUE(session.ok());
  {
    WriterStall stall(**engine, 0);
    std::vector<KeyedItem> batch(1024, KeyedItem{3, 1, 1});
    ASSERT_TRUE((*session)->AddBatch(batch).ok());
    const Status status = (*session)->Flush();
    ASSERT_EQ(status.code(), StatusCode::kUnavailable);
    // The episode is settled either way: nothing stays staged, the
    // overflow is counted both on the shard and on the session.
    EXPECT_EQ((*session)->staged(), 0u);
    const auto stats = (*session)->stats();
    EXPECT_GE(stats.items_rejected, 1u);
    EXPECT_EQ(stats.items_flushed + stats.items_rejected, 1024u);
    EXPECT_GE((*engine)->Stats()[0].items_rejected, 1u);
    EXPECT_TRUE((*session)->AuditInvariants().ok());
    stall.Release();
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  // Admitted == applied: nothing lost inside the engine, nothing
  // duplicated by the rejected remainder.
  const auto shard_stats = (*engine)->Stats();
  EXPECT_EQ(shard_stats[0].items_applied + shard_stats[0].items_rejected,
            1024u);
  // The session keeps working once pressure clears.
  ASSERT_TRUE((*session)->Add(3, 2, 1).ok());
  ASSERT_TRUE((*session)->Flush().ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  const auto totals = (*engine)->SessionTotals();
  EXPECT_GE(totals.flush_stalls, 1u);
}

TEST(BackpressureTest, CreateValidatesBlockDeadline) {
  auto options = TinyRingOptions();
  options.block_deadline = std::chrono::nanoseconds(-1);
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), options);
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace tds
