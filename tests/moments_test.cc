#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "moments/decayed_variance.h"
#include "moments/window_variance.h"
#include "stream/generators.h"
#include "util/codec.h"
#include "util/random.h"

namespace tds {
namespace {

struct Observation {
  Tick t;
  uint64_t value;
};

// Brute-force V_g, A_g per the paper's Section 7.3 definitions.
struct ExactMoments {
  double vg = 0.0;
  double mean = 0.0;
  double variance = 0.0;
};

ExactMoments BruteMoments(const std::vector<Observation>& observations,
                          const DecayFunction& g, Tick now) {
  double mass = 0.0, s1 = 0.0;
  for (const Observation& o : observations) {
    const Tick age = AgeAt(o.t, now);
    if (age > g.Horizon()) continue;
    const double w = g.Weight(age);
    mass += w;
    s1 += w * static_cast<double>(o.value);
  }
  ExactMoments result;
  if (mass <= 0.0) return result;
  result.mean = s1 / mass;
  for (const Observation& o : observations) {
    const Tick age = AgeAt(o.t, now);
    if (age > g.Horizon()) continue;
    const double d = static_cast<double>(o.value) - result.mean;
    result.vg += g.Weight(age) * d * d;
  }
  result.variance = result.vg / mass;
  return result;
}

std::vector<Observation> FromStream(const Stream& stream) {
  std::vector<Observation> observations;
  observations.reserve(stream.size());
  for (const StreamItem& item : stream) {
    observations.push_back(Observation{item.t, item.value});
  }
  return observations;
}

TEST(DecayedVarianceTest, ExactBackendMatchesBruteForce) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kExact)
                                   .Build()
                                   .value();
  auto variance = DecayedVariance::Create(decay, options);
  ASSERT_TRUE(variance.ok());
  const Stream stream = LevelShiftStream(500, 250, 4.0, 12.0, 3);
  for (const StreamItem& item : stream) variance->Observe(item.t, item.value);
  const auto truth = BruteMoments(FromStream(stream), *decay, 500);
  EXPECT_NEAR(variance->QueryVg(500), truth.vg, 1e-6 * truth.vg + 1e-9);
  EXPECT_NEAR(variance->QueryMean(500), truth.mean, 1e-9);
  EXPECT_NEAR(variance->QueryVariance(500), truth.variance, 1e-9);
}

TEST(DecayedVarianceTest, ApproximateBackendTracksTruth) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kCeh)
                                   .epsilon(0.02)
                                   .Build()
                                   .value();
  auto variance = DecayedVariance::Create(decay, options);
  ASSERT_TRUE(variance.ok());
  const Stream stream = LevelShiftStream(2000, 1000, 4.0, 16.0, 7);
  for (const StreamItem& item : stream) variance->Observe(item.t, item.value);
  const auto truth = BruteMoments(FromStream(stream), *decay, 2000);
  ASSERT_GT(truth.variance, 0.0);
  // The subtraction amplifies the component errors; the paper-level claim
  // is a constant-factor approximation. With a level shift the variance is
  // large relative to the mean^2 error terms.
  EXPECT_NEAR(variance->QueryVariance(2000) / truth.variance, 1.0, 0.5);
  EXPECT_NEAR(variance->QueryMean(2000) / truth.mean, 1.0, 0.1);
}

TEST(DecayedVarianceTest, ZeroForConstantValues) {
  auto decay = ExponentialDecay::Create(0.01).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kExact)
                                   .Build()
                                   .value();
  auto variance = DecayedVariance::Create(decay, options);
  ASSERT_TRUE(variance.ok());
  for (Tick t = 1; t <= 200; ++t) variance->Observe(t, 7);
  EXPECT_NEAR(variance->QueryVariance(200), 0.0, 1e-9);
  EXPECT_NEAR(variance->QueryMean(200), 7.0, 1e-9);
}

TEST(DecayedVarianceTest, EmptyIsZero) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto variance = DecayedVariance::Create(decay, AggregateOptions{});
  ASSERT_TRUE(variance.ok());
  EXPECT_DOUBLE_EQ(variance->QueryVg(10), 0.0);
  EXPECT_DOUBLE_EQ(variance->QueryVariance(10), 0.0);
  EXPECT_DOUBLE_EQ(variance->QueryMean(10), 0.0);
}

TEST(DecayedVarianceTest, DecayEmphasizesRecentRegime) {
  // Old noisy regime, recent constant regime: with a sharp decay the
  // variance should collapse toward the recent (constant) regime.
  auto decay = PolynomialDecay::Create(3.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kExact)
                                   .Build()
                                   .value();
  auto variance = DecayedVariance::Create(decay, options);
  ASSERT_TRUE(variance.ok());
  Rng rng(12);
  for (Tick t = 1; t <= 500; ++t) variance->Observe(t, rng.NextBelow(100));
  for (Tick t = 501; t <= 1000; ++t) variance->Observe(t, 50);
  const double late_variance = variance->QueryVariance(1000);
  // Raw variance of uniform[0,100) is ~833; decayed focus on the constant
  // tail must push it way down.
  EXPECT_LT(late_variance, 200.0);
  EXPECT_NEAR(variance->QueryMean(1000), 50.0, 5.0);
}

TEST(DecayedVarianceTest, SlidingWindowForgetsCompletely) {
  auto decay = SlidingWindowDecay::Create(100).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kExact)
                                   .Build()
                                   .value();
  auto variance = DecayedVariance::Create(decay, options);
  ASSERT_TRUE(variance.ok());
  Rng rng(13);
  for (Tick t = 1; t <= 300; ++t) variance->Observe(t, rng.NextBelow(50));
  for (Tick t = 301; t <= 500; ++t) variance->Observe(t, 10);
  // Window [401,500] sees only the constant 10s.
  EXPECT_NEAR(variance->QueryVariance(500), 0.0, 1e-9);
  EXPECT_NEAR(variance->QueryMean(500), 10.0, 1e-9);
}


// ---------- Sliding-window variance histogram (Babcock et al.) ----------

double BruteWindowVariance(const std::vector<Observation>& observations,
                           Tick now, Tick w) {
  double n = 0.0, sum = 0.0;
  for (const Observation& o : observations) {
    if (o.t <= now && AgeAt(o.t, now) <= w) {
      n += 1.0;
      sum += static_cast<double>(o.value);
    }
  }
  if (n <= 1.0) return 0.0;
  const double mean = sum / n;
  double v = 0.0;
  for (const Observation& o : observations) {
    if (o.t <= now && AgeAt(o.t, now) <= w) {
      const double d = static_cast<double>(o.value) - mean;
      v += d * d;
    }
  }
  return v / n;
}

TEST(SlidingWindowVarianceTest, CreateValidates) {
  SlidingWindowVariance::Options options;
  options.epsilon = 0.0;
  EXPECT_FALSE(SlidingWindowVariance::Create(options).ok());
  options.epsilon = 0.1;
  options.window = 0;
  EXPECT_FALSE(SlidingWindowVariance::Create(options).ok());
  options.window = 100;
  EXPECT_TRUE(SlidingWindowVariance::Create(options).ok());
}

TEST(SlidingWindowVarianceTest, ExactWhileEverythingInWindow) {
  SlidingWindowVariance::Options options;
  options.epsilon = 0.1;
  options.window = 10000;
  auto sv = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(sv.ok());
  std::vector<Observation> observations;
  Rng rng(3);
  for (Tick t = 1; t <= 200; ++t) {
    const uint64_t value = rng.NextBelow(50);
    sv->Observe(t, static_cast<double>(value));
    observations.push_back(Observation{t, value});
  }
  // Combination via the parallel-axis rule is exact regardless of merges.
  EXPECT_NEAR(sv->Variance(), BruteWindowVariance(observations, 200, 10000),
              1e-7 * sv->Variance() + 1e-9);
  EXPECT_NEAR(sv->MeanWindow(10000), 24.5, 3.0);
}

TEST(SlidingWindowVarianceTest, AllWindowsWithinTolerance) {
  // The [1]-style structure answers every window size w <= W.
  SlidingWindowVariance::Options options;
  options.epsilon = 0.1;
  options.window = 2048;
  auto sv = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(sv.ok());
  std::vector<Observation> observations;
  Rng rng(7);
  const Tick n = 6000;
  for (Tick t = 1; t <= n; ++t) {
    // Two regimes so both mean and variance move.
    const uint64_t value =
        (t / 500) % 2 == 0 ? rng.NextBelow(20) : 40 + rng.NextBelow(20);
    sv->Observe(t, static_cast<double>(value));
    observations.push_back(Observation{t, value});
  }
  for (Tick w : {64, 256, 1024, 2048}) {
    const double truth = BruteWindowVariance(observations, n, w);
    const double estimate = sv->VarianceWindow(w);
    ASSERT_GT(truth, 0.0);
    EXPECT_NEAR(estimate / truth, 1.0, 0.35) << "w=" << w;
  }
}

TEST(SlidingWindowVarianceTest, BucketCountStaysSmall) {
  SlidingWindowVariance::Options options;
  options.epsilon = 0.2;
  options.window = 1 << 14;
  auto sv = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(sv.ok());
  Rng rng(9);
  for (Tick t = 1; t <= (1 << 14); ++t) {
    sv->Observe(t, static_cast<double>(rng.NextBelow(100)));
  }
  // O(eps^-2 log) buckets, far below the 16k items.
  EXPECT_LT(sv->BucketCount(), 2500u);
  EXPECT_GT(sv->BucketCount(), 8u);
}

TEST(SlidingWindowVarianceTest, ConstantStreamCollapsesToOneRegime) {
  SlidingWindowVariance::Options options;
  options.epsilon = 0.1;
  options.window = 1 << 12;
  auto sv = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(sv.ok());
  for (Tick t = 1; t <= (1 << 12); ++t) sv->Observe(t, 42.0);
  EXPECT_NEAR(sv->Variance(), 0.0, 1e-9);
  // Zero-deviation buckets merge aggressively.
  EXPECT_LT(sv->BucketCount(), 8u);
  EXPECT_NEAR(sv->MeanWindow(1 << 12), 42.0, 1e-9);
}

TEST(SlidingWindowVarianceTest, ExpiryForgetsOldRegime) {
  SlidingWindowVariance::Options options;
  options.epsilon = 0.1;
  options.window = 500;
  auto sv = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(sv.ok());
  Rng rng(11);
  for (Tick t = 1; t <= 1000; ++t) {
    sv->Observe(t, static_cast<double>(rng.NextBelow(100)));
  }
  for (Tick t = 1001; t <= 2000; ++t) sv->Observe(t, 7.0);
  // Window [1501, 2000] sees only the constant values.
  EXPECT_NEAR(sv->Variance(), 0.0, 1e-9);
  EXPECT_NEAR(sv->MeanWindow(500), 7.0, 1e-9);
}

TEST(SlidingWindowVarianceTest, SnapshotRoundTrip) {
  SlidingWindowVariance::Options options;
  options.epsilon = 0.1;
  options.window = 1000;
  auto original = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(original.ok());
  Rng rng(13);
  for (Tick t = 1; t <= 700; ++t) {
    original->Observe(t, static_cast<double>(rng.NextBelow(30)));
  }
  Encoder encoder;
  original->EncodeState(encoder);
  const std::string bytes = encoder.Finish();
  auto restored = SlidingWindowVariance::Create(options);
  ASSERT_TRUE(restored.ok());
  Decoder decoder(bytes);
  ASSERT_TRUE(restored->DecodeState(decoder).ok());
  for (Tick t = 701; t <= 1200; ++t) {
    const double value = static_cast<double>(t % 17);
    original->Observe(t, value);
    restored->Observe(t, value);
  }
  EXPECT_DOUBLE_EQ(original->Variance(), restored->Variance());
  EXPECT_EQ(original->BucketCount(), restored->BucketCount());
}

}  // namespace
}  // namespace tds
