#include "histogram/exponential_histogram.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "stream/generators.h"
#include "util/codec.h"
#include "util/random.h"

namespace tds {
namespace {

using Bucket = ExponentialHistogram::Bucket;

ExponentialHistogram MakeEh(double epsilon, Tick window) {
  ExponentialHistogram::Options options;
  options.epsilon = epsilon;
  options.window = window;
  auto eh = ExponentialHistogram::Create(options);
  EXPECT_TRUE(eh.ok()) << eh.status().ToString();
  return std::move(eh).value();
}

TEST(ExponentialHistogramTest, CreateValidatesOptions) {
  ExponentialHistogram::Options options;
  options.epsilon = 0.0;
  EXPECT_FALSE(ExponentialHistogram::Create(options).ok());
  options.epsilon = 1.5;
  EXPECT_FALSE(ExponentialHistogram::Create(options).ok());
  options.epsilon = 0.1;
  options.window = 0;
  EXPECT_FALSE(ExponentialHistogram::Create(options).ok());
  options.window = 100;
  EXPECT_TRUE(ExponentialHistogram::Create(options).ok());
}

TEST(ExponentialHistogramTest, EmptyEstimatesZero) {
  ExponentialHistogram eh = MakeEh(0.1, 100);
  EXPECT_EQ(eh.Estimate(), 0.0);
  eh.AdvanceTo(50);
  EXPECT_EQ(eh.Estimate(), 0.0);
  EXPECT_EQ(eh.BucketCount(), 0u);
  EXPECT_TRUE(eh.Empty());
}

TEST(ExponentialHistogramTest, ExactWhileEverythingInWindow) {
  ExponentialHistogram eh = MakeEh(0.1, 1000);
  uint64_t total = 0;
  for (Tick t = 1; t <= 100; ++t) {
    eh.Add(t, 1);
    ++total;
    // Nothing has expired, so the estimate must be exact.
    EXPECT_DOUBLE_EQ(eh.Estimate(), static_cast<double>(total)) << "t=" << t;
  }
}

TEST(ExponentialHistogramTest, BucketCountsArePowersOfTwo) {
  ExponentialHistogram eh = MakeEh(0.2, kInfiniteHorizon);
  for (Tick t = 1; t <= 500; ++t) eh.Add(t, 1);
  for (const Bucket& b : eh.Buckets()) {
    EXPECT_EQ(b.count & (b.count - 1), 0u) << "count=" << b.count;
  }
}

TEST(ExponentialHistogramTest, BucketsOrderedOldestFirstWithTotalPreserved) {
  ExponentialHistogram eh = MakeEh(0.2, kInfiniteHorizon);
  uint64_t total = 0;
  Rng rng(7);
  for (Tick t = 1; t <= 300; ++t) {
    const uint64_t value = rng.NextBelow(4);
    eh.Add(t, value);
    total += value;
  }
  Tick prev_end = 0;
  uint64_t bucket_total = 0;
  for (const Bucket& b : eh.Buckets()) {
    EXPECT_GE(b.end, prev_end);
    prev_end = b.end;
    bucket_total += b.count;
  }
  EXPECT_EQ(bucket_total, total);
  EXPECT_EQ(eh.TotalCount(), total);
}

TEST(ExponentialHistogramTest, ExpiryDropsOldBuckets) {
  ExponentialHistogram eh = MakeEh(0.1, 10);
  for (Tick t = 1; t <= 50; ++t) eh.Add(t, 1);
  // Window is [41, 50]: no bucket may end before 41.
  for (const Bucket& b : eh.Buckets()) EXPECT_GE(b.end, 41);
  // Advance far: everything expires.
  eh.AdvanceTo(100);
  EXPECT_EQ(eh.BucketCount(), 0u);
  EXPECT_EQ(eh.Estimate(), 0.0);
}

TEST(ExponentialHistogramTest, ValueInsertEqualsUnitInserts) {
  // Adding v at tick t must leave exactly the same state as adding 1
  // v times at tick t (the digit-arithmetic fast path is semantically a
  // batch of unit insertions).
  for (uint64_t value : {2u, 3u, 5u, 17u, 64u, 100u}) {
    ExponentialHistogram fast = MakeEh(0.25, kInfiniteHorizon);
    ExponentialHistogram slow = MakeEh(0.25, kInfiniteHorizon);
    Rng rng(value);
    for (Tick t = 1; t <= 40; ++t) {
      const uint64_t v = (t % 3 == 0) ? value : rng.NextBelow(3);
      fast.Add(t, v);
      for (uint64_t i = 0; i < v; ++i) slow.Add(t, 1);
      slow.AdvanceTo(t);
    }
    const auto fast_buckets = fast.Buckets();
    const auto slow_buckets = slow.Buckets();
    ASSERT_EQ(fast_buckets.size(), slow_buckets.size()) << "value=" << value;
    for (size_t i = 0; i < fast_buckets.size(); ++i) {
      EXPECT_EQ(fast_buckets[i].end, slow_buckets[i].end);
      EXPECT_EQ(fast_buckets[i].count, slow_buckets[i].count);
    }
  }
}

// Brute-force window count for reference.
uint64_t BruteWindowCount(const Stream& stream, Tick now, Tick w) {
  uint64_t count = 0;
  for (const StreamItem& item : stream) {
    if (item.t <= now && AgeAt(item.t, now) <= w) count += item.value;
  }
  return count;
}

struct EhAccuracyParam {
  double epsilon;
  double density;
  uint64_t seed;
};

class EhAccuracyTest : public ::testing::TestWithParam<EhAccuracyParam> {};

TEST_P(EhAccuracyTest, AllWindowEstimatesWithinEpsilon) {
  const EhAccuracyParam param = GetParam();
  const Tick length = 2000;
  const Stream stream = BernoulliStream(length, param.density, param.seed);
  ExponentialHistogram eh = MakeEh(param.epsilon, kInfiniteHorizon);
  for (const StreamItem& item : stream) eh.Add(item.t, item.value);
  eh.AdvanceTo(length);
  // Lemma 4.1: one EH answers every window size.
  for (Tick w : {1, 2, 3, 5, 10, 50, 100, 500, 1000, 1999, 2000}) {
    const double estimate = eh.EstimateWindow(w);
    const double exact = static_cast<double>(BruteWindowCount(stream, length, w));
    if (exact == 0.0) {
      EXPECT_EQ(estimate, 0.0) << "w=" << w;
      continue;
    }
    EXPECT_LE(std::fabs(estimate - exact), param.epsilon * exact + 1e-9)
        << "w=" << w << " exact=" << exact << " est=" << estimate;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EhAccuracyTest,
    ::testing::Values(EhAccuracyParam{0.5, 0.5, 1}, EhAccuracyParam{0.2, 0.5, 2},
                      EhAccuracyParam{0.1, 0.5, 3}, EhAccuracyParam{0.05, 0.5, 4},
                      EhAccuracyParam{0.1, 0.05, 5}, EhAccuracyParam{0.1, 1.0, 6},
                      EhAccuracyParam{0.02, 0.3, 7},
                      EhAccuracyParam{0.3, 0.9, 8}));

TEST(ExponentialHistogramTest, SlidingWindowEstimateWithinEpsilon) {
  const double epsilon = 0.1;
  const Tick window = 256;
  ExponentialHistogram eh = MakeEh(epsilon, window);
  const Stream stream = BernoulliStream(5000, 0.7, 99);
  std::deque<StreamItem> live;
  for (const StreamItem& item : stream) {
    eh.Add(item.t, item.value);
    live.push_back(item);
    while (!live.empty() && AgeAt(live.front().t, item.t) > window) {
      live.pop_front();
    }
    uint64_t exact = 0;
    for (const StreamItem& x : live) exact += x.value;
    const double estimate = eh.Estimate();
    EXPECT_LE(std::fabs(estimate - static_cast<double>(exact)),
              epsilon * static_cast<double>(exact) + 1e-9)
        << "t=" << item.t;
  }
}

TEST(ExponentialHistogramTest, StorageGrowsPolylogarithmically) {
  // O(eps^{-1} log^2 N): doubling N should add roughly O(log N) bits, far
  // from doubling the storage.
  ExponentialHistogram eh = MakeEh(0.1, kInfiniteHorizon);
  std::vector<size_t> bits;
  Tick t = 1;
  for (int stage = 0; stage < 6; ++stage) {
    const Tick stage_end = Tick{1} << (10 + stage);
    for (; t <= stage_end; ++t) eh.Add(t, 1);
    bits.push_back(eh.StorageBits());
  }
  for (size_t i = 1; i < bits.size(); ++i) {
    EXPECT_LT(bits[i], bits[i - 1] * 3 / 2)
        << "storage should grow much slower than the stream";
  }
}

TEST(ExponentialHistogramTest, LargeValueInsertIsFast) {
  // The digit-arithmetic path must handle single huge values without O(v)
  // work; this just asserts it completes and preserves the count.
  ExponentialHistogram eh = MakeEh(0.1, kInfiniteHorizon);
  eh.Add(1, uint64_t{1} << 40);
  eh.Add(2, (uint64_t{1} << 40) + 12345);
  EXPECT_EQ(eh.TotalCount(), (uint64_t{1} << 41) + 12345);
  const double estimate = eh.EstimateWindow(2);
  EXPECT_NEAR(estimate, static_cast<double>(eh.TotalCount()),
              0.1 * static_cast<double>(eh.TotalCount()));
}


TEST(ExponentialHistogramTest, PerClassCapInvariant) {
  // The canonical EH invariant: at most cap = ceil(1/eps)+1 buckets per
  // size class at all times.
  const double epsilon = 0.2;
  const uint64_t cap = static_cast<uint64_t>(std::ceil(1.0 / epsilon)) + 1;
  ExponentialHistogram eh = MakeEh(epsilon, kInfiniteHorizon);
  Rng rng(13);
  for (Tick t = 1; t <= 2000; ++t) {
    eh.Add(t, rng.NextBelow(5));
    std::map<uint64_t, uint64_t> per_class;
    for (const Bucket& b : eh.Buckets()) ++per_class[b.count];
    for (const auto& [size, count] : per_class) {
      ASSERT_LE(count, cap) << "t=" << t << " size=" << size;
    }
  }
}

TEST(ExponentialHistogramTest, DeterministicReplay) {
  // Two histograms fed the same stream are bit-identical, regardless of
  // interleaved AdvanceTo calls.
  ExponentialHistogram a = MakeEh(0.1, 512);
  ExponentialHistogram b = MakeEh(0.1, 512);
  Rng rng(21);
  Tick t = 1;
  for (int i = 0; i < 1500; ++i) {
    t += rng.NextBelow(4);
    const uint64_t value = rng.NextBelow(3);
    a.Add(t, value);
    b.AdvanceTo(t);  // extra advances must not matter
    b.Add(t, value);
  }
  const auto buckets_a = a.Buckets();
  const auto buckets_b = b.Buckets();
  ASSERT_EQ(buckets_a.size(), buckets_b.size());
  for (size_t i = 0; i < buckets_a.size(); ++i) {
    EXPECT_EQ(buckets_a[i].end, buckets_b[i].end);
    EXPECT_EQ(buckets_a[i].count, buckets_b[i].count);
  }
}

TEST(ExponentialHistogramTest, WindowOneTracksLastTick) {
  ExponentialHistogram eh = MakeEh(0.1, 1);
  eh.Add(5, 3);
  EXPECT_DOUBLE_EQ(eh.Estimate(), 3.0);
  eh.AdvanceTo(6);
  EXPECT_DOUBLE_EQ(eh.Estimate(), 0.0);
  eh.Add(7, 2);
  EXPECT_DOUBLE_EQ(eh.Estimate(), 2.0);
}

TEST(ExponentialHistogramTest, EstimateWindowBeyondStreamIsTotal) {
  ExponentialHistogram eh = MakeEh(0.1, kInfiniteHorizon);
  for (Tick t = 1; t <= 100; ++t) eh.Add(t, 1);
  // Window covering the whole stream: exact.
  EXPECT_DOUBLE_EQ(eh.EstimateWindow(100), 100.0);
  EXPECT_DOUBLE_EQ(eh.EstimateWindow(5000), 100.0);
}


TEST(ExponentialHistogramMergeTest, RejectsMismatchedOptions) {
  ExponentialHistogram a = MakeEh(0.1, 100);
  ExponentialHistogram b = MakeEh(0.2, 100);
  EXPECT_FALSE(a.MergeFrom(b).ok());
  ExponentialHistogram c = MakeEh(0.1, 200);
  EXPECT_FALSE(a.MergeFrom(c).ok());
}

TEST(ExponentialHistogramMergeTest, DisjointStreamsApproximateUnion) {
  // Two sites see interleaved halves of one stream; the merged histogram
  // must estimate the union's window counts within the summed tolerances.
  const double epsilon = 0.1;
  const Tick window = 1024;
  ExponentialHistogram site_a = MakeEh(epsilon, window);
  ExponentialHistogram site_b = MakeEh(epsilon, window);
  ExponentialHistogram centralized = MakeEh(epsilon, window);
  const Stream stream = BernoulliStream(6000, 0.8, 31);
  for (size_t i = 0; i < stream.size(); ++i) {
    (i % 2 == 0 ? site_a : site_b).Add(stream[i].t, stream[i].value);
    centralized.Add(stream[i].t, stream[i].value);
  }
  site_a.AdvanceTo(6000);
  site_b.AdvanceTo(6000);
  centralized.AdvanceTo(6000);
  ASSERT_TRUE(site_a.MergeFrom(site_b).ok());
  EXPECT_EQ(site_a.TotalCount(), centralized.TotalCount());
  for (Tick w : {16, 64, 256, 1024}) {
    const double merged = site_a.EstimateWindow(w);
    const double exact =
        static_cast<double>(BruteWindowCount(stream, 6000, w));
    if (exact == 0.0) continue;
    EXPECT_LE(std::fabs(merged - exact), 2.5 * epsilon * exact + 1.0)
        << "w=" << w;
  }
}

TEST(ExponentialHistogramMergeTest, MergeIntoEmpty) {
  ExponentialHistogram a = MakeEh(0.1, 256);
  ExponentialHistogram b = MakeEh(0.1, 256);
  for (Tick t = 1; t <= 100; ++t) b.Add(t, 1);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.TotalCount(), 100u);
  EXPECT_EQ(a.now(), 100);
  // And the other direction: merging an empty histogram is a no-op.
  ExponentialHistogram empty = MakeEh(0.1, 256);
  const uint64_t before = a.TotalCount();
  ASSERT_TRUE(a.MergeFrom(empty).ok());
  EXPECT_EQ(a.TotalCount(), before);
}

TEST(ExponentialHistogramMergeTest, ManySitesFanIn) {
  // Coordinator fan-in across 8 sites.
  const double epsilon = 0.1;
  const Tick window = 2048;
  std::vector<ExponentialHistogram> sites;
  for (int s = 0; s < 8; ++s) sites.push_back(MakeEh(epsilon, window));
  const Stream stream = BernoulliStream(4000, 0.9, 77);
  for (size_t i = 0; i < stream.size(); ++i) {
    sites[i % 8].Add(stream[i].t, stream[i].value);
  }
  ExponentialHistogram coordinator = MakeEh(epsilon, window);
  for (auto& site : sites) {
    site.AdvanceTo(4000);
    ASSERT_TRUE(coordinator.MergeFrom(site).ok());
  }
  const double exact =
      static_cast<double>(BruteWindowCount(stream, 4000, window));
  EXPECT_NEAR(coordinator.Estimate(), exact, 3 * epsilon * exact + 1.0);
}

TEST(ExponentialHistogramTest, AdvanceToRejectsTimeTravel) {
  ExponentialHistogram eh = MakeEh(0.1, 100);
  eh.Add(10, 1);
  EXPECT_DEATH(eh.Add(5, 1), "TDS_CHECK");
}

TEST(ExponentialHistogramMergeTest, SameTickMultiClassBucketsSurviveMerge) {
  // Regression: a single large Add creates buckets in several classes, all
  // sharing one end timestamp. The merge rebuild used to compute a negative
  // span for the second and later ones (previous_end had already passed
  // their end), round chunks down to zero, and silently drop their counts.
  ExponentialHistogram a = MakeEh(0.1, 512);
  a.Add(100, 1149);  // 1149 = 0b10001111101: buckets in 7 classes at t=100.
  ExponentialHistogram b = MakeEh(0.1, 512);
  b.Add(101, 3);
  ASSERT_TRUE(b.MergeFrom(a).ok());
  EXPECT_TRUE(b.AuditInvariants().ok());
  EXPECT_NEAR(b.Estimate(), 1152.0, 0.1 * 1152.0 + 1.0);
}

TEST(ExponentialHistogramCodecTest, RoundTripPreservesStateExactly) {
  ExponentialHistogram eh = MakeEh(0.1, 256);
  const Stream stream = BurstyStream(2000, 25, 40, 2.0, 9);
  for (const auto& [t, value] : stream) eh.Add(t, value);

  Encoder encoder;
  eh.EncodeState(encoder);
  const std::string blob = encoder.Finish();

  ExponentialHistogram restored = MakeEh(0.1, 256);
  Decoder decoder(blob);
  ASSERT_TRUE(restored.DecodeState(decoder).ok());
  EXPECT_TRUE(decoder.Done());
  EXPECT_TRUE(restored.AuditInvariants().ok());
  EXPECT_EQ(restored.TotalCount(), eh.TotalCount());
  EXPECT_DOUBLE_EQ(restored.Estimate(), eh.Estimate());
  for (Tick w : {1, 7, 64, 256}) {
    EXPECT_DOUBLE_EQ(restored.EstimateWindow(w), eh.EstimateWindow(w)) << w;
  }

  // Continuing both must stay bit-identical: the snapshot is the state.
  for (Tick t = 2001; t < 2100; ++t) {
    eh.Add(t, 1 + (t % 3));
    restored.Add(t, 1 + (t % 3));
    ASSERT_DOUBLE_EQ(restored.Estimate(), eh.Estimate()) << t;
  }
}

TEST(ExponentialHistogramCodecTest, DecodeRejectsMismatchedOptions) {
  ExponentialHistogram eh = MakeEh(0.1, 100);
  eh.Add(5, 10);
  Encoder encoder;
  eh.EncodeState(encoder);
  const std::string blob = encoder.Finish();

  ExponentialHistogram wrong_eps = MakeEh(0.2, 100);
  Decoder d1(blob);
  EXPECT_FALSE(wrong_eps.DecodeState(d1).ok());

  ExponentialHistogram wrong_window = MakeEh(0.1, 200);
  Decoder d2(blob);
  EXPECT_FALSE(wrong_window.DecodeState(d2).ok());
}

TEST(ExponentialHistogramCodecTest, DecodeRejectsTruncatedBlob) {
  ExponentialHistogram eh = MakeEh(0.1, 100);
  for (Tick t = 1; t <= 50; ++t) eh.Add(t, 2);
  Encoder encoder;
  eh.EncodeState(encoder);
  const std::string blob = encoder.Finish();
  for (size_t len = 0; len < blob.size(); ++len) {
    ExponentialHistogram target = MakeEh(0.1, 100);
    const std::string truncated = blob.substr(0, len);  // Decoder is a view.
    Decoder decoder(truncated);
    EXPECT_FALSE(target.DecodeState(decoder).ok()) << "len=" << len;
  }
}

}  // namespace
}  // namespace tds
