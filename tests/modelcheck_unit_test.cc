/// Scheduler-internals coverage for tds::modelcheck (always built, tier-1):
/// vector-clock happens-before algebra, exploration of a known-lost-update
/// bug, sleep-set pruning soundness (pruned exploration reaches the same
/// final states), TSO store-buffer modeling (SB litmus), preemption-bound
/// semantics, seed-replay determinism, Gate missed-wake deadlock detection,
/// and the deliberately-racy fixture the checker must flag. These use
/// tds::InstrumentedAtomic, which routes through the scheduler in every
/// build — no -DTDS_MODELCHECK required (that flag instruments the
/// production tds::Atomic; see tests/modelcheck_suites_test.cc).

#include <atomic>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "modelcheck/sched.h"
#include "modelcheck/vector_clock.h"
#include "util/atomic.h"

namespace tds {
namespace modelcheck {
namespace {

/// Inside TEST bodies the unqualified name `Run` would resolve to
/// testing::Test::Run; alias the scheduler's Run for lambda signatures.
using McRun = ::tds::modelcheck::Run;

TEST(VectorClockTest, StartsAtZeroAndTicks) {
  VectorClock c;
  EXPECT_EQ(c.Get(0), 0u);
  EXPECT_EQ(c.Get(7), 0u);
  c.Tick(2);
  c.Tick(2);
  EXPECT_EQ(c.Get(2), 2u);
  EXPECT_EQ(c.Get(0), 0u);
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock a;
  VectorClock b;
  a.Set(0, 3);
  a.Set(1, 1);
  b.Set(1, 5);
  b.Set(2, 2);
  a.Join(b);
  EXPECT_EQ(a.Get(0), 3u);
  EXPECT_EQ(a.Get(1), 5u);
  EXPECT_EQ(a.Get(2), 2u);
}

TEST(VectorClockTest, HappensBeforeAndConcurrency) {
  VectorClock a;
  VectorClock b;
  a.Set(0, 1);
  b.Set(0, 2);
  b.Set(1, 1);
  EXPECT_TRUE(a.HappensBefore(b));
  EXPECT_FALSE(b.HappensBefore(a));
  EXPECT_FALSE(a.ConcurrentWith(b));

  VectorClock c;
  c.Set(1, 3);
  EXPECT_TRUE(a.ConcurrentWith(c));

  EXPECT_TRUE(b.Covers(0, 2));
  EXPECT_FALSE(b.Covers(0, 3));
  EXPECT_TRUE(b.Covers(5, 0));  // unknown thread at epoch 0 is covered
}

TEST(VectorClockTest, JoinIsIdempotentAndCommutative) {
  VectorClock a;
  VectorClock b;
  a.Set(0, 4);
  b.Set(1, 2);
  VectorClock ab = a;
  ab.Join(b);
  VectorClock ba = b;
  ba.Join(a);
  EXPECT_TRUE(ab.HappensBefore(ba));
  EXPECT_TRUE(ba.HappensBefore(ab));
  ab.Join(b);  // idempotent
  EXPECT_TRUE(ab.HappensBefore(ba));
}

// ---- exploration ----

/// Two threads each do a racy read-modify-write sequence (load; store v+1).
/// Some interleaving loses an update, so MC_CHECK(final == 2) must fail.
Options SmallDfs() {
  Options opts;
  opts.mode = Options::Mode::kDfs;
  opts.max_schedules = 5000;
  return opts;
}

// Model state is shared_ptr-captured by the spawned lambdas, never owned
// by bare new/delete in the body: a failing schedule unwinds out of the
// body via the halt exception before HaltAllAndJoin stops the model
// threads, so body-frame cleanup would either leak (skipped delete) or
// free state a halting thread still references (stack locals).
void LostUpdateBody(McRun& run) {
  auto counter = std::make_shared<InstrumentedAtomic<int>>(0);
  auto inc = [counter] {
    const int v = counter->load(std::memory_order_relaxed);
    counter->store(v + 1, std::memory_order_relaxed);
  };
  run.Spawn(inc);
  run.Spawn(inc);
  run.Await();
  MC_CHECK(counter->load(std::memory_order_relaxed) == 2);
}

TEST(ModelCheckTest, FindsLostUpdate) {
  const Result r = Explore(SmallDfs(), LostUpdateBody);
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure.find("MC_CHECK failed"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.failing_schedule.empty());
}

TEST(ModelCheckTest, AtomicRmwHasNoLostUpdate) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    InstrumentedAtomic<int> counter{0};
    auto inc = [&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    };
    run.Spawn(inc);
    run.Spawn(inc);
    run.Await();
    MC_CHECK(counter.load(std::memory_order_relaxed) == 2);
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.schedules, 1u);
  EXPECT_EQ(r.distinct, r.schedules);  // DFS never repeats a schedule
}

/// A found failure replays exactly from its recorded transition sequence.
TEST(ModelCheckTest, ReplayReproducesTheFailingSchedule) {
  const Result r = Explore(SmallDfs(), LostUpdateBody);
  ASSERT_TRUE(r.failed);
  const Result replay = Replay(SmallDfs(), r.failing_schedule, LostUpdateBody);
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.failure, r.failure);
}

/// Random mode is a pure function of (seed, schedule index): two runs give
/// the identical failing index and schedule.
TEST(ModelCheckTest, RandomModeIsDeterministicBySeed) {
  Options opts;
  opts.mode = Options::Mode::kRandom;
  opts.max_schedules = 2000;
  opts.seed = 42;
  const Result a = Explore(opts, LostUpdateBody);
  const Result b = Explore(opts, LostUpdateBody);
  ASSERT_TRUE(a.failed);
  ASSERT_TRUE(b.failed);
  EXPECT_EQ(a.failing_index, b.failing_index);
  EXPECT_EQ(a.failing_schedule, b.failing_schedule);
  EXPECT_EQ(a.failure, b.failure);
}

/// Sleep-set soundness: pruning must not lose outcomes. Explore a model
/// with three distinguishable final states with pruning on and off; the
/// reached final-state sets must be identical while the pruned exploration
/// completes in no more schedules.
TEST(ModelCheckTest, SleepSetPruningPreservesFinalStates) {
  auto explore = [](bool sleep_sets, std::set<int>* finals) {
    Options opts = SmallDfs();
    opts.sleep_sets = sleep_sets;
    return Explore(opts, [finals](McRun& run) {
      InstrumentedAtomic<int> x{0};
      run.Spawn([&x] { x.store(1, std::memory_order_relaxed); });
      run.Spawn([&x] {
        const int v = x.load(std::memory_order_relaxed);
        x.store(v + 10, std::memory_order_relaxed);
      });
      run.Await();
      finals->insert(x.load(std::memory_order_relaxed));
    });
  };
  std::set<int> pruned_finals;
  std::set<int> full_finals;
  const Result pruned = explore(true, &pruned_finals);
  const Result full = explore(false, &full_finals);
  EXPECT_FALSE(pruned.failed) << pruned.failure;
  EXPECT_FALSE(full.failed) << full.failure;
  EXPECT_TRUE(pruned.exhausted);
  EXPECT_TRUE(full.exhausted);
  EXPECT_EQ(pruned_finals, full_finals);
  EXPECT_EQ(full_finals, (std::set<int>{1, 10, 11}));
  EXPECT_LE(pruned.schedules, full.schedules);
  EXPECT_GT(pruned.sleep_pruned + (full.schedules - pruned.schedules), 0u)
      << "sleep sets pruned nothing on a model with independent begins";
}

/// Fully independent threads (different locations) collapse to one
/// representative schedule modulo begin-step placement.
TEST(ModelCheckTest, SleepSetsPruneIndependentOps) {
  Options opts = SmallDfs();
  const Result r = Explore(opts, [](McRun& run) {
    InstrumentedAtomic<int> x{0};
    InstrumentedAtomic<int> y{0};
    run.Spawn([&x] { x.store(1, std::memory_order_relaxed); });
    run.Spawn([&y] { y.store(1, std::memory_order_relaxed); });
    run.Await();
    MC_CHECK(x.load(std::memory_order_relaxed) == 1);
    MC_CHECK(y.load(std::memory_order_relaxed) == 1);
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
  Options full = opts;
  full.sleep_sets = false;
  const Result rf = Explore(full, [](McRun& run) {
    InstrumentedAtomic<int> x{0};
    InstrumentedAtomic<int> y{0};
    run.Spawn([&x] { x.store(1, std::memory_order_relaxed); });
    run.Spawn([&y] { y.store(1, std::memory_order_relaxed); });
    run.Await();
  });
  EXPECT_LT(r.schedules, rf.schedules)
      << "independent ops should prune below the full interleaving count";
}

/// CHESS-style preemption bound: the lost update needs a mid-sequence
/// preemption, so bound 0 must miss it and an unbounded run must find it.
TEST(ModelCheckTest, PreemptionBoundGatesTheBug) {
  Options bounded = SmallDfs();
  bounded.preemption_bound = 0;
  const Result none = Explore(bounded, LostUpdateBody);
  EXPECT_FALSE(none.failed) << none.failure;

  Options two = SmallDfs();
  two.preemption_bound = 2;
  const Result found = Explore(two, LostUpdateBody);
  EXPECT_TRUE(found.failed);
}

// ---- happens-before / race detection ----

/// Release/acquire publish: no race. The same protocol with the release
/// demoted to relaxed must be flagged — this is the "dropped release on
/// publish" seeded bug at model scale.
void PublishBody(McRun& run, std::memory_order publish_order) {
  auto data = std::make_shared<Var<int>>(0, "payload");
  auto flag = std::make_shared<InstrumentedAtomic<int>>(0);
  run.Spawn([data, flag, publish_order] {
    data->Write(42);
    flag->store(1, publish_order);
  });
  run.Spawn([data, flag] {
    if (flag->load(std::memory_order_acquire) == 1) {
      MC_CHECK(data->Read() == 42);
    }
  });
  run.Await();
}

TEST(ModelCheckTest, ReleaseAcquirePublishIsRaceFree) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    PublishBody(run, std::memory_order_release);
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelCheckTest, DroppedReleaseOnPublishIsARace) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    PublishBody(run, std::memory_order_relaxed);
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("payload"), std::string::npos) << r.failure;
}

/// The canonical deliberately-racy fixture: unsynchronized write/read of a
/// plain variable. The checker must flag it on some schedule.
TEST(ModelCheckTest, FlagsTheSeededRacyFixture) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    auto data = std::make_shared<Var<int>>(0, "racy_cell");
    run.Spawn([data] { data->Write(1); });
    run.Spawn([data] { (void)data->Read(); });
    run.Await();
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("racy_cell"), std::string::npos) << r.failure;
}

// ---- TSO store-buffer modeling ----

/// Store-buffering (SB) litmus: with relaxed stores under TSO both threads
/// can read 0 — sequential-consistency-only interleaving can never show
/// this, so this test is what proves the store buffers are modeled.
void SbLitmusBody(McRun& run, std::memory_order store_order,
                  std::memory_order load_order) {
  struct State {
    InstrumentedAtomic<int> x{0};
    InstrumentedAtomic<int> y{0};
    int r0 = -1;
    int r1 = -1;
  };
  auto s = std::make_shared<State>();
  run.Spawn([s, store_order, load_order] {
    s->x.store(1, store_order);
    s->r0 = s->y.load(load_order);
  });
  run.Spawn([s, store_order, load_order] {
    s->y.store(1, store_order);
    s->r1 = s->x.load(load_order);
  });
  run.Await();
  MC_CHECK(!(s->r0 == 0 && s->r1 == 0));
}

TEST(ModelCheckTest, TsoExposesRelaxedStoreBuffering) {
  Options opts = SmallDfs();
  opts.tso = true;
  const Result r = Explore(opts, [](McRun& run) {
    SbLitmusBody(run, std::memory_order_relaxed, std::memory_order_relaxed);
  });
  ASSERT_TRUE(r.failed) << "TSO store buffers must reach r0 == r1 == 0";
}

TEST(ModelCheckTest, SeqCstStoresForbidSbOutcome) {
  Options opts = SmallDfs();
  opts.tso = true;
  const Result r = Explore(opts, [](McRun& run) {
    SbLitmusBody(run, std::memory_order_seq_cst, std::memory_order_seq_cst);
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelCheckTest, WithoutTsoRelaxedSbOutcomeIsUnreachable) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    SbLitmusBody(run, std::memory_order_relaxed, std::memory_order_relaxed);
  });
  EXPECT_FALSE(r.failed) << r.failure;
}

// ---- Gate park/wake ----

/// Naive sleep/wake with no re-check: the wake can land before the park
/// and is lost, leaving the consumer parked forever — the checker must
/// report a deadlock on that interleaving.
TEST(ModelCheckTest, DetectsMissedWakeDeadlock) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    struct State {
      InstrumentedAtomic<int> work{0};
      Gate gate;
    };
    auto s = std::make_shared<State>();
    run.Spawn([s] {
      if (s->work.load(std::memory_order_seq_cst) == 0) {
        s->gate.Park();
      }
    });
    run.Spawn([s] {
      s->work.store(1, std::memory_order_seq_cst);
      s->gate.Wake();
    });
    run.Await();
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

/// The engine's actual discipline — Dekker flags plus a predicate re-check
/// serialized with the notify (modeled by the Gate eventcount) — has no
/// deadlock: either the consumer's re-check sees the work, or the producer
/// sees the parked flag and its wake bumps the epoch before CommitWait.
TEST(ModelCheckTest, ParkRecheckProtocolHasNoDeadlock) {
  const Result r = Explore(SmallDfs(), [](McRun& run) {
    struct State {
      InstrumentedAtomic<int> work{0};
      InstrumentedAtomic<int> parked{0};
      Gate gate;
    };
    auto s = std::make_shared<State>();
    run.Spawn([s] {
      s->parked.store(1, std::memory_order_seq_cst);
      const std::uint64_t epoch = s->gate.PrepareWait();
      if (s->work.load(std::memory_order_seq_cst) == 0) {
        s->gate.CommitWait(epoch);
      }
    });
    run.Spawn([s] {
      s->work.store(1, std::memory_order_seq_cst);
      if (s->parked.load(std::memory_order_seq_cst) == 1) {
        s->gate.Wake();
      }
    });
    run.Await();
  });
  EXPECT_FALSE(r.failed) << r.failure;
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace modelcheck
}  // namespace tds
