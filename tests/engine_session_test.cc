// ProducerSession unit tests: lifecycle and stats, staging/auto-flush,
// the route-epoch repartition path, the stopped-engine contract, the
// rate-weighted rebalancer's hot-slice selection, and the deprecated
// engine-global shims (which now run on internal one-shot sessions).
#include "engine/producer_session.h"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

ShardedAggregateEngine::Options EngineOptions(uint32_t shards) {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh, 0.2);
  options.shards = shards;
  return options;
}

/// First `count` keys (ascending from `start`) hashing into `slice`.
std::vector<uint64_t> KeysInSlice(uint32_t slice, uint32_t slice_count,
                                  size_t count, uint64_t start = 1) {
  std::vector<uint64_t> keys;
  for (uint64_t key = start; keys.size() < count; ++key) {
    if (ShardedAggregateEngine::SliceForKey(key, slice_count) == slice) {
      keys.push_back(key);
    }
  }
  return keys;
}

TEST(ShardedEngineSessionTest, LifecycleStatsAndTotals) {
  auto decay = SlidingWindowDecay::Create(1 << 12).value();
  auto engine = ShardedAggregateEngine::Create(decay, EngineOptions(2));
  ASSERT_TRUE(engine.ok());

  {
    auto session = (*engine)->NewProducer();
    ASSERT_TRUE(session.ok());
    EXPECT_EQ((*session)->staged(), 0u);
    ASSERT_TRUE((*session)->Add(1, 1, 5).ok());
    ASSERT_TRUE((*session)->Add(2, 1, 7).ok());
    EXPECT_EQ((*session)->staged(), 2u);
    // Staged items are invisible until a flush: nothing applied yet.
    EXPECT_TRUE((*session)->AuditInvariants().ok());
    ASSERT_TRUE((*session)->Flush().ok());
    EXPECT_EQ((*session)->staged(), 0u);
    ASSERT_TRUE((*engine)->Flush().ok());
    EXPECT_EQ((*engine)->ItemsApplied(), 2u);

    const auto stats = (*session)->stats();
    EXPECT_EQ(stats.items_staged, 2u);
    EXPECT_EQ(stats.items_flushed, 2u);
    EXPECT_EQ(stats.items_rejected, 0u);
    EXPECT_TRUE((*session)->AuditInvariants().ok());
  }
  const auto totals = (*engine)->SessionTotals();
  EXPECT_EQ(totals.sessions_opened, 1u);
  EXPECT_EQ(totals.sessions_closed, 1u);
  EXPECT_EQ(totals.items_staged, 2u);
  EXPECT_EQ(totals.items_flushed, 2u);
}

TEST(ShardedEngineSessionTest, AutoFlushAtCapacity) {
  auto decay = SlidingWindowDecay::Create(1 << 12).value();
  auto engine = ShardedAggregateEngine::Create(decay, EngineOptions(2));
  ASSERT_TRUE(engine.ok());

  ProducerSessionOptions options;
  options.staging_capacity = 8;
  auto session = (*engine)->NewProducer(options);
  ASSERT_TRUE(session.ok());
  std::vector<KeyedItem> items;
  for (uint64_t i = 0; i < 20; ++i) items.push_back(KeyedItem{i, 1, 1});
  ASSERT_TRUE((*session)->AddBatch(items).ok());
  // 20 items through a capacity-8 buffer: two full auto-flushes, 4 staged.
  EXPECT_EQ((*session)->staged(), 4u);
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 16u);
  ASSERT_TRUE((*session)->Flush().ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 20u);
  EXPECT_TRUE((*session)->AuditInvariants().ok());
}

TEST(ShardedEngineSessionTest, DestructorFlushesStagedItems) {
  auto decay = SlidingWindowDecay::Create(1 << 12).value();
  auto engine = ShardedAggregateEngine::Create(decay, EngineOptions(2));
  ASSERT_TRUE(engine.ok());
  {
    auto session = (*engine)->NewProducer();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->Add(42, 1, 9).ok());
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 1u);
  EXPECT_DOUBLE_EQ((*engine)->QueryKey(42, 1), 9.0);
}

TEST(ShardedEngineSessionTest, NewProducerValidatesOptions) {
  auto decay = SlidingWindowDecay::Create(1 << 12).value();
  auto engine = ShardedAggregateEngine::Create(decay, EngineOptions(2));
  ASSERT_TRUE(engine.ok());

  ProducerSessionOptions zero_capacity;
  zero_capacity.staging_capacity = 0;
  EXPECT_FALSE((*engine)->NewProducer(zero_capacity).ok());
  ProducerSessionOptions negative_deadline;
  negative_deadline.block_deadline = std::chrono::nanoseconds(-1);
  EXPECT_FALSE((*engine)->NewProducer(negative_deadline).ok());
  EXPECT_TRUE((*engine)->NewProducer().ok());
}

TEST(ShardedEngineSessionTest, StoppedEngineKeepsItemsStaged) {
  auto decay = SlidingWindowDecay::Create(1 << 12).value();
  auto engine = ShardedAggregateEngine::Create(decay, EngineOptions(2));
  ASSERT_TRUE(engine.ok());

  auto session = (*engine)->NewProducer();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Add(1, 1, 1).ok());
  ASSERT_TRUE((*session)->Add(2, 1, 1).ok());
  (*engine)->Stop();

  // Staging rejects fast; the already-staged items are kept (nothing was
  // admitted, nothing is counted) and a flush reports kFailedPrecondition.
  EXPECT_EQ((*session)->Add(3, 1, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->staged(), 2u);
  const auto stats = (*session)->stats();
  EXPECT_EQ(stats.items_flushed, 0u);
  EXPECT_EQ(stats.items_rejected, 0u);
  EXPECT_TRUE((*session)->AuditInvariants().ok());

  // New sessions are refused outright.
  EXPECT_EQ((*engine)->NewProducer().status().code(),
            StatusCode::kFailedPrecondition);
}

// A migration between staging and flush publishes a newer route epoch;
// the flush must re-partition the staged runs against the fresh table so
// every item lands on (and only on) its current owner shard.
TEST(ShardedEngineSessionTest, FlushRepartitionsAfterMigration) {
  constexpr uint32_t kShards = 2;
  constexpr uint32_t kSlices = 64;
  auto decay = PolynomialDecay::Create(1.0).value();
  auto options = EngineOptions(kShards);
  options.route_slices = kSlices;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());

  // Multi-tick traffic (ticks interleaved across keys) so the
  // repartition's stable tick sort is actually exercised.
  std::vector<KeyedItem> schedule;
  Rng rng(77);
  for (Tick t = 1; t <= 10; ++t) {
    for (int i = 0; i < 40; ++i) {
      schedule.push_back(
          KeyedItem{1 + rng.NextBelow(100), t, 1 + rng.NextBelow(4)});
    }
  }
  auto reference = AggregateRegistry::Create(decay, options.registry);
  ASSERT_TRUE(reference.ok());
  for (const KeyedItem& item : schedule) {
    reference->Update(item.key, item.t, item.value);
  }

  auto session = (*engine)->NewProducer();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AddBatch(schedule).ok());
  EXPECT_EQ((*session)->staged(), 400u);

  // Re-route every slice to shard 1 while the 400 items sit staged: the
  // session's cached table is now a full generation behind.
  const uint64_t generation_before = (*engine)->RouteGeneration();
  std::vector<uint32_t> slices;
  for (uint32_t s = 0; s < kSlices; ++s) slices.push_back(s);
  ASSERT_TRUE((*engine)->MigrateSlices(slices, 1).ok());
  EXPECT_GT((*engine)->RouteGeneration(), generation_before);

  ASSERT_TRUE((*session)->Flush().ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  // Conservation: exactly once each — a stale-routed run would break the
  // count (or the per-key values below).
  EXPECT_EQ((*engine)->ItemsApplied(), 400u);
  const auto stats = (*engine)->Stats();
  ASSERT_EQ(stats.size(), kShards);
  // Everything re-routed to shard 1; shard 0 must have applied nothing.
  EXPECT_EQ(stats[0].items_applied, 0u);
  EXPECT_EQ(stats[1].items_applied, 400u);
  for (uint64_t key = 1; key <= 100; ++key) {
    EXPECT_DOUBLE_EQ((*engine)->QueryKey(key, 10), reference->Query(key, 10))
        << "key=" << key;
  }
  EXPECT_TRUE((*session)->AuditInvariants().ok());
}

// The rebalancer must move *hot* slices, not just populous ones: a small
// slice taking most of the offered load outranks a populous cold slice.
TEST(ShardedEngineSessionTest, RebalancePrefersHotSliceOverPopulousColdOne) {
  constexpr uint32_t kShards = 2;
  constexpr uint32_t kSlices = 64;
  auto decay = SlidingWindowDecay::Create(1 << 16).value();
  auto options = EngineOptions(kShards);
  options.route_slices = kSlices;
  options.rebalance_min_keys = 16;
  options.rebalance_skew = 1.5;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());

  // Initial route is round-robin: even slices → shard 0, odd → shard 1.
  // Donor load on shard 0: a cold slice with 300 keys / one item each,
  // and a hot slice with 20 keys / 5000 items. Receiver shard 1 gets a
  // token population.
  const uint32_t cold_slice = 0;
  const uint32_t hot_slice = 2;
  const uint32_t receiver_slice = 1;
  const auto cold_keys = KeysInSlice(cold_slice, kSlices, 300);
  const auto hot_keys = KeysInSlice(hot_slice, kSlices, 20);
  const auto receiver_keys = KeysInSlice(receiver_slice, kSlices, 5);

  auto session = (*engine)->NewProducer();
  ASSERT_TRUE(session.ok());
  for (const uint64_t key : cold_keys) {
    ASSERT_TRUE((*session)->Add(key, 1, 1).ok());
  }
  for (const uint64_t key : receiver_keys) {
    ASSERT_TRUE((*session)->Add(key, 1, 1).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE((*session)->Add(hot_keys[i % hot_keys.size()], 1, 1).ok());
  }
  ASSERT_TRUE((*session)->Flush().ok());
  ASSERT_TRUE((*engine)->Flush().ok());

  // Donor = shard 0 (320 keys) vs receiver = shard 1 (5 keys): gap 315.
  // Hottest-first greedy: the hot slice (rate 5000, 20 keys) is accepted
  // (2*0 + 20 < 315); the cold slice (rate 300, 300 keys) is then
  // rejected (2*20 + 300 >= 315). Key-count ordering — the old behavior —
  // would have moved the cold slice instead and left no room for the hot
  // one.
  auto moved = (*engine)->RebalanceIfSkewed();
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(moved.value());
  for (const uint64_t key : hot_keys) {
    EXPECT_EQ((*engine)->RouteForKey(key), 1u) << "hot key=" << key;
  }
  for (const uint64_t key : cold_keys) {
    EXPECT_EQ((*engine)->RouteForKey(key), 0u) << "cold key=" << key;
  }
}

// The deprecated engine-global entry points must keep their historical
// contracts while running on internal one-shot sessions (they are shims,
// not a parallel implementation).
TEST(ShardedEngineSessionTest, LegacyShimsKeepTheirContracts) {
  auto decay = SlidingWindowDecay::Create(1 << 12).value();
  auto engine = ShardedAggregateEngine::Create(decay, EngineOptions(2));
  ASSERT_TRUE(engine.ok());

  std::vector<KeyedItem> items;
  for (uint64_t i = 0; i < 100; ++i) items.push_back(KeyedItem{i, 1, 2});
  ASSERT_TRUE((*engine)->IngestBatch(items).ok());  // tds-lint: allow(deprecated-ingest)
  ASSERT_TRUE((*engine)->Ingest(7, 2, 3).ok());  // tds-lint: allow(deprecated-ingest)
  std::vector<KeyedItem> later;
  for (uint64_t i = 0; i < 100; ++i) later.push_back(KeyedItem{i, 3, 2});
  ASSERT_TRUE(
      // The deprecated shim itself is the thing under test here.
      (*engine)->TryUpdateBatch(later, std::chrono::milliseconds(50)).ok());  // tds-lint: allow(deprecated-ingest)
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 201u);

  // Internal one-shot sessions count items but not session open/close.
  const auto totals = (*engine)->SessionTotals();
  EXPECT_EQ(totals.sessions_opened, 0u);
  EXPECT_EQ(totals.sessions_closed, 0u);
  EXPECT_EQ(totals.items_staged, 201u);
  EXPECT_EQ(totals.items_flushed, 201u);

  (*engine)->Stop();
  EXPECT_EQ((*engine)->Ingest(1, 3, 1).code(),  // tds-lint: allow(deprecated-ingest)
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      // The deprecated shim itself is the thing under test here.
      (*engine)->TryUpdateBatch(items, std::chrono::nanoseconds(0)).code(),  // tds-lint: allow(deprecated-ingest)
      StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tds
