// Dual-mode incremental-checkpoint fuzz driver (docs/CORRECTNESS.md): a
// live engine plus a CheckpointLog plus a StandbyFollower are driven
// through byte-stream-derived interleavings of ingest, incremental
// checkpoints, compactions, log reopens ("process restarts"), cold
// restores, and standby applies while the four new failpoints
// (ckptlog.segment.write / ckptlog.manifest.commit / ckptlog.compact /
// standby.apply) are armed and disarmed at random.
//
// The oracle is crash consistency by byte identity: after every successful
// commit the driver records the engine's merged registry blob, and from
// then on — no matter which operations fail under injected faults — a cold
// LoadCheckpointLog must recover EXACTLY that blob (the serially-fed
// reference) until the next successful commit replaces it. Manifest and
// segment codecs audit themselves on every decode along the way, and the
// final act promotes the follower and checks the same byte identity.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/checkpoint_log.h"
#include "engine/engine.h"
#include "engine/merged_snapshot.h"
#include "engine/producer_session.h"
#include "engine/registry.h"
#include "engine/standby.h"
#include "fuzz_util.h"
#include "util/failpoint.h"

namespace tds {
namespace {

constexpr uint32_t kShards = 3;
constexpr uint32_t kSlices = 24;
constexpr uint64_t kKeySpace = 48;

constexpr const char* kFailpoints[] = {
    "ckptlog.segment.write",
    "ckptlog.manifest.commit",
    "ckptlog.compact",
    "standby.apply",
};

ShardedAggregateEngine::Options EngineOptions(Backend backend) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(backend)
                                   .epsilon(0.15)
                                   .Build()
                                   .value();
  options.shards = kShards;
  options.route_slices = kSlices;
  return options;
}

void ExpectCleanStatus(const Status& status, const FuzzInput& in) {
  if (status.ok()) return;
  TDS_FUZZ_CHECK(status.code() == StatusCode::kUnavailable ||
                     status.code() == StatusCode::kFailedPrecondition ||
                     status.code() == StatusCode::kInvalidArgument,
                 in, "unclean status: ", status.ToString());
}

std::string MergedBlob(ShardedAggregateEngine& engine, const FuzzInput& in) {
  auto merged = engine.Snapshot();
  TDS_FUZZ_CHECK(merged.ok(), in, "Snapshot: ", merged.status().ToString());
  std::string blob;
  TDS_FUZZ_CHECK_OK(merged->EncodeRegistryState(&blob), in, "EncodeRegistry");
  return blob;
}

struct CkptLogFuzzCoverage {
  uint64_t commits = 0;
  uint64_t compactions = 0;
  uint64_t cold_restores = 0;
  uint64_t standby_catchups = 0;
  uint64_t log_reopens = 0;
  uint64_t faults_armed = 0;
};

CkptLogFuzzCoverage RunCheckpointLogFuzz(const DecayPtr& decay,
                                         Backend backend,
                                         const std::string& dir, int max_ops,
                                         FuzzInput& in) {
  failpoint::DisarmAll();
  std::filesystem::remove_all(dir);
  const auto options = EngineOptions(backend);
  auto created = ShardedAggregateEngine::Create(decay, options);
  TDS_FUZZ_CHECK(created.ok(), in, created.status().ToString());
  auto& engine = **created;
  TDS_FUZZ_CHECK_OK(engine.EnableCheckpointTracking(), in, "tracking");

  CheckpointLog::Options log_options;
  log_options.io_retries = static_cast<uint32_t>(in.Below(3));
  log_options.backoff.sleeper = [](std::chrono::nanoseconds) {};
  log_options.compact_min_segments = in.Below(2) == 0 ? 0 : 9;
  auto opened = CheckpointLog::Create(engine, dir, log_options);
  TDS_FUZZ_CHECK(opened.ok(), in, opened.status().ToString());
  auto log = std::make_unique<CheckpointLog>(std::move(opened).value());

  auto follower_created =
      StandbyFollower::Create(decay, options.registry, dir);
  TDS_FUZZ_CHECK(follower_created.ok(), in,
                 follower_created.status().ToString());
  auto follower =
      std::make_unique<StandbyFollower>(std::move(follower_created).value());

  Tick t = 1;
  CkptLogFuzzCoverage coverage;
  // The serially-fed reference: the engine blob at the last successful
  // commit, which every recovery path must reproduce byte-for-byte.
  std::string committed_blob;
  uint64_t committed_gen = 0;
  bool have_commit = false;

  // A successful WriteIncremental (or Compact) moved the committed state;
  // refresh the reference. Injected faults must NOT reach this point.
  const auto record_commit = [&](bool state_changed) {
    failpoint::DisarmAll();
    if (state_changed) committed_blob = MergedBlob(engine, in);
    committed_gen = log->manifest().generation;
    have_commit = true;
  };
  const auto check_cold_restore = [&] {
    if (!have_commit) return;
    auto loaded = LoadCheckpointLog(decay, options.registry, dir);
    TDS_FUZZ_CHECK(loaded.ok(), in,
                   "cold restore: ", loaded.status().ToString());
    std::vector<AggregateRegistry> shards;
    shards.push_back(std::move(loaded).value());
    auto merged = MergedSnapshot::FromShards(std::move(shards));
    TDS_FUZZ_CHECK(merged.ok(), in, merged.status().ToString());
    std::string blob;
    TDS_FUZZ_CHECK_OK(merged->EncodeRegistryState(&blob), in, "re-encode");
    TDS_FUZZ_CHECK(blob == committed_blob, in,
                   "recovered blob differs from the committed reference "
                   "(gen=", committed_gen, ")");
    ++coverage.cold_restores;
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(16);
    if (kind < 7) {
      const size_t size = 1 + in.Below(64);
      std::vector<KeyedItem> batch;
      batch.reserve(size);
      for (size_t i = 0; i < size; ++i) {
        if (in.Below(4) == 0) ++t;
        batch.push_back(KeyedItem{in.Below(kKeySpace), t, 1 + in.Below(4)});
      }
      ProducerSessionOptions session_options;
      session_options.staging_capacity = batch.size() + 1;
      auto session = engine.NewProducer(session_options);
      TDS_FUZZ_CHECK(session.ok(), in, session.status().ToString());
      TDS_FUZZ_CHECK_OK((*session)->AddBatch(batch), in, "AddBatch");
      TDS_FUZZ_CHECK_OK((*session)->Flush(), in, "session Flush");
    } else if (kind < 9) {
      // Arm a random checkpoint/standby failpoint: transient (nth-hit),
      // persistent (sticky), or probabilistic, seeded from the stream.
      const char* name = kFailpoints[in.Below(std::size(kFailpoints))];
      const uint64_t mode = in.Below(3);
      if (mode == 0) {
        failpoint::ArmNthHit(name, 1 + in.Below(4));
      } else if (mode == 1) {
        failpoint::Scenario scenario;
        scenario.fire_on_hit = 1;
        scenario.sticky = true;
        failpoint::Arm(name, scenario);
      } else {
        failpoint::ArmProbability(name, 0.4, in.U64());
      }
      ++coverage.faults_armed;
    } else if (kind == 9) {
      failpoint::DisarmAll();
    } else if (kind == 10 || kind == 11) {
      // Incremental checkpoint under whatever faults are live. Success
      // advances the reference; failure must leave recovery EXACTLY on
      // the previous committed generation (checked by later restores).
      const Status wrote = log->WriteIncremental();
      ExpectCleanStatus(wrote, in);
      if (wrote.ok()) {
        record_commit(/*state_changed=*/true);
        ++coverage.commits;
      }
    } else if (kind == 12) {
      // Compaction folds history without changing the recovered state:
      // the reference blob stays, only the generation moves.
      const Status compacted = log->Compact();
      ExpectCleanStatus(compacted, in);
      if (compacted.ok() && have_commit) {
        record_commit(/*state_changed=*/false);
        ++coverage.compactions;
      }
    } else if (kind == 13) {
      check_cold_restore();
    } else if (kind == 14) {
      // Standby tails the log under faults; a failed apply must keep its
      // applied watermark (its view stays the last consistent one).
      const uint64_t before = follower->applied_generation();
      const Status applied = follower->ApplyNew();
      ExpectCleanStatus(applied, in);
      if (applied.ok() && have_commit) {
        TDS_FUZZ_CHECK(follower->applied_generation() == committed_gen, in,
                       "standby landed on gen ",
                       follower->applied_generation(), " not committed gen ",
                       committed_gen);
        ++coverage.standby_catchups;
      } else if (!applied.ok()) {
        TDS_FUZZ_CHECK(follower->applied_generation() == before, in,
                       "failed apply moved the standby watermark");
      }
    } else {
      // "Process restart": reopen the log against the same directory. The
      // resumed writer continues after the newest committed generation and
      // its first capture is a full snapshot (epochs restart at zero).
      failpoint::DisarmAll();
      auto reopened = CheckpointLog::Create(engine, dir, log_options);
      TDS_FUZZ_CHECK(reopened.ok(), in, reopened.status().ToString());
      log = std::make_unique<CheckpointLog>(std::move(reopened).value());
      if (have_commit) {
        TDS_FUZZ_CHECK(log->manifest().generation == committed_gen, in,
                       "reopen lost the committed generation");
      }
      ++coverage.log_reopens;
    }

    // Periodic stabilization: faults cleared, one commit must succeed and
    // every recovery path must land on it.
    if ((op + 1) % 48 == 0) {
      failpoint::DisarmAll();
      TDS_FUZZ_CHECK_OK(log->WriteIncremental(), in, "stabilize op=", op);
      record_commit(/*state_changed=*/true);
      check_cold_restore();
      TDS_FUZZ_CHECK_OK(follower->ApplyNew(), in, "stabilize standby");
      TDS_FUZZ_CHECK(follower->applied_generation() == committed_gen, in,
                     "stabilized standby behind the committed generation");
    }
  }

  // Final failover: clear faults, commit what is pending, then promote the
  // follower — the promoted engine must be byte-identical to the committed
  // reference (and therefore to the primary).
  failpoint::DisarmAll();
  TDS_FUZZ_CHECK_OK(log->WriteIncremental(), in, "final commit");
  record_commit(/*state_changed=*/true);
  check_cold_restore();
  TDS_FUZZ_CHECK_OK(follower->ApplyNew(), in, "final standby catch-up");
  auto promoted = follower->Promote(EngineOptions(backend));
  TDS_FUZZ_CHECK(promoted.ok(), in, "Promote: ", promoted.status().ToString());
  TDS_FUZZ_CHECK(MergedBlob(**promoted, in) == committed_blob, in,
                 "promoted engine differs from the committed reference");
  (*promoted)->Stop();
  engine.Stop();
  std::filesystem::remove_all(dir);
  return coverage;
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

TEST(CheckpointLogFuzzTest, RecoveryAlwaysLandsOnCommittedGeneration) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  struct Config {
    const char* label;
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {"CEH", SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(::testing::Message() << config.label << " seed=" << seed);
      const std::string dir = ::testing::TempDir() + "tds_ckptlog_fuzz_" +
                              config.label + "_" + std::to_string(seed);
      FuzzInput in = FuzzInput::FromSeed(
          seed * 5261 + static_cast<uint64_t>(config.backend), 200 * 128);
      const CkptLogFuzzCoverage coverage = RunCheckpointLogFuzz(
          config.decay, config.backend, dir, 200, in);
      EXPECT_GT(coverage.commits, 0u);
      EXPECT_GT(coverage.faults_armed, 0u);
      EXPECT_GT(coverage.cold_restores, 0u);
      EXPECT_GT(coverage.standby_catchups, 0u);
    }
  }
  failpoint::DisarmAll();
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point; without -DTDS_FAILPOINTS the fault surface
// does not exist, so the harness is a no-op (the fuzz build enables both).
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (!tds::kFailpointsEnabled) return 0;
  tds::FuzzInput in(data, size);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tds_ckptlog_fuzzer")
          .string();
  constexpr int kMaxOps = 384;
  if (in.Below(2) == 0) {
    (void)tds::RunCheckpointLogFuzz(
        tds::SlidingWindowDecay::Create(96).value(), tds::Backend::kCeh, dir,
        kMaxOps, in);
  } else {
    (void)tds::RunCheckpointLogFuzz(
        tds::PolynomialDecay::Create(1.0).value(), tds::Backend::kWbmh, dir,
        kMaxOps, in);
  }
  tds::failpoint::DisarmAll();
  std::filesystem::remove_all(dir);
  return 0;
}

#endif  // TDS_LIBFUZZER
