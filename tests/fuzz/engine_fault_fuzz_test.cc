// Dual-mode fault-injection fuzz driver (docs/CORRECTNESS.md): a live
// ShardedAggregateEngine is driven through byte-stream-derived
// interleavings of ingest, queries, snapshots, migrations, and checkpoint
// round-trips while failpoints (util/failpoint.h) are armed and disarmed at
// random. The contract under test is the robustness one, not value
// accuracy: every injected failure must surface as a clean Status — never a
// crash, hang, or audit violation — and once the faults are cleared the
// engine must stabilize: Flush succeeds, snapshots publish again,
// invariants audit clean, and every submitted item is accounted for as
// applied or rejected (conservation: nothing lost, nothing duplicated).
//
// Ingest goes through a ProducerSession flushed under
// kBlockWithDeadline with a finite deadline so that even a sticky
// "engine.ring.push" fault ends in kUnavailable (staged items dropped as
// rejected), keeping the driver hang-free by construction. The whole suite skips without -DTDS_FAILPOINTS
// (tools/check.sh runs it in the `faults` stage under ASan+UBSan).
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/merged_snapshot.h"
#include "engine/producer_session.h"
#include "engine/registry.h"
#include "fuzz_util.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr uint32_t kShards = 3;
constexpr uint32_t kSlices = 24;
constexpr uint64_t kKeySpace = 48;

// Every failpoint the engine stack defines, all fair game for arming.
constexpr const char* kFailpoints[] = {
    "engine.ring.push",   "engine.migrate",     "registry.merge",
    "registry.extract",   "registry.encode",    "registry.decode",
    "registry.arena.grow", "checkpoint.write",  "checkpoint.commit",
};

ShardedAggregateEngine::Options EngineOptions(Backend backend) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(backend)
                                   .epsilon(0.15)
                                   .Build()
                                   .value();
  options.shards = kShards;
  options.route_slices = kSlices;
  options.queue_capacity = 256;  // small ring: admission paths get exercised
  return options;
}

/// A status from a fault-bearing operation: success or a clean refusal
/// (injected faults surface as kUnavailable; validation of fuzz-chosen
/// arguments may legitimately say kInvalidArgument).
void ExpectCleanStatus(const Status& status, const FuzzInput& in) {
  if (status.ok()) return;
  TDS_FUZZ_CHECK(status.code() == StatusCode::kUnavailable ||
                     status.code() == StatusCode::kFailedPrecondition ||
                     status.code() == StatusCode::kInvalidArgument,
                 in, "unclean status: ", status.ToString());
}

uint64_t StatsAccounted(const ShardedAggregateEngine& engine) {
  uint64_t total = 0;
  for (const auto& s : engine.Stats()) {
    total += s.items_applied + s.items_rejected;
  }
  return total;
}

struct FaultFuzzCoverage {
  uint64_t checkpoints_ok = 0;
  uint64_t faults_armed = 0;
};

FaultFuzzCoverage RunEngineFaultFuzz(const DecayPtr& decay, Backend backend,
                                     const std::string& ckpt_path,
                                     int max_ops, FuzzInput& in) {
  failpoint::DisarmAll();
  const auto options = EngineOptions(backend);
  auto created = ShardedAggregateEngine::Create(decay, options);
  TDS_FUZZ_CHECK(created.ok(), in, created.status().ToString());
  auto& engine = **created;

  Tick t = 1;
  uint64_t submitted = 0;
  FaultFuzzCoverage coverage;
  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(16);
    if (kind < 7) {
      // Ingest under whatever faults are live. Finite deadline: the
      // call must terminate even against a sticky ring-push fault.
      const size_t size = 1 + in.Below(96);
      std::vector<KeyedItem> batch;
      batch.reserve(size);
      for (size_t i = 0; i < size; ++i) {
        if (in.Below(4) == 0) ++t;
        batch.push_back(KeyedItem{in.Below(kKeySpace), t, 1 + in.Below(4)});
      }
      ProducerSessionOptions session_options;
      session_options.staging_capacity = batch.size() + 1;
      session_options.backpressure = BackpressurePolicy::kBlockWithDeadline;
      session_options.block_deadline = std::chrono::milliseconds(50);
      auto session = engine.NewProducer(session_options);
      TDS_FUZZ_CHECK(session.ok(), in, session.status().ToString());
      ExpectCleanStatus((*session)->AddBatch(batch), in);
      ExpectCleanStatus((*session)->Flush(), in);
      // Accepted or rejected, every item is now the engine's to
      // account for (partial admission lands in items_rejected).
      submitted += size;
    } else if (kind < 9) {
      // Queries against possibly-null published snapshots: any double
      // is fine, crashing or hanging is not.
      (void)engine.QueryKey(in.Below(kKeySpace), t);
      (void)engine.KeyCount();
    } else if (kind == 9) {
      auto merged = engine.Snapshot();
      if (!merged.ok()) ExpectCleanStatus(merged.status(), in);
    } else if (kind == 10) {
      // Migration under faults: refusal must leave routing coherent —
      // proven by later conservation + audits, not asserted here.
      std::vector<uint32_t> slices;
      const uint32_t first = static_cast<uint32_t>(in.Below(kSlices));
      const uint32_t count = 1 + static_cast<uint32_t>(in.Below(5));
      for (uint32_t i = 0; i < count; ++i) {
        slices.push_back((first + i) % kSlices);
      }
      ExpectCleanStatus(
          engine.MigrateSlices(slices,
                               static_cast<uint32_t>(in.Below(kShards))),
          in);
    } else if (kind == 11) {
      // Checkpoint write/load round-trip under faults. A load is only
      // attempted from a checkpoint that reported success — and then
      // it must decode (possibly via .prev) unless a fault hits the
      // load path itself.
      const Status wrote = WriteCheckpoint(engine, ckpt_path);
      ExpectCleanStatus(wrote, in);
      if (wrote.ok()) {
        ++coverage.checkpoints_ok;
        auto loaded = LoadCheckpoint(decay, options.registry, ckpt_path);
        if (!loaded.ok()) ExpectCleanStatus(loaded.status(), in);
      }
    } else if (kind < 15) {
      // Arm a random failpoint with a random scenario. Probability
      // scenarios are seeded from the input stream: replayable.
      const char* name = kFailpoints[in.Below(std::size(kFailpoints))];
      const uint64_t mode = in.Below(3);
      if (mode == 0) {
        failpoint::ArmNthHit(name, 1 + in.Below(4));
      } else if (mode == 1) {
        failpoint::Scenario scenario;
        scenario.fire_on_hit = 1;
        scenario.sticky = true;
        failpoint::Arm(name, scenario);
      } else {
        failpoint::ArmProbability(name, 0.4, in.U64());
      }
      ++coverage.faults_armed;
    } else {
      failpoint::DisarmAll();
    }

    // Periodic stabilization: with faults cleared the engine must be
    // fully healthy again — this is the recovery half of the contract.
    if ((op + 1) % 40 == 0) {
      failpoint::DisarmAll();
      TDS_FUZZ_CHECK_OK(engine.Flush(), in, "Flush op=", op);
      auto merged = engine.Snapshot();
      TDS_FUZZ_CHECK(merged.ok(), in,
                     "Snapshot: ", merged.status().ToString());
      AggregateRegistry registry = std::move(*merged).ReleaseRegistry();
      TDS_FUZZ_CHECK_OK(registry.AuditInvariants(), in, "audit op=", op);
      TDS_FUZZ_CHECK(StatsAccounted(engine) == submitted, in,
                     "conservation: accounted=", StatsAccounted(engine),
                     " submitted=", submitted);
    }
  }

  // Final settle: conservation plus a clean audit after the storm.
  failpoint::DisarmAll();
  TDS_FUZZ_CHECK_OK(engine.Flush(), in, "final Flush");
  TDS_FUZZ_CHECK(StatsAccounted(engine) == submitted, in,
                 "final conservation: accounted=", StatsAccounted(engine),
                 " submitted=", submitted);
  auto merged = engine.Snapshot();
  TDS_FUZZ_CHECK(merged.ok(), in,
                 "final Snapshot: ", merged.status().ToString());
  AggregateRegistry registry = std::move(*merged).ReleaseRegistry();
  TDS_FUZZ_CHECK_OK(registry.AuditInvariants(), in, "final audit");
  engine.Stop();
  return coverage;
}

void CleanupCheckpoint(const std::string& ckpt_path) {
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  std::filesystem::remove(ckpt_path + ".prev", ec);
  std::filesystem::remove(ckpt_path + ".tmp", ec);
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

TEST(EngineFaultFuzzTest, InjectedFaultsNeverCrashHangOrCorrupt) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  struct Config {
    const char* label;
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {"CEH", SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  const std::string ckpt_path =
      ::testing::TempDir() + "tds_fault_fuzz_checkpoint";
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(::testing::Message() << config.label << " seed=" << seed);
      FuzzInput in = FuzzInput::FromSeed(
          seed * 9176 + static_cast<uint64_t>(config.backend), 220 * 128);
      const FaultFuzzCoverage coverage =
          RunEngineFaultFuzz(config.decay, config.backend, ckpt_path, 220,
                             in);
      EXPECT_GT(coverage.faults_armed, 0u);
      EXPECT_GT(coverage.checkpoints_ok, 0u);
    }
  }
  failpoint::DisarmAll();
  CleanupCheckpoint(ckpt_path);
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point. Without -DTDS_FAILPOINTS the harness is a
// no-op (the fault surface does not exist); the fuzz build enables both.
// Coverage counters are bookkeeping for the deterministic wrapper, not an
// invariant arbitrary byte streams could promise.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (!tds::kFailpointsEnabled) return 0;
  tds::FuzzInput in(data, size);
  const std::string ckpt_path =
      (std::filesystem::temp_directory_path() / "tds_fault_fuzzer_ckpt")
          .string();
  constexpr int kMaxOps = 512;
  if (in.Below(2) == 0) {
    (void)tds::RunEngineFaultFuzz(
        tds::SlidingWindowDecay::Create(96).value(), tds::Backend::kCeh,
        ckpt_path, kMaxOps, in);
  } else {
    (void)tds::RunEngineFaultFuzz(tds::PolynomialDecay::Create(1.0).value(),
                                  tds::Backend::kWbmh, ckpt_path, kMaxOps,
                                  in);
  }
  tds::failpoint::DisarmAll();
  tds::CleanupCheckpoint(ckpt_path);
  return 0;
}

#endif  // TDS_LIBFUZZER
