// Deterministic fault-injection fuzz driver (docs/CORRECTNESS.md): a live
// ShardedAggregateEngine is driven through seed-derived interleavings of
// ingest, queries, snapshots, migrations, and checkpoint round-trips while
// failpoints (util/failpoint.h) are armed and disarmed at random. The
// contract under test is the robustness one, not value accuracy: every
// injected failure must surface as a clean Status — never a crash, hang,
// or audit violation — and once the faults are cleared the engine must
// stabilize: Flush succeeds, snapshots publish again, invariants audit
// clean, and every submitted item is accounted for as applied or rejected
// (conservation: nothing lost, nothing duplicated).
//
// Ingest always uses TryUpdateBatch with a finite deadline so that even a
// sticky "engine.ring.push" fault ends in kUnavailable, keeping the driver
// hang-free by construction. The whole suite skips without -DTDS_FAILPOINTS
// (tools/check.sh runs it in the `faults` stage under ASan+UBSan).
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/merged_snapshot.h"
#include "engine/registry.h"
#include "fuzz_util.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr uint32_t kShards = 3;
constexpr uint32_t kSlices = 24;
constexpr uint64_t kKeySpace = 48;

// Every failpoint the engine stack defines, all fair game for arming.
constexpr const char* kFailpoints[] = {
    "engine.ring.push",   "engine.migrate",     "registry.merge",
    "registry.extract",   "registry.encode",    "registry.decode",
    "registry.arena.grow", "checkpoint.write",  "checkpoint.commit",
};

ShardedAggregateEngine::Options EngineOptions(Backend backend) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(backend)
                                   .epsilon(0.15)
                                   .Build()
                                   .value();
  options.shards = kShards;
  options.route_slices = kSlices;
  options.queue_capacity = 256;  // small ring: admission paths get exercised
  return options;
}

/// A status from a fault-bearing operation: success or a clean refusal
/// (injected faults surface as kUnavailable; validation of fuzz-chosen
/// arguments may legitimately say kInvalidArgument).
void ExpectCleanStatus(const Status& status) {
  if (status.ok()) return;
  EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||
              status.code() == StatusCode::kFailedPrecondition ||
              status.code() == StatusCode::kInvalidArgument)
      << status.message();
}

uint64_t StatsAccounted(const ShardedAggregateEngine& engine) {
  uint64_t total = 0;
  for (const auto& s : engine.Stats()) {
    total += s.items_applied + s.items_rejected;
  }
  return total;
}

TEST(EngineFaultFuzzTest, InjectedFaultsNeverCrashHangOrCorrupt) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  struct Config {
    const char* label;
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {"CEH", SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  const std::string ckpt_path =
      ::testing::TempDir() + "tds_fault_fuzz_checkpoint";
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(::testing::Message() << config.label << " seed=" << seed);
      failpoint::DisarmAll();
      const auto options = EngineOptions(config.backend);
      auto created = ShardedAggregateEngine::Create(config.decay, options);
      ASSERT_TRUE(created.ok());
      auto& engine = **created;

      FuzzRng rng(seed * 9176 + static_cast<uint64_t>(config.backend));
      Tick t = 1;
      uint64_t submitted = 0;
      uint64_t checkpoints_ok = 0;
      uint64_t faults_armed = 0;
      for (int op = 0; op < 220; ++op) {
        SCOPED_TRACE(::testing::Message()
                     << "op=" << op << " counter=" << rng.counter());
        const uint64_t kind = rng.NextBelow(16);
        if (kind < 7) {
          // Ingest under whatever faults are live. Finite deadline: the
          // call must terminate even against a sticky ring-push fault.
          const size_t size = 1 + rng.NextBelow(96);
          std::vector<KeyedItem> batch;
          batch.reserve(size);
          for (size_t i = 0; i < size; ++i) {
            if (rng.NextBelow(4) == 0) ++t;
            batch.push_back(
                KeyedItem{rng.NextBelow(kKeySpace), t, 1 + rng.NextBelow(4)});
          }
          ExpectCleanStatus(
              engine.TryUpdateBatch(batch, std::chrono::milliseconds(50)));
          // Accepted or rejected, every item is now the engine's to
          // account for (partial admission lands in items_rejected).
          submitted += size;
        } else if (kind < 9) {
          // Queries against possibly-null published snapshots: any double
          // is fine, crashing or hanging is not.
          (void)engine.QueryKey(rng.NextBelow(kKeySpace), t);
          (void)engine.KeyCount();
        } else if (kind == 9) {
          auto merged = engine.Snapshot();
          if (!merged.ok()) ExpectCleanStatus(merged.status());
        } else if (kind == 10) {
          // Migration under faults: refusal must leave routing coherent —
          // proven by later conservation + audits, not asserted here.
          std::vector<uint32_t> slices;
          const uint32_t first = static_cast<uint32_t>(rng.NextBelow(kSlices));
          const uint32_t count = 1 + static_cast<uint32_t>(rng.NextBelow(5));
          for (uint32_t i = 0; i < count; ++i) {
            slices.push_back((first + i) % kSlices);
          }
          ExpectCleanStatus(engine.MigrateSlices(
              slices, static_cast<uint32_t>(rng.NextBelow(kShards))));
        } else if (kind == 11) {
          // Checkpoint write/load round-trip under faults. A load is only
          // attempted from a checkpoint that reported success — and then
          // it must decode (possibly via .prev) unless a fault hits the
          // load path itself.
          const Status wrote = WriteCheckpoint(engine, ckpt_path);
          ExpectCleanStatus(wrote);
          if (wrote.ok()) {
            ++checkpoints_ok;
            auto loaded =
                LoadCheckpoint(config.decay, options.registry, ckpt_path);
            if (!loaded.ok()) ExpectCleanStatus(loaded.status());
          }
        } else if (kind < 15) {
          // Arm a random failpoint with a random scenario. Probability
          // scenarios are seeded from the draw counter: replayable.
          const char* name = kFailpoints[rng.NextBelow(std::size(kFailpoints))];
          const uint64_t mode = rng.NextBelow(3);
          if (mode == 0) {
            failpoint::ArmNthHit(name, 1 + rng.NextBelow(4));
          } else if (mode == 1) {
            failpoint::Scenario scenario;
            scenario.fire_on_hit = 1;
            scenario.sticky = true;
            failpoint::Arm(name, scenario);
          } else {
            failpoint::ArmProbability(name, 0.4, rng.Next());
          }
          ++faults_armed;
        } else {
          failpoint::DisarmAll();
        }

        // Periodic stabilization: with faults cleared the engine must be
        // fully healthy again — this is the recovery half of the contract.
        if ((op + 1) % 40 == 0) {
          failpoint::DisarmAll();
          const Status flushed = engine.Flush();
          ASSERT_TRUE(flushed.ok()) << flushed.message();
          auto merged = engine.Snapshot();
          ASSERT_TRUE(merged.ok()) << merged.status().message();
          AggregateRegistry registry = std::move(*merged).ReleaseRegistry();
          const Status audit = registry.AuditInvariants();
          ASSERT_TRUE(audit.ok()) << audit.message();
          EXPECT_EQ(StatsAccounted(engine), submitted);
        }
      }

      // Final settle: conservation plus a clean audit after the storm.
      failpoint::DisarmAll();
      ASSERT_TRUE(engine.Flush().ok());
      EXPECT_EQ(StatsAccounted(engine), submitted);
      auto merged = engine.Snapshot();
      ASSERT_TRUE(merged.ok()) << merged.status().message();
      AggregateRegistry registry = std::move(*merged).ReleaseRegistry();
      ASSERT_TRUE(registry.AuditInvariants().ok());
      EXPECT_GT(faults_armed, 0u);
      EXPECT_GT(checkpoints_ok, 0u);
      engine.Stop();
    }
  }
  failpoint::DisarmAll();
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  std::filesystem::remove(ckpt_path + ".prev", ec);
  std::filesystem::remove(ckpt_path + ".tmp", ec);
}

}  // namespace
}  // namespace tds
