// Dual-mode fuzz driver for ExponentialHistogram: randomized but
// reproducible interleavings of Add / AdvanceTo / MergeFrom / EncodeState /
// DecodeState / EstimateWindow, asserting AuditInvariants() and the
// estimate-vs-exact error bound after every operation. The gtest-free core
// consumes a FuzzInput byte stream, so the same code runs both as the
// deterministic seed-driven ctest target and — under -DTDS_LIBFUZZER — as a
// coverage-guided LLVMFuzzerTestOneInput harness (docs/CORRECTNESS.md,
// "Dual-mode fuzzing").
#include "histogram/exponential_histogram.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "fuzz_util.h"
#include "util/codec.h"
#include "util/common.h"

namespace tds {
namespace {

struct EhFuzzConfig {
  double epsilon;
  Tick window;
  int max_ops;
};

ExponentialHistogram MakeEh(double epsilon, Tick window,
                            const FuzzInput& in) {
  ExponentialHistogram::Options options;
  options.epsilon = epsilon;
  options.window = window;
  auto eh = ExponentialHistogram::Create(options);
  TDS_FUZZ_CHECK(eh.ok(), in, "Create: ", eh.status().ToString());
  return std::move(eh).value();
}

void RunEhFuzz(const EhFuzzConfig& config, FuzzInput& in) {
  ExponentialHistogram eh = MakeEh(config.epsilon, config.window, in);
  ExactWindowReference exact;
  Tick now = 0;
  // MergeFrom folds in a disjoint substream; each merge widens the error
  // envelope by roughly the input histogram's own epsilon.
  int merges = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(eh.AuditInvariants(), in, "after ", op);
    if (now == 0) return;
    const double reference =
        static_cast<double>(exact.WindowCount(now, config.window));
    const double envelope_rel = config.epsilon * (1.05 + merges);
    const double slack = 1.5 + 2.0 * merges;
    TDS_FUZZ_CHECK_NEAR(eh.Estimate(), reference,
                        envelope_rel * reference + slack, in, "after ", op);
  };

  for (int op = 0; op < config.max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 55) {
      // Add at the current tick or a short hop forward; occasional large
      // values exercise the O(cap log v) digit insertion.
      now += static_cast<Tick>(in.Below(3));
      if (now == 0) now = 1;
      const uint64_t value =
          in.Below(20) == 0 ? 1 + in.Below(5000) : in.Below(4);
      eh.Add(now, value);
      exact.Add(now, value);
      check("Add");
    } else if (kind < 70) {
      // Jumps larger than the window exercise wholesale expiry.
      now += static_cast<Tick>(in.Below(
          static_cast<uint64_t>(config.window) + config.window / 2 + 2));
      eh.AdvanceTo(now);
      check("AdvanceTo");
    } else if (kind < 80) {
      // Codec round-trip: continue the run on the decoded instance, so any
      // state the codec loses poisons every later comparison.
      Encoder encoder;
      eh.EncodeState(encoder);
      const std::string blob = encoder.Finish();
      ExponentialHistogram restored =
          MakeEh(config.epsilon, config.window, in);
      Decoder decoder(blob);
      TDS_FUZZ_CHECK_OK(restored.DecodeState(decoder), in, "DecodeState");
      TDS_FUZZ_CHECK(decoder.Done(), in, "decoder not fully consumed");
      TDS_FUZZ_CHECK_DOUBLE_EQ(restored.Estimate(), eh.Estimate(), in,
                               "decode round-trip");
      eh = std::move(restored);
      check("DecodeState");
    } else if (kind < 85 && merges < 3) {
      // Merge in a short disjoint substream living in the recent past.
      ExponentialHistogram other =
          MakeEh(config.epsilon, config.window, in);
      ExactWindowReference other_exact;
      const int burst = 1 + static_cast<int>(in.Below(40));
      Tick other_now =
          std::max<Tick>(1, now - static_cast<Tick>(in.Below(20)));
      for (int i = 0; i < burst; ++i) {
        other_now += static_cast<Tick>(in.Below(2));
        const uint64_t value = 1 + in.Below(3);
        other.Add(other_now, value);
        other_exact.Add(other_now, value);
      }
      now = std::max(now, other_now);
      TDS_FUZZ_CHECK_OK(eh.MergeFrom(other), in, "MergeFrom");
      exact.MergeFrom(other_exact);
      ++merges;
      check("MergeFrom");
    } else {
      // Lemma 4.1: the same structure answers every window w <= W.
      eh.AdvanceTo(now);
      const Tick w = 1 + static_cast<Tick>(
                             in.Below(static_cast<uint64_t>(config.window)));
      const double reference =
          static_cast<double>(exact.WindowCount(now, w));
      const double envelope_rel = config.epsilon * (1.05 + merges);
      const double slack = 1.5 + 2.0 * merges;
      TDS_FUZZ_CHECK_NEAR(eh.EstimateWindow(w), reference,
                          envelope_rel * reference + slack, in, "w=", w);
      check("EstimateWindow");
    }
  }
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

struct FuzzCase {
  uint64_t seed;
  double epsilon;
  Tick window;
  int ops;
};

class EhFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EhFuzzTest, InterleavedOpsKeepInvariantsAndAccuracy) {
  const FuzzCase fuzz = GetParam();
  FuzzInput in = FuzzInput::FromSeed(
      fuzz.seed, static_cast<size_t>(fuzz.ops) * 16);
  RunEhFuzz({fuzz.epsilon, fuzz.window, fuzz.ops}, in);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EhFuzzTest,
    ::testing::Values(FuzzCase{0xe401, 0.1, 64, 1200},
                      FuzzCase{0xe402, 0.1, 512, 1200},
                      FuzzCase{0xe403, 0.02, 128, 900},
                      FuzzCase{0xe404, 0.5, 32, 1200},
                      FuzzCase{0xe405, 0.25, 1024, 900}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "Seed" + std::to_string(info.param.seed & 0xff) + "Eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100)) +
             "W" + std::to_string(info.param.window);
    });

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: the leading bytes pick the histogram
// configuration, the rest drive the op stream.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  constexpr double kEpsilons[] = {0.02, 0.1, 0.25, 0.5};
  constexpr tds::Tick kWindows[] = {32, 64, 128, 512, 1024};
  tds::EhFuzzConfig config;
  config.epsilon = kEpsilons[in.Below(4)];
  config.window = kWindows[in.Below(5)];
  config.max_ops = 4096;
  tds::RunEhFuzz(config, in);
  return 0;
}

#endif  // TDS_LIBFUZZER
