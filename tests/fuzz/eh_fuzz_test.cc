// Deterministic fuzz driver for ExponentialHistogram: randomized but
// reproducible interleavings of Add / AdvanceTo / MergeFrom / EncodeState /
// DecodeState / EstimateWindow, asserting AuditInvariants() and the
// estimate-vs-exact error bound after every operation. Runs as an ordinary
// ctest target; under the ASan+UBSan build (tools/check.sh asan) it doubles
// as the memory-error net for the EH hot paths.
#include "histogram/exponential_histogram.h"

#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "fuzz_util.h"
#include "util/codec.h"
#include "util/common.h"

namespace tds {
namespace {

struct FuzzCase {
  uint64_t seed;
  double epsilon;
  Tick window;
  int ops;
};

class EhFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

ExponentialHistogram MakeEh(double epsilon, Tick window) {
  ExponentialHistogram::Options options;
  options.epsilon = epsilon;
  options.window = window;
  auto eh = ExponentialHistogram::Create(options);
  EXPECT_TRUE(eh.ok()) << eh.status().ToString();
  return std::move(eh).value();
}

TEST_P(EhFuzzTest, InterleavedOpsKeepInvariantsAndAccuracy) {
  const FuzzCase fuzz = GetParam();
  FuzzRng rng(fuzz.seed);

  ExponentialHistogram eh = MakeEh(fuzz.epsilon, fuzz.window);
  ExactWindowReference exact;
  Tick now = 0;
  // MergeFrom folds in a disjoint substream; each merge widens the error
  // envelope by roughly the input histogram's own epsilon.
  int merges = 0;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(fuzz.seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = eh.AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    if (now == 0) return;
    const double reference =
        static_cast<double>(exact.WindowCount(now, fuzz.window));
    const double envelope_rel = fuzz.epsilon * (1.05 + merges);
    const double slack = 1.5 + 2.0 * merges;
    EXPECT_NEAR(eh.Estimate(), reference,
                envelope_rel * reference + slack);
  };

  for (int op = 0; op < fuzz.ops; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 55) {
      // Add at the current tick or a short hop forward; occasional large
      // values exercise the O(cap log v) digit insertion.
      now += static_cast<Tick>(rng.NextBelow(3));
      if (now == 0) now = 1;
      const uint64_t value =
          rng.NextBelow(20) == 0 ? 1 + rng.NextBelow(5000) : rng.NextBelow(4);
      eh.Add(now, value);
      exact.Add(now, value);
      check("Add");
    } else if (kind < 70) {
      // Jumps larger than the window exercise wholesale expiry.
      now += static_cast<Tick>(rng.NextBelow(
          static_cast<uint64_t>(fuzz.window) + fuzz.window / 2 + 2));
      eh.AdvanceTo(now);
      check("AdvanceTo");
    } else if (kind < 80) {
      // Codec round-trip: continue the run on the decoded instance, so any
      // state the codec loses poisons every later comparison.
      Encoder encoder;
      eh.EncodeState(encoder);
      const std::string blob = encoder.Finish();
      ExponentialHistogram restored = MakeEh(fuzz.epsilon, fuzz.window);
      Decoder decoder(blob);
      const Status status = restored.DecodeState(decoder);
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_TRUE(decoder.Done());
      EXPECT_DOUBLE_EQ(restored.Estimate(), eh.Estimate());
      eh = std::move(restored);
      check("DecodeState");
    } else if (kind < 85 && merges < 3) {
      // Merge in a short disjoint substream living in the recent past.
      ExponentialHistogram other = MakeEh(fuzz.epsilon, fuzz.window);
      ExactWindowReference other_exact;
      const int burst = 1 + static_cast<int>(rng.NextBelow(40));
      Tick other_now = std::max<Tick>(1, now - static_cast<Tick>(
                                              rng.NextBelow(20)));
      for (int i = 0; i < burst; ++i) {
        other_now += static_cast<Tick>(rng.NextBelow(2));
        const uint64_t value = 1 + rng.NextBelow(3);
        other.Add(other_now, value);
        other_exact.Add(other_now, value);
      }
      now = std::max(now, other_now);
      const Status status = eh.MergeFrom(other);
      ASSERT_TRUE(status.ok()) << status.ToString();
      exact.MergeFrom(other_exact);
      ++merges;
      check("MergeFrom");
    } else {
      // Lemma 4.1: the same structure answers every window w <= W.
      eh.AdvanceTo(now);
      const Tick w =
          1 + static_cast<Tick>(rng.NextBelow(
                  static_cast<uint64_t>(fuzz.window)));
      const double reference =
          static_cast<double>(exact.WindowCount(now, w));
      const double envelope_rel = fuzz.epsilon * (1.05 + merges);
      const double slack = 1.5 + 2.0 * merges;
      EXPECT_NEAR(eh.EstimateWindow(w), reference,
                  envelope_rel * reference + slack)
          << "w=" << w << " seed=" << fuzz.seed
          << " draw=" << rng.counter();
      check("EstimateWindow");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EhFuzzTest,
    ::testing::Values(FuzzCase{0xe401, 0.1, 64, 1200},
                      FuzzCase{0xe402, 0.1, 512, 1200},
                      FuzzCase{0xe403, 0.02, 128, 900},
                      FuzzCase{0xe404, 0.5, 32, 1200},
                      FuzzCase{0xe405, 0.25, 1024, 900}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "Seed" + std::to_string(info.param.seed & 0xff) + "Eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100)) +
             "W" + std::to_string(info.param.window);
    });

}  // namespace
}  // namespace tds
