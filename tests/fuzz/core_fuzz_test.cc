// Deterministic fuzz drivers for the Section 3 counter structures:
// ExactDecayedSum, EwmaCounter, RecentItemsExpCounter, PolyExpCounter and
// CoarseCehDecayedSum. Each driver interleaves Update / UpdateBatch /
// quiet-period advances / snapshot round-trips from a counter-based RNG,
// audits structural invariants after every operation, and compares the
// estimate against a brute-force decayed sum at the guarantee each
// structure actually makes (exact, fixed-point-rounded, eps-tail, or
// constant-factor).
#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/coarse_ceh.h"
#include "core/ewma.h"
#include "core/exact.h"
#include "core/polyexp_counter.h"
#include "core/recent_items.h"
#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "fuzz_util.h"
#include "util/codec.h"

namespace tds {
namespace {

/// Brute-force decayed sum: every item, weighted directly by the decay.
class ExactDecayedReference {
 public:
  explicit ExactDecayedReference(DecayPtr decay) : decay_(std::move(decay)) {}

  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  double Sum(Tick now) const {
    double sum = 0.0;
    for (const auto& [t, value] : items_) {
      const Tick age = AgeAt(t, now);
      if (decay_->Horizon() != kInfiniteHorizon && age > decay_->Horizon()) {
        continue;
      }
      sum += static_cast<double>(value) * decay_->Weight(age);
    }
    return sum;
  }

 private:
  DecayPtr decay_;
  std::deque<std::pair<Tick, uint64_t>> items_;
};

/// One snapshot round-trip through the typed codec; returns the restored
/// instance (downcast to T) so the driver continues on decoded state.
template <typename T>
std::unique_ptr<T> RoundTrip(T& aggregate, const DecayPtr& decay) {
  const Status audit_status = AuditSnapshotRoundTrip(aggregate);
  EXPECT_TRUE(audit_status.ok()) << audit_status.ToString();
  std::string blob;
  const Status encode_status = EncodeDecayedSum(aggregate, &blob);
  EXPECT_TRUE(encode_status.ok()) << encode_status.ToString();
  auto restored = DecodeDecayedSum(decay, blob);
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  if (!restored.ok()) return nullptr;
  auto* typed = dynamic_cast<T*>(restored->get());
  EXPECT_NE(typed, nullptr);
  if (typed == nullptr) return nullptr;
  restored->release();
  return std::unique_ptr<T>(typed);
}

// ---------------------------------------------------------------------------
// ExactDecayedSum: the estimate IS the brute-force sum; require agreement to
// floating-point noise, under both a finite-horizon and an infinite decay.

struct ExactCase {
  uint64_t seed;
  bool sliding;  ///< sliding-window (finite horizon) vs polynomial decay
  int ops;
};

class ExactFuzzTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ExactFuzzTest, MatchesBruteForceExactly) {
  const ExactCase fuzz = GetParam();
  FuzzRng rng(fuzz.seed);
  const DecayPtr decay = fuzz.sliding
                             ? SlidingWindowDecay::Create(64).value()
                             : PolynomialDecay::Create(1.5).value();
  auto exact = ExactDecayedSum::Create(decay).value();
  ExactDecayedReference reference(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(fuzz.seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = exact->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double expected = reference.Sum(now);
    EXPECT_NEAR(exact->Query(now), expected, 1e-9 * expected + 1e-9);
  };

  for (int op = 0; op < fuzz.ops; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 70) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value = rng.NextBelow(5);
      exact->Update(now, value);
      if (value > 0) reference.Add(now, value);
      check("Update");
    } else if (kind < 85) {
      now += static_cast<Tick>(rng.NextBelow(100));
      exact->Advance(now);
      check("Advance");
    } else {
      exact = RoundTrip(*exact, decay);
      ASSERT_NE(exact, nullptr);
      check("SnapshotRoundTrip");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactFuzzTest,
                         ::testing::Values(ExactCase{0xea01, true, 800},
                                           ExactCase{0xea02, false, 800},
                                           ExactCase{0xea03, true, 500}),
                         [](const ::testing::TestParamInfo<ExactCase>& info) {
                           return "Seed" + std::to_string(info.param.seed &
                                                          0xff) +
                                  (info.param.sliding ? "Sliwin" : "Poly");
                         });

// ---------------------------------------------------------------------------
// EwmaCounter: with mantissa rounding off the register is the brute-force
// exponential sum to fp noise; with b mantissa bits each rounding step is a
// relative (1 +- 2^-b) perturbation. Batch ingestion must be bit-identical
// to per-item ingestion.

struct EwmaCase {
  uint64_t seed;
  int mantissa_bits;  ///< 0 = full doubles
  int ops;
};

class EwmaFuzzTest : public ::testing::TestWithParam<EwmaCase> {};

TEST_P(EwmaFuzzTest, TracksReferenceAndBatchMatchesPerItem) {
  const EwmaCase fuzz = GetParam();
  FuzzRng rng(fuzz.seed);
  const double lambda = 0.05;
  const DecayPtr decay = ExponentialDecay::Create(lambda).value();
  EwmaCounter::Options options;
  options.mantissa_bits = fuzz.mantissa_bits;
  auto ewma = EwmaCounter::Create(decay, options).value();
  auto mirror = EwmaCounter::Create(decay, options).value();  // per-item twin
  ExactDecayedReference reference(decay);
  Tick now = 1;
  // Mantissa rounding compounds per operation: each add/decay step perturbs
  // by a relative 2^-b, so after n mutations the envelope is ~n * 2^-b.
  int mutations = 0;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(fuzz.seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = ewma->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double expected = reference.Sum(now);
    const double rel =
        fuzz.mantissa_bits > 0
            ? static_cast<double>(mutations) *
                  std::ldexp(1.0, -fuzz.mantissa_bits)
            : 1e-9;
    EXPECT_NEAR(ewma->Query(now), expected, rel * expected + 1e-9);
    // The per-item twin replayed the identical item sequence: bit-equal.
    EXPECT_DOUBLE_EQ(ewma->Query(now), mirror->Query(now));
  };

  for (int op = 0; op < fuzz.ops; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 45) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value = rng.NextBelow(6);
      ewma->Update(now, value);
      mirror->Update(now, value);
      if (value > 0) reference.Add(now, value);
      mutations += 2;
      check("Update");
    } else if (kind < 70) {
      // Batch of same-tick-run items through UpdateBatch on the primary,
      // per-item on the mirror.
      std::vector<StreamItem> batch;
      const int len = 1 + static_cast<int>(rng.NextBelow(8));
      for (int i = 0; i < len; ++i) {
        now += static_cast<Tick>(rng.NextBelow(2));
        batch.push_back(StreamItem{now, rng.NextBelow(4)});
      }
      ewma->UpdateBatch(batch);
      for (const StreamItem& item : batch) {
        mirror->Update(item.t, item.value);
        if (item.value > 0) reference.Add(item.t, item.value);
      }
      mutations += 2 * len;
      check("UpdateBatch");
    } else if (kind < 85) {
      now += static_cast<Tick>(rng.NextBelow(60));
      ewma->Advance(now);
      mirror->Advance(now);
      ++mutations;
      check("Advance");
    } else {
      ewma = RoundTrip(*ewma, decay);
      ASSERT_NE(ewma, nullptr);
      check("SnapshotRoundTrip");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EwmaFuzzTest,
                         ::testing::Values(EwmaCase{0xeb01, 0, 700},
                                           EwmaCase{0xeb02, 16, 700},
                                           EwmaCase{0xeb03, 24, 500}),
                         [](const ::testing::TestParamInfo<EwmaCase>& info) {
                           return "Seed" +
                                  std::to_string(info.param.seed & 0xff) +
                                  "Mantissa" +
                                  std::to_string(info.param.mantissa_bits);
                         });

// ---------------------------------------------------------------------------
// RecentItemsExpCounter: dropping all but the C most recent items only loses
// mass, so the estimate is a lower bound on the brute-force sum; when the
// structure never overflowed its capacity the two agree to fp noise.

TEST(RecentItemsFuzzTest, EstimateLowerBoundsReferenceAndAuditsHold) {
  FuzzRng rng(0xec01);
  const double lambda = 0.1;
  const DecayPtr decay = ExponentialDecay::Create(lambda).value();
  RecentItemsExpCounter::Options options;
  options.epsilon = 0.05;
  auto recent = RecentItemsExpCounter::Create(decay, options).value();
  ExactDecayedReference reference(decay);
  Tick now = 1;
  size_t inserted = 0;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " draw=" + std::to_string(rng.counter()));
    const Status audit = recent->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double expected = reference.Sum(now);
    const double estimate = recent->Query(now);
    EXPECT_LE(estimate, expected * (1.0 + 1e-9) + 1e-9);
    if (inserted <= recent->capacity()) {
      // Nothing has been evicted yet: the value-shifted timestamps recover
      // the sum exactly.
      EXPECT_NEAR(estimate, expected, 1e-9 * expected + 1e-9);
    }
  };

  for (int op = 0; op < 800; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 70) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value = 1 + rng.NextBelow(8);
      recent->Update(now, value);
      reference.Add(now, value);
      ++inserted;
      check("Update");
    } else if (kind < 85) {
      now += static_cast<Tick>(rng.NextBelow(40));
      recent->Advance(now);
      check("Advance");
    } else {
      recent = RoundTrip(*recent, decay);
      ASSERT_NE(recent, nullptr);
      check("SnapshotRoundTrip");
    }
  }
}

// ---------------------------------------------------------------------------
// PolyExpCounter: the k+1 pipelined registers reproduce the brute-force
// polyexponential sum up to fp noise from the binomial gap jumps. Batch
// ingestion must be bit-identical to per-item ingestion.

struct PolyExpCase {
  uint64_t seed;
  int k;
  int ops;
};

class PolyExpFuzzTest : public ::testing::TestWithParam<PolyExpCase> {};

TEST_P(PolyExpFuzzTest, RegistersTrackBruteForce) {
  const PolyExpCase fuzz = GetParam();
  FuzzRng rng(fuzz.seed);
  const double lambda = 0.08;
  const DecayPtr decay =
      PolyExponentialDecay::Create(fuzz.k, lambda).value();
  auto counter = PolyExpCounter::Create(decay).value();
  auto mirror = PolyExpCounter::Create(decay).value();  // per-item twin
  ExactDecayedReference reference(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(fuzz.seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = counter->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double expected = reference.Sum(now);
    EXPECT_NEAR(counter->Query(now), expected, 1e-6 * expected + 1e-6);
    EXPECT_DOUBLE_EQ(counter->Query(now), mirror->Query(now));
  };

  for (int op = 0; op < fuzz.ops; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 45) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value = rng.NextBelow(5);
      counter->Update(now, value);
      mirror->Update(now, value);
      if (value > 0) reference.Add(now, value);
      check("Update");
    } else if (kind < 70) {
      std::vector<StreamItem> batch;
      const int len = 1 + static_cast<int>(rng.NextBelow(8));
      for (int i = 0; i < len; ++i) {
        now += static_cast<Tick>(rng.NextBelow(2));
        batch.push_back(StreamItem{now, rng.NextBelow(4)});
      }
      counter->UpdateBatch(batch);
      for (const StreamItem& item : batch) {
        mirror->Update(item.t, item.value);
        if (item.value > 0) reference.Add(item.t, item.value);
      }
      check("UpdateBatch");
    } else if (kind < 85) {
      now += static_cast<Tick>(rng.NextBelow(50));
      counter->Advance(now);
      mirror->Advance(now);
      check("Advance");
    } else {
      counter = RoundTrip(*counter, decay);
      ASSERT_NE(counter, nullptr);
      check("SnapshotRoundTrip");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyExpFuzzTest,
                         ::testing::Values(PolyExpCase{0xed01, 1, 700},
                                           PolyExpCase{0xed02, 2, 700},
                                           PolyExpCase{0xed03, 3, 500}),
                         [](const ::testing::TestParamInfo<PolyExpCase>&
                                info) {
                           return "Seed" +
                                  std::to_string(info.param.seed & 0xff) +
                                  "K" + std::to_string(info.param.k);
                         });

// ---------------------------------------------------------------------------
// CoarseCehDecayedSum: only a constant-factor guarantee (grid quantization
// plus stochastic aging), so the driver audits structure after every op and
// requires the estimate to stay within a generous constant factor of the
// brute-force sum. Deterministic: fixed seeds drive both the op sequence
// and the aging RNG.

TEST(CoarseCehFuzzTest, ConstantFactorAndAuditsHold) {
  FuzzRng rng(0xee01);
  const DecayPtr decay = PolynomialDecay::Create(1.0).value();
  CoarseCehDecayedSum::Options options;
  options.epsilon = 0.1;
  options.boundary_delta = 0.25;
  auto coarse = CoarseCehDecayedSum::Create(decay, options).value();
  ExactDecayedReference reference(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " draw=" + std::to_string(rng.counter()));
    const Status audit = coarse->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double expected = reference.Sum(now);
    const double estimate = coarse->Query(now);
    EXPECT_TRUE(std::isfinite(estimate) && estimate >= 0.0);
    if (expected > 1.0) {
      EXPECT_GE(estimate, expected / 8.0);
      EXPECT_LE(estimate, expected * 8.0);
    }
  };

  for (int op = 0; op < 600; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 70) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value =
          rng.NextBelow(30) == 0 ? 1 + rng.NextBelow(200) : rng.NextBelow(4);
      coarse->Update(now, value);
      if (value > 0) reference.Add(now, value);
      check("Update");
    } else if (kind < 85) {
      now += static_cast<Tick>(rng.NextBelow(40));
      coarse->Advance(now);
      check("Advance");
    } else {
      coarse = RoundTrip(*coarse, decay);
      ASSERT_NE(coarse, nullptr);
      check("SnapshotRoundTrip");
    }
  }
}

}  // namespace
}  // namespace tds
