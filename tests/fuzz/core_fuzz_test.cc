// Dual-mode fuzz drivers for the Section 3 counter structures:
// ExactDecayedSum, EwmaCounter, RecentItemsExpCounter, PolyExpCounter and
// CoarseCehDecayedSum. Each driver interleaves Update / UpdateBatch /
// quiet-period advances / snapshot round-trips from a FuzzInput byte
// stream, audits structural invariants after every operation, and compares
// the estimate against a brute-force decayed sum at the guarantee each
// structure actually makes (exact, fixed-point-rounded, eps-tail, or
// constant-factor). Under -DTDS_LIBFUZZER the first input byte dispatches
// among the five gtest-free cores.
#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/coarse_ceh.h"
#include "core/ewma.h"
#include "core/exact.h"
#include "core/polyexp_counter.h"
#include "core/recent_items.h"
#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "fuzz_util.h"
#include "util/codec.h"

namespace tds {
namespace {

/// Brute-force decayed sum: every item, weighted directly by the decay.
class ExactDecayedReference {
 public:
  explicit ExactDecayedReference(DecayPtr decay) : decay_(std::move(decay)) {}

  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  double Sum(Tick now) const {
    double sum = 0.0;
    for (const auto& [t, value] : items_) {
      const Tick age = AgeAt(t, now);
      if (decay_->Horizon() != kInfiniteHorizon && age > decay_->Horizon()) {
        continue;
      }
      sum += static_cast<double>(value) * decay_->Weight(age);
    }
    return sum;
  }

 private:
  DecayPtr decay_;
  std::deque<std::pair<Tick, uint64_t>> items_;
};

/// One snapshot round-trip through the typed codec; returns the restored
/// instance (downcast to T) so the driver continues on decoded state.
template <typename T>
std::unique_ptr<T> RoundTrip(T& aggregate, const DecayPtr& decay,
                             const FuzzInput& in) {
  TDS_FUZZ_CHECK_OK(AuditSnapshotRoundTrip(aggregate), in,
                    "AuditSnapshotRoundTrip");
  std::string blob;
  TDS_FUZZ_CHECK_OK(EncodeDecayedSum(aggregate, &blob), in, "Encode");
  auto restored = DecodeDecayedSum(decay, blob);
  TDS_FUZZ_CHECK(restored.ok(), in,
                 "Decode: ", restored.status().ToString());
  auto* typed = dynamic_cast<T*>(restored->get());
  TDS_FUZZ_CHECK(typed != nullptr, in, "decoded type mismatch");
  restored->release();
  return std::unique_ptr<T>(typed);
}

// ---------------------------------------------------------------------------
// ExactDecayedSum: the estimate IS the brute-force sum; require agreement to
// floating-point noise, under both a finite-horizon and an infinite decay.

void RunExactFuzz(bool sliding, int max_ops, FuzzInput& in) {
  const DecayPtr decay = sliding ? SlidingWindowDecay::Create(64).value()
                                 : PolynomialDecay::Create(1.5).value();
  auto exact = ExactDecayedSum::Create(decay).value();
  ExactDecayedReference reference(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(exact->AuditInvariants(), in, "after ", op);
    const double expected = reference.Sum(now);
    TDS_FUZZ_CHECK_NEAR(exact->Query(now), expected,
                        1e-9 * expected + 1e-9, in, "after ", op);
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 70) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value = in.Below(5);
      exact->Update(now, value);
      if (value > 0) reference.Add(now, value);
      check("Update");
    } else if (kind < 85) {
      now += static_cast<Tick>(in.Below(100));
      exact->Advance(now);
      check("Advance");
    } else {
      exact = RoundTrip(*exact, decay, in);
      check("SnapshotRoundTrip");
    }
  }
}

// ---------------------------------------------------------------------------
// EwmaCounter: with mantissa rounding off the register is the brute-force
// exponential sum to fp noise; with b mantissa bits each rounding step is a
// relative (1 +- 2^-b) perturbation. Batch ingestion must be bit-identical
// to per-item ingestion.

void RunEwmaFuzz(int mantissa_bits, int max_ops, FuzzInput& in) {
  const double lambda = 0.05;
  const DecayPtr decay = ExponentialDecay::Create(lambda).value();
  EwmaCounter::Options options;
  options.mantissa_bits = mantissa_bits;
  auto ewma = EwmaCounter::Create(decay, options).value();
  auto mirror = EwmaCounter::Create(decay, options).value();  // per-item twin
  ExactDecayedReference reference(decay);
  Tick now = 1;
  // Mantissa rounding compounds per operation: each add/decay step perturbs
  // by a relative 2^-b, so after n mutations the envelope is ~n * 2^-b.
  int mutations = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(ewma->AuditInvariants(), in, "after ", op);
    const double expected = reference.Sum(now);
    const double rel =
        mantissa_bits > 0
            ? static_cast<double>(mutations) * std::ldexp(1.0, -mantissa_bits)
            : 1e-9;
    TDS_FUZZ_CHECK_NEAR(ewma->Query(now), expected, rel * expected + 1e-9,
                        in, "after ", op);
    // The per-item twin replayed the identical item sequence: bit-equal.
    TDS_FUZZ_CHECK_DOUBLE_EQ(ewma->Query(now), mirror->Query(now), in,
                             "batch/per-item divergence after ", op);
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 45) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value = in.Below(6);
      ewma->Update(now, value);
      mirror->Update(now, value);
      if (value > 0) reference.Add(now, value);
      mutations += 2;
      check("Update");
    } else if (kind < 70) {
      // Batch of same-tick-run items through UpdateBatch on the primary,
      // per-item on the mirror.
      std::vector<StreamItem> batch;
      const int len = 1 + static_cast<int>(in.Below(8));
      for (int i = 0; i < len; ++i) {
        now += static_cast<Tick>(in.Below(2));
        batch.push_back(StreamItem{now, in.Below(4)});
      }
      ewma->UpdateBatch(batch);
      for (const StreamItem& item : batch) {
        mirror->Update(item.t, item.value);
        if (item.value > 0) reference.Add(item.t, item.value);
      }
      mutations += 2 * len;
      check("UpdateBatch");
    } else if (kind < 85) {
      now += static_cast<Tick>(in.Below(60));
      ewma->Advance(now);
      mirror->Advance(now);
      ++mutations;
      check("Advance");
    } else {
      ewma = RoundTrip(*ewma, decay, in);
      check("SnapshotRoundTrip");
    }
  }
}

// ---------------------------------------------------------------------------
// RecentItemsExpCounter: dropping all but the C most recent items only loses
// mass, so the estimate is a lower bound on the brute-force sum; when the
// structure never overflowed its capacity the two agree to fp noise.

void RunRecentItemsFuzz(int max_ops, FuzzInput& in) {
  const double lambda = 0.1;
  const DecayPtr decay = ExponentialDecay::Create(lambda).value();
  RecentItemsExpCounter::Options options;
  options.epsilon = 0.05;
  auto recent = RecentItemsExpCounter::Create(decay, options).value();
  ExactDecayedReference reference(decay);
  Tick now = 1;
  size_t inserted = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(recent->AuditInvariants(), in, "after ", op);
    const double expected = reference.Sum(now);
    const double estimate = recent->Query(now);
    TDS_FUZZ_CHECK(estimate <= expected * (1.0 + 1e-9) + 1e-9, in,
                   "estimate=", estimate, " exceeds reference=", expected);
    if (inserted <= recent->capacity()) {
      // Nothing has been evicted yet: the value-shifted timestamps recover
      // the sum exactly.
      TDS_FUZZ_CHECK_NEAR(estimate, expected, 1e-9 * expected + 1e-9, in,
                          "after ", op);
    }
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 70) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value = 1 + in.Below(8);
      recent->Update(now, value);
      reference.Add(now, value);
      ++inserted;
      check("Update");
    } else if (kind < 85) {
      now += static_cast<Tick>(in.Below(40));
      recent->Advance(now);
      check("Advance");
    } else {
      recent = RoundTrip(*recent, decay, in);
      check("SnapshotRoundTrip");
    }
  }
}

// ---------------------------------------------------------------------------
// PolyExpCounter: the k+1 pipelined registers reproduce the brute-force
// polyexponential sum up to fp noise from the binomial gap jumps. Batch
// ingestion must be bit-identical to per-item ingestion.

void RunPolyExpFuzz(int k, int max_ops, FuzzInput& in) {
  const double lambda = 0.08;
  const DecayPtr decay = PolyExponentialDecay::Create(k, lambda).value();
  auto counter = PolyExpCounter::Create(decay).value();
  auto mirror = PolyExpCounter::Create(decay).value();  // per-item twin
  ExactDecayedReference reference(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(counter->AuditInvariants(), in, "after ", op);
    const double expected = reference.Sum(now);
    TDS_FUZZ_CHECK_NEAR(counter->Query(now), expected,
                        1e-6 * expected + 1e-6, in, "after ", op);
    TDS_FUZZ_CHECK_DOUBLE_EQ(counter->Query(now), mirror->Query(now), in,
                             "batch/per-item divergence after ", op);
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 45) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value = in.Below(5);
      counter->Update(now, value);
      mirror->Update(now, value);
      if (value > 0) reference.Add(now, value);
      check("Update");
    } else if (kind < 70) {
      std::vector<StreamItem> batch;
      const int len = 1 + static_cast<int>(in.Below(8));
      for (int i = 0; i < len; ++i) {
        now += static_cast<Tick>(in.Below(2));
        batch.push_back(StreamItem{now, in.Below(4)});
      }
      counter->UpdateBatch(batch);
      for (const StreamItem& item : batch) {
        mirror->Update(item.t, item.value);
        if (item.value > 0) reference.Add(item.t, item.value);
      }
      check("UpdateBatch");
    } else if (kind < 85) {
      now += static_cast<Tick>(in.Below(50));
      counter->Advance(now);
      mirror->Advance(now);
      check("Advance");
    } else {
      counter = RoundTrip(*counter, decay, in);
      check("SnapshotRoundTrip");
    }
  }
}

// ---------------------------------------------------------------------------
// CoarseCehDecayedSum: only a constant-factor guarantee (grid quantization
// plus stochastic aging), so the driver audits structure after every op and
// requires the estimate to stay within a generous constant factor of the
// brute-force sum. Deterministic: the input stream drives both the op
// sequence and (indirectly) the aging RNG.

void RunCoarseCehFuzz(int max_ops, FuzzInput& in) {
  const DecayPtr decay = PolynomialDecay::Create(1.0).value();
  CoarseCehDecayedSum::Options options;
  options.epsilon = 0.1;
  options.boundary_delta = 0.25;
  auto coarse = CoarseCehDecayedSum::Create(decay, options).value();
  ExactDecayedReference reference(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(coarse->AuditInvariants(), in, "after ", op);
    const double expected = reference.Sum(now);
    const double estimate = coarse->Query(now);
    TDS_FUZZ_CHECK(std::isfinite(estimate) && estimate >= 0.0, in,
                   "estimate=", estimate);
    if (expected > 1.0) {
      TDS_FUZZ_CHECK(estimate >= expected / 8.0 &&
                         estimate <= expected * 8.0,
                     in, "estimate=", estimate, " expected=", expected,
                     " after ", op);
    }
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 70) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value =
          in.Below(30) == 0 ? 1 + in.Below(200) : in.Below(4);
      coarse->Update(now, value);
      if (value > 0) reference.Add(now, value);
      check("Update");
    } else if (kind < 85) {
      now += static_cast<Tick>(in.Below(40));
      coarse->Advance(now);
      check("Advance");
    } else {
      coarse = RoundTrip(*coarse, decay, in);
      check("SnapshotRoundTrip");
    }
  }
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

struct ExactCase {
  uint64_t seed;
  bool sliding;  ///< sliding-window (finite horizon) vs polynomial decay
  int ops;
};

class ExactFuzzTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ExactFuzzTest, MatchesBruteForceExactly) {
  const ExactCase fuzz = GetParam();
  FuzzInput in = FuzzInput::FromSeed(
      fuzz.seed, static_cast<size_t>(fuzz.ops) * 8);
  RunExactFuzz(fuzz.sliding, fuzz.ops, in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactFuzzTest,
                         ::testing::Values(ExactCase{0xea01, true, 800},
                                           ExactCase{0xea02, false, 800},
                                           ExactCase{0xea03, true, 500}),
                         [](const ::testing::TestParamInfo<ExactCase>& info) {
                           return "Seed" + std::to_string(info.param.seed &
                                                          0xff) +
                                  (info.param.sliding ? "Sliwin" : "Poly");
                         });

struct EwmaCase {
  uint64_t seed;
  int mantissa_bits;  ///< 0 = full doubles
  int ops;
};

class EwmaFuzzTest : public ::testing::TestWithParam<EwmaCase> {};

TEST_P(EwmaFuzzTest, TracksReferenceAndBatchMatchesPerItem) {
  const EwmaCase fuzz = GetParam();
  FuzzInput in = FuzzInput::FromSeed(
      fuzz.seed, static_cast<size_t>(fuzz.ops) * 16);
  RunEwmaFuzz(fuzz.mantissa_bits, fuzz.ops, in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EwmaFuzzTest,
                         ::testing::Values(EwmaCase{0xeb01, 0, 700},
                                           EwmaCase{0xeb02, 16, 700},
                                           EwmaCase{0xeb03, 24, 500}),
                         [](const ::testing::TestParamInfo<EwmaCase>& info) {
                           return "Seed" +
                                  std::to_string(info.param.seed & 0xff) +
                                  "Mantissa" +
                                  std::to_string(info.param.mantissa_bits);
                         });

TEST(RecentItemsFuzzTest, EstimateLowerBoundsReferenceAndAuditsHold) {
  FuzzInput in = FuzzInput::FromSeed(0xec01, 800 * 8);
  RunRecentItemsFuzz(800, in);
}

struct PolyExpCase {
  uint64_t seed;
  int k;
  int ops;
};

class PolyExpFuzzTest : public ::testing::TestWithParam<PolyExpCase> {};

TEST_P(PolyExpFuzzTest, RegistersTrackBruteForce) {
  const PolyExpCase fuzz = GetParam();
  FuzzInput in = FuzzInput::FromSeed(
      fuzz.seed, static_cast<size_t>(fuzz.ops) * 16);
  RunPolyExpFuzz(fuzz.k, fuzz.ops, in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyExpFuzzTest,
                         ::testing::Values(PolyExpCase{0xed01, 1, 700},
                                           PolyExpCase{0xed02, 2, 700},
                                           PolyExpCase{0xed03, 3, 500}),
                         [](const ::testing::TestParamInfo<PolyExpCase>&
                                info) {
                           return "Seed" +
                                  std::to_string(info.param.seed & 0xff) +
                                  "K" + std::to_string(info.param.k);
                         });

TEST(CoarseCehFuzzTest, ConstantFactorAndAuditsHold) {
  FuzzInput in = FuzzInput::FromSeed(0xee01, 600 * 8);
  RunCoarseCehFuzz(600, in);
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: the first byte dispatches among the five
// Section 3 counter cores, the next bytes pick that core's configuration.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  constexpr int kMaxOps = 4096;
  switch (in.Below(5)) {
    case 0:
      tds::RunExactFuzz(in.Below(2) == 0, kMaxOps, in);
      break;
    case 1: {
      constexpr int kMantissa[] = {0, 16, 24};
      tds::RunEwmaFuzz(kMantissa[in.Below(3)], kMaxOps, in);
      break;
    }
    case 2:
      tds::RunRecentItemsFuzz(kMaxOps, in);
      break;
    case 3:
      tds::RunPolyExpFuzz(1 + static_cast<int>(in.Below(3)), kMaxOps, in);
      break;
    default:
      tds::RunCoarseCehFuzz(kMaxOps, in);
      break;
  }
  return 0;
}

#endif  // TDS_LIBFUZZER
