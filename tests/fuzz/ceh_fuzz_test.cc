// Deterministic fuzz driver for the Cascaded Exponential Histogram:
// interleaves Update / Query / MergeFrom / snapshot round-trips under every
// decay family, auditing invariants and comparing against a brute-force
// decayed sum after each operation.
#include "core/ceh.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "fuzz_util.h"
#include "util/codec.h"

namespace tds {
namespace {

enum class DecayKind { kSliwin, kPolyOne, kPolyTwo, kExpd };

DecayPtr MakeDecay(DecayKind kind) {
  switch (kind) {
    case DecayKind::kSliwin:
      return SlidingWindowDecay::Create(96).value();
    case DecayKind::kPolyOne:
      return PolynomialDecay::Create(1.0).value();
    case DecayKind::kPolyTwo:
      return PolynomialDecay::Create(2.0).value();
    case DecayKind::kExpd:
      return ExponentialDecay::Create(0.05).value();
  }
  return nullptr;
}

/// Brute-force decayed sum: every item, weighted directly by the decay.
class ExactDecayedReference {
 public:
  explicit ExactDecayedReference(DecayPtr decay) : decay_(std::move(decay)) {}

  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  void MergeFrom(const ExactDecayedReference& other) {
    for (const auto& item : other.items_) items_.push_back(item);
  }

  double Sum(Tick now) const {
    double sum = 0.0;
    for (const auto& [t, value] : items_) {
      const Tick age = AgeAt(t, now);
      if (decay_->Horizon() != kInfiniteHorizon && age > decay_->Horizon()) {
        continue;
      }
      sum += static_cast<double>(value) * decay_->Weight(age);
    }
    return sum;
  }

 private:
  DecayPtr decay_;
  std::deque<std::pair<Tick, uint64_t>> items_;
};

struct FuzzCase {
  uint64_t seed;
  DecayKind decay;
  double epsilon;
  double envelope;  ///< Base relative envelope (pre-merge).
  int ops;
};

class CehFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

std::unique_ptr<CehDecayedSum> MakeCeh(DecayKind kind, double epsilon) {
  CehDecayedSum::Options options;
  options.epsilon = epsilon;
  auto ceh = CehDecayedSum::Create(MakeDecay(kind), options);
  EXPECT_TRUE(ceh.ok()) << ceh.status().ToString();
  return std::move(ceh).value();
}

TEST_P(CehFuzzTest, InterleavedOpsKeepInvariantsAndAccuracy) {
  const FuzzCase fuzz = GetParam();
  FuzzRng rng(fuzz.seed);
  const DecayPtr decay = MakeDecay(fuzz.decay);

  std::unique_ptr<CehDecayedSum> ceh = MakeCeh(fuzz.decay, fuzz.epsilon);
  ExactDecayedReference exact(decay);
  Tick now = 1;
  int merges = 0;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(fuzz.seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = ceh->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double reference = exact.Sum(now);
    const double envelope = fuzz.envelope + merges * fuzz.epsilon;
    EXPECT_NEAR(ceh->Query(now), reference,
                envelope * reference + 0.5 + merges);
  };

  for (int op = 0; op < fuzz.ops; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 60) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value =
          rng.NextBelow(25) == 0 ? 1 + rng.NextBelow(1000) : rng.NextBelow(4);
      ceh->Update(now, value);
      exact.Add(now, value);
      check("Update");
    } else if (kind < 75) {
      // Quiet period: queries alone advance the clock and expire state.
      now += static_cast<Tick>(rng.NextBelow(150));
      check("Advance");
    } else if (kind < 85) {
      // Full snapshot round-trip through the typed codec; continue on the
      // restored instance.
      const Status audit_status = AuditSnapshotRoundTrip(*ceh);
      ASSERT_TRUE(audit_status.ok()) << audit_status.ToString();
      std::string blob;
      const Status encode_status = EncodeDecayedSum(*ceh, &blob);
      ASSERT_TRUE(encode_status.ok()) << encode_status.ToString();
      auto restored = DecodeDecayedSum(decay, blob);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      auto* typed = dynamic_cast<CehDecayedSum*>(restored->get());
      ASSERT_NE(typed, nullptr);
      restored->release();
      ceh.reset(typed);
      check("SnapshotRoundTrip");
    } else if (kind < 92 && merges < 3) {
      std::unique_ptr<CehDecayedSum> other = MakeCeh(fuzz.decay, fuzz.epsilon);
      ExactDecayedReference other_exact(decay);
      Tick other_now = std::max<Tick>(1, now - static_cast<Tick>(
                                              rng.NextBelow(30)));
      const int burst = 1 + static_cast<int>(rng.NextBelow(50));
      for (int i = 0; i < burst; ++i) {
        other_now += static_cast<Tick>(rng.NextBelow(2));
        const uint64_t value = 1 + rng.NextBelow(3);
        other->Update(other_now, value);
        other_exact.Add(other_now, value);
      }
      now = std::max(now, other_now);
      const Status status = ceh->MergeFrom(*other);
      ASSERT_TRUE(status.ok()) << status.ToString();
      exact.MergeFrom(other_exact);
      ++merges;
      check("MergeFrom");
    } else {
      // Repeated queries at one tick must be stable (memoization path).
      const double first = ceh->Query(now);
      EXPECT_DOUBLE_EQ(ceh->Query(now), first);
      check("RepeatedQuery");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CehFuzzTest,
    ::testing::Values(
        FuzzCase{0xce01, DecayKind::kSliwin, 0.1, 0.11, 900},
        FuzzCase{0xce02, DecayKind::kPolyOne, 0.1, 0.3, 900},
        FuzzCase{0xce03, DecayKind::kPolyTwo, 0.1, 0.3, 700},
        FuzzCase{0xce04, DecayKind::kExpd, 0.1, 0.3, 700},
        FuzzCase{0xce05, DecayKind::kPolyOne, 0.02, 0.06, 600}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "Seed" + std::to_string(info.param.seed & 0xff) + "Decay" +
             std::to_string(static_cast<int>(info.param.decay)) + "Eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

}  // namespace
}  // namespace tds
