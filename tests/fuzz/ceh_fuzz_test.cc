// Dual-mode fuzz driver for the Cascaded Exponential Histogram:
// interleaves Update / Query / MergeFrom / snapshot round-trips under every
// decay family, auditing invariants and comparing against a brute-force
// decayed sum after each operation. The gtest-free core consumes a
// FuzzInput byte stream: deterministic seed-driven ctest target by default,
// coverage-guided libFuzzer harness under -DTDS_LIBFUZZER.
#include "core/ceh.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "fuzz_util.h"
#include "util/codec.h"

namespace tds {
namespace {

enum class DecayKind { kSliwin, kPolyOne, kPolyTwo, kExpd };

DecayPtr MakeDecay(DecayKind kind) {
  switch (kind) {
    case DecayKind::kSliwin:
      return SlidingWindowDecay::Create(96).value();
    case DecayKind::kPolyOne:
      return PolynomialDecay::Create(1.0).value();
    case DecayKind::kPolyTwo:
      return PolynomialDecay::Create(2.0).value();
    case DecayKind::kExpd:
      return ExponentialDecay::Create(0.05).value();
  }
  return nullptr;
}

/// Brute-force decayed sum: every item, weighted directly by the decay.
class ExactDecayedReference {
 public:
  explicit ExactDecayedReference(DecayPtr decay) : decay_(std::move(decay)) {}

  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  void MergeFrom(const ExactDecayedReference& other) {
    for (const auto& item : other.items_) items_.push_back(item);
  }

  double Sum(Tick now) const {
    double sum = 0.0;
    for (const auto& [t, value] : items_) {
      const Tick age = AgeAt(t, now);
      if (decay_->Horizon() != kInfiniteHorizon && age > decay_->Horizon()) {
        continue;
      }
      sum += static_cast<double>(value) * decay_->Weight(age);
    }
    return sum;
  }

 private:
  DecayPtr decay_;
  std::deque<std::pair<Tick, uint64_t>> items_;
};

struct CehFuzzConfig {
  DecayKind decay;
  double epsilon;
  double envelope;  ///< Base relative envelope (pre-merge).
  int max_ops;
};

std::unique_ptr<CehDecayedSum> MakeCeh(DecayKind kind, double epsilon,
                                       const FuzzInput& in) {
  CehDecayedSum::Options options;
  options.epsilon = epsilon;
  auto ceh = CehDecayedSum::Create(MakeDecay(kind), options);
  TDS_FUZZ_CHECK(ceh.ok(), in, "Create: ", ceh.status().ToString());
  return std::move(ceh).value();
}

void RunCehFuzz(const CehFuzzConfig& config, FuzzInput& in) {
  const DecayPtr decay = MakeDecay(config.decay);
  std::unique_ptr<CehDecayedSum> ceh =
      MakeCeh(config.decay, config.epsilon, in);
  ExactDecayedReference exact(decay);
  Tick now = 1;
  int merges = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(ceh->AuditInvariants(), in, "after ", op);
    const double reference = exact.Sum(now);
    const double envelope = config.envelope + merges * config.epsilon;
    TDS_FUZZ_CHECK_NEAR(ceh->Query(now), reference,
                        envelope * reference + 0.5 + merges, in,
                        "after ", op);
  };

  for (int op = 0; op < config.max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 60) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value =
          in.Below(25) == 0 ? 1 + in.Below(1000) : in.Below(4);
      ceh->Update(now, value);
      exact.Add(now, value);
      check("Update");
    } else if (kind < 75) {
      // Quiet period: queries alone advance the clock and expire state.
      now += static_cast<Tick>(in.Below(150));
      check("Advance");
    } else if (kind < 85) {
      // Full snapshot round-trip through the typed codec; continue on the
      // restored instance.
      TDS_FUZZ_CHECK_OK(AuditSnapshotRoundTrip(*ceh), in,
                        "AuditSnapshotRoundTrip");
      std::string blob;
      TDS_FUZZ_CHECK_OK(EncodeDecayedSum(*ceh, &blob), in, "Encode");
      auto restored = DecodeDecayedSum(decay, blob);
      TDS_FUZZ_CHECK(restored.ok(), in,
                     "Decode: ", restored.status().ToString());
      auto* typed = dynamic_cast<CehDecayedSum*>(restored->get());
      TDS_FUZZ_CHECK(typed != nullptr, in, "decoded type is not CEH");
      restored->release();
      ceh.reset(typed);
      check("SnapshotRoundTrip");
    } else if (kind < 92 && merges < 3) {
      std::unique_ptr<CehDecayedSum> other =
          MakeCeh(config.decay, config.epsilon, in);
      ExactDecayedReference other_exact(decay);
      Tick other_now =
          std::max<Tick>(1, now - static_cast<Tick>(in.Below(30)));
      const int burst = 1 + static_cast<int>(in.Below(50));
      for (int i = 0; i < burst; ++i) {
        other_now += static_cast<Tick>(in.Below(2));
        const uint64_t value = 1 + in.Below(3);
        other->Update(other_now, value);
        other_exact.Add(other_now, value);
      }
      now = std::max(now, other_now);
      TDS_FUZZ_CHECK_OK(ceh->MergeFrom(*other), in, "MergeFrom");
      exact.MergeFrom(other_exact);
      ++merges;
      check("MergeFrom");
    } else {
      // Repeated queries at one tick must be stable (memoization path).
      const double first = ceh->Query(now);
      TDS_FUZZ_CHECK_DOUBLE_EQ(ceh->Query(now), first, in,
                               "repeated query drifted");
      check("RepeatedQuery");
    }
  }
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

struct FuzzCase {
  uint64_t seed;
  DecayKind decay;
  double epsilon;
  double envelope;
  int ops;
};

class CehFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CehFuzzTest, InterleavedOpsKeepInvariantsAndAccuracy) {
  const FuzzCase fuzz = GetParam();
  FuzzInput in = FuzzInput::FromSeed(
      fuzz.seed, static_cast<size_t>(fuzz.ops) * 16);
  RunCehFuzz({fuzz.decay, fuzz.epsilon, fuzz.envelope, fuzz.ops}, in);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CehFuzzTest,
    ::testing::Values(
        FuzzCase{0xce01, DecayKind::kSliwin, 0.1, 0.11, 900},
        FuzzCase{0xce02, DecayKind::kPolyOne, 0.1, 0.3, 900},
        FuzzCase{0xce03, DecayKind::kPolyTwo, 0.1, 0.3, 700},
        FuzzCase{0xce04, DecayKind::kExpd, 0.1, 0.3, 700},
        FuzzCase{0xce05, DecayKind::kPolyOne, 0.02, 0.06, 600}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "Seed" + std::to_string(info.param.seed & 0xff) + "Decay" +
             std::to_string(static_cast<int>(info.param.decay)) + "Eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: leading bytes pick decay family + epsilon
// (with the matching hand-calibrated envelope), the rest drive the ops.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  const auto decay = static_cast<tds::DecayKind>(in.Below(4));
  const bool tight = in.Below(4) == 0;
  tds::CehFuzzConfig config;
  config.decay = decay;
  config.epsilon = tight ? 0.02 : 0.1;
  // The sliding-window envelope is tighter than the smooth-decay families
  // (same calibration as the ctest seed list).
  config.envelope = decay == tds::DecayKind::kSliwin
                        ? (tight ? 0.03 : 0.11)
                        : (tight ? 0.06 : 0.3);
  config.max_ops = 4096;
  tds::RunCehFuzz(config, in);
  return 0;
}

#endif  // TDS_LIBFUZZER
