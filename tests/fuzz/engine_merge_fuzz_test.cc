// Dual-mode fuzz driver for the cross-shard merge/rebalance machinery
// (docs/CORRECTNESS.md conventions): byte-stream-driven interleavings of
// routed ingest batches, slice migrations (ExtractIf -> MergeFrom + route
// flips), merged-snapshot assembly through the shard-blob decode path, and
// merged-snapshot codec round-trips — single-threaded, modelling exactly
// what the engine's writer threads do, so every sequence is replayable
// from its input bytes. After every operation: AuditInvariants() on every
// shard registry, and after every snapshot op a byte-for-byte comparison
// of the merged registry blob against a serially-fed reference (expiry is
// disabled, so bookkeeping never becomes arithmetic).
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine/merged_snapshot.h"
#include "engine/registry.h"
#include "fuzz_util.h"
#include "util/common.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr uint32_t kShards = 3;
constexpr uint32_t kSlices = 24;
constexpr uint64_t kKeySpace = 60;

AggregateRegistry::Options MergeFuzzOptions(Backend backend) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(0.15)
                          .Build()
                          .value();
  options.expiry_weight_floor = -1.0;  // byte-equality oracle: no eviction
  return options;
}

std::string MustEncode(AggregateRegistry& registry, const FuzzInput& in) {
  std::string blob;
  TDS_FUZZ_CHECK_OK(registry.EncodeState(&blob), in, "EncodeState");
  return blob;
}

struct MergeFuzzCoverage {
  uint64_t migrations = 0;
  uint64_t snapshots = 0;
};

MergeFuzzCoverage RunEngineMergeFuzz(const DecayPtr& decay, Backend backend,
                                     int max_ops, FuzzInput& in) {
  const auto options = MergeFuzzOptions(backend);

  // The model: per-shard registries + a slice->shard route table —
  // the single-threaded skeleton of ShardedAggregateEngine.
  std::vector<AggregateRegistry> shards;
  for (uint32_t s = 0; s < kShards; ++s) {
    auto registry = AggregateRegistry::Create(decay, options);
    TDS_FUZZ_CHECK(registry.ok(), in, registry.status().ToString());
    shards.push_back(std::move(registry).value());
  }
  std::vector<uint32_t> route(kSlices);
  for (uint32_t s = 0; s < kSlices; ++s) route[s] = s % kShards;
  auto reference = AggregateRegistry::Create(decay, options);
  TDS_FUZZ_CHECK(reference.ok(), in, reference.status().ToString());

  const auto audit_all = [&](int op) {
    for (uint32_t s = 0; s < kShards; ++s) {
      TDS_FUZZ_CHECK_OK(shards[s].AuditInvariants(), in,
                        "shard ", s, " op=", op);
    }
    TDS_FUZZ_CHECK_OK(reference->AuditInvariants(), in, "reference");
  };

  Tick t = 1;
  MergeFuzzCoverage coverage;
  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(10);
    if (kind < 6) {
      // Routed ingest batch, globally tick-ordered (the rebalance
      // precondition), per-shard via the batch path.
      const size_t size = 1 + in.Below(60);
      std::vector<std::vector<KeyedItem>> per_shard(kShards);
      for (size_t i = 0; i < size; ++i) {
        if (in.Below(4) == 0) t += in.Below(4);
        const uint64_t key = in.Below(kKeySpace);
        const uint64_t value = in.Below(6);
        const uint32_t slice =
            ShardedAggregateEngine::SliceForKey(key, kSlices);
        per_shard[route[slice]].push_back(KeyedItem{key, t, value});
        reference->Update(key, t, value);
      }
      for (uint32_t s = 0; s < kShards; ++s) {
        if (!per_shard[s].empty()) shards[s].UpdateBatch(per_shard[s]);
      }
    } else if (kind < 8) {
      // Migration: move a random run of slices to a random shard, the
      // same ExtractIf -> MergeFrom protocol the engine runs on its
      // writer threads.
      const uint32_t to = static_cast<uint32_t>(in.Below(kShards));
      const uint32_t first = static_cast<uint32_t>(in.Below(kSlices));
      const uint32_t count = 1 + static_cast<uint32_t>(in.Below(6));
      std::vector<uint8_t> member(kSlices, 0);
      std::vector<uint8_t> donor(kShards, 0);
      for (uint32_t i = 0; i < count; ++i) {
        const uint32_t slice = (first + i) % kSlices;
        if (route[slice] == to) continue;
        member[slice] = 1;
        donor[route[slice]] = 1;
        route[slice] = to;
      }
      for (uint32_t from = 0; from < kShards; ++from) {
        if (!donor[from]) continue;
        auto extracted = shards[from].ExtractIf([&](uint64_t key) {
          return member[ShardedAggregateEngine::SliceForKey(
                     key, kSlices)] != 0;
        });
        TDS_FUZZ_CHECK(extracted.ok(), in,
                       "ExtractIf: ", extracted.status().ToString());
        TDS_FUZZ_CHECK_OK(
            shards[to].MergeFrom(std::move(extracted).value()), in,
            "MergeFrom");
        ++coverage.migrations;
      }
    } else if (kind == 8) {
      // Merged snapshot through the shard-blob decode path (the same
      // assembly Snapshot() performs), byte-compared to the reference.
      std::vector<std::string> blobs;
      for (uint32_t s = 0; s < kShards; ++s) {
        blobs.push_back(MustEncode(shards[s], in));
      }
      auto merged = MergedSnapshot::FromShardBlobs(decay, options, blobs);
      TDS_FUZZ_CHECK(merged.ok(), in,
                     "FromShardBlobs: ", merged.status().ToString());
      TDS_FUZZ_CHECK(merged->KeyCount() == reference->KeyCount(), in,
                     "KeyCount mismatch op=", op);
      std::string merged_blob;
      TDS_FUZZ_CHECK_OK(merged->EncodeRegistryState(&merged_blob), in,
                        "EncodeRegistryState");
      TDS_FUZZ_CHECK(merged_blob == MustEncode(*reference, in), in,
                     "merged blob diverged from serial reference, op=", op);
      ++coverage.snapshots;
    } else {
      // Merged-snapshot codec round-trip: decode then re-encode must
      // be byte-identical, and the inner registry re-audits on decode.
      std::vector<AggregateRegistry> copies;
      for (uint32_t s = 0; s < kShards; ++s) {
        auto copy = AggregateRegistry::Decode(decay, options,
                                              MustEncode(shards[s], in));
        TDS_FUZZ_CHECK(copy.ok(), in, "Decode: ", copy.status().ToString());
        copies.push_back(std::move(copy).value());
      }
      auto merged = MergedSnapshot::FromShards(std::move(copies));
      TDS_FUZZ_CHECK(merged.ok(), in,
                     "FromShards: ", merged.status().ToString());
      std::string blob;
      TDS_FUZZ_CHECK_OK(merged->EncodeState(&blob), in, "EncodeState");
      auto decoded = MergedSnapshot::Decode(decay, options, blob);
      TDS_FUZZ_CHECK(decoded.ok(), in,
                     "Decode: ", decoded.status().ToString());
      std::string reencoded;
      TDS_FUZZ_CHECK_OK(decoded->EncodeState(&reencoded), in, "re-encode");
      TDS_FUZZ_CHECK(reencoded == blob, in,
                     "merged snapshot not self-inverse, op=", op);
      TDS_FUZZ_CHECK(decoded->cut() == merged->cut(), in, "cut mismatch");
    }
    audit_all(op);
  }
  // Final differential: fold the real registries and compare.
  auto merged = MergedSnapshot::FromShards(std::move(shards));
  TDS_FUZZ_CHECK(merged.ok(), in,
                 "final FromShards: ", merged.status().ToString());
  std::string merged_blob;
  TDS_FUZZ_CHECK_OK(merged->EncodeRegistryState(&merged_blob), in, "final");
  TDS_FUZZ_CHECK(merged_blob == MustEncode(*reference, in), in,
                 "final merged blob diverged from serial reference");
  return coverage;
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

TEST(EngineMergeFuzzTest, ShardedMergeMatchesSerialUnderFuzzedInterleavings) {
  struct Config {
    const char* label;
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {"EH", SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {"CEH", PolynomialDecay::Create(1.0).value(), Backend::kCeh},
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(::testing::Message() << config.label << " seed=" << seed);
      FuzzInput in = FuzzInput::FromSeed(
          seed * 6151 + static_cast<uint64_t>(config.backend), 160 * 96);
      const MergeFuzzCoverage coverage =
          RunEngineMergeFuzz(config.decay, config.backend, 160, in);
      // Every run must actually exercise the machinery under test.
      EXPECT_GT(coverage.migrations, 0u);
      EXPECT_GT(coverage.snapshots, 0u);
    }
  }
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: the first byte picks the (decay, backend)
// pairing, the rest drive the op stream. (Migration/snapshot counts are
// coverage bookkeeping for the deterministic wrapper, not an invariant
// arbitrary byte streams could promise.)
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  constexpr int kMaxOps = 512;
  switch (in.Below(3)) {
    case 0:
      (void)tds::RunEngineMergeFuzz(
          tds::SlidingWindowDecay::Create(96).value(), tds::Backend::kCeh,
          kMaxOps, in);
      break;
    case 1:
      (void)tds::RunEngineMergeFuzz(tds::PolynomialDecay::Create(1.0).value(),
                                    tds::Backend::kCeh, kMaxOps, in);
      break;
    default:
      (void)tds::RunEngineMergeFuzz(tds::PolynomialDecay::Create(1.0).value(),
                                    tds::Backend::kWbmh, kMaxOps, in);
      break;
  }
  return 0;
}

#endif  // TDS_LIBFUZZER
