// Deterministic fuzz driver for the cross-shard merge/rebalance machinery
// (docs/CORRECTNESS.md conventions): seed-driven interleavings of routed
// ingest batches, slice migrations (ExtractIf -> MergeFrom + route flips),
// merged-snapshot assembly through the shard-blob decode path, and
// merged-snapshot codec round-trips — single-threaded, modelling exactly
// what the engine's writer threads do, so every sequence is replayable
// from (seed, counter). After every operation: AuditInvariants() on every
// shard registry, and after every snapshot op a byte-for-byte comparison
// of the merged registry blob against a serially-fed reference (expiry is
// disabled, so bookkeeping never becomes arithmetic).
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine/merged_snapshot.h"
#include "engine/registry.h"
#include "fuzz_util.h"
#include "util/common.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr uint32_t kShards = 3;
constexpr uint32_t kSlices = 24;
constexpr uint64_t kKeySpace = 60;

AggregateRegistry::Options FuzzOptions(Backend backend) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(0.15)
                          .Build()
                          .value();
  options.expiry_weight_floor = -1.0;  // byte-equality oracle: no eviction
  return options;
}

std::string MustEncode(AggregateRegistry& registry) {
  std::string blob;
  const Status status = registry.EncodeState(&blob);
  EXPECT_TRUE(status.ok()) << status.message();
  return blob;
}

TEST(EngineMergeFuzzTest, ShardedMergeMatchesSerialUnderFuzzedInterleavings) {
  struct Config {
    const char* label;
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {"EH", SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {"CEH", PolynomialDecay::Create(1.0).value(), Backend::kCeh},
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(::testing::Message()
                   << config.label << " seed=" << seed);
      const auto options = FuzzOptions(config.backend);

      // The model: per-shard registries + a slice->shard route table —
      // the single-threaded skeleton of ShardedAggregateEngine.
      std::vector<AggregateRegistry> shards;
      for (uint32_t s = 0; s < kShards; ++s) {
        auto registry = AggregateRegistry::Create(config.decay, options);
        ASSERT_TRUE(registry.ok());
        shards.push_back(std::move(registry).value());
      }
      std::vector<uint32_t> route(kSlices);
      for (uint32_t s = 0; s < kSlices; ++s) route[s] = s % kShards;
      auto reference = AggregateRegistry::Create(config.decay, options);
      ASSERT_TRUE(reference.ok());

      const auto audit_all = [&] {
        for (uint32_t s = 0; s < kShards; ++s) {
          const Status status = shards[s].AuditInvariants();
          ASSERT_TRUE(status.ok())
              << "shard " << s << ": " << status.message();
        }
        ASSERT_TRUE(reference->AuditInvariants().ok());
      };

      FuzzRng rng(seed * 6151 + static_cast<uint64_t>(config.backend));
      Tick t = 1;
      uint64_t migrations = 0;
      uint64_t snapshots = 0;
      for (int op = 0; op < 160; ++op) {
        SCOPED_TRACE(::testing::Message()
                     << "op=" << op << " counter=" << rng.counter());
        const uint64_t kind = rng.NextBelow(10);
        if (kind < 6) {
          // Routed ingest batch, globally tick-ordered (the rebalance
          // precondition), per-shard via the batch path.
          const size_t size = 1 + rng.NextBelow(60);
          std::vector<std::vector<KeyedItem>> per_shard(kShards);
          for (size_t i = 0; i < size; ++i) {
            if (rng.NextBelow(4) == 0) t += rng.NextBelow(4);
            const uint64_t key = rng.NextBelow(kKeySpace);
            const uint64_t value = rng.NextBelow(6);
            const uint32_t slice =
                ShardedAggregateEngine::SliceForKey(key, kSlices);
            per_shard[route[slice]].push_back(KeyedItem{key, t, value});
            reference->Update(key, t, value);
          }
          for (uint32_t s = 0; s < kShards; ++s) {
            if (!per_shard[s].empty()) shards[s].UpdateBatch(per_shard[s]);
          }
        } else if (kind < 8) {
          // Migration: move a random run of slices to a random shard, the
          // same ExtractIf -> MergeFrom protocol the engine runs on its
          // writer threads.
          const uint32_t to = static_cast<uint32_t>(rng.NextBelow(kShards));
          const uint32_t first = static_cast<uint32_t>(rng.NextBelow(kSlices));
          const uint32_t count = 1 + static_cast<uint32_t>(rng.NextBelow(6));
          std::vector<uint8_t> member(kSlices, 0);
          std::vector<uint8_t> donor(kShards, 0);
          for (uint32_t i = 0; i < count; ++i) {
            const uint32_t slice = (first + i) % kSlices;
            if (route[slice] == to) continue;
            member[slice] = 1;
            donor[route[slice]] = 1;
            route[slice] = to;
          }
          for (uint32_t from = 0; from < kShards; ++from) {
            if (!donor[from]) continue;
            auto extracted = shards[from].ExtractIf([&](uint64_t key) {
              return member[ShardedAggregateEngine::SliceForKey(
                         key, kSlices)] != 0;
            });
            ASSERT_TRUE(extracted.ok()) << extracted.status().message();
            ASSERT_TRUE(
                shards[to].MergeFrom(std::move(extracted).value()).ok());
            ++migrations;
          }
        } else if (kind == 8) {
          // Merged snapshot through the shard-blob decode path (the same
          // assembly Snapshot() performs), byte-compared to the reference.
          std::vector<std::string> blobs;
          for (uint32_t s = 0; s < kShards; ++s) {
            blobs.push_back(MustEncode(shards[s]));
          }
          auto merged =
              MergedSnapshot::FromShardBlobs(config.decay, options, blobs);
          ASSERT_TRUE(merged.ok()) << merged.status().message();
          EXPECT_EQ(merged->KeyCount(), reference->KeyCount());
          std::string merged_blob;
          ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
          EXPECT_EQ(merged_blob, MustEncode(*reference));
          ++snapshots;
        } else {
          // Merged-snapshot codec round-trip: decode then re-encode must
          // be byte-identical, and the inner registry re-audits on decode.
          std::vector<AggregateRegistry> copies;
          for (uint32_t s = 0; s < kShards; ++s) {
            auto copy = AggregateRegistry::Decode(config.decay, options,
                                                  MustEncode(shards[s]));
            ASSERT_TRUE(copy.ok());
            copies.push_back(std::move(copy).value());
          }
          auto merged = MergedSnapshot::FromShards(std::move(copies));
          ASSERT_TRUE(merged.ok()) << merged.status().message();
          std::string blob;
          ASSERT_TRUE(merged->EncodeState(&blob).ok());
          auto decoded = MergedSnapshot::Decode(config.decay, options, blob);
          ASSERT_TRUE(decoded.ok()) << decoded.status().message();
          std::string reencoded;
          ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
          EXPECT_EQ(reencoded, blob);
          EXPECT_EQ(decoded->cut(), merged->cut());
        }
        audit_all();
      }
      // Every run must actually exercise the machinery under test.
      EXPECT_GT(migrations, 0u);
      EXPECT_GT(snapshots, 0u);
      // Final differential: fold the real registries and compare.
      auto merged = MergedSnapshot::FromShards(std::move(shards));
      ASSERT_TRUE(merged.ok()) << merged.status().message();
      std::string merged_blob;
      ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
      EXPECT_EQ(merged_blob, MustEncode(*reference));
    }
  }
}

}  // namespace
}  // namespace tds
