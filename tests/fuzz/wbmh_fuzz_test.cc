// Dual-mode fuzz driver for the Weight-Based Merging Histogram:
// interleaves Update / Query / quiet gaps / snapshot round-trips on an
// owned-layout instance, and separately drives two counters over one shared
// layout with periodic log trimming — the deployment shape the layout's op
// log exists for. Audits layout + counter invariants after every operation.
// Gtest-free FuzzInput cores run both as the deterministic ctest target and
// as a libFuzzer harness under -DTDS_LIBFUZZER.
#include "core/wbmh.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "core/snapshot.h"
#include "decay/polynomial.h"
#include "fuzz_util.h"

namespace tds {
namespace {

/// Brute-force decayed sum under `decay` (shared with the CEH driver in
/// spirit, duplicated to stay self-contained per target).
class ExactDecayedReference {
 public:
  explicit ExactDecayedReference(DecayPtr decay) : decay_(std::move(decay)) {}

  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  double Sum(Tick now) const {
    double sum = 0.0;
    for (const auto& [t, value] : items_) {
      const Tick age = AgeAt(t, now);
      if (decay_->Horizon() != kInfiniteHorizon && age > decay_->Horizon()) {
        continue;
      }
      sum += static_cast<double>(value) * decay_->Weight(age);
    }
    return sum;
  }

 private:
  DecayPtr decay_;
  std::deque<std::pair<Tick, uint64_t>> items_;
};

struct WbmhFuzzConfig {
  double alpha;     ///< Polynomial decay exponent.
  double epsilon;
  double envelope;  ///< Relative error budget for Query vs exact.
  int max_ops;
};

void RunWbmhFuzz(const WbmhFuzzConfig& config, FuzzInput& in) {
  const DecayPtr decay = PolynomialDecay::Create(config.alpha).value();

  WbmhDecayedSum::Options options;
  options.epsilon = config.epsilon;
  auto created = WbmhDecayedSum::Create(decay, options);
  TDS_FUZZ_CHECK(created.ok(), in, "Create: ", created.status().ToString());
  std::unique_ptr<WbmhDecayedSum> wbmh = std::move(created).value();

  ExactDecayedReference exact(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(wbmh->AuditInvariants(), in, "after ", op);
    const double reference = exact.Sum(now);
    TDS_FUZZ_CHECK_NEAR(wbmh->Query(now), reference,
                        config.envelope * reference + 0.5, in, "after ", op);
  };

  for (int op = 0; op < config.max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 65) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value =
          in.Below(25) == 0 ? 1 + in.Below(500) : in.Below(4);
      wbmh->Update(now, value);
      exact.Add(now, value);
      check("Update");
    } else if (kind < 82) {
      // Quiet gap: forces seal/merge/drop event processing in one burst.
      now += static_cast<Tick>(in.Below(200));
      check("Gap");
    } else if (kind < 90) {
      // Snapshot round-trip (owned layout); continue on the restored copy.
      TDS_FUZZ_CHECK_OK(AuditSnapshotRoundTrip(*wbmh), in,
                        "AuditSnapshotRoundTrip");
      std::string blob;
      TDS_FUZZ_CHECK_OK(EncodeDecayedSum(*wbmh, &blob), in, "Encode");
      auto restored = DecodeDecayedSum(decay, blob);
      TDS_FUZZ_CHECK(restored.ok(), in,
                     "Decode: ", restored.status().ToString());
      auto* typed = dynamic_cast<WbmhDecayedSum*>(restored->get());
      TDS_FUZZ_CHECK(typed != nullptr, in, "decoded type is not WBMH");
      restored->release();
      wbmh.reset(typed);
      check("SnapshotRoundTrip");
    } else {
      // Repeated queries at a fixed tick must agree.
      const double first = wbmh->Query(now);
      TDS_FUZZ_CHECK_DOUBLE_EQ(wbmh->Query(now), first, in,
                               "repeated query drifted");
      check("RepeatedQuery");
    }
  }
}

// Two counters over one shared layout, with periodic op-log trimming at the
// slower counter's applied sequence — exercises the replay protocol that the
// single-stream wrapper never stresses.
void RunWbmhSharedLayoutFuzz(int max_ops, FuzzInput& in) {
  const DecayPtr decay = PolynomialDecay::Create(1.5).value();

  WbmhLayout::Options layout_options;
  layout_options.decay = decay;
  layout_options.epsilon = 0.2;
  layout_options.start = 1;
  auto layout_or = WbmhLayout::Create(layout_options);
  TDS_FUZZ_CHECK(layout_or.ok(), in,
                 "layout Create: ", layout_or.status().ToString());
  auto layout = std::make_shared<WbmhLayout>(std::move(layout_or).value());

  WbmhDecayedSum::Options options;
  options.epsilon = 0.2;
  auto a = WbmhDecayedSum::CreateShared(layout, options);
  auto b = WbmhDecayedSum::CreateShared(layout, options);
  TDS_FUZZ_CHECK(a.ok(), in, "CreateShared a: ", a.status().ToString());
  TDS_FUZZ_CHECK(b.ok(), in, "CreateShared b: ", b.status().ToString());

  ExactDecayedReference exact_a(decay);
  ExactDecayedReference exact_b(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(layout->AuditInvariants(), in, "layout after ", op);
    TDS_FUZZ_CHECK_OK((*a)->AuditInvariants(), in, "a after ", op);
    TDS_FUZZ_CHECK_OK((*b)->AuditInvariants(), in, "b after ", op);
    TDS_FUZZ_CHECK_NEAR((*a)->Query(now), exact_a.Sum(now),
                        0.5 * exact_a.Sum(now) + 0.5, in, "a after ", op);
    TDS_FUZZ_CHECK_NEAR((*b)->Query(now), exact_b.Sum(now),
                        0.5 * exact_b.Sum(now) + 0.5, in, "b after ", op);
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 45) {
      now += static_cast<Tick>(in.Below(2));
      const uint64_t value = 1 + in.Below(3);
      (*a)->Update(now, value);
      exact_a.Add(now, value);
      check("UpdateA");
    } else if (kind < 80) {
      // Stream B is burstier: it falls behind on replay between bursts,
      // leaving real work for the shared-log catch-up path.
      now += static_cast<Tick>(in.Below(40));
      const uint64_t value = 1 + in.Below(10);
      (*b)->Update(now, value);
      exact_b.Add(now, value);
      check("UpdateB");
    } else if (kind < 92) {
      now += static_cast<Tick>(in.Below(120));
      check("Gap");
    } else {
      // Queries sync both counters to the layout's op sequence, after which
      // the whole log may be discarded.
      (void)(*a)->Query(now);
      (void)(*b)->Query(now);
      const uint64_t safe = std::min((*a)->counter().AppliedSeq(),
                                     (*b)->counter().AppliedSeq());
      layout->TrimLog(safe);
      check("TrimLog");
    }
  }
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

struct FuzzCase {
  uint64_t seed;
  double alpha;
  double epsilon;
  double envelope;
  int ops;
};

class WbmhFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(WbmhFuzzTest, InterleavedOpsKeepInvariantsAndAccuracy) {
  const FuzzCase fuzz = GetParam();
  FuzzInput in = FuzzInput::FromSeed(
      fuzz.seed, static_cast<size_t>(fuzz.ops) * 16);
  RunWbmhFuzz({fuzz.alpha, fuzz.epsilon, fuzz.envelope, fuzz.ops}, in);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, WbmhFuzzTest,
    ::testing::Values(FuzzCase{0x3b01, 1.0, 0.2, 0.5, 900},
                      FuzzCase{0x3b02, 2.0, 0.2, 0.5, 900},
                      FuzzCase{0x3b03, 1.0, 0.05, 0.15, 600},
                      FuzzCase{0x3b04, 0.5, 0.5, 1.0, 900}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "Seed" + std::to_string(info.param.seed & 0xff) + "Alpha" +
             std::to_string(static_cast<int>(info.param.alpha * 10)) +
             "Eps" + std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

TEST(WbmhSharedLayoutFuzzTest, TwoCountersOneLayoutWithTrimming) {
  FuzzInput in = FuzzInput::FromSeed(0x3bff, 900 * 16);
  RunWbmhSharedLayoutFuzz(900, in);
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: the first byte picks the sub-driver (shared
// layout vs owned), the next bytes pick decay exponent + epsilon.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  if (in.Below(4) == 0) {
    tds::RunWbmhSharedLayoutFuzz(4096, in);
    return 0;
  }
  constexpr double kAlphas[] = {0.5, 1.0, 2.0};
  const bool tight = in.Below(4) == 0;
  tds::WbmhFuzzConfig config;
  config.alpha = kAlphas[in.Below(3)];
  config.epsilon = tight ? 0.05 : 0.2;
  config.envelope = tight ? 0.15 : (config.alpha < 1.0 ? 1.0 : 0.5);
  config.max_ops = 4096;
  tds::RunWbmhFuzz(config, in);
  return 0;
}

#endif  // TDS_LIBFUZZER
