// Deterministic fuzz driver for the Weight-Based Merging Histogram:
// interleaves Update / Query / quiet gaps / snapshot round-trips on an
// owned-layout instance, and separately drives two counters over one shared
// layout with periodic log trimming — the deployment shape the layout's op
// log exists for. Audits layout + counter invariants after every operation.
#include "core/wbmh.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "decay/polynomial.h"
#include "fuzz_util.h"

namespace tds {
namespace {

/// Brute-force decayed sum under `decay` (shared with the CEH driver in
/// spirit, duplicated to stay self-contained per target).
class ExactDecayedReference {
 public:
  explicit ExactDecayedReference(DecayPtr decay) : decay_(std::move(decay)) {}

  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  double Sum(Tick now) const {
    double sum = 0.0;
    for (const auto& [t, value] : items_) {
      const Tick age = AgeAt(t, now);
      if (decay_->Horizon() != kInfiniteHorizon && age > decay_->Horizon()) {
        continue;
      }
      sum += static_cast<double>(value) * decay_->Weight(age);
    }
    return sum;
  }

 private:
  DecayPtr decay_;
  std::deque<std::pair<Tick, uint64_t>> items_;
};

struct FuzzCase {
  uint64_t seed;
  double alpha;    ///< Polynomial decay exponent.
  double epsilon;
  double envelope; ///< Relative error budget for Query vs exact.
  int ops;
};

class WbmhFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(WbmhFuzzTest, InterleavedOpsKeepInvariantsAndAccuracy) {
  const FuzzCase fuzz = GetParam();
  FuzzRng rng(fuzz.seed);
  const DecayPtr decay = PolynomialDecay::Create(fuzz.alpha).value();

  WbmhDecayedSum::Options options;
  options.epsilon = fuzz.epsilon;
  auto created = WbmhDecayedSum::Create(decay, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<WbmhDecayedSum> wbmh = std::move(created).value();

  ExactDecayedReference exact(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(fuzz.seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = wbmh->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    const double reference = exact.Sum(now);
    EXPECT_NEAR(wbmh->Query(now), reference,
                fuzz.envelope * reference + 0.5);
  };

  for (int op = 0; op < fuzz.ops; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 65) {
      now += static_cast<Tick>(rng.NextBelow(3));
      const uint64_t value =
          rng.NextBelow(25) == 0 ? 1 + rng.NextBelow(500) : rng.NextBelow(4);
      wbmh->Update(now, value);
      exact.Add(now, value);
      check("Update");
    } else if (kind < 82) {
      // Quiet gap: forces seal/merge/drop event processing in one burst.
      now += static_cast<Tick>(rng.NextBelow(200));
      check("Gap");
    } else if (kind < 90) {
      // Snapshot round-trip (owned layout); continue on the restored copy.
      const Status audit_status = AuditSnapshotRoundTrip(*wbmh);
      ASSERT_TRUE(audit_status.ok()) << audit_status.ToString();
      std::string blob;
      const Status encode_status = EncodeDecayedSum(*wbmh, &blob);
      ASSERT_TRUE(encode_status.ok()) << encode_status.ToString();
      auto restored = DecodeDecayedSum(decay, blob);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      auto* typed = dynamic_cast<WbmhDecayedSum*>(restored->get());
      ASSERT_NE(typed, nullptr);
      restored->release();
      wbmh.reset(typed);
      check("SnapshotRoundTrip");
    } else {
      // Repeated queries at a fixed tick must agree.
      const double first = wbmh->Query(now);
      EXPECT_DOUBLE_EQ(wbmh->Query(now), first);
      check("RepeatedQuery");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, WbmhFuzzTest,
    ::testing::Values(FuzzCase{0x3b01, 1.0, 0.2, 0.5, 900},
                      FuzzCase{0x3b02, 2.0, 0.2, 0.5, 900},
                      FuzzCase{0x3b03, 1.0, 0.05, 0.15, 600},
                      FuzzCase{0x3b04, 0.5, 0.5, 1.0, 900}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "Seed" + std::to_string(info.param.seed & 0xff) + "Alpha" +
             std::to_string(static_cast<int>(info.param.alpha * 10)) +
             "Eps" + std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

// Two counters over one shared layout, with periodic op-log trimming at the
// slower counter's applied sequence — exercises the replay protocol that the
// single-stream wrapper never stresses.
TEST(WbmhSharedLayoutFuzzTest, TwoCountersOneLayoutWithTrimming) {
  FuzzRng rng(0x3bff);
  const DecayPtr decay = PolynomialDecay::Create(1.5).value();

  WbmhLayout::Options layout_options;
  layout_options.decay = decay;
  layout_options.epsilon = 0.2;
  layout_options.start = 1;
  auto layout_or = WbmhLayout::Create(layout_options);
  ASSERT_TRUE(layout_or.ok()) << layout_or.status().ToString();
  auto layout = std::make_shared<WbmhLayout>(std::move(layout_or).value());

  WbmhDecayedSum::Options options;
  options.epsilon = 0.2;
  auto a = WbmhDecayedSum::CreateShared(layout, options);
  auto b = WbmhDecayedSum::CreateShared(layout, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ExactDecayedReference exact_a(decay);
  ExactDecayedReference exact_b(decay);
  Tick now = 1;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " draw=" + std::to_string(rng.counter()));
    Status audit = layout->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    audit = (*a)->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    audit = (*b)->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    EXPECT_NEAR((*a)->Query(now), exact_a.Sum(now),
                0.5 * exact_a.Sum(now) + 0.5);
    EXPECT_NEAR((*b)->Query(now), exact_b.Sum(now),
                0.5 * exact_b.Sum(now) + 0.5);
  };

  for (int op = 0; op < 900; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 45) {
      now += static_cast<Tick>(rng.NextBelow(2));
      const uint64_t value = 1 + rng.NextBelow(3);
      (*a)->Update(now, value);
      exact_a.Add(now, value);
      check("UpdateA");
    } else if (kind < 80) {
      // Stream B is burstier: it falls behind on replay between bursts,
      // leaving real work for the shared-log catch-up path.
      now += static_cast<Tick>(rng.NextBelow(40));
      const uint64_t value = 1 + rng.NextBelow(10);
      (*b)->Update(now, value);
      exact_b.Add(now, value);
      check("UpdateB");
    } else if (kind < 92) {
      now += static_cast<Tick>(rng.NextBelow(120));
      check("Gap");
    } else {
      // Queries sync both counters to the layout's op sequence, after which
      // the whole log may be discarded.
      (void)(*a)->Query(now);
      (void)(*b)->Query(now);
      const uint64_t safe = std::min((*a)->counter().AppliedSeq(),
                                     (*b)->counter().AppliedSeq());
      layout->TrimLog(safe);
      check("TrimLog");
    }
  }
}

}  // namespace
}  // namespace tds
