// Deterministic fuzz driver for the MV/D sampling lists: interleaved
// Add / ExpireOlderThan / window queries, auditing the suffix-minima (and
// bottom-k) retention invariants after every operation and cross-checking
// query answers against brute-force scans of the retained entries.
#include "sampling/bottom_k_mvd.h"
#include "sampling/mvd_list.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "fuzz_util.h"

namespace tds {
namespace {

class MvdFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvdFuzzTest, SuffixMinimaListStaysCanonical) {
  const uint64_t seed = GetParam();
  FuzzRng rng(seed);
  MvdList list(seed * 2654435761u + 1);

  Tick now = 1;
  Tick expire_cutoff = 0;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = list.AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
  };

  for (int op = 0; op < 2000; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 60) {
      now += static_cast<Tick>(rng.NextBelow(3));
      list.Add(now, static_cast<double>(rng.NextBelow(1000)));
      check("Add");
    } else if (kind < 75) {
      // Horizon expiry; cutoffs are non-decreasing like a real horizon.
      expire_cutoff = std::max(
          expire_cutoff,
          now > 50 ? now - static_cast<Tick>(rng.NextBelow(50)) : Tick{0});
      list.ExpireOlderThan(expire_cutoff);
      check("ExpireOlderThan");
    } else {
      // MinRankSince must agree with a brute-force scan of the retained
      // list: the first retained entry inside the window IS the min-rank
      // entry of the window (the structure's core claim).
      const Tick cutoff =
          expire_cutoff + static_cast<Tick>(
                              rng.NextBelow(static_cast<uint64_t>(
                                  now - expire_cutoff + 1)));
      const std::optional<MvdList::Entry> got = list.MinRankSince(cutoff);
      std::optional<MvdList::Entry> want;
      for (const MvdList::Entry& entry : list.entries()) {
        if (entry.t >= cutoff && (!want || entry.rank < want->rank)) {
          want = entry;
        }
      }
      ASSERT_EQ(got.has_value(), want.has_value()) << "cutoff=" << cutoff;
      if (got) {
        EXPECT_EQ(got->t, want->t);
        EXPECT_EQ(got->rank, want->rank);
        EXPECT_EQ(got->value, want->value);
      }
      check("MinRankSince");
    }
  }
}

TEST_P(MvdFuzzTest, BottomKListStaysCanonicalAndEstimatesLoosely) {
  const uint64_t seed = GetParam();
  FuzzRng rng(seed ^ 0x9e3779b97f4a7c15ull);
  constexpr int kK = 32;
  auto created = BottomKMvdList::Create(kK, seed * 40503u + 3);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  BottomKMvdList list = std::move(created).value();

  // Full arrival log, for exact window counts.
  std::deque<Tick> arrivals;
  Tick now = 1;
  Tick expire_cutoff = 0;

  auto check = [&](const char* op) {
    SCOPED_TRACE(std::string(op) + " seed=" + std::to_string(seed) +
                 " draw=" + std::to_string(rng.counter()));
    const Status audit = list.AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
  };

  for (int op = 0; op < 2000; ++op) {
    const uint64_t kind = rng.NextBelow(100);
    if (kind < 65) {
      now += static_cast<Tick>(rng.NextBelow(2));
      list.Add(now);
      arrivals.push_back(now);
      check("Add");
    } else if (kind < 78) {
      expire_cutoff = std::max(
          expire_cutoff,
          now > 80 ? now - static_cast<Tick>(rng.NextBelow(80)) : Tick{0});
      list.ExpireOlderThan(expire_cutoff);
      check("ExpireOlderThan");
    } else {
      const Tick cutoff =
          expire_cutoff + static_cast<Tick>(
                              rng.NextBelow(static_cast<uint64_t>(
                                  now - expire_cutoff + 1)));
      uint64_t exact = 0;
      for (Tick t : arrivals) {
        if (t >= cutoff) ++exact;
      }
      size_t retained_in_range = 0;
      for (const BottomKMvdList::Entry& entry : list.entries()) {
        if (entry.t >= cutoff) ++retained_in_range;
      }
      const double estimate = list.EstimateCountSince(cutoff);
      if (retained_in_range < static_cast<size_t>(kK)) {
        // Sub-k windows are counted exactly.
        EXPECT_DOUBLE_EQ(estimate, static_cast<double>(exact))
            << "cutoff=" << cutoff;
      } else {
        // (k-1)/r_k concentrates around the truth; a deterministic seed
        // only needs a loose band (rel sd ~ 1/sqrt(k-2) ~ 0.18 at k=32).
        EXPECT_GT(estimate, 0.25 * static_cast<double>(exact))
            << "cutoff=" << cutoff << " exact=" << exact;
        EXPECT_LT(estimate, 4.0 * static_cast<double>(exact))
            << "cutoff=" << cutoff << " exact=" << exact;
      }
      check("EstimateCountSince");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvdFuzzTest,
                         ::testing::Values(0x4d01ull, 0x4d02ull, 0x4d03ull,
                                           0x4d04ull, 0x4d05ull),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" +
                                  std::to_string(info.param & 0xff);
                         });

}  // namespace
}  // namespace tds
