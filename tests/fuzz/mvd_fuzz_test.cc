// Dual-mode fuzz driver for the MV/D sampling lists: interleaved
// Add / ExpireOlderThan / window queries, auditing the suffix-minima (and
// bottom-k) retention invariants after every operation and cross-checking
// query answers against brute-force scans of the retained entries.
// Gtest-free FuzzInput cores run both as the deterministic ctest target and
// as a libFuzzer harness under -DTDS_LIBFUZZER.
#include "sampling/bottom_k_mvd.h"
#include "sampling/mvd_list.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <string>

#include "fuzz_util.h"

namespace tds {
namespace {

void RunMvdListFuzz(uint64_t rank_seed, int max_ops, FuzzInput& in) {
  MvdList list(rank_seed * 2654435761u + 1);

  Tick now = 1;
  Tick expire_cutoff = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(list.AuditInvariants(), in, "after ", op);
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 60) {
      now += static_cast<Tick>(in.Below(3));
      list.Add(now, static_cast<double>(in.Below(1000)));
      check("Add");
    } else if (kind < 75) {
      // Horizon expiry; cutoffs are non-decreasing like a real horizon.
      expire_cutoff = std::max(
          expire_cutoff,
          now > 50 ? now - static_cast<Tick>(in.Below(50)) : Tick{0});
      list.ExpireOlderThan(expire_cutoff);
      check("ExpireOlderThan");
    } else {
      // MinRankSince must agree with a brute-force scan of the retained
      // list: the first retained entry inside the window IS the min-rank
      // entry of the window (the structure's core claim).
      const Tick cutoff =
          expire_cutoff +
          static_cast<Tick>(
              in.Below(static_cast<uint64_t>(now - expire_cutoff + 1)));
      const std::optional<MvdList::Entry> got = list.MinRankSince(cutoff);
      std::optional<MvdList::Entry> want;
      for (const MvdList::Entry& entry : list.entries()) {
        if (entry.t >= cutoff && (!want || entry.rank < want->rank)) {
          want = entry;
        }
      }
      TDS_FUZZ_CHECK(got.has_value() == want.has_value(), in,
                     "cutoff=", cutoff);
      if (got) {
        TDS_FUZZ_CHECK(got->t == want->t && got->rank == want->rank &&
                           got->value == want->value,
                       in, "min-rank entry mismatch, cutoff=", cutoff);
      }
      check("MinRankSince");
    }
  }
}

void RunBottomKMvdFuzz(uint64_t rank_seed, int max_ops, FuzzInput& in) {
  constexpr int kK = 32;
  auto created = BottomKMvdList::Create(kK, rank_seed * 40503u + 3);
  TDS_FUZZ_CHECK(created.ok(), in, "Create: ", created.status().ToString());
  BottomKMvdList list = std::move(created).value();

  // Full arrival log, for exact window counts.
  std::deque<Tick> arrivals;
  Tick now = 1;
  Tick expire_cutoff = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(list.AuditInvariants(), in, "after ", op);
  };

  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 65) {
      now += static_cast<Tick>(in.Below(2));
      list.Add(now);
      arrivals.push_back(now);
      check("Add");
    } else if (kind < 78) {
      expire_cutoff = std::max(
          expire_cutoff,
          now > 80 ? now - static_cast<Tick>(in.Below(80)) : Tick{0});
      list.ExpireOlderThan(expire_cutoff);
      check("ExpireOlderThan");
    } else {
      const Tick cutoff =
          expire_cutoff +
          static_cast<Tick>(
              in.Below(static_cast<uint64_t>(now - expire_cutoff + 1)));
      uint64_t exact = 0;
      for (Tick t : arrivals) {
        if (t >= cutoff) ++exact;
      }
      size_t retained_in_range = 0;
      for (const BottomKMvdList::Entry& entry : list.entries()) {
        if (entry.t >= cutoff) ++retained_in_range;
      }
      const double estimate = list.EstimateCountSince(cutoff);
      if (retained_in_range < static_cast<size_t>(kK)) {
        // Sub-k windows are counted exactly.
        TDS_FUZZ_CHECK_DOUBLE_EQ(estimate, static_cast<double>(exact), in,
                                 "cutoff=", cutoff);
      } else {
        // (k-1)/r_k concentrates around the truth; a deterministic seed
        // only needs a loose band (rel sd ~ 1/sqrt(k-2) ~ 0.18 at k=32).
        TDS_FUZZ_CHECK(estimate > 0.25 * static_cast<double>(exact) &&
                           estimate < 4.0 * static_cast<double>(exact),
                       in, "estimate=", estimate, " exact=", exact,
                       " cutoff=", cutoff);
      }
      check("EstimateCountSince");
    }
  }
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

class MvdFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvdFuzzTest, SuffixMinimaListStaysCanonical) {
  const uint64_t seed = GetParam();
  FuzzInput in = FuzzInput::FromSeed(seed, 2000 * 8);
  RunMvdListFuzz(seed, 2000, in);
}

TEST_P(MvdFuzzTest, BottomKListStaysCanonicalAndEstimatesLoosely) {
  const uint64_t seed = GetParam();
  FuzzInput in = FuzzInput::FromSeed(seed ^ 0x9e3779b97f4a7c15ull, 2000 * 8);
  RunBottomKMvdFuzz(seed, 2000, in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvdFuzzTest,
                         ::testing::Values(0x4d01ull, 0x4d02ull, 0x4d03ull,
                                           0x4d04ull, 0x4d05ull),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" +
                                  std::to_string(info.param & 0xff);
                         });

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: first bytes pick the sub-driver and the
// rank-hash seed, the rest drive the op stream.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  const uint64_t which = in.Below(2);
  const uint64_t rank_seed = 1 + in.Below(64);
  if (which == 0) {
    tds::RunMvdListFuzz(rank_seed, 8192, in);
  } else {
    tds::RunBottomKMvdFuzz(rank_seed, 8192, in);
  }
  return 0;
}

#endif  // TDS_LIBFUZZER
