#ifndef TDS_TESTS_FUZZ_FUZZ_UTIL_H_
#define TDS_TESTS_FUZZ_FUZZ_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/random.h"

namespace tds {

/// Deterministic operation sequencer for the fuzz drivers: a counter-based
/// RNG (HashCombine over SplitMix64, the same primitive the sketches use to
/// regenerate randomness on the fly), so op i of run `seed` is a pure
/// function of (seed, i) — any failure replays from the two numbers in the
/// test log, independent of platform or prior draws.
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : seed_(seed) {}

  uint64_t Next() { return HashCombine(seed_, counter_++); }

  /// Uniform in [0, bound); bound >= 1. (Modulo bias is irrelevant at test
  /// bounds ~ 2^6 against a 64-bit draw.)
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform in [0, 1).
  double NextUnit() { return BitsToUnitDouble(Next()); }

  /// Draw counter consumed so far (for failure messages).
  uint64_t counter() const { return counter_; }

 private:
  uint64_t seed_;
  uint64_t counter_ = 0;
};

/// Byte-stream fuzz input: the one op-sequencing abstraction behind both
/// execution modes of every driver in tests/fuzz/ (docs/CORRECTNESS.md,
/// "Dual-mode fuzzing").
///
///  * ctest mode — `FuzzInput::FromSeed(seed, n)` materializes n bytes from
///    the counter-RNG stream (HashCombine over SplitMix64, 8 little-endian
///    bytes per draw), so the deterministic suites keep their replay-from-
///    (seed, offset) property and their historical seed lists.
///  * libFuzzer mode — `FuzzInput(data, size)` wraps the engine-provided
///    byte buffer directly, so coverage feedback mutates the very bytes the
///    driver consumes.
///
/// Draws consume the minimum whole bytes for the requested range (1 byte
/// for bounds <= 256, etc.) so corpus bytes stay individually meaningful to
/// the mutator. Once the stream is exhausted every draw returns zero —
/// deterministic, never UB — and `exhausted()` lets drivers end their op
/// loop. Same bytes always mean the same op sequence.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  static FuzzInput FromSeed(uint64_t seed, size_t num_bytes) {
    std::vector<uint8_t> bytes(num_bytes);
    FuzzRng rng(seed);
    for (size_t i = 0; i < num_bytes; i += 8) {
      const uint64_t word = rng.Next();
      for (size_t j = 0; j < 8 && i + j < num_bytes; ++j) {
        bytes[i + j] = static_cast<uint8_t>(word >> (8 * j));
      }
    }
    return FuzzInput(std::move(bytes), seed);
  }

  FuzzInput(FuzzInput&& other) noexcept { *this = std::move(other); }
  FuzzInput& operator=(FuzzInput&& other) noexcept {
    owned_ = std::move(other.owned_);
    data_ = other.owned_.empty() ? other.data_ : owned_.data();
    size_ = other.size_;
    pos_ = other.pos_;
    seed_ = other.seed_;
    seeded_ = other.seeded_;
    return *this;
  }
  FuzzInput(const FuzzInput&) = delete;
  FuzzInput& operator=(const FuzzInput&) = delete;

  bool exhausted() const { return pos_ >= size_; }
  size_t remaining() const { return pos_ >= size_ ? 0 : size_ - pos_; }
  size_t consumed() const { return pos_; }

  /// Next byte, or 0 once the stream is exhausted.
  uint8_t Byte() { return pos_ < size_ ? data_[pos_++] : (pos_++, 0); }

  /// 8 bytes little-endian (zero-padded past the end).
  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(Byte()) << (8 * i);
    return v;
  }

  /// Uniform-ish in [0, bound), consuming the minimum whole bytes for the
  /// bound. (Modulo bias is irrelevant at test bounds ~ 2^6.)
  uint64_t Below(uint64_t bound) {
    if (bound <= 1) return 0;
    int width = 8;
    if (bound <= (UINT64_C(1) << 8)) {
      width = 1;
    } else if (bound <= (UINT64_C(1) << 16)) {
      width = 2;
    } else if (bound <= (UINT64_C(1) << 32)) {
      width = 4;
    }
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(Byte()) << (8 * i);
    }
    return v % bound;
  }

  /// Uniform in [0, 1).
  double Unit() { return BitsToUnitDouble(U64()); }

  /// Replay context for failure messages: how this input was produced and
  /// where in the stream the failure hit.
  std::string Context() const {
    std::ostringstream os;
    if (seeded_) {
      os << "mode=seed seed=0x" << std::hex << seed_ << std::dec;
    } else {
      os << "mode=bytes";
    }
    os << " consumed=" << pos_ << "/" << size_;
    return os.str();
  }

 private:
  FuzzInput(std::vector<uint8_t> bytes, uint64_t seed)
      : owned_(std::move(bytes)),
        data_(owned_.data()),
        size_(owned_.size()),
        seed_(seed),
        seeded_(true) {}

  std::vector<uint8_t> owned_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  uint64_t seed_ = 0;
  bool seeded_ = false;
};

/// 4-ULP double comparison (the same tolerance gtest's ASSERT_DOUBLE_EQ
/// uses), so the gtest-free fuzz cores keep byte-level oracles exactly as
/// strict as the historical drivers.
inline bool FuzzDoubleEq(double a, double b) {
  if (a == b) return true;  // covers +0/-0 and exact equality
  if (std::isnan(a) || std::isnan(b)) return false;
  auto biased = [](double d) {
    int64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    // Map sign-magnitude to a monotone integer line so ULP distance is a
    // plain subtraction.
    return bits < 0 ? INT64_MIN - bits : bits;
  };
  const int64_t ia = biased(a);
  const int64_t ib = biased(b);
  const uint64_t dist =
      ia > ib ? static_cast<uint64_t>(ia) - static_cast<uint64_t>(ib)
              : static_cast<uint64_t>(ib) - static_cast<uint64_t>(ia);
  return dist <= 4;
}

namespace fuzz_internal {

inline void FuzzMsgAppend(std::ostringstream&) {}

template <typename T, typename... Rest>
void FuzzMsgAppend(std::ostringstream& os, const T& value,
                   const Rest&... rest) {
  os << value;
  FuzzMsgAppend(os, rest...);
}

template <typename... Args>
std::string FuzzMsg(const Args&... args) {
  std::ostringstream os;
  FuzzMsgAppend(os, args...);
  return os.str();
}

/// Abort with full replay context. Under gtest this fails the test (abort
/// is a process failure); under libFuzzer it is a finding with the input
/// preserved — the one failure behavior both modes understand.
[[noreturn]] inline void FuzzFail(const char* expr, const char* file, int line,
                                  const FuzzInput& input,
                                  const std::string& detail) {
  std::fprintf(stderr, "\n%s:%d: fuzz check failed: %s\n  input: %s\n  %s\n",
               file, line, expr, input.Context().c_str(), detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace fuzz_internal

/// Assertion layer for the dual-mode fuzz cores: gtest-free so the same
/// code compiles into the deterministic ctest binaries and the libFuzzer
/// targets. Each macro takes the driving FuzzInput so every failure prints
/// its replay coordinates (mode, seed, byte offset).
#define TDS_FUZZ_CHECK(cond, input, ...)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tds::fuzz_internal::FuzzFail(                                     \
          #cond, __FILE__, __LINE__, (input),                             \
          ::tds::fuzz_internal::FuzzMsg(__VA_ARGS__));                    \
    }                                                                     \
  } while (0)

#define TDS_FUZZ_CHECK_OK(status_expr, input, ...)                        \
  do {                                                                    \
    const auto& tds_fuzz_status = (status_expr);                          \
    if (!tds_fuzz_status.ok()) {                                          \
      ::tds::fuzz_internal::FuzzFail(                                     \
          #status_expr " is ok", __FILE__, __LINE__, (input),             \
          ::tds::fuzz_internal::FuzzMsg(__VA_ARGS__, " status=",          \
                                        tds_fuzz_status.ToString()));     \
    }                                                                     \
  } while (0)

#define TDS_FUZZ_CHECK_NEAR(a, b, tolerance, input, ...)                  \
  do {                                                                    \
    const double tds_fuzz_a = (a);                                        \
    const double tds_fuzz_b = (b);                                        \
    const double tds_fuzz_tol = (tolerance);                              \
    if (!(std::fabs(tds_fuzz_a - tds_fuzz_b) <= tds_fuzz_tol)) {          \
      ::tds::fuzz_internal::FuzzFail(                                     \
          "|" #a " - " #b "| <= " #tolerance, __FILE__, __LINE__, (input),\
          ::tds::fuzz_internal::FuzzMsg(#a "=", tds_fuzz_a, " " #b "=",   \
                                        tds_fuzz_b, " tol=", tds_fuzz_tol,\
                                        " ", __VA_ARGS__));               \
    }                                                                     \
  } while (0)

#define TDS_FUZZ_CHECK_DOUBLE_EQ(a, b, input, ...)                        \
  do {                                                                    \
    const double tds_fuzz_a = (a);                                        \
    const double tds_fuzz_b = (b);                                        \
    if (!::tds::FuzzDoubleEq(tds_fuzz_a, tds_fuzz_b)) {                   \
      ::tds::fuzz_internal::FuzzFail(                                     \
          #a " ~= " #b, __FILE__, __LINE__, (input),                      \
          ::tds::fuzz_internal::FuzzMsg(#a "=", tds_fuzz_a, " " #b "=",   \
                                        tds_fuzz_b, " ", __VA_ARGS__));   \
    }                                                                     \
  } while (0)

/// Exact reference for windowed counts: remembers every (tick, value) pair
/// and answers any suffix-window count by direct summation. Deliberately
/// brute-force — the reference must share no code path with the structures
/// under test.
class ExactWindowReference {
 public:
  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  void MergeFrom(const ExactWindowReference& other) {
    for (const auto& item : other.items_) items_.push_back(item);
  }

  /// Count of items with arrival in [now - w + 1, now].
  uint64_t WindowCount(Tick now, Tick w) const {
    const Tick cutoff = now - w + 1;
    uint64_t total = 0;
    for (const auto& [t, value] : items_) {
      if (t >= cutoff && t <= now) total += value;
    }
    return total;
  }

 private:
  std::deque<std::pair<Tick, uint64_t>> items_;
};

}  // namespace tds

#endif  // TDS_TESTS_FUZZ_FUZZ_UTIL_H_
