#ifndef TDS_TESTS_FUZZ_FUZZ_UTIL_H_
#define TDS_TESTS_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "util/common.h"
#include "util/random.h"

namespace tds {

/// Deterministic operation sequencer for the fuzz drivers: a counter-based
/// RNG (HashCombine over SplitMix64, the same primitive the sketches use to
/// regenerate randomness on the fly), so op i of run `seed` is a pure
/// function of (seed, i) — any failure replays from the two numbers in the
/// test log, independent of platform or prior draws.
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : seed_(seed) {}

  uint64_t Next() { return HashCombine(seed_, counter_++); }

  /// Uniform in [0, bound); bound >= 1. (Modulo bias is irrelevant at test
  /// bounds ~ 2^6 against a 64-bit draw.)
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform in [0, 1).
  double NextUnit() { return BitsToUnitDouble(Next()); }

  /// Draw counter consumed so far (for failure messages).
  uint64_t counter() const { return counter_; }

 private:
  uint64_t seed_;
  uint64_t counter_ = 0;
};

/// Exact reference for windowed counts: remembers every (tick, value) pair
/// and answers any suffix-window count by direct summation. Deliberately
/// brute-force — the reference must share no code path with the structures
/// under test.
class ExactWindowReference {
 public:
  void Add(Tick t, uint64_t value) { items_.emplace_back(t, value); }

  void MergeFrom(const ExactWindowReference& other) {
    for (const auto& item : other.items_) items_.push_back(item);
  }

  /// Count of items with arrival in [now - w + 1, now].
  uint64_t WindowCount(Tick now, Tick w) const {
    const Tick cutoff = now - w + 1;
    uint64_t total = 0;
    for (const auto& [t, value] : items_) {
      if (t >= cutoff && t <= now) total += value;
    }
    return total;
  }

 private:
  std::deque<std::pair<Tick, uint64_t>> items_;
};

}  // namespace tds

#endif  // TDS_TESTS_FUZZ_FUZZ_UTIL_H_
