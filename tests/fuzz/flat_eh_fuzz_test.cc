// Dual-mode fuzz driver for the flat (SoA) histogram layout: every run
// drives a kFlat instance and its kChain twin through the same fuzzed op
// stream and requires them to stay bit-identical — equal estimates (exact,
// not ULP-tolerant: the layouts share every arithmetic step), byte-equal
// EncodeState output, matching bucket counts, and green AuditInvariants()
// on both sides after every operation. Two harnesses share the input
// stream: an ExponentialHistogram pair (Add / AdvanceTo / MergeFrom /
// snapshot round-trips that swap layouts) and a CoarseCehDecayedSum pair
// (whose stochastic aging must consume RNG words in the same order in both
// layouts). The gtest-free cores run both as deterministic ctest targets
// and — under -DTDS_LIBFUZZER — as coverage-guided harnesses
// (docs/CORRECTNESS.md, "Dual-mode fuzzing").
#include <algorithm>
#include <string>
#include <utility>

#include "core/coarse_ceh.h"
#include "decay/polynomial.h"
#include "fuzz_util.h"
#include "histogram/exponential_histogram.h"
#include "util/codec.h"
#include "util/common.h"

namespace tds {
namespace {

ExponentialHistogram MakeLayoutEh(double epsilon, Tick window,
                                  HistogramLayout layout,
                                  const FuzzInput& in) {
  ExponentialHistogram::Options options;
  options.epsilon = epsilon;
  options.window = window;
  options.layout = layout;
  auto eh = ExponentialHistogram::Create(options);
  TDS_FUZZ_CHECK(eh.ok(), in, "Create: ", eh.status().ToString());
  return std::move(eh).value();
}

std::string EncodedEh(const ExponentialHistogram& eh) {
  Encoder encoder;
  eh.EncodeState(encoder);
  return encoder.Finish();
}

struct FlatEhFuzzConfig {
  double epsilon;
  Tick window;
  int max_ops;
};

// Harness 0: ExponentialHistogram flat-vs-chain lockstep.
void RunFlatEhFuzz(const FlatEhFuzzConfig& config, FuzzInput& in) {
  ExponentialHistogram flat =
      MakeLayoutEh(config.epsilon, config.window, HistogramLayout::kFlat, in);
  ExponentialHistogram chain = MakeLayoutEh(config.epsilon, config.window,
                                            HistogramLayout::kChain, in);
  Tick now = 0;

  auto check = [&](const char* op) {
    TDS_FUZZ_CHECK_OK(flat.AuditInvariants(), in, "flat after ", op);
    TDS_FUZZ_CHECK_OK(chain.AuditInvariants(), in, "chain after ", op);
    TDS_FUZZ_CHECK(flat.BucketCount() == chain.BucketCount(), in,
                   "bucket-count drift after ", op);
    TDS_FUZZ_CHECK(flat.TotalCount() == chain.TotalCount(), in,
                   "total-count drift after ", op);
    TDS_FUZZ_CHECK(flat.Estimate() == chain.Estimate(), in,
                   "estimate drift after ", op);
    TDS_FUZZ_CHECK(EncodedEh(flat) == EncodedEh(chain), in,
                   "snapshot bytes drift after ", op);
  };

  for (int op = 0; op < config.max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 55) {
      // Adds, with occasional large values so the digit cascade runs deep
      // and the flat store's suffix rebuild covers many classes.
      now += static_cast<Tick>(in.Below(3));
      if (now == 0) now = 1;
      const uint64_t value =
          in.Below(20) == 0 ? 1 + in.Below(5000) : in.Below(4);
      flat.Add(now, value);
      chain.Add(now, value);
      check("Add");
    } else if (kind < 72) {
      // Clock jumps past the window force wholesale front expiry — the flat
      // store's head_ compaction path.
      now += static_cast<Tick>(in.Below(
          static_cast<uint64_t>(config.window) + config.window / 2 + 2));
      flat.AdvanceTo(now);
      chain.AdvanceTo(now);
      check("AdvanceTo");
    } else if (kind < 85) {
      // Snapshot round-trip that SWAPS layouts: flat's bytes restore onto a
      // fresh chain twin and vice versa, then the run continues on the
      // restored pair — codec asymmetries poison every later comparison.
      const std::string blob = EncodedEh(flat);
      ExponentialHistogram flat2 = MakeLayoutEh(
          config.epsilon, config.window, HistogramLayout::kFlat, in);
      ExponentialHistogram chain2 = MakeLayoutEh(
          config.epsilon, config.window, HistogramLayout::kChain, in);
      Decoder to_flat(blob);
      Decoder to_chain(blob);
      TDS_FUZZ_CHECK_OK(flat2.DecodeState(to_flat), in, "flat decode");
      TDS_FUZZ_CHECK_OK(chain2.DecodeState(to_chain), in, "chain decode");
      TDS_FUZZ_CHECK(to_flat.Done() && to_chain.Done(), in,
                     "decoder not fully consumed");
      flat = std::move(flat2);
      chain = std::move(chain2);
      check("DecodeState");
    } else if (kind < 93) {
      // Disjoint-substream merge from a twin donor pair.
      ExponentialHistogram flat_donor = MakeLayoutEh(
          config.epsilon, config.window, HistogramLayout::kFlat, in);
      ExponentialHistogram chain_donor = MakeLayoutEh(
          config.epsilon, config.window, HistogramLayout::kChain, in);
      const int burst = 1 + static_cast<int>(in.Below(40));
      Tick donor_now = std::max<Tick>(1, now - static_cast<Tick>(in.Below(20)));
      for (int i = 0; i < burst; ++i) {
        donor_now += static_cast<Tick>(in.Below(2));
        const uint64_t value = 1 + in.Below(3);
        flat_donor.Add(donor_now, value);
        chain_donor.Add(donor_now, value);
      }
      now = std::max(now, donor_now);
      TDS_FUZZ_CHECK_OK(flat.MergeFrom(flat_donor), in, "flat MergeFrom");
      TDS_FUZZ_CHECK_OK(chain.MergeFrom(chain_donor), in, "chain MergeFrom");
      check("MergeFrom");
    } else {
      // Lemma 4.1 windows must agree exactly across layouts.
      flat.AdvanceTo(now);
      chain.AdvanceTo(now);
      const Tick w = 1 + static_cast<Tick>(
                             in.Below(static_cast<uint64_t>(config.window)));
      TDS_FUZZ_CHECK(flat.EstimateWindow(w) == chain.EstimateWindow(w), in,
                     "EstimateWindow drift at w=", w);
      check("EstimateWindow");
    }
  }
}

// Harness 1: CoarseCehDecayedSum flat-vs-chain lockstep. The coarse CEH's
// stochastic aging sweep draws from its own RNG per bucket, so this harness
// pins the flat layout's RNG consumption order (ascending class, oldest
// bucket first within a class) to the chain's.
void RunFlatCoarseFuzz(uint64_t seed, FuzzInput& in) {
  auto decay = PolynomialDecay::Create(1.0 + 0.5 * in.Below(4));
  TDS_FUZZ_CHECK(decay.ok(), in, "decay: ", decay.status().ToString());
  CoarseCehDecayedSum::Options flat_options;
  flat_options.seed = seed;
  flat_options.layout = HistogramLayout::kFlat;
  CoarseCehDecayedSum::Options chain_options = flat_options;
  chain_options.layout = HistogramLayout::kChain;
  auto flat = CoarseCehDecayedSum::Create(decay.value(), flat_options);
  auto chain = CoarseCehDecayedSum::Create(decay.value(), chain_options);
  TDS_FUZZ_CHECK(flat.ok() && chain.ok(), in, "CoarseCEH create");

  auto encoded = [](CoarseCehDecayedSum& sum) {
    Encoder encoder;
    sum.EncodeState(encoder);
    return encoder.Finish();
  };

  Tick now = 1;
  for (int op = 0; op < 1500 && !in.exhausted(); ++op) {
    if (in.Below(3) != 0) {
      now += static_cast<Tick>(in.Below(3));
      const uint64_t value = 1 + in.Below(16);
      (*flat)->Update(now, value);
      (*chain)->Update(now, value);
    } else {
      now += static_cast<Tick>(in.Below(96));
      (*flat)->Advance(now);
      (*chain)->Advance(now);
    }
    TDS_FUZZ_CHECK_OK((*flat)->AuditInvariants(), in, "flat audit");
    TDS_FUZZ_CHECK_OK((*chain)->AuditInvariants(), in, "chain audit");
    TDS_FUZZ_CHECK((*flat)->BucketCount() == (*chain)->BucketCount(), in,
                   "bucket-count drift");
    TDS_FUZZ_CHECK((*flat)->Query(now) == (*chain)->Query(now), in,
                   "query drift (RNG order?) at now=", now);
    TDS_FUZZ_CHECK(encoded(**flat) == encoded(**chain), in,
                   "snapshot bytes drift at now=", now);
  }
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

struct FuzzCase {
  uint64_t seed;
  int harness;  // 0 = EH twins, 1 = CoarseCEH twins
  double epsilon;
  Tick window;
  int ops;
};

class FlatEhFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FlatEhFuzzTest, FlatLayoutStaysBitIdenticalToChain) {
  const FuzzCase fuzz = GetParam();
  FuzzInput in =
      FuzzInput::FromSeed(fuzz.seed, static_cast<size_t>(fuzz.ops) * 16);
  if (fuzz.harness == 0) {
    RunFlatEhFuzz({fuzz.epsilon, fuzz.window, fuzz.ops}, in);
  } else {
    RunFlatCoarseFuzz(fuzz.seed, in);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FlatEhFuzzTest,
    ::testing::Values(FuzzCase{0xF1A1, 0, 0.1, 64, 1200},
                      FuzzCase{0xF1A2, 0, 0.1, 512, 1200},
                      FuzzCase{0xF1A3, 0, 0.02, 128, 900},
                      FuzzCase{0xF1A4, 0, 0.5, 32, 1200},
                      FuzzCase{0xF1A5, 0, 0.25, 1024, 900},
                      FuzzCase{0xF1B1, 1, 0.1, 0, 1100},
                      FuzzCase{0xF1B2, 1, 0.1, 0, 1100}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return (info.param.harness == 0 ? "Eh" : "Coarse") + std::string("Seed") +
             std::to_string(info.param.seed & 0xff) + "Eps" +
             std::to_string(static_cast<int>(info.param.epsilon * 100)) + "W" +
             std::to_string(info.param.window);
    });

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: the first byte picks the harness, the next
// bytes pick the configuration, the rest drive the op stream.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  const uint64_t harness = in.Below(2);
  if (harness == 0) {
    constexpr double kEpsilons[] = {0.02, 0.1, 0.25, 0.5};
    constexpr tds::Tick kWindows[] = {32, 64, 128, 512, 1024};
    tds::FlatEhFuzzConfig config;
    config.epsilon = kEpsilons[in.Below(4)];
    config.window = kWindows[in.Below(5)];
    config.max_ops = 4096;
    tds::RunFlatEhFuzz(config, in);
  } else {
    tds::RunFlatCoarseFuzz(0xF1B0 + in.Below(16), in);
  }
  return 0;
}

#endif  // TDS_LIBFUZZER
