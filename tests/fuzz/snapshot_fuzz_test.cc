// Dual-mode fuzz driver for the snapshot codec: every supported
// (backend, decay) pairing is driven through random update/advance
// schedules, then (a) the encode/decode/re-encode self-inverse audit must
// hold mid-stream, and (b) deterministic corruptions — truncations and byte
// flips — must be rejected or decoded into a structure that still answers
// queries without tripping a sanitizer. Under -DTDS_LIBFUZZER the harness
// additionally feeds raw fuzz bytes straight into DecodeDecayedSum, the
// purest adversarial-decode surface in the codebase.
#include "core/snapshot.h"

#include <memory>
#include <string>
#include <vector>

#include "core/ceh.h"
#include "core/factory.h"
#include "core/wbmh.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "fuzz_util.h"

namespace tds {
namespace {

struct SnapshotCase {
  const char* label;
  DecayPtr decay;
  Backend backend;
};

std::vector<SnapshotCase> Cases() {
  std::vector<SnapshotCase> cases;
  cases.push_back({"exact", PolynomialDecay::Create(1.0).value(),
                   Backend::kExact});
  cases.push_back({"ewma", ExponentialDecay::Create(0.01).value(),
                   Backend::kEwma});
  cases.push_back({"recent", ExponentialDecay::Create(0.05).value(),
                   Backend::kRecentItems});
  cases.push_back({"polyexp", PolyExponentialDecay::Create(2, 0.05).value(),
                   Backend::kPolyExp});
  cases.push_back({"ceh_sliwin", SlidingWindowDecay::Create(200).value(),
                   Backend::kCeh});
  cases.push_back({"ceh_polyd", PolynomialDecay::Create(1.5).value(),
                   Backend::kCeh});
  cases.push_back({"coarse", PolynomialDecay::Create(1.0).value(),
                   Backend::kCoarseCeh});
  cases.push_back({"wbmh", PolynomialDecay::Create(2.0).value(),
                   Backend::kWbmh});
  return cases;
}

/// Audits the restored structure when its concrete type exposes an audit
/// (trivial register structures have nothing structural to check).
Status AuditIfSupported(DecayedAggregate& aggregate) {
  if (auto* ceh = dynamic_cast<CehDecayedSum*>(&aggregate)) {
    return ceh->AuditInvariants();
  }
  if (auto* wbmh = dynamic_cast<WbmhDecayedSum*>(&aggregate)) {
    return wbmh->AuditInvariants();
  }
  return Status::OK();
}

void RunSnapshotRoundTripFuzz(const SnapshotCase& test_case, int max_ops,
                              FuzzInput& in) {
  const AggregateOptions options = AggregateOptions::Builder()
                                       .backend(test_case.backend)
                                       .epsilon(0.1)
                                       .Build()
                                       .value();
  auto aggregate = MakeDecayedSum(test_case.decay, options);
  TDS_FUZZ_CHECK(aggregate.ok(), in, test_case.label, ": ",
                 aggregate.status().ToString());

  Tick now = 1;
  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t kind = in.Below(100);
    if (kind < 70) {
      now += static_cast<Tick>(in.Below(3));
      (*aggregate)->Update(now, 1 + in.Below(5));
    } else if (kind < 90) {
      now += static_cast<Tick>(in.Below(150));
      (void)(*aggregate)->Query(now);
    } else {
      TDS_FUZZ_CHECK_OK(AuditSnapshotRoundTrip(**aggregate), in,
                        test_case.label, " op=", op);
    }
  }
  TDS_FUZZ_CHECK_OK(AuditSnapshotRoundTrip(**aggregate), in,
                    test_case.label, " final");
}

void RunSnapshotCorruptionFuzz(const SnapshotCase& test_case, int warm_ops,
                               FuzzInput& in) {
  const AggregateOptions options = AggregateOptions::Builder()
                                       .backend(test_case.backend)
                                       .epsilon(0.1)
                                       .Build()
                                       .value();
  auto aggregate = MakeDecayedSum(test_case.decay, options);
  TDS_FUZZ_CHECK(aggregate.ok(), in, test_case.label, ": ",
                 aggregate.status().ToString());

  Tick now = 1;
  for (int i = 0; i < warm_ops && !in.exhausted(); ++i) {
    now += static_cast<Tick>(in.Below(3));
    (*aggregate)->Update(now, 1 + in.Below(5));
  }
  std::string blob;
  TDS_FUZZ_CHECK_OK(EncodeDecayedSum(**aggregate, &blob), in,
                    test_case.label);
  TDS_FUZZ_CHECK(!blob.empty(), in, test_case.label, ": empty blob");

  auto probe = [&](const std::string& mutated, const char* what,
                   size_t where) {
    auto decoded = DecodeDecayedSum(test_case.decay, mutated);
    if (!decoded.ok()) return;  // Rejection is the expected outcome.
    // If a mutation slips past validation the result must still be a
    // structurally coherent summary. (Querying it is NOT safe here: a
    // flipped clock byte may decode to a later `now`, and Query's
    // contract requires the caller's tick to be >= it.)
    TDS_FUZZ_CHECK_OK(AuditIfSupported(**decoded), in, test_case.label,
                      " ", what, "_at_", where);
  };

  // Every truncation length (including the empty blob).
  for (size_t len = 0; len < blob.size(); ++len) {
    probe(blob.substr(0, len), "truncate", len);
  }
  // Deterministic single-byte flips across the blob.
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    const auto flip = static_cast<unsigned char>(
        1u << (HashCombine(0x5a03, pos) % 8));
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(
        static_cast<unsigned char>(mutated[pos]) ^ flip);
    probe(mutated, "flip", pos);
  }
  // Decoding onto the wrong decay function must fail by name check.
  const DecayPtr wrong_decay = PolynomialDecay::Create(3.25).value();
  auto wrong = DecodeDecayedSum(wrong_decay, blob);
  TDS_FUZZ_CHECK(!wrong.ok(), in, test_case.label,
                 ": wrong-decay decode was accepted");
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

TEST(SnapshotFuzzTest, RoundTripAuditHoldsMidStreamForEveryBackend) {
  for (const SnapshotCase& test_case : Cases()) {
    SCOPED_TRACE(test_case.label);
    FuzzInput in = FuzzInput::FromSeed(0x5a01, 400 * 8);
    RunSnapshotRoundTripFuzz(test_case, 400, in);
  }
}

TEST(SnapshotFuzzTest, CorruptedBlobsAreRejectedOrDecodeToAuditCleanState) {
  for (const SnapshotCase& test_case : Cases()) {
    SCOPED_TRACE(test_case.label);
    FuzzInput in = FuzzInput::FromSeed(0x5a02, 600 * 4);
    RunSnapshotCorruptionFuzz(test_case, 600, in);
  }
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point. Three sub-harnesses: round-trip audits,
// deterministic corruption sweeps, and — the headline one — decoding the
// remaining raw fuzz bytes directly, so the mutator explores the codec's
// validation lattice without any structure-building detour.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  const auto cases = tds::Cases();
  const uint64_t which = in.Below(4);
  const tds::SnapshotCase& test_case = cases[in.Below(cases.size())];
  if (which == 0) {
    tds::RunSnapshotRoundTripFuzz(test_case, 2048, in);
  } else if (which == 1) {
    tds::RunSnapshotCorruptionFuzz(test_case, 512, in);
  } else {
    std::string blob(reinterpret_cast<const char*>(data) + in.consumed(),
                     in.remaining());
    auto decoded = tds::DecodeDecayedSum(test_case.decay, blob);
    if (decoded.ok()) {
      const tds::Status audit = tds::AuditIfSupported(**decoded);
      TDS_FUZZ_CHECK(audit.ok(), in,
                     "raw decode accepted but audit failed: ",
                     audit.ToString());
    }
  }
  return 0;
}

#endif  // TDS_LIBFUZZER
