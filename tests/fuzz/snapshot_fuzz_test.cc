// Deterministic fuzz driver for the snapshot codec: every supported
// (backend, decay) pairing is driven through random update/advance
// schedules, then (a) the encode/decode/re-encode self-inverse audit must
// hold mid-stream, and (b) deterministic corruptions — truncations and byte
// flips — must be rejected or decoded into a structure that still answers
// queries without tripping a sanitizer.
#include "core/snapshot.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ceh.h"
#include "core/factory.h"
#include "core/wbmh.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "fuzz_util.h"

namespace tds {
namespace {

struct SnapshotCase {
  const char* label;
  DecayPtr decay;
  Backend backend;
};

std::vector<SnapshotCase> Cases() {
  std::vector<SnapshotCase> cases;
  cases.push_back({"exact", PolynomialDecay::Create(1.0).value(),
                   Backend::kExact});
  cases.push_back({"ewma", ExponentialDecay::Create(0.01).value(),
                   Backend::kEwma});
  cases.push_back({"recent", ExponentialDecay::Create(0.05).value(),
                   Backend::kRecentItems});
  cases.push_back({"polyexp", PolyExponentialDecay::Create(2, 0.05).value(),
                   Backend::kPolyExp});
  cases.push_back({"ceh_sliwin", SlidingWindowDecay::Create(200).value(),
                   Backend::kCeh});
  cases.push_back({"ceh_polyd", PolynomialDecay::Create(1.5).value(),
                   Backend::kCeh});
  cases.push_back({"coarse", PolynomialDecay::Create(1.0).value(),
                   Backend::kCoarseCeh});
  cases.push_back({"wbmh", PolynomialDecay::Create(2.0).value(),
                   Backend::kWbmh});
  return cases;
}

/// Audits the restored structure when its concrete type exposes an audit
/// (trivial register structures have nothing structural to check).
Status AuditIfSupported(DecayedAggregate& aggregate) {
  if (auto* ceh = dynamic_cast<CehDecayedSum*>(&aggregate)) {
    return ceh->AuditInvariants();
  }
  if (auto* wbmh = dynamic_cast<WbmhDecayedSum*>(&aggregate)) {
    return wbmh->AuditInvariants();
  }
  return Status::OK();
}

TEST(SnapshotFuzzTest, RoundTripAuditHoldsMidStreamForEveryBackend) {
  for (const SnapshotCase& test_case : Cases()) {
    SCOPED_TRACE(test_case.label);
    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(test_case.backend)
                                     .epsilon(0.1)
                                     .Build()
                                     .value();
    auto aggregate = MakeDecayedSum(test_case.decay, options);
    ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();

    FuzzRng rng(0x5a01);
    Tick now = 1;
    for (int op = 0; op < 400; ++op) {
      const uint64_t kind = rng.NextBelow(100);
      if (kind < 70) {
        now += static_cast<Tick>(rng.NextBelow(3));
        (*aggregate)->Update(now, 1 + rng.NextBelow(5));
      } else if (kind < 90) {
        now += static_cast<Tick>(rng.NextBelow(150));
        (void)(*aggregate)->Query(now);
      } else {
        const Status audit = AuditSnapshotRoundTrip(**aggregate);
        ASSERT_TRUE(audit.ok())
            << "op=" << op << ": " << audit.ToString();
      }
    }
    const Status audit = AuditSnapshotRoundTrip(**aggregate);
    EXPECT_TRUE(audit.ok()) << audit.ToString();
  }
}

TEST(SnapshotFuzzTest, CorruptedBlobsAreRejectedOrDecodeToAuditCleanState) {
  for (const SnapshotCase& test_case : Cases()) {
    SCOPED_TRACE(test_case.label);
    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(test_case.backend)
                                     .epsilon(0.1)
                                     .Build()
                                     .value();
    auto aggregate = MakeDecayedSum(test_case.decay, options);
    ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();

    FuzzRng rng(0x5a02);
    Tick now = 1;
    for (int i = 0; i < 600; ++i) {
      now += static_cast<Tick>(rng.NextBelow(3));
      (*aggregate)->Update(now, 1 + rng.NextBelow(5));
    }
    std::string blob;
    const Status encode_status = EncodeDecayedSum(**aggregate, &blob);
    ASSERT_TRUE(encode_status.ok()) << encode_status.ToString();
    ASSERT_FALSE(blob.empty());

    auto probe = [&](const std::string& mutated, const std::string& what) {
      SCOPED_TRACE(what);
      auto decoded = DecodeDecayedSum(test_case.decay, mutated);
      if (!decoded.ok()) return;  // Rejection is the expected outcome.
      // If a mutation slips past validation the result must still be a
      // structurally coherent summary. (Querying it is NOT safe here: a
      // flipped clock byte may decode to a later `now`, and Query's
      // contract requires the caller's tick to be >= it.)
      const Status audit = AuditIfSupported(**decoded);
      EXPECT_TRUE(audit.ok()) << audit.ToString();
    };

    // Every truncation length (including the empty blob).
    for (size_t len = 0; len < blob.size(); ++len) {
      probe(blob.substr(0, len), "truncate_to_" + std::to_string(len));
    }
    // Deterministic single-byte flips across the blob.
    for (size_t pos = 0; pos < blob.size(); ++pos) {
      const auto flip = static_cast<unsigned char>(
          1u << (HashCombine(0x5a03, pos) % 8));
      std::string mutated = blob;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      probe(mutated, "flip_at_" + std::to_string(pos));
    }
    // Decoding onto the wrong decay function must fail by name check.
    const DecayPtr wrong_decay = PolynomialDecay::Create(3.25).value();
    auto wrong = DecodeDecayedSum(wrong_decay, blob);
    EXPECT_FALSE(wrong.ok()) << test_case.label;
  }
}

}  // namespace
}  // namespace tds
