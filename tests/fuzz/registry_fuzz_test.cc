// Dual-mode fuzz driver for AggregateRegistry (docs/CORRECTNESS.md
// conventions): byte-stream-driven interleavings of single updates, batches,
// advances, queries, and snapshot round-trips, checked after every phase
// against a per-key map of standalone aggregates fed the identical item
// sequence — plus structural audits. With expiry disabled the registry adds
// bookkeeping but never arithmetic, so every per-key answer must match
// bit-for-bit; a second driver re-enables expiry and checks estimates
// against exact window counts instead (an evicted-then-recreated key
// rebuilds its histogram, which is within the accuracy bound but not
// bit-identical to an uninterrupted one).
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/registry.h"
#include "fuzz_util.h"
#include "util/common.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr uint64_t kKeySpace = 24;

struct Reference {
  DecayPtr decay;
  AggregateOptions options;
  std::unordered_map<uint64_t, std::unique_ptr<DecayedAggregate>> keys;

  void Update(uint64_t key, Tick t, uint64_t value) {
    auto it = keys.find(key);
    if (it == keys.end()) {
      it = keys.emplace(key, MakeDecayedSum(decay, options).value()).first;
    }
    it->second->Update(t, value);
  }

  void Advance(Tick now) {
    for (auto& [key, aggregate] : keys) aggregate->Advance(now);
  }

  double Query(uint64_t key, Tick now) const {
    const auto it = keys.find(key);
    return it == keys.end() ? 0.0 : it->second->Query(now);
  }
};

void RunRegistryNoEvictionFuzz(const DecayPtr& decay, Backend backend,
                               int max_ops, FuzzInput& in) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(0.15)
                          .Build()
                          .value();
  // The reference never evicts, so the registry must not either:
  // a negative floor turns expiry off even for finite horizons.
  options.expiry_weight_floor = -1.0;
  auto registry = AggregateRegistry::Create(decay, options);
  TDS_FUZZ_CHECK(registry.ok(), in, registry.status().ToString());
  Reference reference{decay, options.aggregate, {}};

  Tick t = 1;
  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t roll = in.Below(100);
    if (roll < 55) {
      t += static_cast<Tick>(in.Below(3));
      const uint64_t key = in.Below(kKeySpace);
      const uint64_t value = in.Below(5);
      registry->Update(key, t, value);
      reference.Update(key, t, value);
    } else if (roll < 80) {
      std::vector<KeyedItem> batch;
      const size_t size = in.Below(40);
      for (size_t i = 0; i < size; ++i) {
        if (in.Below(3) == 0) t += static_cast<Tick>(in.Below(2));
        batch.push_back(KeyedItem{in.Below(kKeySpace), t, in.Below(5)});
      }
      registry->UpdateBatch(batch);
      for (const KeyedItem& item : batch) {
        reference.Update(item.key, item.t, item.value);
      }
    } else if (roll < 88) {
      t += static_cast<Tick>(in.Below(30));
      registry->Advance(t);
      reference.Advance(t);
    } else if (roll < 96) {
      // Align clocks first: the registry's shared WBMH layout advances
      // whenever ANY key ingests, so an idle key's structure can be
      // further merged than its standalone reference (both correct, but
      // bit-equality needs both structures at the same tick).
      registry->Advance(t);
      reference.Advance(t);
      for (int probe = 0; probe < 3; ++probe) {
        const uint64_t key = in.Below(kKeySpace + 4);  // some absent
        TDS_FUZZ_CHECK_DOUBLE_EQ(registry->Query(key, t),
                                 reference.Query(key, t), in,
                                 "op=", op, " key=", key);
      }
    } else {
      std::string blob;
      TDS_FUZZ_CHECK_OK(registry->EncodeState(&blob), in, "EncodeState");
      auto decoded = AggregateRegistry::Decode(decay, options, blob);
      TDS_FUZZ_CHECK(decoded.ok(), in,
                     "op=", op, ": ", decoded.status().ToString());
      std::string reencoded;
      TDS_FUZZ_CHECK_OK(decoded->EncodeState(&reencoded), in, "re-encode");
      TDS_FUZZ_CHECK(blob == reencoded, in,
                     "snapshot not self-inverse, op=", op);
      for (uint64_t key = 0; key < kKeySpace; ++key) {
        TDS_FUZZ_CHECK_DOUBLE_EQ(decoded->Query(key, t),
                                 registry->Query(key, t), in, "key=", key);
      }
    }
    if (op % 25 == 0) {
      TDS_FUZZ_CHECK_OK(registry->AuditInvariants(), in, "op=", op);
    }
    TDS_FUZZ_CHECK(registry->KeyCount() == reference.keys.size(), in,
                   "op=", op, " registry=", registry->KeyCount(),
                   " reference=", reference.keys.size());
  }
  TDS_FUZZ_CHECK_OK(registry->AuditInvariants(), in, "final");
}

// With expiry enabled (the default), evicted keys may be recreated with a
// fresh histogram, so exact structural comparison no longer applies; instead
// every answer must stay within the CEH accuracy band of the exact window
// count (half the straddling bucket, i.e. O(epsilon) relative plus a
// granularity term), and structure + snapshot invariants must keep holding.
// Returns the number of eviction passes observed, so the deterministic
// wrapper can assert the machinery was actually exercised across its seeds.
int RunRegistryEvictionFuzz(int max_ops, FuzzInput& in) {
  constexpr Tick kWindow = 96;
  const DecayPtr decay = SlidingWindowDecay::Create(kWindow).value();
  int evictions_observed = 0;
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(Backend::kCeh)
                          .epsilon(0.15)
                          .Build()
                          .value();
  auto registry = AggregateRegistry::Create(decay, options);
  TDS_FUZZ_CHECK(registry.ok(), in, registry.status().ToString());
  TDS_FUZZ_CHECK(registry->expiry_age() == kWindow, in, "expiry_age");

  // Exact truth: every item ever ingested, summed over the live window.
  std::unordered_map<uint64_t, std::vector<std::pair<Tick, uint64_t>>> items;
  auto truth = [&](uint64_t key, Tick now) {
    double sum = 0.0;
    const auto it = items.find(key);
    if (it == items.end()) return sum;
    for (const auto& [arrival, value] : it->second) {
      if (AgeAt(arrival, now) <= kWindow) sum += static_cast<double>(value);
    }
    return sum;
  };
  auto check_key = [&](uint64_t key, Tick now, int op) {
    const double expect = truth(key, now);
    const double got = registry->Query(key, now);
    TDS_FUZZ_CHECK_NEAR(got, expect, 0.2 * expect + 1.0, in,
                        "op=", op, " key=", key);
  };

  Tick t = 1;
  for (int op = 0; op < max_ops && !in.exhausted(); ++op) {
    const uint64_t roll = in.Below(100);
    if (roll < 45) {
      t += static_cast<Tick>(in.Below(4));
      const uint64_t key = in.Below(kKeySpace);
      const uint64_t value = in.Below(5);
      registry->Update(key, t, value);
      items[key].emplace_back(t, value);
    } else if (roll < 70) {
      std::vector<KeyedItem> batch;
      const size_t size = in.Below(40);
      for (size_t i = 0; i < size; ++i) {
        if (in.Below(3) == 0) t += static_cast<Tick>(in.Below(2));
        batch.push_back(KeyedItem{in.Below(kKeySpace), t, in.Below(5)});
      }
      registry->UpdateBatch(batch);
      for (const KeyedItem& item : batch) {
        items[item.key].emplace_back(item.t, item.value);
      }
    } else if (roll < 85) {
      // Long advances push whole keys past the horizon and trigger the
      // full eviction pass.
      t += static_cast<Tick>(in.Below(2) ? in.Below(150) : in.Below(20));
      registry->Advance(t);
      if (registry->KeyCount() < items.size()) ++evictions_observed;
    } else if (roll < 95) {
      for (int probe = 0; probe < 3; ++probe) {
        check_key(in.Below(kKeySpace + 4), t, op);
      }
    } else {
      std::string blob;
      TDS_FUZZ_CHECK_OK(registry->EncodeState(&blob), in, "EncodeState");
      auto decoded = AggregateRegistry::Decode(decay, options, blob);
      TDS_FUZZ_CHECK(decoded.ok(), in,
                     "op=", op, ": ", decoded.status().ToString());
      std::string reencoded;
      TDS_FUZZ_CHECK_OK(decoded->EncodeState(&reencoded), in, "re-encode");
      TDS_FUZZ_CHECK(blob == reencoded, in,
                     "snapshot not self-inverse, op=", op);
      for (uint64_t key = 0; key < kKeySpace; ++key) {
        TDS_FUZZ_CHECK_DOUBLE_EQ(decoded->Query(key, t),
                                 registry->Query(key, t), in, "key=", key);
      }
    }
    if (op % 25 == 0) {
      TDS_FUZZ_CHECK_OK(registry->AuditInvariants(), in, "op=", op);
    }
    TDS_FUZZ_CHECK(registry->KeyCount() <= items.size(), in, "op=", op);
  }
  TDS_FUZZ_CHECK_OK(registry->AuditInvariants(), in, "final");
  return evictions_observed;
}

}  // namespace
}  // namespace tds

#ifndef TDS_LIBFUZZER

#include <gtest/gtest.h>

namespace tds {
namespace {

TEST(RegistryFuzzTest, MatchesPerKeyReferenceUnderFuzzedInterleavings) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed);
      FuzzInput in = FuzzInput::FromSeed(
          seed * 1009 + static_cast<uint64_t>(config.backend), 350 * 48);
      RunRegistryNoEvictionFuzz(config.decay, config.backend, 350, in);
    }
  }
}

TEST(RegistryFuzzTest, EvictionUnderFuzzStaysWithinWindowBounds) {
  int evictions_observed = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    FuzzInput in = FuzzInput::FromSeed(seed * 7177, 350 * 48);
    evictions_observed += RunRegistryEvictionFuzz(350, in);
  }
  // The long advances must actually have reclaimed idle keys somewhere
  // across the seeds, or this test is not exercising eviction at all.
  EXPECT_GT(evictions_observed, 0);
}

}  // namespace
}  // namespace tds

#else  // TDS_LIBFUZZER

// Coverage-guided entry point: first bytes pick the sub-driver and the
// (decay, backend) pairing, the rest drive the op stream. (Eviction counts
// are coverage bookkeeping for the deterministic wrapper, not an invariant
// arbitrary byte streams could promise.)
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tds::FuzzInput in(data, size);
  constexpr int kMaxOps = 2048;
  const uint64_t which = in.Below(4);
  if (which == 0) {
    (void)tds::RunRegistryEvictionFuzz(kMaxOps, in);
  } else if (which == 1) {
    tds::RunRegistryNoEvictionFuzz(
        tds::PolynomialDecay::Create(1.0).value(), tds::Backend::kWbmh,
        kMaxOps, in);
  } else {
    tds::RunRegistryNoEvictionFuzz(
        tds::SlidingWindowDecay::Create(96).value(), tds::Backend::kCeh,
        kMaxOps, in);
  }
  return 0;
}

#endif  // TDS_LIBFUZZER
