// Deterministic fuzz driver for AggregateRegistry (docs/CORRECTNESS.md
// conventions): seed-driven interleavings of single updates, batches,
// advances, queries, and snapshot round-trips, checked after every phase
// against a per-key map of standalone aggregates fed the identical item
// sequence — plus structural audits. With expiry disabled the registry adds
// bookkeeping but never arithmetic, so every per-key answer must match
// bit-for-bit; a second driver re-enables expiry and checks estimates
// against exact window counts instead (an evicted-then-recreated key
// rebuilds its histogram, which is within the accuracy bound but not
// bit-identical to an uninterrupted one).
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/registry.h"
#include "fuzz_util.h"
#include "util/common.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr uint64_t kKeySpace = 24;

struct Reference {
  DecayPtr decay;
  AggregateOptions options;
  std::unordered_map<uint64_t, std::unique_ptr<DecayedAggregate>> keys;

  void Update(uint64_t key, Tick t, uint64_t value) {
    auto it = keys.find(key);
    if (it == keys.end()) {
      it = keys.emplace(key, MakeDecayedSum(decay, options).value()).first;
    }
    it->second->Update(t, value);
  }

  void Advance(Tick now) {
    for (auto& [key, aggregate] : keys) aggregate->Advance(now);
  }

  double Query(uint64_t key, Tick now) const {
    const auto it = keys.find(key);
    return it == keys.end() ? 0.0 : it->second->Query(now);
  }
};

TEST(RegistryFuzzTest, MatchesPerKeyReferenceUnderFuzzedInterleavings) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {SlidingWindowDecay::Create(96).value(), Backend::kCeh},
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      AggregateRegistry::Options options;
      options.aggregate = AggregateOptions::Builder()
                              .backend(config.backend)
                              .epsilon(0.15)
                              .Build()
                              .value();
      // The reference never evicts, so the registry must not either:
      // a negative floor turns expiry off even for finite horizons.
      options.expiry_weight_floor = -1.0;
      auto registry = AggregateRegistry::Create(config.decay, options);
      ASSERT_TRUE(registry.ok());
      Reference reference{config.decay, options.aggregate, {}};

      FuzzRng rng(seed * 1009 + static_cast<uint64_t>(config.backend));
      Tick t = 1;
      for (int op = 0; op < 350; ++op) {
        const uint64_t roll = rng.NextBelow(100);
        if (roll < 55) {
          t += static_cast<Tick>(rng.NextBelow(3));
          const uint64_t key = rng.NextBelow(kKeySpace);
          const uint64_t value = rng.NextBelow(5);
          registry->Update(key, t, value);
          reference.Update(key, t, value);
        } else if (roll < 80) {
          std::vector<KeyedItem> batch;
          const size_t size = rng.NextBelow(40);
          for (size_t i = 0; i < size; ++i) {
            if (rng.NextBelow(3) == 0) t += static_cast<Tick>(rng.NextBelow(2));
            batch.push_back(
                KeyedItem{rng.NextBelow(kKeySpace), t, rng.NextBelow(5)});
          }
          registry->UpdateBatch(batch);
          for (const KeyedItem& item : batch) {
            reference.Update(item.key, item.t, item.value);
          }
        } else if (roll < 88) {
          t += static_cast<Tick>(rng.NextBelow(30));
          registry->Advance(t);
          reference.Advance(t);
        } else if (roll < 96) {
          // Align clocks first: the registry's shared WBMH layout advances
          // whenever ANY key ingests, so an idle key's structure can be
          // further merged than its standalone reference (both correct, but
          // bit-equality needs both structures at the same tick).
          registry->Advance(t);
          reference.Advance(t);
          for (int probe = 0; probe < 3; ++probe) {
            const uint64_t key = rng.NextBelow(kKeySpace + 4);  // some absent
            ASSERT_DOUBLE_EQ(registry->Query(key, t),
                             reference.Query(key, t))
                << "seed=" << seed << " op=" << op << " key=" << key
                << " draws=" << rng.counter();
          }
        } else {
          std::string blob;
          ASSERT_TRUE(registry->EncodeState(&blob).ok());
          auto decoded =
              AggregateRegistry::Decode(config.decay, options, blob);
          ASSERT_TRUE(decoded.ok())
              << "seed=" << seed << " op=" << op << ": "
              << decoded.status().ToString();
          std::string reencoded;
          ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
          ASSERT_EQ(blob, reencoded)
              << "snapshot not self-inverse, seed=" << seed << " op=" << op;
          for (uint64_t key = 0; key < kKeySpace; ++key) {
            ASSERT_DOUBLE_EQ(decoded->Query(key, t), registry->Query(key, t));
          }
        }
        if (op % 25 == 0) {
          const Status audit = registry->AuditInvariants();
          ASSERT_TRUE(audit.ok())
              << "seed=" << seed << " op=" << op << ": " << audit.ToString();
        }
        ASSERT_EQ(registry->KeyCount(), reference.keys.size())
            << "seed=" << seed << " op=" << op;
      }
      const Status audit = registry->AuditInvariants();
      ASSERT_TRUE(audit.ok()) << audit.ToString();
    }
  }
}

// With expiry enabled (the default), evicted keys may be recreated with a
// fresh histogram, so exact structural comparison no longer applies; instead
// every answer must stay within the CEH accuracy band of the exact window
// count (half the straddling bucket, i.e. O(epsilon) relative plus a
// granularity term), and structure + snapshot invariants must keep holding.
TEST(RegistryFuzzTest, EvictionUnderFuzzStaysWithinWindowBounds) {
  constexpr Tick kWindow = 96;
  const DecayPtr decay = SlidingWindowDecay::Create(kWindow).value();
  int evictions_observed = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    AggregateRegistry::Options options;
    options.aggregate = AggregateOptions::Builder()
                            .backend(Backend::kCeh)
                            .epsilon(0.15)
                            .Build()
                            .value();
    auto registry = AggregateRegistry::Create(decay, options);
    ASSERT_TRUE(registry.ok());
    ASSERT_EQ(registry->expiry_age(), kWindow);

    // Exact truth: every item ever ingested, summed over the live window.
    std::unordered_map<uint64_t, std::vector<std::pair<Tick, uint64_t>>> items;
    auto truth = [&](uint64_t key, Tick now) {
      double sum = 0.0;
      const auto it = items.find(key);
      if (it == items.end()) return sum;
      for (const auto& [arrival, value] : it->second) {
        if (AgeAt(arrival, now) <= kWindow) sum += static_cast<double>(value);
      }
      return sum;
    };
    auto check_key = [&](uint64_t key, Tick now, int op) {
      const double expect = truth(key, now);
      const double got = registry->Query(key, now);
      ASSERT_NEAR(got, expect, 0.2 * expect + 1.0)
          << "seed=" << seed << " op=" << op << " key=" << key;
    };

    FuzzRng rng(seed * 7177);
    Tick t = 1;
    for (int op = 0; op < 350; ++op) {
      const uint64_t roll = rng.NextBelow(100);
      if (roll < 45) {
        t += static_cast<Tick>(rng.NextBelow(4));
        const uint64_t key = rng.NextBelow(kKeySpace);
        const uint64_t value = rng.NextBelow(5);
        registry->Update(key, t, value);
        items[key].emplace_back(t, value);
      } else if (roll < 70) {
        std::vector<KeyedItem> batch;
        const size_t size = rng.NextBelow(40);
        for (size_t i = 0; i < size; ++i) {
          if (rng.NextBelow(3) == 0) t += static_cast<Tick>(rng.NextBelow(2));
          batch.push_back(
              KeyedItem{rng.NextBelow(kKeySpace), t, rng.NextBelow(5)});
        }
        registry->UpdateBatch(batch);
        for (const KeyedItem& item : batch) {
          items[item.key].emplace_back(item.t, item.value);
        }
      } else if (roll < 85) {
        // Long advances push whole keys past the horizon and trigger the
        // full eviction pass.
        t += static_cast<Tick>(rng.NextBelow(2) ? rng.NextBelow(150)
                                                : rng.NextBelow(20));
        registry->Advance(t);
        if (registry->KeyCount() < items.size()) ++evictions_observed;
      } else if (roll < 95) {
        for (int probe = 0; probe < 3; ++probe) {
          check_key(rng.NextBelow(kKeySpace + 4), t, op);
        }
      } else {
        std::string blob;
        ASSERT_TRUE(registry->EncodeState(&blob).ok());
        auto decoded = AggregateRegistry::Decode(decay, options, blob);
        ASSERT_TRUE(decoded.ok())
            << "seed=" << seed << " op=" << op << ": "
            << decoded.status().ToString();
        std::string reencoded;
        ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
        ASSERT_EQ(blob, reencoded)
            << "snapshot not self-inverse, seed=" << seed << " op=" << op;
        for (uint64_t key = 0; key < kKeySpace; ++key) {
          ASSERT_DOUBLE_EQ(decoded->Query(key, t), registry->Query(key, t));
        }
      }
      if (op % 25 == 0) {
        const Status audit = registry->AuditInvariants();
        ASSERT_TRUE(audit.ok())
            << "seed=" << seed << " op=" << op << ": " << audit.ToString();
      }
      ASSERT_LE(registry->KeyCount(), items.size());
    }
    const Status audit = registry->AuditInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
  }
  // The long advances must actually have reclaimed idle keys somewhere
  // across the seeds, or this test is not exercising eviction at all.
  EXPECT_GT(evictions_observed, 0);
}

}  // namespace
}  // namespace tds
