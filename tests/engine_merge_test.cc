// Cross-shard merged snapshots + rebalancing, locked down differentially:
// a MergedSnapshot over N shards must be key-for-key, bit-for-bit equal to
// a serially-fed single AggregateRegistry — the encode blobs themselves are
// byte-compared — across EH/CEH/WBMH backends, and the equality must
// survive skew-triggered and explicit slice migrations.
//
// Expiry is disabled throughout (expiry_weight_floor = -1): byte equality
// needs every key's aggregate to be the pure function of its own update
// sequence, and an evicted-then-recreated key is not.
#include "engine/merged_snapshot.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "engine_test_util.h"
#include "util/random.h"

namespace tds {
namespace {

struct Config {
  const char* label;
  DecayPtr decay;
  Backend backend;
};

std::vector<Config> MergeConfigs() {
  return {
      // Plain EH semantics (SLIWIN -> CEH degenerates to the EH).
      {"EH", SlidingWindowDecay::Create(1024).value(), Backend::kCeh},
      // CEH proper over a general decay.
      {"CEH", PolynomialDecay::Create(1.0).value(), Backend::kCeh},
      // WBMH: shared layout + counter transplant across registries.
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
  };
}

AggregateRegistry::Options RegistryOptions(Backend backend) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(0.15)
                          .Build()
                          .value();
  options.expiry_weight_floor = -1.0;  // bit-identity needs no eviction
  return options;
}

std::string MustEncode(AggregateRegistry& registry) {
  std::string blob;
  const Status status = registry.EncodeState(&blob);
  EXPECT_TRUE(status.ok()) << status.message();
  return blob;
}

/// Keys whose route slice initially lands on shard `shard` of `shards`
/// (initial route: slice % shards).
std::vector<uint64_t> KeysOnShard(uint32_t shard, uint32_t shards,
                                  uint32_t slices, size_t count,
                                  uint64_t start_key) {
  std::vector<uint64_t> keys;
  for (uint64_t key = start_key; keys.size() < count; ++key) {
    if (ShardedAggregateEngine::SliceForKey(key, slices) % shards == shard) {
      keys.push_back(key);
    }
  }
  return keys;
}

TEST(RegistryMergeTest, MergeFromDisjointBitIdenticalToSerial) {
  for (const Config& config : MergeConfigs()) {
    const auto options = RegistryOptions(config.backend);
    auto left = AggregateRegistry::Create(config.decay, options);
    auto right = AggregateRegistry::Create(config.decay, options);
    auto serial = AggregateRegistry::Create(config.decay, options);
    ASSERT_TRUE(left.ok() && right.ok() && serial.ok());

    // Interleaved, globally tick-ordered key streams; even keys left, odd
    // keys right. The two partial registries end at different clocks (the
    // last item is even), exercising the clock-alignment path.
    Rng rng(7);
    Tick t = 1;
    for (int i = 0; i < 4000; ++i) {
      if (rng.NextBelow(5) == 0) t += rng.NextBelow(4);
      const uint64_t key = rng.NextBelow(97);
      const uint64_t value = rng.NextBelow(6);
      (key % 2 == 0 ? *left : *right).Update(key, t, value);
      serial->Update(key, t, value);
    }

    ASSERT_TRUE(left->MergeFrom(std::move(right).value()).ok());
    EXPECT_EQ(left->KeyCount(), serial->KeyCount());
    EXPECT_EQ(left->now(), serial->now());
    EXPECT_TRUE(left->AuditInvariants().ok());
    EXPECT_EQ(MustEncode(*left), MustEncode(*serial)) << config.label;
  }
}

TEST(RegistryMergeTest, MergeRejectsSharedKeysAndMismatchedOptions) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const auto options = RegistryOptions(Backend::kCeh);
  auto a = AggregateRegistry::Create(decay, options);
  auto b = AggregateRegistry::Create(decay, options);
  ASSERT_TRUE(a.ok() && b.ok());
  a->Update(1, 1, 1);
  b->Update(1, 2, 1);
  EXPECT_FALSE(a->MergeFrom(std::move(b).value()).ok());
  // a unchanged by the failed merge.
  EXPECT_EQ(a->KeyCount(), 1u);
  EXPECT_EQ(a->now(), Tick{1});

  auto mismatched = AggregateRegistry::Create(
      decay, RegistryOptions(Backend::kWbmh));
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(a->MergeFrom(std::move(mismatched).value()).ok());
}

TEST(RegistryMergeTest, ExtractIfSplitsAndRemergesBitIdentically) {
  for (const Config& config : MergeConfigs()) {
    const auto options = RegistryOptions(config.backend);
    auto subject = AggregateRegistry::Create(config.decay, options);
    auto serial = AggregateRegistry::Create(config.decay, options);
    ASSERT_TRUE(subject.ok() && serial.ok());
    Rng rng(11);
    Tick t = 1;
    for (int i = 0; i < 3000; ++i) {
      if (rng.NextBelow(4) == 0) ++t;
      const uint64_t key = rng.NextBelow(64);
      const uint64_t value = rng.NextBelow(5);
      subject->Update(key, t, value);
      serial->Update(key, t, value);
    }
    const size_t before = subject->KeyCount();
    auto extracted =
        subject->ExtractIf([](uint64_t key) { return key % 3 == 0; });
    ASSERT_TRUE(extracted.ok()) << extracted.status().message();
    EXPECT_TRUE(subject->AuditInvariants().ok());
    EXPECT_TRUE(extracted->AuditInvariants().ok());
    EXPECT_EQ(subject->KeyCount() + extracted->KeyCount(), before);
    EXPECT_EQ(extracted->now(), subject->now());
    for (uint64_t key = 0; key < 64; ++key) {
      EXPECT_EQ(extracted->Contains(key), serial->Contains(key) && key % 3 == 0);
      EXPECT_EQ(subject->Contains(key), serial->Contains(key) && key % 3 != 0);
    }
    // Splitting then re-merging restores the exact serial state.
    ASSERT_TRUE(subject->MergeFrom(std::move(extracted).value()).ok());
    EXPECT_EQ(MustEncode(*subject), MustEncode(*serial)) << config.label;
  }
}

/// Feeds `items` through the engine in batches and serially through a
/// reference registry (per item).
void FeedBoth(ShardedAggregateEngine& engine, AggregateRegistry& reference,
              const std::vector<KeyedItem>& items) {
  constexpr size_t kChunk = 512;
  for (size_t i = 0; i < items.size(); i += kChunk) {
    const size_t n = std::min(kChunk, items.size() - i);
    ASSERT_TRUE(SessionIngest(engine, {items.data() + i, n}).ok());
  }
  for (const KeyedItem& item : items) {
    reference.Update(item.key, item.t, item.value);
  }
}

TEST(MergedSnapshotTest, BitIdenticalToSerialReferenceAcrossRebalance) {
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kSlices = 64;
  for (const Config& config : MergeConfigs()) {
    ShardedAggregateEngine::Options options;
    options.registry = RegistryOptions(config.backend);
    options.shards = kShards;
    options.route_slices = kSlices;
    options.rebalance_min_keys = 64;
    options.rebalance_skew = 2.0;
    auto engine = ShardedAggregateEngine::Create(config.decay, options);
    ASSERT_TRUE(engine.ok());
    auto reference = AggregateRegistry::Create(config.decay, options.registry);
    ASSERT_TRUE(reference.ok());

    // A deliberately skewed key population: ~300 keys whose slices land on
    // shard 0 under the initial route, plus a sprinkle on the others.
    const auto heavy = KeysOnShard(0, kShards, kSlices, 300, 1);
    const auto light1 = KeysOnShard(1, kShards, kSlices, 20, 1);
    const auto light2 = KeysOnShard(2, kShards, kSlices, 20, 1);
    Rng rng(13);
    std::vector<KeyedItem> items;
    Tick t = 1;
    for (int i = 0; i < 6000; ++i) {
      if (rng.NextBelow(6) == 0) t += rng.NextBelow(3);
      const uint64_t pick = rng.NextBelow(10);
      uint64_t key;
      if (pick < 8) {
        key = heavy[rng.NextBelow(heavy.size())];
      } else if (pick == 8) {
        key = light1[rng.NextBelow(light1.size())];
      } else {
        key = light2[rng.NextBelow(light2.size())];
      }
      items.push_back(KeyedItem{key, t, rng.NextBelow(5)});
    }
    FeedBoth(**engine, *reference, items);
    ASSERT_TRUE((*engine)->Flush().ok());

    // --- before any rebalance: byte-for-byte equality with the reference.
    auto merged = (*engine)->Snapshot();
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    EXPECT_EQ(merged->KeyCount(), reference->KeyCount());
    EXPECT_EQ(merged->cut(), reference->now());
    std::string merged_blob;
    ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
    EXPECT_EQ(merged_blob, MustEncode(*reference)) << config.label;

    // --- the skew trigger must fire (shard 0 dominates by construction).
    const auto stats_before = (*engine)->Stats();
    EXPECT_GE(stats_before[0].live_keys,
              2 * std::max<uint64_t>(1, stats_before[1].live_keys));
    auto rebalanced = (*engine)->RebalanceIfSkewed();
    ASSERT_TRUE(rebalanced.ok()) << rebalanced.status().message();
    EXPECT_TRUE(rebalanced.value()) << config.label;
    EXPECT_GE((*engine)->Rebalances(), 1u);
    const auto stats_after = (*engine)->Stats();
    EXPECT_LT(stats_after[0].live_keys, stats_before[0].live_keys);

    // --- byte equality must hold right after the migration...
    merged = (*engine)->Snapshot();
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
    EXPECT_EQ(merged_blob, MustEncode(*reference))
        << config.label << " (post-rebalance)";

    // --- ...and after ingesting more items on the rebalanced routes.
    std::vector<KeyedItem> more;
    for (int i = 0; i < 3000; ++i) {
      if (rng.NextBelow(6) == 0) t += rng.NextBelow(3);
      const uint64_t key = heavy[rng.NextBelow(heavy.size())];
      more.push_back(KeyedItem{key, t, rng.NextBelow(5)});
    }
    FeedBoth(**engine, *reference, more);
    ASSERT_TRUE((*engine)->Flush().ok());
    merged = (*engine)->Snapshot();
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    EXPECT_EQ(merged->KeyCount(), reference->KeyCount());
    ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
    EXPECT_EQ(merged_blob, MustEncode(*reference))
        << config.label << " (post-rebalance ingest)";

    // Per-key spot check through the public query paths.
    for (const uint64_t key : heavy) {
      EXPECT_DOUBLE_EQ(merged->Query(key, t), reference->Query(key, t));
      EXPECT_DOUBLE_EQ((*engine)->QueryKey(key, t), reference->Query(key, t));
    }
  }
}

TEST(MergedSnapshotTest, ExplicitSliceMigrationPreservesEquality) {
  auto decay = PolynomialDecay::Create(1.0).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kWbmh);
  options.shards = 3;
  options.route_slices = 24;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());
  auto reference = AggregateRegistry::Create(decay, options.registry);
  ASSERT_TRUE(reference.ok());

  Rng rng(29);
  std::vector<KeyedItem> items;
  Tick t = 1;
  for (int i = 0; i < 4000; ++i) {
    if (rng.NextBelow(5) == 0) ++t;
    items.push_back(KeyedItem{rng.NextBelow(200), t, rng.NextBelow(4)});
  }
  FeedBoth(**engine, *reference, items);
  ASSERT_TRUE((*engine)->Flush().ok());

  // Move every slice to shard 2, in two waves, ingesting between them.
  const std::vector<uint32_t> first_wave = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  ASSERT_TRUE((*engine)->MigrateSlices(first_wave, 2).ok());
  std::vector<KeyedItem> more;
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextBelow(5) == 0) ++t;
    more.push_back(KeyedItem{rng.NextBelow(200), t, rng.NextBelow(4)});
  }
  FeedBoth(**engine, *reference, more);
  ASSERT_TRUE((*engine)->Flush().ok());
  const std::vector<uint32_t> second_wave = {12, 13, 14, 15, 16, 17, 18, 19,
                                             20, 21, 22, 23};
  ASSERT_TRUE((*engine)->MigrateSlices(second_wave, 2).ok());

  // Everything now routes to shard 2; the other shards are empty and the
  // merged view still byte-matches the reference.
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ((*engine)->RouteForKey(key), 2u);
  }
  const auto stats = (*engine)->Stats();
  EXPECT_EQ(stats[0].live_keys, 0u);
  EXPECT_EQ(stats[1].live_keys, 0u);
  EXPECT_EQ(stats[2].live_keys, reference->KeyCount());
  auto merged = (*engine)->Snapshot();
  ASSERT_TRUE(merged.ok());
  std::string merged_blob;
  ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
  EXPECT_EQ(merged_blob, MustEncode(*reference));
}

TEST(MergedSnapshotTest, CodecRoundTripsAndRejectsCorruption) {
  for (const Config& config : MergeConfigs()) {
    ShardedAggregateEngine::Options options;
    options.registry = RegistryOptions(config.backend);
    options.shards = 2;
    options.route_slices = 8;
    auto engine = ShardedAggregateEngine::Create(config.decay, options);
    ASSERT_TRUE(engine.ok());
    Rng rng(41);
    std::vector<KeyedItem> items;
    Tick t = 1;
    for (int i = 0; i < 1000; ++i) {
      if (rng.NextBelow(4) == 0) ++t;
      items.push_back(KeyedItem{rng.NextBelow(50), t, 1 + rng.NextBelow(3)});
    }
    ASSERT_TRUE(SessionIngest(**engine, items).ok());
    ASSERT_TRUE((*engine)->Flush().ok());
    auto merged = (*engine)->Snapshot();
    ASSERT_TRUE(merged.ok());

    std::string blob;
    ASSERT_TRUE(merged->EncodeState(&blob).ok());
    auto decoded =
        MergedSnapshot::Decode(config.decay, options.registry, blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->cut(), merged->cut());
    EXPECT_EQ(decoded->KeyCount(), merged->KeyCount());
    EXPECT_EQ(decoded->source_shards(), 2u);
    // Self-inverse: decode then re-encode is byte-identical.
    std::string reencoded;
    ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
    EXPECT_EQ(reencoded, blob) << config.label;

    // Corruption is rejected (audit-on-decode path).
    std::string corrupt = blob;
    corrupt[1] ^= 0x5a;  // inside the magic
    EXPECT_FALSE(
        MergedSnapshot::Decode(config.decay, options.registry, corrupt).ok());
    EXPECT_FALSE(MergedSnapshot::Decode(config.decay, options.registry,
                                        blob.substr(0, blob.size() / 2))
                     .ok());
  }
}

TEST(MergedSnapshotTest, TopKMatchesBruteForce) {
  auto decay = SlidingWindowDecay::Create(512).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh);
  options.shards = 3;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());
  Rng rng(53);
  std::vector<KeyedItem> items;
  Tick t = 1;
  for (int i = 0; i < 3000; ++i) {
    if (rng.NextBelow(3) == 0) ++t;
    // Zipf-ish: low keys arrive far more often, so the top-k is nontrivial.
    const uint64_t key = rng.NextBelow(1 + rng.NextBelow(80));
    items.push_back(KeyedItem{key, t, 1 + rng.NextBelow(4)});
  }
  ASSERT_TRUE(SessionIngest(**engine, items).ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  auto merged = (*engine)->Snapshot();
  ASSERT_TRUE(merged.ok());

  const auto keys = merged->Keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), merged->KeyCount());
  std::vector<MergedSnapshot::WeightedKey> brute;
  for (const uint64_t key : keys) {
    brute.push_back({key, merged->Query(key, t)});
  }
  std::sort(brute.begin(), brute.end(),
            [](const auto& a, const auto& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.key < b.key;
            });
  for (const size_t k : {size_t{1}, size_t{10}, keys.size() + 5}) {
    const auto top = merged->TopK(k, t);
    ASSERT_EQ(top.size(), std::min(k, keys.size()));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].key, brute[i].key) << "k=" << k << " i=" << i;
      EXPECT_DOUBLE_EQ(top[i].weight, brute[i].weight);
    }
  }
  // QueryTotal through the merged view equals the per-shard sum.
  EXPECT_DOUBLE_EQ(merged->QueryTotal(t), (*engine)->QueryTotal(t));
}

// The partial-selection path must stay deterministic when many keys tie on
// weight: ties break key-ascending, for every k including k = 0, k landing
// inside a tie run, and k >= the live key count.
TEST(MergedSnapshotTest, TopKBreaksTiesByKeyForEveryK) {
  auto decay = SlidingWindowDecay::Create(512).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kExact);
  options.shards = 3;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());
  // Three tiers, heavily tied inside each: keys 0..9 weight 3, keys
  // 10..19 weight 2, keys 20..29 weight 1, all at one tick.
  std::vector<KeyedItem> items;
  for (uint64_t key = 0; key < 30; ++key) {
    items.push_back(KeyedItem{key, 1, 3 - key / 10});
  }
  ASSERT_TRUE(SessionIngest(**engine, items).ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  auto merged = (*engine)->Snapshot();
  ASSERT_TRUE(merged.ok());

  for (size_t k = 0; k <= 35; ++k) {
    const auto top = merged->TopK(k, 1);
    ASSERT_EQ(top.size(), std::min<size_t>(k, 30)) << "k=" << k;
    for (size_t i = 0; i < top.size(); ++i) {
      // With ties broken key-ascending the full order is exactly key order.
      EXPECT_EQ(top[i].key, i) << "k=" << k;
      if (i > 0) {
        EXPECT_GE(top[i - 1].weight, top[i].weight) << "k=" << k;
      }
    }
    // Same k twice: bit-identical (selection must not be order-sensitive).
    const auto again = merged->TopK(k, 1);
    ASSERT_EQ(again.size(), top.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(again[i].key, top[i].key);
      EXPECT_DOUBLE_EQ(again[i].weight, top[i].weight);
    }
  }
}

TEST(MergedSnapshotTest, FromShardsValidates) {
  EXPECT_FALSE(MergedSnapshot::FromShards({}).ok());
  auto decay = PolynomialDecay::Create(1.0).value();
  std::vector<AggregateRegistry> shards;
  for (int i = 0; i < 2; ++i) {
    auto registry =
        AggregateRegistry::Create(decay, RegistryOptions(Backend::kCeh));
    ASSERT_TRUE(registry.ok());
    registry->Update(7, 1, 1);  // same key in both: must be rejected
    shards.push_back(std::move(registry).value());
  }
  EXPECT_FALSE(MergedSnapshot::FromShards(std::move(shards)).ok());
}

TEST(ShardedEngineTest, RebalanceBelowThresholdsIsANoOp) {
  auto decay = SlidingWindowDecay::Create(256).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh);
  options.shards = 2;
  options.route_slices = 16;
  options.rebalance_min_keys = 1 << 20;  // unreachable
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());
  std::vector<KeyedItem> items;
  for (uint64_t key = 0; key < 100; ++key) {
    items.push_back(KeyedItem{key, 1, 1});
  }
  ASSERT_TRUE(SessionIngest(**engine, items).ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  auto rebalanced = (*engine)->RebalanceIfSkewed();
  ASSERT_TRUE(rebalanced.ok());
  EXPECT_FALSE(rebalanced.value());
  EXPECT_EQ((*engine)->Rebalances(), 0u);
}

TEST(ShardedEngineTest, CreateValidatesRouteOptions) {
  auto decay = SlidingWindowDecay::Create(64).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh);
  options.shards = 4;
  options.route_slices = 2;  // fewer slices than shards
  EXPECT_FALSE(ShardedAggregateEngine::Create(decay, options).ok());
  options.route_slices = 8;
  options.rebalance_skew = 0.5;
  EXPECT_FALSE(ShardedAggregateEngine::Create(decay, options).ok());
}

}  // namespace
}  // namespace tds
