// Snapshot (serialization) round-trips: encode a structure mid-stream,
// decode it into a fresh instance, continue feeding both, and require
// bit-identical answers forever after.
#include "core/snapshot.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "histogram/wbmh_counter.h"
#include "histogram/wbmh_layout.h"
#include "stream/generators.h"
#include "util/codec.h"
#include "util/random.h"

namespace tds {
namespace {

TEST(CodecTest, VarintRoundTrip) {
  Encoder encoder;
  for (uint64_t value : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40,
                         ~0ull}) {
    encoder.PutVarint(value);
  }
  const std::string bytes = encoder.Finish();
  Decoder decoder(bytes);
  for (uint64_t expected : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40,
                            ~0ull}) {
    uint64_t value = 0;
    ASSERT_TRUE(decoder.GetVarint(&value));
    EXPECT_EQ(value, expected);
  }
  EXPECT_TRUE(decoder.Done());
}

TEST(CodecTest, SignedAndDoubleRoundTrip) {
  Encoder encoder;
  encoder.PutSigned(-12345);
  encoder.PutSigned(0);
  encoder.PutSigned(987654321);
  encoder.PutDouble(3.14159);
  encoder.PutDouble(-0.0);
  encoder.PutString("hello");
  const std::string bytes = encoder.Finish();
  Decoder decoder(bytes);
  int64_t a = 0, b = 0, c = 0;
  double d = 0, e = 0;
  std::string s;
  ASSERT_TRUE(decoder.GetSigned(&a));
  ASSERT_TRUE(decoder.GetSigned(&b));
  ASSERT_TRUE(decoder.GetSigned(&c));
  ASSERT_TRUE(decoder.GetDouble(&d));
  ASSERT_TRUE(decoder.GetDouble(&e));
  ASSERT_TRUE(decoder.GetString(&s));
  EXPECT_EQ(a, -12345);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(c, 987654321);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_DOUBLE_EQ(e, -0.0);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(decoder.Done());
}

TEST(CodecTest, TruncationDetected) {
  Encoder encoder;
  encoder.PutDouble(1.0);
  std::string bytes = encoder.Finish();
  bytes.resize(4);
  Decoder decoder(bytes);
  double value = 0;
  EXPECT_FALSE(decoder.GetDouble(&value));
  uint64_t big = 0;
  Decoder empty("");
  EXPECT_FALSE(empty.GetVarint(&big));
}

struct SnapshotCase {
  const char* label;
  DecayPtr decay;
  Backend backend;
};

class SnapshotRoundTripTest : public ::testing::TestWithParam<int> {};

std::vector<SnapshotCase> Cases() {
  std::vector<SnapshotCase> cases;
  cases.push_back({"exact", PolynomialDecay::Create(1.0).value(),
                   Backend::kExact});
  cases.push_back({"ewma", ExponentialDecay::Create(0.01).value(),
                   Backend::kEwma});
  cases.push_back({"recent", ExponentialDecay::Create(0.05).value(),
                   Backend::kRecentItems});
  cases.push_back({"polyexp", PolyExponentialDecay::Create(2, 0.05).value(),
                   Backend::kPolyExp});
  cases.push_back({"ceh_sliwin", SlidingWindowDecay::Create(200).value(),
                   Backend::kCeh});
  cases.push_back({"ceh_polyd", PolynomialDecay::Create(1.5).value(),
                   Backend::kCeh});
  cases.push_back({"coarse", PolynomialDecay::Create(1.0).value(),
                   Backend::kCoarseCeh});
  cases.push_back({"wbmh", PolynomialDecay::Create(2.0).value(),
                   Backend::kWbmh});
  return cases;
}

TEST(SnapshotTest, MidStreamRoundTripContinuesIdentically) {
  for (const SnapshotCase& test_case : Cases()) {
    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(test_case.backend)
                                     .epsilon(0.1)
                                     .Build()
                                     .value();
    auto original = MakeDecayedSum(test_case.decay, options);
    ASSERT_TRUE(original.ok()) << test_case.label;

    const Stream stream = BurstyStream(3000, 25, 40, 2.0, 17);
    size_t half = stream.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      (*original)->Update(stream[i].t, stream[i].value);
    }

    std::string bytes;
    ASSERT_TRUE(EncodeDecayedSum(**original, &bytes).ok()) << test_case.label;
    auto restored = DecodeDecayedSum(test_case.decay, bytes);
    ASSERT_TRUE(restored.ok())
        << test_case.label << ": " << restored.status().ToString();
    EXPECT_EQ((*restored)->Name(), (*original)->Name());

    // Continue both with the second half; answers must match exactly at
    // every probe (the snapshot is the complete state).
    for (size_t i = half; i < stream.size(); ++i) {
      (*original)->Update(stream[i].t, stream[i].value);
      (*restored)->Update(stream[i].t, stream[i].value);
      if (i % 50 == 0) {
        ASSERT_DOUBLE_EQ((*original)->Query(stream[i].t),
                         (*restored)->Query(stream[i].t))
            << test_case.label << " at " << stream[i].t;
      }
    }
    const Tick end = StreamEnd(stream) + 500;
    EXPECT_DOUBLE_EQ((*original)->Query(end), (*restored)->Query(end))
        << test_case.label;
    EXPECT_EQ((*original)->StorageBits(), (*restored)->StorageBits())
        << test_case.label;
  }
}

TEST(SnapshotTest, EmptyStructureRoundTrips) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kCeh)
                                   .Build()
                                   .value();
  auto original = MakeDecayedSum(decay, options);
  std::string bytes;
  ASSERT_TRUE(EncodeDecayedSum(**original, &bytes).ok());
  auto restored = DecodeDecayedSum(decay, bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ((*restored)->Query(100), 0.0);
}

TEST(SnapshotTest, RejectsWrongDecay) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kCeh)
                                   .Build()
                                   .value();
  auto original = MakeDecayedSum(decay, options);
  (*original)->Update(5, 3);
  std::string bytes;
  ASSERT_TRUE(EncodeDecayedSum(**original, &bytes).ok());
  auto wrong = DecodeDecayedSum(PolynomialDecay::Create(2.0).value(), bytes);
  EXPECT_FALSE(wrong.ok());
}

TEST(SnapshotTest, RejectsCorruptData) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kWbmh)
                                   .Build()
                                   .value();
  auto original = MakeDecayedSum(decay, options);
  for (Tick t = 1; t <= 500; ++t) (*original)->Update(t, 1);
  std::string bytes;
  ASSERT_TRUE(EncodeDecayedSum(**original, &bytes).ok());
  EXPECT_FALSE(DecodeDecayedSum(decay, "garbage").ok());
  std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(DecodeDecayedSum(decay, truncated).ok());
  std::string flipped = bytes;
  flipped[2] ^= 0x5a;  // corrupt the magic
  EXPECT_FALSE(DecodeDecayedSum(decay, flipped).ok());
}

TEST(SnapshotTest, DecayedAverageRoundTrip) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  auto original = MakeDecayedAverage(decay, options);
  ASSERT_TRUE(original.ok());
  for (Tick t = 1; t <= 1000; ++t) original->Observe(t, 5 + t % 7);
  std::string bytes;
  ASSERT_TRUE(EncodeDecayedAverage(*original, &bytes).ok());
  auto restored = DecodeDecayedAverage(decay, bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (Tick t = 1001; t <= 1500; ++t) {
    original->Observe(t, 5 + t % 7);
    restored->Observe(t, 5 + t % 7);
  }
  EXPECT_DOUBLE_EQ(original->Query(1500), restored->Query(1500));
}

TEST(SnapshotTest, DecoderSurvivesRandomBytes) {
  auto decay = PolynomialDecay::Create(1.0).value();
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng.NextBelow(200), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBelow(256));
    auto result = DecodeDecayedSum(decay, garbage);
    EXPECT_FALSE(result.ok());
  }
}

TEST(SnapshotTest, DecoderSurvivesMutatedSnapshots) {
  // Take a real snapshot and flip random bytes: every outcome must be a
  // clean error or a successfully-decoded structure (flips in count fields
  // can decode), never a crash or CHECK.
  auto decay = PolynomialDecay::Create(1.0).value();
  Rng rng(999);
  for (Backend backend :
       {Backend::kCeh, Backend::kCoarseCeh, Backend::kWbmh}) {
    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(backend)
                                     .Build()
                                     .value();
    auto original = MakeDecayedSum(decay, options);
    for (Tick t = 1; t <= 300; ++t) (*original)->Update(t, 1);
    std::string bytes;
    ASSERT_TRUE(EncodeDecayedSum(**original, &bytes).ok());
    for (int trial = 0; trial < 300; ++trial) {
      std::string mutated = bytes;
      const size_t index = rng.NextBelow(mutated.size());
      mutated[index] = static_cast<char>(mutated[index] ^
                                         (1u << rng.NextBelow(8)));
      auto result = DecodeDecayedSum(decay, mutated);
      if (result.ok() && backend != Backend::kWbmh) {
        // Decoded fine: it must still answer queries without crashing.
        // (Query far in the future: snapshot clocks are opaque here. WBMH
        // is excluded — advancing its layout to 2^40 legitimately costs
        // O(delta/period) events; its decode validation is the target.)
        (*result)->Query(Tick{1} << 40);
      }
    }
  }
}

TEST(SnapshotTest, SharedLayoutCounterRoundTrip) {
  // Shared-layout deployments: snapshot the layout once and each counter
  // separately; restore into a fresh layout+counters.
  auto decay = PolynomialDecay::Create(1.0).value();
  WbmhLayout::Options layout_options;
  layout_options.decay = decay;
  layout_options.epsilon = 0.5;
  auto source_layout = std::make_shared<WbmhLayout>(
      std::move(WbmhLayout::Create(layout_options)).value());
  WbmhCounter counter_a(source_layout, WbmhCounter::Options{0.5});
  WbmhCounter counter_b(source_layout, WbmhCounter::Options{0.5});
  for (Tick t = 1; t <= 2000; ++t) {
    counter_a.Add(t, 1);
    if (t % 3 == 0) counter_b.Add(t, 2);
  }
  counter_a.Sync();
  counter_b.Sync();
  source_layout->TrimLog(source_layout->OpSeq());

  Encoder layout_encoder;
  ASSERT_TRUE(source_layout->EncodeState(layout_encoder).ok());
  Encoder a_encoder, b_encoder;
  ASSERT_TRUE(counter_a.EncodeState(a_encoder).ok());
  ASSERT_TRUE(counter_b.EncodeState(b_encoder).ok());

  auto restored_layout = std::make_shared<WbmhLayout>(
      std::move(WbmhLayout::Create(layout_options)).value());
  std::string layout_bytes = layout_encoder.Finish();
  Decoder layout_decoder(layout_bytes);
  ASSERT_TRUE(restored_layout->DecodeState(layout_decoder).ok());
  WbmhCounter restored_a(restored_layout, WbmhCounter::Options{0.5});
  WbmhCounter restored_b(restored_layout, WbmhCounter::Options{0.5});
  std::string a_bytes = a_encoder.Finish();
  std::string b_bytes = b_encoder.Finish();
  Decoder a_decoder(a_bytes);
  Decoder b_decoder(b_bytes);
  ASSERT_TRUE(restored_a.DecodeState(a_decoder).ok());
  ASSERT_TRUE(restored_b.DecodeState(b_decoder).ok());

  // Continue both worlds identically.
  for (Tick t = 2001; t <= 3000; ++t) {
    counter_a.Add(t, 1);
    restored_a.Add(t, 1);
  }
  EXPECT_DOUBLE_EQ(counter_a.Query(3000), restored_a.Query(3000));
  EXPECT_DOUBLE_EQ(counter_b.Query(3000), restored_b.Query(3000));
}

}  // namespace
}  // namespace tds
