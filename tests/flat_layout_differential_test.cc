// Differential test for the flat (SoA) histogram layout: a structure built
// with HistogramLayout::kFlat must be bit-identical to its kChain twin at
// every step of a randomized op sequence — equal query results (exact
// double equality, not ULP-tolerant), byte-identical EncodeState output,
// equal storage accounting, green audits — and snapshots must decode across
// layouts (a blob written by one layout resumes under the other).
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ceh.h"
#include "core/coarse_ceh.h"
#include "core/factory.h"
#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "histogram/exponential_histogram.h"
#include "stream/stream.h"
#include "util/codec.h"
#include "util/random.h"

namespace tds {
namespace {

ExponentialHistogram MakeEh(double epsilon, Tick window,
                            HistogramLayout layout) {
  ExponentialHistogram::Options options;
  options.epsilon = epsilon;
  options.window = window;
  options.layout = layout;
  auto created = ExponentialHistogram::Create(options);
  TDS_CHECK(created.ok());
  return std::move(created).value();
}

std::string Encoded(const ExponentialHistogram& eh) {
  Encoder encoder;
  eh.EncodeState(encoder);
  return encoder.Finish();
}

// Randomized Add/AdvanceTo/Query/Encode/Decode/Merge sequence over twin
// histograms; every observable must match exactly at every step.
TEST(FlatLayoutDifferentialTest, EhFlatMatchesChainUnderFuzz) {
  struct Shape {
    double epsilon;
    Tick window;
  };
  const std::vector<Shape> shapes = {
      {0.1, 1024}, {0.5, 64}, {0.05, kInfiniteHorizon}, {1.0, 256}};
  for (const Shape& shape : shapes) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ExponentialHistogram flat =
          MakeEh(shape.epsilon, shape.window, HistogramLayout::kFlat);
      ExponentialHistogram chain =
          MakeEh(shape.epsilon, shape.window, HistogramLayout::kChain);
      Rng rng(seed * 1315423911u + static_cast<uint64_t>(shape.window));
      Tick t = 1;
      for (int step = 0; step < 400; ++step) {
        const uint64_t op = rng.NextBelow(10);
        if (op < 6) {
          // Bursty adds: occasionally large values to force deep cascades.
          t += static_cast<Tick>(rng.NextBelow(3));
          const uint64_t value =
              rng.NextBelow(8) == 0 ? rng.NextBelow(5000) : rng.NextBelow(7);
          flat.Add(t, value);
          chain.Add(t, value);
        } else if (op < 8) {
          // Jump the clock, sometimes far enough to expire whole classes.
          t += static_cast<Tick>(rng.NextBelow(8) == 0
                                     ? rng.NextBelow(4 * 1024)
                                     : rng.NextBelow(16));
          flat.AdvanceTo(t);
          chain.AdvanceTo(t);
        } else if (op == 8) {
          // Snapshot round-trip ACROSS layouts: flat's bytes restore onto a
          // chain twin and vice versa, and both twins continue from the
          // decoded state (resumption is layout-portable).
          const std::string flat_bytes = Encoded(flat);
          ASSERT_EQ(flat_bytes, Encoded(chain));
          ExponentialHistogram flat2 =
              MakeEh(shape.epsilon, shape.window, HistogramLayout::kFlat);
          ExponentialHistogram chain2 =
              MakeEh(shape.epsilon, shape.window, HistogramLayout::kChain);
          Decoder to_chain(flat_bytes);
          Decoder to_flat(flat_bytes);
          ASSERT_TRUE(chain2.DecodeState(to_chain).ok());
          ASSERT_TRUE(flat2.DecodeState(to_flat).ok());
          flat = std::move(flat2);
          chain = std::move(chain2);
        } else {
          // Disjoint-substream merge from a freshly fuzzed donor pair.
          ExponentialHistogram flat_donor =
              MakeEh(shape.epsilon, shape.window, HistogramLayout::kFlat);
          ExponentialHistogram chain_donor =
              MakeEh(shape.epsilon, shape.window, HistogramLayout::kChain);
          Tick dt = 1;
          const size_t donor_items = rng.NextBelow(40);
          for (size_t i = 0; i < donor_items; ++i) {
            dt += static_cast<Tick>(rng.NextBelow(5));
            const uint64_t value = rng.NextBelow(9);
            flat_donor.Add(dt, value);
            chain_donor.Add(dt, value);
          }
          ASSERT_TRUE(flat.MergeFrom(flat_donor).ok());
          ASSERT_TRUE(chain.MergeFrom(chain_donor).ok());
          t = std::max(t, dt);
        }
        ASSERT_TRUE(flat.AuditInvariants().ok()) << "step=" << step;
        ASSERT_TRUE(chain.AuditInvariants().ok()) << "step=" << step;
        ASSERT_EQ(flat.BucketCount(), chain.BucketCount()) << "step=" << step;
        ASSERT_EQ(flat.TotalCount(), chain.TotalCount()) << "step=" << step;
        ASSERT_EQ(flat.StorageBits(), chain.StorageBits()) << "step=" << step;
        ASSERT_EQ(flat.Estimate(), chain.Estimate()) << "step=" << step;
        if (shape.window != kInfiniteHorizon) {
          const Tick w = 1 + static_cast<Tick>(rng.NextBelow(
                                 static_cast<uint64_t>(shape.window)));
          ASSERT_EQ(flat.EstimateWindow(w), chain.EstimateWindow(w))
              << "step=" << step << " w=" << w;
        }
        ASSERT_EQ(Encoded(flat), Encoded(chain)) << "step=" << step;
      }
    }
  }
}

std::string EncodedSum(DecayedAggregate& aggregate) {
  std::string out;
  TDS_CHECK(EncodeDecayedSum(aggregate, &out).ok());
  return out;
}

// Every backend config of the batch differential suite, built once per
// layout and driven through fuzzed batches, advances, queries, and snapshot
// round-trips. Non-EH backends ignore the flag, which this test also pins
// down (the flag must be inert there, not an error).
TEST(FlatLayoutDifferentialTest, AggregateConfigsFlatMatchesChain) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {SlidingWindowDecay::Create(1024).value(), Backend::kCeh},
      {PolynomialDecay::Create(1.0).value(), Backend::kCeh},
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
      {PolynomialDecay::Create(2.5).value(), Backend::kWbmh},
      {PolynomialDecay::Create(1.0).value(), Backend::kCoarseCeh},
      {ExponentialDecay::Create(0.01).value(), Backend::kEwma},
      {PolyExponentialDecay::Create(2, 0.05).value(), Backend::kPolyExp},
      {ExponentialDecay::Create(0.01).value(), Backend::kRecentItems},
      {PolynomialDecay::Create(1.0).value(), Backend::kExact},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      auto flat_options = AggregateOptions::Builder()
                              .backend(config.backend)
                              .epsilon(0.1)
                              .layout(HistogramLayout::kFlat)
                              .Build();
      auto chain_options = AggregateOptions::Builder()
                               .backend(config.backend)
                               .epsilon(0.1)
                               .layout(HistogramLayout::kChain)
                               .Build();
      ASSERT_TRUE(flat_options.ok());
      ASSERT_TRUE(chain_options.ok());
      auto flat = MakeDecayedSum(config.decay, flat_options.value());
      auto chain = MakeDecayedSum(config.decay, chain_options.value());
      ASSERT_TRUE(flat.ok());
      ASSERT_TRUE(chain.ok());

      Rng rng(seed * 7919 + static_cast<uint64_t>(config.backend));
      Tick t = 1;
      for (int round = 0; round < 25; ++round) {
        std::vector<StreamItem> batch;
        const size_t size = rng.NextBelow(100);
        for (size_t i = 0; i < size; ++i) {
          if (rng.NextBelow(4) == 0) t += static_cast<Tick>(rng.NextBelow(9));
          batch.push_back(StreamItem{t, rng.NextBelow(6)});
        }
        (*flat)->UpdateBatch(batch);
        (*chain)->UpdateBatch(batch);
        if (rng.NextBelow(3) == 0) {
          t += static_cast<Tick>(rng.NextBelow(200));
          (*flat)->Advance(t);
          (*chain)->Advance(t);
        }
        ASSERT_EQ((*flat)->StorageBits(), (*chain)->StorageBits())
            << (*flat)->Name() << "/" << config.decay->Name()
            << " seed=" << seed << " round=" << round;
        for (const Tick now : {t, t + 13, t + 999}) {
          ASSERT_EQ((*flat)->Query(now), (*chain)->Query(now))
              << (*flat)->Name() << "/" << config.decay->Name()
              << " seed=" << seed << " now=" << now;
        }
        const std::string flat_bytes = EncodedSum(**flat);
        ASSERT_EQ(flat_bytes, EncodedSum(**chain))
            << (*flat)->Name() << "/" << config.decay->Name()
            << " seed=" << seed << " round=" << round;
        if (round % 7 == 3) {
          // Cross-layout resumption: the flat twin's snapshot restores as a
          // chain instance (and vice versa), and both carry on.
          auto as_chain = DecodeDecayedSum(config.decay, flat_bytes,
                                           HistogramLayout::kChain);
          auto as_flat = DecodeDecayedSum(config.decay, flat_bytes,
                                          HistogramLayout::kFlat);
          ASSERT_TRUE(as_chain.ok());
          ASSERT_TRUE(as_flat.ok());
          flat = std::move(as_flat);
          chain = std::move(as_chain);
        }
      }
    }
  }
}

// CEH-level disjoint merge keeps the layouts in lockstep (the distributed
// coordinator path goes through ForEachBucketOldestFirst + re-insertion,
// which both layouts must drive identically).
TEST(FlatLayoutDifferentialTest, CehMergeBitIdenticalAcrossLayouts) {
  auto decay = PolynomialDecay::Create(1.0).value();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CehDecayedSum::Options flat_options;
    flat_options.layout = HistogramLayout::kFlat;
    CehDecayedSum::Options chain_options;
    chain_options.layout = HistogramLayout::kChain;
    auto flat = CehDecayedSum::Create(decay, flat_options);
    auto chain = CehDecayedSum::Create(decay, chain_options);
    auto flat_donor = CehDecayedSum::Create(decay, flat_options);
    auto chain_donor = CehDecayedSum::Create(decay, chain_options);
    ASSERT_TRUE(flat.ok() && chain.ok() && flat_donor.ok() &&
                chain_donor.ok());
    Rng rng(seed * 104729);
    Tick t = 1;
    for (int i = 0; i < 300; ++i) {
      t += static_cast<Tick>(rng.NextBelow(4));
      const uint64_t value = rng.NextBelow(10);
      if (rng.NextBelow(2) == 0) {
        (*flat)->Update(t, value);
        (*chain)->Update(t, value);
      } else {
        (*flat_donor)->Update(t, value);
        (*chain_donor)->Update(t, value);
      }
    }
    ASSERT_TRUE((*flat)->MergeFrom(**flat_donor).ok());
    ASSERT_TRUE((*chain)->MergeFrom(**chain_donor).ok());
    ASSERT_TRUE((*flat)->AuditInvariants().ok());
    ASSERT_TRUE((*chain)->AuditInvariants().ok());
    ASSERT_EQ((*flat)->Query(t + 5), (*chain)->Query(t + 5));
    ASSERT_EQ(EncodedSum(**flat), EncodedSum(**chain));
  }
}

// CoarseCEH consumes RNG words during its stochastic aging sweep; the flat
// layout must consume them in exactly the chain's (ascending-class) order,
// or the layouts drift apart silently. Long advance-heavy runs make any
// order mismatch surface quickly.
TEST(FlatLayoutDifferentialTest, CoarseCehRngConsumptionOrderMatches) {
  auto decay = PolynomialDecay::Create(1.5).value();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CoarseCehDecayedSum::Options flat_options;
    flat_options.seed = 0x5eed + seed;
    flat_options.layout = HistogramLayout::kFlat;
    CoarseCehDecayedSum::Options chain_options = flat_options;
    chain_options.layout = HistogramLayout::kChain;
    auto flat = CoarseCehDecayedSum::Create(decay, flat_options);
    auto chain = CoarseCehDecayedSum::Create(decay, chain_options);
    ASSERT_TRUE(flat.ok() && chain.ok());
    Rng rng(seed * 2654435761u);
    Tick t = 1;
    for (int i = 0; i < 500; ++i) {
      if (rng.NextBelow(3) != 0) {
        t += static_cast<Tick>(rng.NextBelow(3));
        const uint64_t value = 1 + rng.NextBelow(12);
        (*flat)->Update(t, value);
        (*chain)->Update(t, value);
      } else {
        t += static_cast<Tick>(rng.NextBelow(64));
        (*flat)->Advance(t);
        (*chain)->Advance(t);
      }
      ASSERT_EQ((*flat)->Query(t), (*chain)->Query(t)) << "i=" << i;
      ASSERT_EQ((*flat)->BucketCount(), (*chain)->BucketCount()) << "i=" << i;
      ASSERT_EQ((*flat)->BoundaryAges(), (*chain)->BoundaryAges())
          << "i=" << i;
      ASSERT_EQ(EncodedSum(**flat), EncodedSum(**chain)) << "i=" << i;
      ASSERT_TRUE((*flat)->AuditInvariants().ok()) << "i=" << i;
      ASSERT_TRUE((*chain)->AuditInvariants().ok()) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace tds
