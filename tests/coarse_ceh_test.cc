#include "core/coarse_ceh.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/ceh.h"
#include "core/exact.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "stream/generators.h"
#include "util/approx_age.h"
#include "util/random.h"

namespace tds {
namespace {

TEST(ApproxAgeTest, ExactPhaseIsExact) {
  ApproxAge age(0.25);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(age.Estimate(), 1.0);
  age.Advance(5, rng);
  EXPECT_DOUBLE_EQ(age.Estimate(), 6.0);
  age.Advance(9, rng);
  EXPECT_DOUBLE_EQ(age.Estimate(), 15.0);
  EXPECT_TRUE(age.exact_phase());
}

TEST(ApproxAgeTest, StochasticPhaseUnbiasedWithinConstantFactor) {
  // Average many independent trajectories: after T ticks the mean estimate
  // should be within a small constant of T, and individual estimates
  // within a bounded factor.
  const Tick target = 20000;
  const int trials = 300;
  double mean = 0.0;
  double worst = 1.0;
  for (int trial = 0; trial < trials; ++trial) {
    ApproxAge age(0.25);
    Rng rng(100 + trial);
    age.Advance(target - 1, rng);  // age starts at 1
    const double estimate = age.Estimate();
    mean += estimate;
    worst = std::max(worst,
                     std::max(estimate / target, target / estimate));
  }
  mean /= trials;
  EXPECT_NEAR(mean / static_cast<double>(target), 1.0, 0.15);
  // Relative std per trajectory is ~sqrt(delta/2) ~ 0.35; the worst of 300
  // trials stays within a modest constant factor.
  EXPECT_LT(worst, 4.0);
}

TEST(ApproxAgeTest, AdvanceInPiecesMatchesDistribution) {
  // Advancing 1 tick at a time and in large gaps are the same process:
  // compare means across populations.
  const Tick target = 5000;
  const int trials = 200;
  double mean_steps = 0.0, mean_jump = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    ApproxAge steps(0.25), jump(0.25);
    Rng rng1(500 + trial), rng2(900 + trial);
    for (Tick t = 0; t < target; ++t) steps.Advance(1, rng1);
    jump.Advance(target, rng2);
    mean_steps += steps.Estimate();
    mean_jump += jump.Estimate();
  }
  EXPECT_NEAR(mean_steps / mean_jump, 1.0, 0.1);
}

TEST(ApproxAgeTest, TakeYoungerKeepsSmaller) {
  ApproxAge young(0.25), old(0.25);
  Rng rng(3);
  old.Advance(1000, rng);
  ApproxAge merged = old;
  merged.TakeYounger(young);
  EXPECT_DOUBLE_EQ(merged.Estimate(), young.Estimate());
  young.TakeYounger(old);  // no-op: already younger
  EXPECT_LT(young.Estimate(), 16.0);
}

TEST(ApproxAgeTest, StorageBitsAreLogLog) {
  const int bits_small = ApproxAge::StorageBits(0.25, 1 << 10);
  const int bits_large = ApproxAge::StorageBits(0.25, 1 << 30);
  EXPECT_LE(bits_large, bits_small + 3);
  EXPECT_LE(bits_large, 14);
}

TEST(CoarseCehTest, CreateValidates) {
  auto decay = PolynomialDecay::Create(1.0).value();
  CoarseCehDecayedSum::Options options;
  options.epsilon = 0.0;
  EXPECT_FALSE(CoarseCehDecayedSum::Create(decay, options).ok());
  options.epsilon = 0.1;
  options.boundary_delta = 0.0;
  EXPECT_FALSE(CoarseCehDecayedSum::Create(decay, options).ok());
  options.boundary_delta = 0.25;
  EXPECT_TRUE(CoarseCehDecayedSum::Create(decay, options).ok());
  EXPECT_FALSE(CoarseCehDecayedSum::Create(nullptr, options).ok());
}

TEST(CoarseCehTest, ConstantFactorOnPolynomialDecay) {
  for (double alpha : {0.5, 1.0, 2.0}) {
    auto decay = PolynomialDecay::Create(alpha).value();
    CoarseCehDecayedSum::Options options;
    options.epsilon = 0.1;
    options.boundary_delta = 0.2;
    auto subject = CoarseCehDecayedSum::Create(decay, options);
    ASSERT_TRUE(subject.ok());
    auto exact = ExactDecayedSum::Create(decay);
    const Stream stream = BernoulliStream(20000, 0.5, 77);
    size_t i = 0;
    double worst = 1.0;
    for (Tick t = 1; t <= 20000; ++t) {
      if (i < stream.size() && stream[i].t == t) {
        (*subject)->Update(t, stream[i].value);
        (*exact)->Update(t, stream[i].value);
        ++i;
      }
      if (t % 1111 == 0) {
        const double truth = (*exact)->Query(t);
        const double estimate = (*subject)->Query(t);
        if (truth > 0 && estimate > 0) {
          worst = std::max(worst, std::max(estimate / truth, truth / estimate));
        }
      }
    }
    // Constant-factor contract: boundaries within ~(1.2-2.5x) move POLYD
    // weights by at most that to the alpha.
    EXPECT_LT(worst, std::pow(2.5, alpha) + 0.5) << "alpha=" << alpha;
  }
}

TEST(CoarseCehTest, StorageBeatsExactCehAndGapWidens) {
  auto decay = PolynomialDecay::Create(1.0).value();
  CoarseCehDecayedSum::Options options;
  options.epsilon = 0.1;
  auto coarse = CoarseCehDecayedSum::Create(decay, options);
  ASSERT_TRUE(coarse.ok());
  CehDecayedSum::Options exact_options;
  exact_options.epsilon = 0.1;
  auto exact_ceh = CehDecayedSum::Create(decay, exact_options);
  ASSERT_TRUE(exact_ceh.ok());
  size_t coarse_mid = 0, ceh_mid = 0;
  const Tick n = 1 << 17;
  for (Tick t = 1; t <= n; ++t) {
    (*coarse)->Update(t, 1);
    (*exact_ceh)->Update(t, 1);
    if (t == (1 << 12)) {
      coarse_mid = (*coarse)->StorageBits();
      ceh_mid = (*exact_ceh)->StorageBits();
    }
  }
  // Same bucket structure; O(log log N)-bit boundaries instead of
  // O(log N)-bit timestamps. At 2^17 the per-bucket saving is ~30% and the
  // absolute gap must widen as N grows (log vs loglog).
  const size_t coarse_bits = (*coarse)->StorageBits();
  const size_t ceh_bits = (*exact_ceh)->StorageBits();
  EXPECT_LT(static_cast<double>(coarse_bits),
            0.8 * static_cast<double>(ceh_bits));
  EXPECT_GT(ceh_bits - coarse_bits, ceh_mid - coarse_mid);
}

TEST(CoarseCehTest, ExpiresPastFiniteHorizon) {
  auto decay = SlidingWindowDecay::Create(64).value();
  CoarseCehDecayedSum::Options options;
  options.epsilon = 0.2;
  auto subject = CoarseCehDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok());
  for (Tick t = 1; t <= 200; ++t) (*subject)->Update(t, 1);
  const size_t buckets_hot = (*subject)->BucketCount();
  // Query alone is const and reclaims nothing; Advance runs the expiry.
  EXPECT_NEAR((*subject)->Query(5000), 0.0, 1e-9);
  (*subject)->Advance(5000);  // everything far past the window
  EXPECT_LT((*subject)->BucketCount(), buckets_hot);
  EXPECT_NEAR((*subject)->Query(5000), 0.0, 1e-9);
}

TEST(CoarseCehTest, BoundaryAgesTrendOldestFirst) {
  auto decay = PolynomialDecay::Create(1.0).value();
  CoarseCehDecayedSum::Options options;
  auto subject = CoarseCehDecayedSum::Create(decay, options);
  ASSERT_TRUE(subject.ok());
  for (Tick t = 1; t <= 5000; ++t) (*subject)->Update(t, 1);
  const auto ages = (*subject)->BoundaryAges();
  ASSERT_GT(ages.size(), 6u);
  // Stochastic aging jitters neighbors, but the trend must hold: the
  // oldest third of buckets is much older on average than the newest third.
  const size_t third = ages.size() / 3;
  double oldest = 0.0, newest = 0.0;
  for (size_t i = 0; i < third; ++i) oldest += ages[i];
  for (size_t i = ages.size() - third; i < ages.size(); ++i) {
    newest += ages[i];
  }
  EXPECT_GT(oldest, 4.0 * newest);
}

}  // namespace
}  // namespace tds
