// ShardedAggregateEngine concurrency tests: producer sessions feeding the
// SPSC ingest queues while shard writers drain them and snapshot readers
// query concurrently. Run under TSan via tools/check.sh tsan (and with
// schedule chaos via tools/check.sh chaos).
//
// The exact-equality oracle works because (a) each key is owned by one
// producer, so its item order is deterministic, (b) producers flush their
// sessions and barrier between tick slices, so every shard observes
// non-decreasing ticks, and (c) the registry's batch path is bit-identical
// to per-item ingestion.
#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/producer_session.h"
#include "engine/registry.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

TEST(ShardedEngineTest, MultiProducerSessionsMatchSerialReference) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
      {SlidingWindowDecay::Create(4096).value(), Backend::kCeh},
  };
  constexpr int kProducers = 4;
  constexpr int kRounds = 24;
  constexpr int kKeysPerProducer = 32;
  constexpr int kItemsPerRound = 60;

  for (const Config& config : configs) {
    ShardedAggregateEngine::Options options;
    options.registry = RegistryOptions(config.backend, 0.15);
    options.shards = 4;
    options.queue_capacity = 1 << 12;
    auto engine = ShardedAggregateEngine::Create(config.decay, options);
    ASSERT_TRUE(engine.ok());

    // Deterministic per-producer item schedule, replayed later into the
    // serial reference in (round, producer) order — the same per-key
    // sequences, and globally non-decreasing ticks.
    std::vector<std::vector<std::vector<KeyedItem>>> schedule(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      Rng rng(1000 + p);
      schedule[p].resize(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kItemsPerRound; ++i) {
          const uint64_t key =
              p * kKeysPerProducer + rng.NextBelow(kKeysPerProducer);
          schedule[p][r].push_back(
              KeyedItem{key, r + 1, rng.NextBelow(5)});
        }
      }
    }

    std::barrier round_barrier(kProducers);
    std::atomic<bool> done{false};
    // A reader hammers snapshots while producers run (exercised for
    // TSan; values are validated after the flush below).
    std::thread reader([&] {
      while (!done.load(std::memory_order_acquire)) {
        (void)(*engine)->QueryTotal(kRounds);
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        // One session per producer thread — the session is the handle, not
        // shared state; flush-then-barrier keeps per-shard ticks ordered.
        auto session = (*engine)->NewProducer();
        ASSERT_TRUE(session.ok());
        for (int r = 0; r < kRounds; ++r) {
          EXPECT_TRUE((*session)->AddBatch(schedule[p][r]).ok());
          EXPECT_TRUE((*session)->Flush().ok());
          round_barrier.arrive_and_wait();
        }
        EXPECT_TRUE((*session)->AuditInvariants().ok());
      });
    }
    for (auto& thread : producers) thread.join();
    done.store(true, std::memory_order_release);
    reader.join();
    ASSERT_TRUE((*engine)->Flush().ok());
    EXPECT_EQ((*engine)->ItemsApplied(),
              uint64_t{kProducers} * kRounds * kItemsPerRound);

    auto reference =
        AggregateRegistry::Create(config.decay, options.registry);
    ASSERT_TRUE(reference.ok());
    for (int r = 0; r < kRounds; ++r) {
      for (int p = 0; p < kProducers; ++p) {
        for (const KeyedItem& item : schedule[p][r]) {
          reference->Update(item.key, item.t, item.value);
        }
      }
    }

    for (uint64_t key = 0; key < kProducers * kKeysPerProducer; ++key) {
      EXPECT_DOUBLE_EQ((*engine)->QueryKey(key, kRounds),
                       reference->Query(key, kRounds))
          << "backend=" << static_cast<int>(config.backend) << " key=" << key;
    }
    EXPECT_EQ((*engine)->KeyCount(), reference->KeyCount());
  }
}

// Producers, merged-snapshot readers, and a rebalancer all race; the final
// merged snapshot must still be byte-identical to the serial reference.
// Byte equality is a valid oracle even with racing producers: every key is
// owned by one producer (deterministic per-key sequence), same-tick
// cross-key interleaving is invisible to per-key aggregates, the WBMH
// layout is a pure function of the clock, and the codec sorts keys.
TEST(ShardedEngineTest, RebalanceRacesProducersAndSnapshotReaders) {
  constexpr int kProducers = 4;
  constexpr int kRounds = 30;
  constexpr int kItemsPerRound = 50;
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kSlices = 64;

  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
      {SlidingWindowDecay::Create(4096).value(), Backend::kCeh},
  };
  for (const Config& config : configs) {
    ShardedAggregateEngine::Options options;
    options.registry = RegistryOptions(config.backend, 0.15);
    options.registry.expiry_weight_floor = -1.0;  // byte-equality oracle
    options.shards = kShards;
    options.route_slices = kSlices;
    options.rebalance_min_keys = 16;
    options.rebalance_skew = 1.5;
    options.queue_capacity = 1 << 12;
    auto engine = ShardedAggregateEngine::Create(config.decay, options);
    ASSERT_TRUE(engine.ok());

    // Keys deliberately skewed onto shard 0's initial slices so the skew
    // trigger actually fires while producers are running. Each producer
    // owns a disjoint key slice (deterministic per-key order).
    std::vector<uint64_t> pool;
    for (uint64_t key = 1; pool.size() < kProducers * 24; ++key) {
      const uint32_t slice = ShardedAggregateEngine::SliceForKey(key, kSlices);
      if (slice % kShards == 0 || pool.size() % 7 == 0) pool.push_back(key);
    }
    std::vector<std::vector<std::vector<KeyedItem>>> schedule(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      Rng rng(2000 + p);
      schedule[p].resize(kRounds);
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kItemsPerRound; ++i) {
          const uint64_t key = pool[p * 24 + rng.NextBelow(24)];
          schedule[p][r].push_back(KeyedItem{key, r + 1, rng.NextBelow(5)});
        }
      }
    }

    std::barrier round_barrier(kProducers);
    std::atomic<bool> done{false};
    std::atomic<int> migrations{0};
    std::thread rebalancer([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto moved = (*engine)->RebalanceIfSkewed();
        ASSERT_TRUE(moved.ok()) << moved.status().message();
        if (moved.value()) migrations.fetch_add(1, std::memory_order_relaxed);
        // Also exercise explicit migrations racing the skew path.
        const uint32_t slice = static_cast<uint32_t>(
            migrations.load(std::memory_order_relaxed) % kSlices);
        ASSERT_TRUE((*engine)
                        ->MigrateSlices(std::vector<uint32_t>{slice},
                                        slice % kShards)
                        .ok());
        std::this_thread::yield();
      }
    });
    std::thread snapshotter([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto merged = (*engine)->Snapshot();
        ASSERT_TRUE(merged.ok()) << merged.status().message();
        // A merged view can never double-count: its key count is bounded
        // by the full population.
        EXPECT_LE(merged->KeyCount(), pool.size());
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        auto session = (*engine)->NewProducer();
        ASSERT_TRUE(session.ok());
        for (int r = 0; r < kRounds; ++r) {
          EXPECT_TRUE((*session)->AddBatch(schedule[p][r]).ok());
          EXPECT_TRUE((*session)->Flush().ok());
          round_barrier.arrive_and_wait();
        }
      });
    }
    for (auto& thread : producers) thread.join();
    done.store(true, std::memory_order_release);
    rebalancer.join();
    snapshotter.join();
    ASSERT_TRUE((*engine)->Flush().ok());

    auto reference = AggregateRegistry::Create(config.decay, options.registry);
    ASSERT_TRUE(reference.ok());
    for (int r = 0; r < kRounds; ++r) {
      for (int p = 0; p < kProducers; ++p) {
        for (const KeyedItem& item : schedule[p][r]) {
          reference->Update(item.key, item.t, item.value);
        }
      }
    }
    auto merged = (*engine)->Snapshot();
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    std::string merged_blob;
    ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
    std::string reference_blob;
    ASSERT_TRUE(reference->EncodeState(&reference_blob).ok());
    EXPECT_EQ(merged_blob, reference_blob)
        << "backend=" << static_cast<int>(config.backend)
        << " migrations=" << migrations.load();
  }
}

// The route-epoch protocol under fire: session flushes race explicit
// MigrateSlices calls (the chaos build stretches the fence and
// route-publish windows via TDS_INTERLEAVE_POINT). A session whose staged
// runs predate a migration must re-partition them at flush — so the final
// state must be byte-identical to a serially-fed registry and conservation
// must hold exactly: zero double-counted (and zero lost) items.
TEST(ShardedEngineTest, SessionFlushesRaceMigrations) {
  constexpr int kProducers = 4;
  constexpr int kRounds = 30;
  constexpr int kItemsPerRound = 50;
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kSlices = 64;

  auto decay = PolynomialDecay::Create(1.0).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kWbmh, 0.15);
  options.registry.expiry_weight_floor = -1.0;  // byte-equality oracle
  options.shards = kShards;
  options.route_slices = kSlices;
  options.queue_capacity = 1 << 12;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());

  std::vector<std::vector<std::vector<KeyedItem>>> schedule(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    Rng rng(4000 + p);
    schedule[p].resize(kRounds);
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kItemsPerRound; ++i) {
        const uint64_t key = 1 + p * 64 + rng.NextBelow(48);
        schedule[p][r].push_back(KeyedItem{key, r + 1, rng.NextBelow(5)});
      }
    }
  }

  std::barrier round_barrier(kProducers);
  std::atomic<bool> done{false};
  // Rotate every slice through every shard while producers flush: each
  // successful call publishes a new route generation, so in-flight
  // sessions keep tripping the stale-generation repartition path.
  std::thread migrator([&] {
    uint64_t turn = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint32_t slice = static_cast<uint32_t>(turn % kSlices);
      const uint32_t to = static_cast<uint32_t>((turn / kSlices) % kShards);
      ASSERT_TRUE(
          (*engine)->MigrateSlices(std::vector<uint32_t>{slice}, to).ok());
      ++turn;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto session = (*engine)->NewProducer();
      ASSERT_TRUE(session.ok());
      for (int r = 0; r < kRounds; ++r) {
        // Stage in two halves with a scheduling gap between them so the
        // staged runs routinely straddle a route publish before Flush.
        const auto& batch = schedule[p][r];
        const size_t half = batch.size() / 2;
        const std::span<const KeyedItem> items(batch);
        EXPECT_TRUE((*session)->AddBatch(items.first(half)).ok());
        std::this_thread::yield();
        EXPECT_TRUE((*session)->AddBatch(items.subspan(half)).ok());
        EXPECT_TRUE((*session)->Flush().ok());
        EXPECT_TRUE((*session)->AuditInvariants().ok());
        round_barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : producers) thread.join();
  done.store(true, std::memory_order_release);
  migrator.join();
  ASSERT_TRUE((*engine)->Flush().ok());

  // Conservation: the adaptive policy never rejects, so every staged item
  // must be applied exactly once — a double-counted (or dropped) item
  // shifts this total.
  const uint64_t offered =
      uint64_t{kProducers} * kRounds * kItemsPerRound;
  EXPECT_EQ((*engine)->ItemsApplied(), offered);
  const auto totals = (*engine)->SessionTotals();
  EXPECT_EQ(totals.items_staged, offered);
  EXPECT_EQ(totals.items_flushed, offered);
  uint64_t rejected = 0;
  for (const auto& stats : (*engine)->Stats()) rejected += stats.items_rejected;
  EXPECT_EQ(rejected, 0u);

  auto reference = AggregateRegistry::Create(decay, options.registry);
  ASSERT_TRUE(reference.ok());
  for (int r = 0; r < kRounds; ++r) {
    for (int p = 0; p < kProducers; ++p) {
      for (const KeyedItem& item : schedule[p][r]) {
        reference->Update(item.key, item.t, item.value);
      }
    }
  }
  auto merged = (*engine)->Snapshot();
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  std::string merged_blob;
  ASSERT_TRUE(merged->EncodeRegistryState(&merged_blob).ok());
  std::string reference_blob;
  ASSERT_TRUE(reference->EncodeState(&reference_blob).ok());
  EXPECT_EQ(merged_blob, reference_blob);
}

// Oversubscription: 2× more producer sessions than cores, rings far
// smaller than the offered load, adaptive backpressure. Producers must
// park (not burn a core each) while writers catch up, and the blocking
// policy must admit every item exactly once — no loss, no duplication,
// zero rejects.
TEST(ShardedEngineTest, OversubscribedSessionsDontLoseOrDuplicate) {
  const int kProducers =
      2 * std::max(4u, std::thread::hardware_concurrency());
  constexpr int kRounds = 8;
  constexpr int kKeysPerProducer = 8;
  constexpr int kItemsPerRound = 96;

  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh, 0.2);
  options.shards = 2;
  options.queue_capacity = 64;  // far below the per-round offered load
  options.backpressure = BackpressurePolicy::kAdaptive;
  auto decay = SlidingWindowDecay::Create(1 << 16).value();
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());

  std::vector<std::vector<std::vector<KeyedItem>>> schedule(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    Rng rng(3000 + p);
    schedule[p].resize(kRounds);
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kItemsPerRound; ++i) {
        const uint64_t key =
            p * kKeysPerProducer + rng.NextBelow(kKeysPerProducer);
        schedule[p][r].push_back(KeyedItem{key, r + 1, 1 + rng.NextBelow(4)});
      }
    }
  }

  std::barrier round_barrier(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Mix staging shapes across producers: tiny capacities force
      // mid-round auto-flushes against full rings (same tick, so the
      // per-shard ordering contract still holds).
      ProducerSessionOptions session_options;
      session_options.staging_capacity = (p % 2 == 0) ? 4096 : 48;
      auto session = (*engine)->NewProducer(session_options);
      ASSERT_TRUE(session.ok());
      for (int r = 0; r < kRounds; ++r) {
        if (p % 3 == 0) {
          for (const KeyedItem& item : schedule[p][r]) {
            EXPECT_TRUE((*session)->Add(item.key, item.t, item.value).ok());
          }
        } else {
          EXPECT_TRUE((*session)->AddBatch(schedule[p][r]).ok());
        }
        EXPECT_TRUE((*session)->Flush().ok());
        round_barrier.arrive_and_wait();
      }
      EXPECT_EQ((*session)->staged(), 0u);
      const auto stats = (*session)->stats();
      EXPECT_EQ(stats.items_staged, uint64_t{kRounds} * kItemsPerRound);
      EXPECT_EQ(stats.items_flushed, uint64_t{kRounds} * kItemsPerRound);
      EXPECT_EQ(stats.items_rejected, 0u);
    });
  }
  for (auto& thread : producers) thread.join();
  ASSERT_TRUE((*engine)->Flush().ok());

  // Conservation: every item applied exactly once, none rejected (the
  // adaptive policy has no deadline, so admission always completes).
  const uint64_t expected_items =
      uint64_t{static_cast<uint64_t>(kProducers)} * kRounds * kItemsPerRound;
  EXPECT_EQ((*engine)->ItemsApplied(), expected_items);
  uint64_t rejected = 0;
  uint64_t stall_ceiling = 0;
  for (const auto& stats : (*engine)->Stats()) {
    rejected += stats.items_rejected;
    stall_ceiling = std::max(stall_ceiling, stats.max_queue_stall);
  }
  EXPECT_EQ(rejected, 0u);
  // Stall streaks stay bounded: parked waits reset on progress, so no
  // producer can have been wedged in a single astronomically long streak.
  EXPECT_LT(stall_ceiling, 1u << 20);
  // Engine-wide session accounting closes: every session opened was
  // closed, everything staged was flushed.
  const auto totals = (*engine)->SessionTotals();
  EXPECT_EQ(totals.sessions_opened, static_cast<uint64_t>(kProducers));
  EXPECT_EQ(totals.sessions_closed, static_cast<uint64_t>(kProducers));
  EXPECT_EQ(totals.items_staged, expected_items);
  EXPECT_EQ(totals.items_flushed, expected_items);

  auto reference = AggregateRegistry::Create(decay, options.registry);
  ASSERT_TRUE(reference.ok());
  for (int r = 0; r < kRounds; ++r) {
    for (int p = 0; p < kProducers; ++p) {
      for (const KeyedItem& item : schedule[p][r]) {
        reference->Update(item.key, item.t, item.value);
      }
    }
  }
  for (uint64_t key = 0;
       key < static_cast<uint64_t>(kProducers) * kKeysPerProducer; ++key) {
    EXPECT_DOUBLE_EQ((*engine)->QueryKey(key, kRounds),
                     reference->Query(key, kRounds))
        << "key=" << key;
  }
  EXPECT_EQ((*engine)->KeyCount(), reference->KeyCount());
}

TEST(ShardedEngineTest, BatchedAndUnbatchedApplyAgree) {
  auto decay = PolynomialDecay::Create(2.0).value();
  ShardedAggregateEngine::Options batched_options;
  batched_options.registry = RegistryOptions(Backend::kWbmh, 0.2);
  batched_options.shards = 2;
  auto unbatched_options = batched_options;
  unbatched_options.apply_batched = false;

  auto batched = ShardedAggregateEngine::Create(decay, batched_options);
  auto unbatched = ShardedAggregateEngine::Create(decay, unbatched_options);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(unbatched.ok());

  Rng rng(5);
  std::vector<KeyedItem> items;
  Tick t = 1;
  for (int i = 0; i < 5000; ++i) {
    if (rng.NextBelow(4) == 0) ++t;
    items.push_back(KeyedItem{rng.NextBelow(64), t, rng.NextBelow(3)});
  }
  for (auto* engine : {&*batched, &*unbatched}) {
    auto session = (*engine)->NewProducer();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->AddBatch(items).ok());
    ASSERT_TRUE((*session)->Flush().ok());
    ASSERT_TRUE((*engine)->Flush().ok());
  }

  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_DOUBLE_EQ((*batched)->QueryKey(key, t),
                     (*unbatched)->QueryKey(key, t))
        << "key=" << key;
  }
  EXPECT_EQ((*batched)->KeyCount(), (*unbatched)->KeyCount());
}

TEST(ShardedEngineTest, SnapshotReflectsFlushedItems) {
  auto decay = SlidingWindowDecay::Create(512).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh, 0.1);
  options.shards = 2;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());

  auto session = (*engine)->NewProducer();
  ASSERT_TRUE(session.ok());
  auto reference = AggregateRegistry::Create(decay, options.registry);
  ASSERT_TRUE(reference.ok());
  for (Tick t = 1; t <= 100; ++t) {
    for (uint64_t key = 0; key < 10; ++key) {
      ASSERT_TRUE((*session)->Add(key, t, key + 1).ok());
      reference->Update(key, t, key + 1);
    }
  }
  ASSERT_TRUE((*session)->Flush().ok());
  ASSERT_TRUE((*engine)->Flush().ok());

  size_t snapshot_keys = 0;
  for (uint32_t shard = 0; shard < (*engine)->shards(); ++shard) {
    const auto snapshot = (*engine)->ShardSnapshot(shard);
    ASSERT_NE(snapshot, nullptr);
    snapshot_keys += snapshot->KeyCount();
  }
  EXPECT_EQ(snapshot_keys, 10u);
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_DOUBLE_EQ((*engine)->QueryKey(key, 100),
                     reference->Query(key, 100));
  }
}

TEST(ShardedEngineTest, DestructorDrainsPendingItems) {
  auto decay = SlidingWindowDecay::Create(64).value();
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kCeh, 0.25);
  options.shards = 3;
  options.queue_capacity = 256;
  auto engine = ShardedAggregateEngine::Create(decay, options);
  ASSERT_TRUE(engine.ok());
  std::vector<KeyedItem> items;
  for (int i = 0; i < 10000; ++i) {
    items.push_back(KeyedItem{static_cast<uint64_t>(i % 97), 1, 1});
  }
  {
    auto session = (*engine)->NewProducer();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->AddBatch(items).ok());
    // Session destructor flushes the staged remainder best-effort.
  }
  // Destroy without Flush: the writers must drain and join cleanly.
  engine.value().reset();
}

TEST(ShardedEngineTest, CreateValidates) {
  auto decay = SlidingWindowDecay::Create(64).value();
  ShardedAggregateEngine::Options options;
  options.shards = 0;
  EXPECT_FALSE(ShardedAggregateEngine::Create(decay, options).ok());
  options.shards = 2;
  options.queue_capacity = 0;
  EXPECT_FALSE(ShardedAggregateEngine::Create(decay, options).ok());
  options.queue_capacity = 16;
  EXPECT_FALSE(ShardedAggregateEngine::Create(nullptr, options).ok());
  EXPECT_TRUE(ShardedAggregateEngine::Create(decay, options).ok());
}

}  // namespace
}  // namespace tds
