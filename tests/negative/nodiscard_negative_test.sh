#!/bin/sh
# Negative-compile proof for the [[nodiscard]] Status discipline: a
# discarded Status must be rejected under -Werror=unused-result, and the
# explicit (void) suppression must still compile. Works with both gcc and
# clang (ctest passes the configured compiler in $1; repo root in $2).
set -eu

CXX="$1"
ROOT="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

FLAGS="-std=c++20 -I$ROOT/src -Werror=unused-result"

cat > "$TMP/discard.cc" <<'EOF'
#include "util/status.h"
tds::Status Make() { return tds::Status::OK(); }
tds::StatusOr<int> MakeOr() { return 7; }
int main() {
  Make();    // discarded Status: must fail to compile
  MakeOr();  // discarded StatusOr: must fail to compile
  return 0;
}
EOF
if $CXX $FLAGS -c "$TMP/discard.cc" -o "$TMP/discard.o" 2> "$TMP/err.txt"; then
  echo "FAIL: a discarded Status/StatusOr compiled cleanly"
  exit 1
fi
if ! grep -q "unused-result\|nodiscard\|ignoring return" "$TMP/err.txt"; then
  echo "FAIL: compile failed, but not from the nodiscard diagnostic:"
  cat "$TMP/err.txt"
  exit 1
fi

cat > "$TMP/ok.cc" <<'EOF'
#include "util/status.h"
tds::Status Make() { return tds::Status::OK(); }
int main() {
  (void)Make();  // deliberate discard: the documented suppression
  return Make().ok() ? 0 : 1;
}
EOF
$CXX $FLAGS -c "$TMP/ok.cc" -o "$TMP/ok.o"

echo "PASS: discard rejected, (void) suppression accepted"
