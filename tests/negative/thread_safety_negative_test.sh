#!/bin/sh
# Negative-compile proof for the thread-safety annotations: reading a
# TDS_GUARDED_BY field without its mutex must be rejected by Clang's
# analysis, and the properly locked version must compile. Self-skips (ctest
# SKIP_RETURN_CODE 77) when clang++ is not installed — the annotations are
# no-ops off Clang, so only Clang can run this proof; CI installs it.
set -eu

ROOT="$1"
CLANGXX="${CLANGXX:-clang++}"
if ! command -v "$CLANGXX" > /dev/null 2>&1; then
  echo "SKIP: clang++ not installed; thread-safety analysis requires Clang"
  exit 77
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

FLAGS="-std=c++20 -I$ROOT/src -Wthread-safety -Wthread-safety-beta \
  -Werror=thread-safety -Werror=thread-safety-beta"

cat > "$TMP/unguarded.cc" <<'EOF'
#include "util/mutex.h"
#include "util/thread_annotations.h"
class Account {
 public:
  int Read() { return balance_; }  // no lock held: must fail to compile
 private:
  tds::Mutex mu_;
  int balance_ TDS_GUARDED_BY(mu_) = 0;
};
int main() { Account account; return account.Read(); }
EOF
if $CLANGXX $FLAGS -c "$TMP/unguarded.cc" -o "$TMP/unguarded.o" \
    2> "$TMP/err.txt"; then
  echo "FAIL: unguarded access to a TDS_GUARDED_BY field compiled cleanly"
  exit 1
fi
if ! grep -q "thread-safety\|requires holding" "$TMP/err.txt"; then
  echo "FAIL: compile failed, but not from the thread-safety analysis:"
  cat "$TMP/err.txt"
  exit 1
fi

cat > "$TMP/guarded.cc" <<'EOF'
#include "util/mutex.h"
#include "util/thread_annotations.h"
class Account {
 public:
  int Read() {
    tds::MutexLock lock(mu_);
    return balance_;
  }
 private:
  tds::Mutex mu_;
  int balance_ TDS_GUARDED_BY(mu_) = 0;
};
int main() { Account account; return account.Read(); }
EOF
$CLANGXX $FLAGS -c "$TMP/guarded.cc" -o "$TMP/guarded.o"

echo "PASS: unguarded access rejected, locked access accepted"
