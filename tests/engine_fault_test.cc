// Deterministic fault-injection tests (util/failpoint.h): every injected
// failure must surface as a clean Status — never a crash, a hang, or an
// audit violation — and the engine must keep serving and recover fully
// once the fault clears. Run under ASan+UBSan by `tools/check.sh faults`
// (-DTDS_FAILPOINTS=ON); in a normal build the scenario tests skip.
#include "util/failpoint.h"

#include <chrono>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "engine_test_util.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsEnabled) {
      GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override { failpoint::DisarmAll(); }

  /// A small deterministic engine with data on every shard, plus the
  /// QueryKey values it serves before any fault — the recovery oracle.
  struct Fixture {
    std::unique_ptr<ShardedAggregateEngine> engine;
    std::vector<double> expected;  // QueryKey(key, tick) for key < kKeys
    Tick tick = 0;
  };
  static constexpr uint64_t kKeys = 60;

  static Fixture MakeEngine(Backend backend, DecayPtr decay) {
    ShardedAggregateEngine::Options options;
    options.registry = RegistryOptions(backend, 0.15);
    options.shards = 3;
    options.route_slices = 24;
    Fixture fx;
    auto engine = ShardedAggregateEngine::Create(std::move(decay), options);
    EXPECT_TRUE(engine.ok());
    fx.engine = std::move(engine).value();
    Rng rng(42);
    std::vector<KeyedItem> items;
    Tick t = 1;
    for (int i = 0; i < 4000; ++i) {
      if (rng.NextBelow(4) == 0) ++t;
      items.push_back(KeyedItem{rng.NextBelow(kKeys), t, 1 + rng.NextBelow(3)});
    }
    EXPECT_TRUE(SessionIngest(*fx.engine, items).ok());
    EXPECT_TRUE(fx.engine->Flush().ok());
    fx.tick = t;
    for (uint64_t key = 0; key < kKeys; ++key) {
      fx.expected.push_back(fx.engine->QueryKey(key, t));
    }
    return fx;
  }

  static void ExpectServesExpected(Fixture& fx) {
    for (uint64_t key = 0; key < kKeys; ++key) {
      EXPECT_DOUBLE_EQ(fx.engine->QueryKey(key, fx.tick), fx.expected[key])
          << "key=" << key;
    }
  }

  /// Merged snapshot decodes cleanly and passes the full structural audit.
  static void ExpectAuditClean(Fixture& fx) {
    auto merged = fx.engine->Snapshot();
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    AggregateRegistry registry = std::move(*merged).ReleaseRegistry();
    EXPECT_TRUE(registry.AuditInvariants().ok());
  }
};

TEST_F(EngineFaultTest, EncodeFailurePublishesNullAndRecovers) {
  Fixture fx = MakeEngine(Backend::kCeh, SlidingWindowDecay::Create(512).value());
  failpoint::Arm("registry.encode", {.fire_on_hit = 1, .sticky = true});
  // Per-key queries see a null snapshot (zero estimate), the merged
  // snapshot reports a clean failure — and nothing crashes or hangs.
  EXPECT_DOUBLE_EQ(fx.engine->QueryKey(3, fx.tick), 0.0);
  auto merged = fx.engine->Snapshot();
  EXPECT_FALSE(merged.ok());
  EXPECT_GE(failpoint::Fires("registry.encode"), 1u);
  // Ingest keeps working through the outage (publishes are the only
  // casualty), and everything recovers once the fault clears.
  EXPECT_TRUE(SessionIngest(*fx.engine, 3, fx.tick, 0).ok());
  EXPECT_TRUE(fx.engine->Flush().ok());
  failpoint::DisarmAll();
  ExpectServesExpected(fx);
  ExpectAuditClean(fx);
}

TEST_F(EngineFaultTest, DecodeFailurePublishesNullAndRecovers) {
  Fixture fx = MakeEngine(Backend::kWbmh, PolynomialDecay::Create(1.0).value());
  failpoint::Arm("registry.decode", {.fire_on_hit = 1, .sticky = true});
  EXPECT_DOUBLE_EQ(fx.engine->QueryKey(3, fx.tick), 0.0);
  EXPECT_FALSE(fx.engine->Snapshot().ok());
  failpoint::DisarmAll();
  ExpectServesExpected(fx);
  ExpectAuditClean(fx);
}

TEST_F(EngineFaultTest, TransientDecodeFailureAffectsOneShardOnly) {
  Fixture fx = MakeEngine(Backend::kCeh, SlidingWindowDecay::Create(512).value());
  // Fire on the first decode only: one shard publishes a null snapshot,
  // the other shards' publishes (later decode hits) keep serving.
  failpoint::ArmNthHit("registry.decode", 1);
  size_t null_snapshots = 0;
  for (uint32_t shard = 0; shard < fx.engine->shards(); ++shard) {
    if (fx.engine->ShardSnapshot(shard) == nullptr) ++null_snapshots;
  }
  EXPECT_EQ(null_snapshots, 1u);
  failpoint::DisarmAll();
  ExpectServesExpected(fx);
}

TEST_F(EngineFaultTest, MigrationExtractFailureLeavesDonorIntact) {
  Fixture fx = MakeEngine(Backend::kCeh, SlidingWindowDecay::Create(512).value());
  failpoint::ArmNthHit("registry.extract", 1);
  std::vector<uint32_t> slices;
  for (uint32_t s = 0; s < fx.engine->route_slices(); ++s) slices.push_back(s);
  const Status status = fx.engine->MigrateSlices(slices, 0);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fx.engine->Rebalances(), 0u);
  ExpectServesExpected(fx);
  ExpectAuditClean(fx);
  // The fault was one-shot: the same migration now succeeds, and state is
  // still exactly what a fault-free engine would serve.
  ASSERT_TRUE(fx.engine->MigrateSlices(slices, 0).ok());
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(fx.engine->RouteForKey(key), 0u);
  }
  ExpectServesExpected(fx);
  ExpectAuditClean(fx);
}

TEST_F(EngineFaultTest, MigrationMergeFailureRollsBackTheDonor) {
  Fixture fx = MakeEngine(Backend::kWbmh, PolynomialDecay::Create(1.0).value());
  failpoint::ArmNthHit("registry.merge", 1);
  std::vector<uint32_t> slices;
  for (uint32_t s = 0; s < fx.engine->route_slices(); ++s) slices.push_back(s);
  // The receiver's MergeFrom fires; the extracted keys must be merged
  // back into the donor (under failpoint suppression) and the route left
  // untouched.
  const Status status = fx.engine->MigrateSlices(slices, 1);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fx.engine->Rebalances(), 0u);
  ExpectServesExpected(fx);
  ExpectAuditClean(fx);
  ASSERT_TRUE(fx.engine->MigrateSlices(slices, 1).ok());
  ExpectServesExpected(fx);
  ExpectAuditClean(fx);
}

TEST_F(EngineFaultTest, MigrateEntryFailpointRefusesCleanly) {
  Fixture fx = MakeEngine(Backend::kCeh, SlidingWindowDecay::Create(512).value());
  failpoint::Arm("engine.migrate", {.fire_on_hit = 1, .sticky = true});
  const std::vector<uint32_t> slices = {0, 1, 2};
  EXPECT_EQ(fx.engine->MigrateSlices(slices, 1).code(),
            StatusCode::kUnavailable);
  failpoint::DisarmAll();
  ExpectServesExpected(fx);
}

TEST_F(EngineFaultTest, RingPushFaultsRetryUnderBlockingPolicy) {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kExact, 0.1);
  options.shards = 2;
  options.queue_capacity = 128;
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), options);
  ASSERT_TRUE(engine.ok());
  // Every other push attempt (deterministically) sees a "full" ring: the
  // blocking policy must retry through the staged wait and lose nothing.
  failpoint::ArmProbability("engine.ring.push", 0.5, /*seed=*/7);
  std::vector<KeyedItem> items;
  for (int i = 0; i < 5000; ++i) {
    items.push_back(KeyedItem{static_cast<uint64_t>(i % 50), 1, 1});
  }
  ASSERT_TRUE(SessionIngest(**engine, items).ok());
  failpoint::DisarmAll();
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 5000u);
  EXPECT_DOUBLE_EQ((*engine)->QueryKey(7, 1), 100.0);
}

TEST_F(EngineFaultTest, RingPushStickyFaultRejectsNonBlockingAdmission) {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(Backend::kExact, 0.1);
  options.shards = 1;
  auto engine = ShardedAggregateEngine::Create(
      SlidingWindowDecay::Create(1 << 20).value(), options);
  ASSERT_TRUE(engine.ok());
  failpoint::Arm("engine.ring.push", {.fire_on_hit = 1, .sticky = true});
  // Deliberately exercises the deprecated TryUpdateBatch shim: its
  // zero-deadline admission contract under sticky faults is pinned here.
  const KeyedItem item{1, 1, 1};
  const Status status = (*engine)->TryUpdateBatch(  // tds-lint: allow(deprecated-ingest)
      {&item, 1}, std::chrono::nanoseconds(0));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_GE((*engine)->Stats()[0].items_rejected, 1u);
  failpoint::DisarmAll();
  ASSERT_TRUE((*engine)->TryUpdateBatch(  // tds-lint: allow(deprecated-ingest)
      {&item, 1}, std::chrono::nanoseconds(0)).ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->ItemsApplied(), 1u);
}

TEST_F(EngineFaultTest, ArenaGrowFaultFailsDecodeCleanly) {
  // Registry-level: a snapshot whose decode needs (at least) three slot
  // allocations fails cleanly when the third allocation is refused, and
  // decodes byte-identically once the fault clears.
  const AggregateRegistry::Options options =
      RegistryOptions(Backend::kCeh, 0.1);
  auto decay = SlidingWindowDecay::Create(256).value();
  auto registry = AggregateRegistry::Create(decay, options);
  ASSERT_TRUE(registry.ok());
  for (uint64_t key = 0; key < 16; ++key) {
    registry->Update(key, 1, key + 1);
  }
  std::string blob;
  ASSERT_TRUE(registry->EncodeState(&blob).ok());

  failpoint::ArmNthHit("registry.arena.grow", 3);
  auto failed = AggregateRegistry::Decode(decay, options, blob);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  failpoint::DisarmAll();

  auto decoded = AggregateRegistry::Decode(decay, options, blob);
  ASSERT_TRUE(decoded.ok());
  std::string reencoded;
  ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
  EXPECT_EQ(reencoded, blob);
  EXPECT_TRUE(decoded->AuditInvariants().ok());
}

TEST_F(EngineFaultTest, SuppressionScopeMasksArmedFailpoints) {
  failpoint::Arm("registry.merge", {.fire_on_hit = 1, .sticky = true});
  {
    failpoint::SuppressionScope suppress;
    EXPECT_FALSE(TDS_FAILPOINT("registry.merge"));
  }
  EXPECT_TRUE(TDS_FAILPOINT("registry.merge"));
}

}  // namespace
}  // namespace tds
