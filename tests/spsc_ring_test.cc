// SpscRing edge cases: capacity-1 rings, full-ring producer behavior,
// cursor wraparound past 2^32 and 2^64 (seeded start cursors — the cursors
// are free-running uint64 counters), and a counter-RNG fuzz interleaving
// against a deque reference, plus a threaded FIFO check across the 32-bit
// cursor boundary.
#include "engine/spsc_ring.h"

#include <cstdint>
#include <deque>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_util.h"

namespace tds {
namespace {

TEST(SpscRingTest, CapacityOneAlternatesPushPop) {
  SpscRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_FALSE(ring.TryPush(i + 1)) << "capacity-1 ring accepted a second";
    int out = -1;
    ASSERT_EQ(ring.TryPopN(&out, 1), 1u);
    EXPECT_EQ(out, i);
    EXPECT_TRUE(ring.EmptyApprox());
  }
}

TEST(SpscRingTest, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
}

TEST(SpscRingTest, FullRingAcceptsOnlyWhatFits) {
  SpscRing<int> ring(4);
  std::vector<int> items{0, 1, 2, 3, 4, 5};
  // Oversized batch: exactly capacity items accepted, in order.
  EXPECT_EQ(ring.TryPushN(items.data(), items.size()), 4u);
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.TryPushN(items.data(), items.size()), 0u);
  EXPECT_EQ(ring.SizeApprox(), 4u);
  // Drain two, push an oversized batch again: only the two free slots fill.
  int out[8] = {};
  ASSERT_EQ(ring.TryPopN(out, 2), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(ring.TryPushN(items.data(), items.size()), 2u);
  // FIFO across the refill: 2 3 (original) then 0 1 (refill).
  ASSERT_EQ(ring.TryPopN(out, 8), 4u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 1);
}

void RunWrapCheck(uint64_t start_cursor) {
  SCOPED_TRACE("start_cursor=" + std::to_string(start_cursor));
  SpscRing<uint64_t> ring(8, start_cursor);
  uint64_t next_push = 0, next_pop = 0;
  FuzzRng rng(start_cursor ^ 0x5b);
  // Enough traffic to carry both cursors well past the seeded boundary.
  while (next_pop < 200) {
    if (rng.NextBelow(2) == 0) {
      uint64_t batch[5];
      const size_t n = 1 + rng.NextBelow(5);
      for (size_t i = 0; i < n; ++i) batch[i] = next_push + i;
      next_push += ring.TryPushN(batch, n);
    } else {
      uint64_t out[5];
      const size_t got = ring.TryPopN(out, 1 + rng.NextBelow(5));
      for (size_t i = 0; i < got; ++i) {
        ASSERT_EQ(out[i], next_pop) << "FIFO break across cursor wrap";
        ++next_pop;
      }
    }
  }
}

TEST(SpscRingTest, SurvivesCursorWrapPast32And64Bits) {
  RunWrapCheck((uint64_t{1} << 32) - 5);
  RunWrapCheck(std::numeric_limits<uint64_t>::max() - 5);
  RunWrapCheck(0);
}

TEST(SpscRingTest, FuzzInterleavedAgainstDequeReference) {
  for (const uint64_t seed : {0xf1ull, 0xf2ull, 0xf3ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzRng rng(seed);
    const size_t capacity = size_t{1} << (1 + rng.NextBelow(4));
    SpscRing<uint64_t> ring(capacity, rng.Next());  // arbitrary start cursor
    std::deque<uint64_t> reference;
    uint64_t sequence = 0;
    for (int op = 0; op < 4000; ++op) {
      if (rng.NextBelow(2) == 0) {
        uint64_t batch[16];
        const size_t n = 1 + rng.NextBelow(16);
        for (size_t i = 0; i < n; ++i) batch[i] = sequence + i;
        const size_t pushed = ring.TryPushN(batch, n);
        const size_t expect =
            std::min(n, capacity - reference.size());
        ASSERT_EQ(pushed, expect) << "draw=" << rng.counter();
        for (size_t i = 0; i < pushed; ++i) reference.push_back(batch[i]);
        sequence += pushed;
      } else {
        uint64_t out[16];
        const size_t want = 1 + rng.NextBelow(16);
        const size_t got = ring.TryPopN(out, want);
        ASSERT_EQ(got, std::min(want, reference.size()))
            << "draw=" << rng.counter();
        for (size_t i = 0; i < got; ++i) {
          ASSERT_EQ(out[i], reference.front());
          reference.pop_front();
        }
      }
      ASSERT_EQ(ring.SizeApprox(), reference.size());
    }
  }
}

TEST(SpscRingTest, ThreadedFifoAcrossCursorBoundary) {
  SpscRing<uint64_t> ring(64, (uint64_t{1} << 32) - 1000);
  constexpr uint64_t kItems = 10000;  // crosses the seeded 2^32 boundary
  std::thread producer([&] {
    uint64_t next = 0;
    while (next < kItems) {
      if (ring.TryPush(next)) ++next;
    }
  });
  uint64_t expected = 0;
  uint64_t out[32];
  while (expected < kItems) {
    const size_t got = ring.TryPopN(out, 32);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

}  // namespace
}  // namespace tds
