// AggregateRegistry unit tests: key-table/arena bookkeeping, per-key state
// fidelity against standalone aggregates, batch/per-item bit-identity, lazy
// idle-key expiry, and the registry snapshot codec.
#include "engine/registry.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

TEST(AggregateRegistryTest, CreateResolvesAutoBackend) {
  AggregateRegistry::Options options;  // kAuto
  auto poly = AggregateRegistry::Create(PolynomialDecay::Create(1.0).value(),
                                        options);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->backend(), Backend::kWbmh);

  auto sliwin = AggregateRegistry::Create(
      SlidingWindowDecay::Create(64).value(), options);
  ASSERT_TRUE(sliwin.ok());
  EXPECT_EQ(sliwin->backend(), Backend::kCeh);

  auto expd = AggregateRegistry::Create(
      ExponentialDecay::Create(0.01).value(), options);
  ASSERT_TRUE(expd.ok());
  EXPECT_EQ(expd->backend(), Backend::kEwma);

  EXPECT_FALSE(AggregateRegistry::Create(nullptr, options).ok());
}

TEST(AggregateRegistryTest, PerKeyStateMatchesStandaloneAggregates) {
  auto decay = SlidingWindowDecay::Create(256).value();
  const auto options = RegistryOptions(Backend::kCeh, 0.1);
  auto registry = AggregateRegistry::Create(decay, options);
  ASSERT_TRUE(registry.ok());

  const std::vector<uint64_t> keys = {7, 99, 1234567};
  std::vector<std::unique_ptr<DecayedAggregate>> standalone;
  for (size_t i = 0; i < keys.size(); ++i) {
    standalone.push_back(
        MakeDecayedSum(decay, options.aggregate).value());
  }

  Rng rng(42);
  Tick t = 1;
  for (int step = 0; step < 2000; ++step) {
    t += static_cast<Tick>(rng.NextBelow(3));
    const size_t which = rng.NextBelow(keys.size());
    const uint64_t value = rng.NextBelow(5);
    registry->Update(keys[which], t, value);
    standalone[which]->Update(t, value);
  }

  EXPECT_EQ(registry->KeyCount(), keys.size());
  double expected_total = 0.0;
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_DOUBLE_EQ(registry->Query(keys[i], t), standalone[i]->Query(t))
        << "key=" << keys[i];
    EXPECT_DOUBLE_EQ(registry->Query(keys[i], t + 50),
                     standalone[i]->Query(t + 50));
    expected_total += standalone[i]->Query(t);
  }
  EXPECT_NEAR(registry->QueryTotal(t), expected_total,
              1e-9 * (1.0 + expected_total));
  EXPECT_DOUBLE_EQ(registry->Query(31337, t), 0.0);  // absent key
  EXPECT_FALSE(registry->Contains(31337));
  EXPECT_TRUE(registry->AuditInvariants().ok());
}

TEST(AggregateRegistryTest, BatchMatchesPerItemBitForBit) {
  for (const Backend backend : {Backend::kCeh, Backend::kWbmh}) {
    auto decay = PolynomialDecay::Create(1.0).value();
    auto options = RegistryOptions(backend, 0.1);
    options.expiry_weight_floor = 0.0;  // expiry timing differs by design
    auto per_item = AggregateRegistry::Create(decay, options);
    auto batched = AggregateRegistry::Create(decay, options);
    ASSERT_TRUE(per_item.ok());
    ASSERT_TRUE(batched.ok());

    Rng rng(7 + static_cast<uint64_t>(backend));
    Tick t = 1;
    std::vector<KeyedItem> items;
    for (int step = 0; step < 3000; ++step) {
      if (rng.NextBelow(3) == 0) t += static_cast<Tick>(rng.NextBelow(4));
      items.push_back(KeyedItem{rng.NextBelow(50), t, rng.NextBelow(6)});
    }
    for (const KeyedItem& item : items) {
      per_item->Update(item.key, item.t, item.value);
    }
    size_t offset = 0;
    const size_t chunks[] = {1, 3, 64, 500, 1000};
    size_t chunk_index = 0;
    while (offset < items.size()) {
      const size_t n =
          std::min(chunks[chunk_index++ % 5], items.size() - offset);
      batched->UpdateBatch({items.data() + offset, n});
      offset += n;
    }

    EXPECT_EQ(per_item->KeyCount(), batched->KeyCount());
    EXPECT_EQ(per_item->StorageBits(), batched->StorageBits());
    for (uint64_t key = 0; key < 50; ++key) {
      EXPECT_DOUBLE_EQ(per_item->Query(key, t), batched->Query(key, t))
          << "backend=" << static_cast<int>(backend) << " key=" << key;
      EXPECT_DOUBLE_EQ(per_item->Query(key, t + 123),
                       batched->Query(key, t + 123));
    }
    EXPECT_TRUE(per_item->AuditInvariants().ok());
    EXPECT_TRUE(batched->AuditInvariants().ok());
  }
}

TEST(AggregateRegistryTest, IdleKeysExpireAtHorizon) {
  auto decay = SlidingWindowDecay::Create(64).value();
  auto registry =
      AggregateRegistry::Create(decay, RegistryOptions(Backend::kCeh, 0.2));
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry->expiry_age(), 64);

  for (uint64_t key = 1; key <= 20; ++key) registry->Update(key, 5, 1);
  EXPECT_EQ(registry->KeyCount(), 20u);

  // Eager pass: everything is idle far past the window.
  registry->Advance(500);
  EXPECT_EQ(registry->KeyCount(), 0u);
  EXPECT_DOUBLE_EQ(registry->Query(3, 500), 0.0);
  EXPECT_TRUE(registry->AuditInvariants().ok());

  // Lazy path: one hot key keeps updating while the rest idle out; the
  // bounded per-update sweep reclaims them without any Advance call.
  auto lazy =
      AggregateRegistry::Create(decay, RegistryOptions(Backend::kCeh, 0.2));
  ASSERT_TRUE(lazy.ok());
  for (uint64_t key = 1; key <= 20; ++key) lazy->Update(key, 5, 1);
  const uint64_t epoch_before = lazy->sweep_epoch();
  for (Tick t = 600; t < 700; ++t) lazy->Update(0, t, 1);
  EXPECT_EQ(lazy->KeyCount(), 1u);
  EXPECT_GT(lazy->sweep_epoch(), epoch_before);
  EXPECT_TRUE(lazy->AuditInvariants().ok());
}

TEST(AggregateRegistryTest, ExpiryAgeFromDecayWeightFloor) {
  auto decay = ExponentialDecay::Create(0.1).value();
  auto options = RegistryOptions(Backend::kEwma, 0.1);
  options.expiry_weight_floor = 1e-6;
  auto registry = AggregateRegistry::Create(decay, options);
  ASSERT_TRUE(registry.ok());
  const Tick age = registry->expiry_age();
  ASSERT_NE(age, kInfiniteHorizon);
  // Smallest age whose weight is at or below the floor relative to g(1).
  const double target = 1e-6 * decay->Weight(1);
  EXPECT_LE(decay->Weight(age), target);
  EXPECT_GT(decay->Weight(age - 1), target);

  options.expiry_weight_floor = 0.0;
  auto disabled = AggregateRegistry::Create(decay, options);
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(disabled->expiry_age(), kInfiniteHorizon);
}

TEST(AggregateRegistryTest, ManyKeysSurviveRehashAndRecycle) {
  auto decay = SlidingWindowDecay::Create(128).value();
  auto registry =
      AggregateRegistry::Create(decay, RegistryOptions(Backend::kCeh, 0.25));
  ASSERT_TRUE(registry.ok());
  // Two generations: the first expires while the second grows through
  // several table rehashes, recycling the first generation's slots.
  for (uint64_t key = 0; key < 500; ++key) {
    registry->Update(key, 1 + static_cast<Tick>(key / 200), 1);
  }
  EXPECT_EQ(registry->KeyCount(), 500u);
  registry->Advance(1000);
  EXPECT_EQ(registry->KeyCount(), 0u);
  for (uint64_t key = 10000; key < 10800; ++key) {
    registry->Update(key, 1000 + static_cast<Tick>((key - 10000) / 300), 2);
  }
  EXPECT_EQ(registry->KeyCount(), 800u);
  for (uint64_t key = 10000; key < 10800; ++key) {
    EXPECT_TRUE(registry->Contains(key));
  }
  EXPECT_FALSE(registry->Contains(42));
  EXPECT_TRUE(registry->AuditInvariants().ok());
}

TEST(AggregateRegistryTest, SnapshotRoundTripIsByteIdentical) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {SlidingWindowDecay::Create(128).value(), Backend::kCeh},
      {ExponentialDecay::Create(0.01).value(), Backend::kEwma},
      {PolynomialDecay::Create(1.5).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    const auto options = RegistryOptions(config.backend, 0.1);
    auto registry = AggregateRegistry::Create(config.decay, options);
    ASSERT_TRUE(registry.ok());
    Rng rng(9);
    Tick t = 1;
    for (int step = 0; step < 1500; ++step) {
      t += static_cast<Tick>(rng.NextBelow(2));
      registry->Update(rng.NextBelow(40), t, rng.NextBelow(4));
    }
    std::string blob;
    ASSERT_TRUE(registry->EncodeState(&blob).ok());
    auto decoded = AggregateRegistry::Decode(config.decay, options, blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->KeyCount(), registry->KeyCount());
    EXPECT_EQ(decoded->now(), registry->now());
    for (uint64_t key = 0; key < 40; ++key) {
      EXPECT_DOUBLE_EQ(decoded->Query(key, t + 10),
                       registry->Query(key, t + 10))
          << "backend=" << static_cast<int>(config.backend) << " key=" << key;
    }
    std::string reencoded;
    ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
    EXPECT_EQ(reencoded, blob)
        << "re-encode not byte-identical, backend="
        << static_cast<int>(config.backend);
  }
}

// Regression: a fresh WBMH registry's shared layout already sits at the
// stream start tick, so an *empty* registry must still encode a
// self-consistent blob (the engine's snapshot path can run before the
// first item arrives — TSan's scheduling exposed exactly that).
TEST(AggregateRegistryTest, EmptyRegistrySnapshotRoundTrips) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      {SlidingWindowDecay::Create(128).value(), Backend::kCeh},
      {ExponentialDecay::Create(0.01).value(), Backend::kEwma},
      {PolynomialDecay::Create(1.5).value(), Backend::kWbmh},
  };
  for (const Config& config : configs) {
    const auto options = RegistryOptions(config.backend, 0.1);
    auto registry = AggregateRegistry::Create(config.decay, options);
    ASSERT_TRUE(registry.ok());
    EXPECT_EQ(registry->KeyCount(), 0u);
    std::string blob;
    ASSERT_TRUE(registry->EncodeState(&blob).ok());
    auto decoded = AggregateRegistry::Decode(config.decay, options, blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->KeyCount(), 0u);
    EXPECT_EQ(decoded->now(), registry->now());
    EXPECT_DOUBLE_EQ(decoded->Query(7, 100), 0.0);
    std::string reencoded;
    ASSERT_TRUE(decoded->EncodeState(&reencoded).ok());
    EXPECT_EQ(reencoded, blob);
  }
}

TEST(AggregateRegistryTest, HostileSnapshotsRejectedWithoutCrashing) {
  auto decay = SlidingWindowDecay::Create(64).value();
  const auto options = RegistryOptions(Backend::kCeh, 0.2);
  auto registry = AggregateRegistry::Create(decay, options);
  ASSERT_TRUE(registry.ok());
  for (uint64_t key = 0; key < 5; ++key) registry->Update(key, 3, 2);
  std::string blob;
  ASSERT_TRUE(registry->EncodeState(&blob).ok());

  // Every truncation must be rejected.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(
        AggregateRegistry::Decode(decay, options, blob.substr(0, len)).ok())
        << "prefix length " << len;
  }
  // Every single-byte corruption either fails cleanly or decodes to a
  // state that passes its own audit — never crashes.
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string corrupt = blob;
    corrupt[pos] ^= 0x2a;
    auto decoded = AggregateRegistry::Decode(decay, options, corrupt);
    if (decoded.ok()) {
      EXPECT_TRUE(decoded->AuditInvariants().ok()) << "byte " << pos;
    }
  }
  // Mismatched options are rejected up front.
  EXPECT_FALSE(
      AggregateRegistry::Decode(decay, RegistryOptions(Backend::kCeh, 0.4),
                                blob)
          .ok());
  EXPECT_FALSE(AggregateRegistry::Decode(
                   PolynomialDecay::Create(1.0).value(),
                   RegistryOptions(Backend::kCeh, 0.2), blob)
                   .ok());
}

}  // namespace
}  // namespace tds
