// Incremental segment/manifest checkpoint tests (engine/checkpoint_log.h):
// round-trips must be byte-identical to the engine's own snapshot blob,
// incremental bytes must scale with churn rather than population,
// compaction must fold without changing the recovered state, and every
// injected fault — segment write, manifest commit, compaction — must leave
// the previous manifest generation fully loadable.
#include "engine/checkpoint_log.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/engine.h"
#include "engine_test_util.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tds {
namespace {

AggregateRegistry::Options RegistryOptions(Backend backend, double epsilon) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(epsilon)
                          .Build()
                          .value();
  return options;
}

struct EngineCase {
  const char* label;
  Backend backend;
  DecayPtr decay;
};

std::vector<EngineCase> Cases() {
  return {
      {"ceh-sliwin", Backend::kCeh, SlidingWindowDecay::Create(512).value()},
      {"wbmh-poly", Backend::kWbmh, PolynomialDecay::Create(1.0).value()},
  };
}

ShardedAggregateEngine::Options EngineOptions(const EngineCase& ec) {
  ShardedAggregateEngine::Options options;
  options.registry = RegistryOptions(ec.backend, 0.15);
  options.shards = 3;
  options.route_slices = 24;
  return options;
}

std::unique_ptr<ShardedAggregateEngine> MakeEngine(const EngineCase& ec) {
  auto engine = ShardedAggregateEngine::Create(ec.decay, EngineOptions(ec));
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

/// An engine with dirty tracking on — the precondition for a log.
std::unique_ptr<ShardedAggregateEngine> MakeTrackedEngine(
    const EngineCase& ec) {
  auto engine = MakeEngine(ec);
  EXPECT_TRUE(engine->EnableCheckpointTracking().ok());
  return engine;
}

std::vector<KeyedItem> Stream(uint64_t phase, Tick start_tick, int count,
                              Tick* end_tick) {
  Rng rng(7100 + phase);
  std::vector<KeyedItem> items;
  Tick t = start_tick;
  for (int i = 0; i < count; ++i) {
    if (rng.NextBelow(4) == 0) ++t;
    items.push_back(KeyedItem{rng.NextBelow(80), t, 1 + rng.NextBelow(3)});
  }
  *end_tick = t;
  return items;
}

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tds_ckptlog_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The engine-wide registry blob — the byte-identity oracle.
std::string MergedBlob(ShardedAggregateEngine& engine) {
  auto merged = engine.Snapshot();
  EXPECT_TRUE(merged.ok());
  std::string blob;
  EXPECT_TRUE(merged->EncodeRegistryState(&blob).ok());
  return blob;
}

/// Blob recovered by a cold load of the log directory.
std::string RecoveredBlob(const EngineCase& ec, const std::string& dir) {
  auto restored = MakeEngine(ec);
  EXPECT_TRUE(RestoreFromCheckpointLog(*restored, dir).ok());
  return MergedBlob(*restored);
}

CheckpointLog MakeLog(ShardedAggregateEngine& engine, const std::string& dir,
                      const CheckpointLog::Options& options = {}) {
  auto log = CheckpointLog::Create(engine, dir, options);
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  return std::move(log).value();
}

TEST(CheckpointLogTest, RequiresTrackingEnabled) {
  const EngineCase ec = Cases()[0];
  auto engine = MakeEngine(ec);
  const std::string dir = TempDir("needs_tracking");
  EXPECT_EQ(CheckpointLog::Create(*engine, dir, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointLogTest, IncrementalRoundTripIsByteIdentical) {
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string dir = TempDir(std::string("roundtrip_") + ec.label);
    auto engine = MakeTrackedEngine(ec);
    auto log = MakeLog(*engine, dir);

    Tick t = 1;
    for (uint64_t round = 0; round < 4; ++round) {
      ASSERT_TRUE(SessionIngest(*engine, Stream(round, t, 2000, &t)).ok());
      ASSERT_TRUE(log.WriteIncremental().ok());
      EXPECT_EQ(log.manifest().generation, round + 1);
      EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(CheckpointLogTest, UpdateFreeRoundStaysLoadable) {
  const EngineCase ec = Cases()[1];  // WBMH: the clock lives in the layout
  const std::string dir = TempDir("idle_round");
  auto engine = MakeTrackedEngine(ec);
  auto log = MakeLog(*engine, dir);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(10, t, 1000, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  // Nothing dirtied: the generation still commits (clock-only segments)
  // and recovery still matches.
  ASSERT_TRUE(log.WriteIncremental().ok());
  EXPECT_EQ(log.manifest().generation, 2u);
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, IncrementalBytesScaleWithChurnNotPopulation) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("churn");
  auto engine = MakeTrackedEngine(ec);
  auto log = MakeLog(*engine, dir);

  // 2000 distinct keys, then a 1% churn round: the delta generation must
  // cost < 10% of the full-population generation (the ISSUE bound).
  std::vector<KeyedItem> all;
  for (uint64_t key = 0; key < 2000; ++key) {
    all.push_back(KeyedItem{key, 1, 1 + (key % 3)});
  }
  ASSERT_TRUE(SessionIngest(*engine, all).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  uint64_t full_bytes = 0;
  for (const auto& entry : log.manifest().entries) {
    if (entry.gen_lo == 1) full_bytes += entry.length;
  }

  std::vector<KeyedItem> churn;
  for (uint64_t key = 0; key < 20; ++key) {
    churn.push_back(KeyedItem{key * 100, 2, 1});
  }
  ASSERT_TRUE(SessionIngest(*engine, churn).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  uint64_t delta_bytes = 0;
  for (const auto& entry : log.manifest().entries) {
    if (entry.gen_lo == 2) delta_bytes += entry.length;
  }
  EXPECT_GT(full_bytes, 0u);
  EXPECT_GT(delta_bytes, 0u);
  EXPECT_LT(delta_bytes * 10, full_bytes)
      << "delta=" << delta_bytes << " full=" << full_bytes;
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, EvictedKeysPropagateThroughSegments) {
  // Sliding-window decay expires idle keys; a key evicted between two
  // WriteIncremental calls must vanish from recovery too (the dead-key
  // list), or the restored engine would resurrect it.
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("dead_keys");
  auto engine = MakeTrackedEngine(ec);
  auto log = MakeLog(*engine, dir);

  std::vector<KeyedItem> old_keys;
  for (uint64_t key = 1000; key < 1040; ++key) {
    old_keys.push_back(KeyedItem{key, 1, 5});
  }
  ASSERT_TRUE(SessionIngest(*engine, old_keys).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  const size_t keys_before = engine->KeyCount();

  // Push the clock far past the 512-tick window; the expiry sweeps run off
  // the later updates and evict the idle keys above.
  std::vector<KeyedItem> later;
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    later.push_back(KeyedItem{rng.NextBelow(50), 2000 + i / 100, 1});
  }
  ASSERT_TRUE(SessionIngest(*engine, later).ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_LT(engine->KeyCount(), keys_before + 50)
      << "expiry never evicted the idle keys; the test lost its subject";

  ASSERT_TRUE(log.WriteIncremental().ok());
  auto restored = MakeEngine(ec);
  ASSERT_TRUE(RestoreFromCheckpointLog(*restored, dir).ok());
  EXPECT_EQ(restored->KeyCount(), engine->KeyCount());
  EXPECT_EQ(MergedBlob(*restored), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, CompactionFoldsWithoutChangingRecovery) {
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string dir = TempDir(std::string("compact_") + ec.label);
    auto engine = MakeTrackedEngine(ec);
    CheckpointLog::Options options;
    options.compact_min_segments = 0;  // manual compaction only
    auto log = MakeLog(*engine, dir, options);

    Tick t = 1;
    for (uint64_t round = 0; round < 5; ++round) {
      ASSERT_TRUE(SessionIngest(*engine, Stream(20 + round, t, 800, &t)).ok());
      ASSERT_TRUE(log.WriteIncremental().ok());
    }
    const std::string before = RecoveredBlob(ec, dir);
    const uint64_t live_before = log.LiveBytes();

    ASSERT_TRUE(log.Compact().ok());
    ASSERT_EQ(log.manifest().entries.size(), 1u);
    EXPECT_EQ(log.manifest().entries[0].shard, CheckpointLog::kBaseShard);
    EXPECT_LT(log.LiveBytes(), live_before);
    EXPECT_EQ(RecoveredBlob(ec, dir), before);

    // Writing after a compaction keeps working and recovery still matches.
    ASSERT_TRUE(SessionIngest(*engine, Stream(30, t, 800, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
    std::filesystem::remove_all(dir);
  }
}

TEST(CheckpointLogTest, AutoCompactionBoundsLiveSegmentCount) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("auto_compact");
  auto engine = MakeTrackedEngine(ec);
  CheckpointLog::Options options;
  options.compact_min_segments = 6;  // 3 shards => folds every ~2 rounds
  auto log = MakeLog(*engine, dir, options);

  Tick t = 1;
  for (uint64_t round = 0; round < 8; ++round) {
    ASSERT_TRUE(SessionIngest(*engine, Stream(40 + round, t, 500, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    EXPECT_LE(log.manifest().entries.size(), options.compact_min_segments + 1);
  }
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, GarbageCollectionDropsSupersededFiles) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("gc");
  auto engine = MakeTrackedEngine(ec);
  CheckpointLog::Options options;
  options.compact_min_segments = 0;
  auto log = MakeLog(*engine, dir, options);

  Tick t = 1;
  for (uint64_t round = 0; round < 4; ++round) {
    ASSERT_TRUE(SessionIngest(*engine, Stream(50 + round, t, 500, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
  }
  ASSERT_TRUE(log.Compact().ok());
  // One more commit rotates the pre-compaction manifest out of .prev, so
  // only the base and the newest segments may remain on disk.
  ASSERT_TRUE(SessionIngest(*engine, Stream(60, t, 500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  size_t files = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("seg-", 0) == 0 || name.rfind("base-", 0) == 0) ++files;
  }
  // base + (newest generation + .prev's generation) segments at most.
  EXPECT_LE(files, 1 + 2 * 3u);
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, ResumesAcrossProcessRestart) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("restart");
  std::string blob_at_crash;
  {
    auto engine = MakeTrackedEngine(ec);
    auto log = MakeLog(*engine, dir);
    Tick t = 1;
    ASSERT_TRUE(SessionIngest(*engine, Stream(70, t, 2000, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    ASSERT_TRUE(SessionIngest(*engine, Stream(71, t, 2000, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    blob_at_crash = MergedBlob(*engine);
  }  // process dies

  // Restart: restore the engine from the log, reopen the log (resuming
  // after the newest generation), and keep checkpointing.
  auto engine = MakeEngine(ec);
  ASSERT_TRUE(RestoreFromCheckpointLog(*engine, dir).ok());
  ASSERT_TRUE(engine->EnableCheckpointTracking().ok());
  EXPECT_EQ(MergedBlob(*engine), blob_at_crash);
  auto log = MakeLog(*engine, dir);
  EXPECT_EQ(log.manifest().generation, 2u);
  Tick t = 5000;
  ASSERT_TRUE(SessionIngest(*engine, Stream(72, t, 2000, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  EXPECT_EQ(log.manifest().generation, 3u);
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, FingerprintMismatchIsRejected) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("fingerprint");
  {
    auto engine = MakeTrackedEngine(ec);
    auto log = MakeLog(*engine, dir);
    Tick t = 1;
    ASSERT_TRUE(SessionIngest(*engine, Stream(80, t, 500, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
  }
  // Same decay, different epsilon: both reopening the log and loading the
  // state must refuse.
  ShardedAggregateEngine::Options other = EngineOptions(ec);
  other.registry = RegistryOptions(ec.backend, 0.3);
  auto mismatched = ShardedAggregateEngine::Create(ec.decay, other);
  ASSERT_TRUE(mismatched.ok());
  ASSERT_TRUE((*mismatched)->EnableCheckpointTracking().ok());
  EXPECT_FALSE(CheckpointLog::Create(**mismatched, dir, {}).ok());
  EXPECT_FALSE(RestoreFromCheckpointLog(**mismatched, dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, CorruptSegmentIsDetected) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("corrupt_seg");
  auto engine = MakeTrackedEngine(ec);
  auto log = MakeLog(*engine, dir);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(90, t, 1500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());

  // Flip one byte in the middle of a live segment: the manifest checksum
  // check must refuse before the codec ever sees the bytes.
  const std::string victim = dir + "/" + log.manifest().entries[0].file;
  std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
  const auto size =
      static_cast<std::streamoff>(std::filesystem::file_size(victim));
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x20);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  auto restored = MakeEngine(ec);
  EXPECT_FALSE(RestoreFromCheckpointLog(*restored, dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, TornManifestFallsBackToPreviousGeneration) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("torn_manifest");
  auto engine = MakeTrackedEngine(ec);
  auto log = MakeLog(*engine, dir);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(100, t, 1500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  const std::string blob_gen1 = MergedBlob(*engine);
  ASSERT_TRUE(SessionIngest(*engine, Stream(101, t, 1500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());

  // Tear the committed manifest: recovery must land on generation 1 via
  // .prev — whose segment files GC deliberately kept alive.
  const std::string manifest_path = dir + "/MANIFEST.tds";
  std::filesystem::resize_file(manifest_path,
                               std::filesystem::file_size(manifest_path) / 2);
  EXPECT_EQ(RecoveredBlob(ec, dir), blob_gen1);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, BothManifestGenerationsFailingReportsBoth) {
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("both_manifests");
  auto engine = MakeTrackedEngine(ec);
  auto log = MakeLog(*engine, dir);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(110, t, 500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());
  ASSERT_TRUE(SessionIngest(*engine, Stream(111, t, 500, &t)).ok());
  ASSERT_TRUE(log.WriteIncremental().ok());

  // Corrupt the two generations differently: truncate the primary, flip a
  // checksum byte in .prev. The combined error must name both.
  const std::string manifest_path = dir + "/MANIFEST.tds";
  std::filesystem::resize_file(manifest_path, 3);
  {
    std::fstream f(manifest_path + ".prev",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const char byte = 0x7f;
    f.write(&byte, 1);
  }
  auto manifest = LoadManifest(dir);
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("fallback"), std::string::npos)
      << manifest.status().ToString();
  EXPECT_NE(manifest.status().message().find(".prev"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, CrashAtEveryFailpointKeepsPreviousManifest) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  for (const EngineCase& ec : Cases()) {
    SCOPED_TRACE(ec.label);
    const std::string dir = TempDir(std::string("faults_") + ec.label);
    auto engine = MakeTrackedEngine(ec);
    CheckpointLog::Options options;
    options.io_retries = 1;
    options.backoff.sleeper = [](std::chrono::nanoseconds) {};
    options.compact_min_segments = 0;
    auto log = MakeLog(*engine, dir, options);

    Tick t = 1;
    ASSERT_TRUE(SessionIngest(*engine, Stream(120, t, 1500, &t)).ok());
    ASSERT_TRUE(log.WriteIncremental().ok());
    const std::string committed = MergedBlob(*engine);
    const uint64_t committed_gen = log.manifest().generation;

    // Sticky faults defeat the retry layer — a persistent outage, or a
    // crash. After each failed operation the committed generation must
    // still recover byte-exact.
    failpoint::Scenario sticky;
    sticky.fire_on_hit = 1;
    sticky.sticky = true;
    for (const char* fp :
         {"ckptlog.segment.write", "ckptlog.manifest.commit"}) {
      SCOPED_TRACE(fp);
      ASSERT_TRUE(SessionIngest(*engine, Stream(121, t, 300, &t)).ok());
      failpoint::Arm(fp, sticky);
      EXPECT_EQ(log.WriteIncremental().code(), StatusCode::kUnavailable);
      failpoint::DisarmAll();
      EXPECT_EQ(log.manifest().generation, committed_gen);
      EXPECT_EQ(RecoveredBlob(ec, dir), committed);
    }
    failpoint::Arm("ckptlog.compact", sticky);
    EXPECT_EQ(log.Compact().code(), StatusCode::kUnavailable);
    failpoint::DisarmAll();
    EXPECT_EQ(RecoveredBlob(ec, dir), committed);

    // With faults cleared the next write lands everything that accumulated
    // across the failed rounds (the epoch watermark never advanced).
    ASSERT_TRUE(log.WriteIncremental().ok());
    EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
    std::filesystem::remove_all(dir);
  }
}

TEST(CheckpointLogTest, TransientFaultIsRetriedDeterministically) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("retry");
  auto engine = MakeTrackedEngine(ec);
  std::vector<std::chrono::nanoseconds> sleeps;
  CheckpointLog::Options options;
  options.io_retries = 2;
  options.backoff.initial_delay = std::chrono::milliseconds(1);
  options.backoff.multiplier = 2.0;
  options.backoff.sleeper = [&](std::chrono::nanoseconds d) {
    sleeps.push_back(d);
  };
  auto log = MakeLog(*engine, dir, options);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(130, t, 800, &t)).ok());

  // One transient fault on the first segment write: the retry layer rides
  // it out, sleeping exactly once for the initial backoff delay.
  failpoint::ArmNthHit("ckptlog.segment.write", 1);
  ASSERT_TRUE(log.WriteIncremental().ok());
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], std::chrono::nanoseconds(std::chrono::milliseconds(1)));
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  failpoint::DisarmAll();
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, RetriesExhaustAfterExactlyNAttempts) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("retry_exhaust");
  auto engine = MakeTrackedEngine(ec);
  std::vector<std::chrono::nanoseconds> sleeps;
  CheckpointLog::Options options;
  options.io_retries = 2;
  options.backoff.initial_delay = std::chrono::milliseconds(1);
  options.backoff.multiplier = 2.0;
  options.backoff.sleeper = [&](std::chrono::nanoseconds d) {
    sleeps.push_back(d);
  };
  auto log = MakeLog(*engine, dir, options);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(140, t, 800, &t)).ok());

  // Sticky fault: io_retries=2 means exactly 3 attempts on the first
  // shard's segment, then the write gives up with the fault surfaced.
  failpoint::Scenario sticky;
  sticky.fire_on_hit = 1;
  sticky.sticky = true;
  failpoint::Arm("ckptlog.segment.write", sticky);
  EXPECT_EQ(log.WriteIncremental().code(), StatusCode::kUnavailable);
  EXPECT_EQ(failpoint::Hits("ckptlog.segment.write"), 3u);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], std::chrono::nanoseconds(std::chrono::milliseconds(1)));
  EXPECT_EQ(sleeps[1], std::chrono::nanoseconds(std::chrono::milliseconds(2)));
  failpoint::DisarmAll();

  // Nth-hit regression: a fault on the *last* allowed attempt still fails
  // the write (the retry budget is attempts, not fired faults)…
  sleeps.clear();
  failpoint::Arm("ckptlog.segment.write", sticky);
  EXPECT_EQ(log.WriteIncremental().code(), StatusCode::kUnavailable);
  failpoint::DisarmAll();
  // …while a fault strictly inside the budget recovers.
  failpoint::ArmNthHit("ckptlog.segment.write", 2);
  ASSERT_TRUE(log.WriteIncremental().ok());
  failpoint::DisarmAll();
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLogTest, RetryDisabledFailsOnFirstFault) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "build without -DTDS_FAILPOINTS=ON";
  }
  failpoint::DisarmAll();
  const EngineCase ec = Cases()[0];
  const std::string dir = TempDir("retry_off");
  auto engine = MakeTrackedEngine(ec);
  CheckpointLog::Options options;
  options.io_retries = 0;
  auto log = MakeLog(*engine, dir, options);
  Tick t = 1;
  ASSERT_TRUE(SessionIngest(*engine, Stream(150, t, 400, &t)).ok());
  failpoint::ArmNthHit("ckptlog.segment.write", 1);
  EXPECT_EQ(log.WriteIncremental().code(), StatusCode::kUnavailable);
  EXPECT_EQ(failpoint::Hits("ckptlog.segment.write"), 1u);
  failpoint::DisarmAll();
  ASSERT_TRUE(log.WriteIncremental().ok());
  EXPECT_EQ(RecoveredBlob(ec, dir), MergedBlob(*engine));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tds
