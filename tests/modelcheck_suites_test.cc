// Model-check suites for the engine's four concurrency protocols
// (docs/CORRECTNESS.md, "Model checking"). Built only under
// -DTDS_MODELCHECK=ON, so the *production* tds::Atomic call sites —
// SpscRing cursors, the engine's flags and counters — are instrumented and
// the real headers run under the controlled scheduler:
//
//   1. SpscRing FIFO (including cursor wraparound at 2^32 and 2^64),
//   2. RCU route publish vs concurrent routing (PublishRoute/CurrentRoute),
//   3. the park/wake Dekker handshake (WakeWriter vs the writer's
//      park sequence) and its documented missed-wake bound,
//   4. stop-vs-ingest termination (the flush fence quiescence protocol).
//
// Each correct protocol must explore its space without a failure; each
// deliberately seeded bug (dropped release on the route publish, demoted
// Dekker orders under TSO, a forgotten quiescence wake, stop published
// only after the fence drops) must be caught. The suites together must
// enumerate at least 10,000 interleavings (the PR's acceptance floor);
// CoverageFloor tops the count up with seeded-random ring schedules if the
// DFS spaces come in under it.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/spsc_ring.h"
#include "modelcheck/sched.h"
#include "util/atomic.h"

namespace tds {
namespace {

using McRun = ::tds::modelcheck::Run;
using ::tds::modelcheck::Explore;
using ::tds::modelcheck::Gate;
using ::tds::modelcheck::Options;
using ::tds::modelcheck::Result;
using ::tds::modelcheck::Var;

#ifndef TDS_MODELCHECK
#error "modelcheck_suites_test requires -DTDS_MODELCHECK=ON"
#endif

/// Interleavings explored across every suite in this binary; CoverageFloor
/// asserts the ≥10k acceptance floor against it (and tops it up first).
std::uint64_t g_explored = 0;

Result Record(Result result) {
  g_explored += result.schedules;
  return result;
}

// ---------------------------------------------------------------------------
// Suite 1: SpscRing FIFO + cursor wraparound.
//
// The real production ring. The producer pushes 1..4 (capacity 8, so no
// full-ring retry loop is needed under the model); the consumer makes a
// bounded number of pop attempts concurrently; the controller drains the
// rest after Await. Every interleaving must yield exactly 1,2,3,4 in
// order — FIFO, no loss, no duplication — which exercises the
// release/acquire cursor pairing (tail_ publish → pop's acquire; head_
// publish → push's acquire free-space read).
// ---------------------------------------------------------------------------

void RingFifoBody(McRun& run, uint64_t start_cursor) {
  auto ring = std::make_unique<SpscRing<int>>(8, start_cursor);
  auto popped = std::make_unique<std::vector<int>>();
  SpscRing<int>* r = ring.get();
  std::vector<int>* out = popped.get();
  run.Spawn([r] {
    for (int i = 1; i <= 4; ++i) {
      MC_CHECK(r->TryPushN(&i, 1) == 1);  // capacity 8: can never be full
    }
  });
  run.Spawn([r, out] {
    int buf[2];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const size_t n = r->TryPopN(buf, 2);
      for (size_t k = 0; k < n; ++k) out->push_back(buf[k]);
    }
  });
  run.Await();
  // Controller drain (outside the model: threads are joined, state final).
  int buf[8];
  size_t n = 0;
  while ((n = r->TryPopN(buf, 8)) > 0) {
    for (size_t k = 0; k < n; ++k) out->push_back(buf[k]);
  }
  MC_CHECK(out->size() == 4);
  for (int i = 0; i < 4; ++i) MC_CHECK((*out)[i] == i + 1);
}

Result ExploreRing(uint64_t start_cursor, std::uint64_t max_schedules) {
  Options opts;
  opts.mode = Options::Mode::kDfs;
  opts.max_schedules = max_schedules;
  // Unbounded preemptions: the cursor protocol is small enough that the
  // sleep-set-pruned DFS covers tens of thousands of schedules in
  // seconds; max_schedules caps the sweep.
  opts.preemption_bound = -1;
  return Record(Explore(opts, [start_cursor](McRun& run) {
    RingFifoBody(run, start_cursor);
  }));
}

TEST(SpscRingSuite, FifoHoldsUnderAllBoundedInterleavings) {
  const Result result = ExploreRing(0, 20000);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_GT(result.schedules, 100u);
}

TEST(SpscRingSuite, FifoHoldsAcrossThe32BitCursorBoundary) {
  // Cursors seeded two short of 2^32: the pushes walk the difference
  // arithmetic (tail - head) and the mask indexing across the boundary.
  const Result result = ExploreRing((uint64_t{1} << 32) - 2, 20000);
  EXPECT_FALSE(result.failed) << result.failure;
}

TEST(SpscRingSuite, FifoHoldsAcrossThe64BitCursorWrap) {
  // Two short of 2^64: tail + count wraps to ~0; free-space and
  // availability math must stay exact through the wrap.
  const Result result = ExploreRing(~uint64_t{0} - 1, 20000);
  EXPECT_FALSE(result.failed) << result.failure;
}

// ---------------------------------------------------------------------------
// Suite 2: RCU route publish vs concurrent batch routing.
//
// The PublishRoute/CurrentRoute shape: an immutable table published
// through Atomic<const T*> with release, loaded with acquire, pointee
// fields read without synchronization. The payload fields are
// modelcheck::Var so the happens-before clocks race-check them: with the
// release edge every interleaving is clean; dropping the release (the
// seeded bug the analyze fixture mirrors) makes the reader's field loads
// a data race.
// ---------------------------------------------------------------------------

struct RouteModel {
  Var<uint64_t> generation{1, "route_generation"};
  Var<uint64_t> shard_of_slice0{0, "route_shard_of_slice"};
};

Result ExploreRoutePublish(std::memory_order publish_order) {
  Options opts;
  opts.mode = Options::Mode::kDfs;
  opts.max_schedules = 20000;
  return Record(Explore(opts, [publish_order](McRun& run) {
    auto initial = std::make_unique<RouteModel>();
    auto successor = std::make_unique<RouteModel>();
    auto table = std::make_unique<Atomic<RouteModel*>>(initial.get());
    RouteModel* next = successor.get();
    Atomic<RouteModel*>* route_table = table.get();
    run.Spawn([route_table, next, publish_order] {
      // Migration: fill the successor's fields, then publish — the
      // PublishRoute shape, with the store order under test.
      next->generation.Write(2);
      next->shard_of_slice0.Write(1);
      route_table->store(next, publish_order);
    });
    run.Spawn([route_table] {
      // Producer flush: one acquire route load per batch (CurrentRoute),
      // then unsynchronized pointee field reads.
      RouteModel* t = route_table->load(std::memory_order_acquire);
      const uint64_t gen = t->generation.Read();
      const uint64_t shard = t->shard_of_slice0.Read();
      MC_CHECK(gen == 1 || gen == 2);
      MC_CHECK(shard == 0 || shard == 1);
    });
    run.Await();
  }));
}

TEST(RoutePublishSuite, ReleasePublishIsRaceFreeExhaustively) {
  const Result result = ExploreRoutePublish(std::memory_order_release);
  EXPECT_FALSE(result.failed) << result.failure;
}

TEST(RoutePublishSuite, DroppedReleaseOnPublishIsCaught) {
  // The seeded bug from the issue: PublishRoute with a relaxed store. The
  // checker must flag the reader's pointee field access as a data race.
  const Result result = ExploreRoutePublish(std::memory_order_relaxed);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("data race"), std::string::npos)
      << result.failure;
  EXPECT_NE(result.failure.find("route_"), std::string::npos)
      << result.failure;
}

// ---------------------------------------------------------------------------
// Suite 3: the park/wake Dekker handshake (WakeWriter vs WriterLoop's park
// sequence), under TSO store buffering.
//
// Producer: publish work (seq_cst RMW on `enqueued`), then load
// `writer_parked` and wake if set. Writer: store `writer_parked`
// (seq_cst), then re-check `enqueued` before parking; the re-check-to-wait
// window is closed by the eventcount Gate, which models the engine's
// notify-under-mutex (WakeWriter locks wake_mutex before NotifyAll).
//
// With seq_cst on both sides, the seq_cst total order guarantees at least
// one side sees the other — no interleaving deadlocks. Demoting the
// handshake to relaxed under TSO admits the store-buffer outcome: both
// sides read stale values, the wake is skipped, and the writer parks with
// work pending. The engine bounds that stall at one kWriterParkSlice; the
// model parks unboundedly, so the same outcome surfaces as a detected
// deadlock — which is exactly the documented missed-wake bound made
// checkable.
// ---------------------------------------------------------------------------

struct ParkModel {
  Atomic<uint64_t> enqueued{0};
  Atomic<bool> writer_parked{false};
  Gate wake;
};

Result ExploreParkWake(std::memory_order handshake_order) {
  Options opts;
  opts.mode = Options::Mode::kDfs;
  opts.max_schedules = 20000;
  opts.tso = true;  // the store-buffer outcome is the whole point
  return Record(Explore(opts, [handshake_order](McRun& run) {
    auto model = std::make_unique<ParkModel>();
    ParkModel* m = model.get();
    run.Spawn([m, handshake_order] {
      // PushToShard: publish the work, then the WakeWriter probe.
      m->enqueued.fetch_add(1, handshake_order);
      if (m->writer_parked.load(handshake_order)) m->wake.Wake();
    });
    run.Spawn([m, handshake_order] {
      // WriterLoop idle path: announce the park, then re-check under the
      // (modeled) wake mutex before committing to the wait.
      m->writer_parked.store(true, handshake_order);
      const uint64_t epoch = m->wake.PrepareWait();
      if (m->enqueued.load(handshake_order) == 0) {
        m->wake.CommitWait(epoch);
      }
      m->writer_parked.store(false, std::memory_order_relaxed);
      MC_CHECK(m->enqueued.load(std::memory_order_seq_cst) == 1);
    });
    run.Await();
  }));
}

TEST(ParkWakeSuite, SeqCstHandshakeNeverMissesTheWake) {
  const Result result = ExploreParkWake(std::memory_order_seq_cst);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.exhausted);
}

TEST(ParkWakeSuite, DemotedHandshakeDeadlocksUnderTso) {
  // The seeded bug: both Dekker sides relaxed. TSO buffers the writer's
  // parked flag; producer reads stale false and skips the wake; writer
  // reads stale zero and parks — a missed wake past the documented bound.
  const Result result = ExploreParkWake(std::memory_order_relaxed);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos)
      << result.failure;
}

// ---------------------------------------------------------------------------
// Suite 4: stop-vs-ingest termination — the flush fence quiescence
// protocol (EnterFlush/ExitFlush vs Stop's RaiseFence → drain → publish
// stop_ → LowerFence).
//
// The flusher enters (seq_cst increment), fails fast on stop_, backs out
// when the fence is up and parks for the lowered fence; ExitFlush wakes
// the quiescence waiter. Stop raises the fence, waits out in-flight
// episodes, publishes stop_ seq_cst *before* lowering the fence, then
// wakes fence waiters. Checked properties:
//  - termination: no interleaving deadlocks (every park has a paired wake
//    or a pre-empting epoch bump);
//  - quiescence: the drain's read of the pushed count happens-after every
//    push (a racy late push would be flagged on the "pushed" Var);
//  - shutdown: no push can land after the drain completed. Publishing
//    stop_ only after the fence drops (the seeded bug) lets a woken
//    flusher re-enter, miss stop_, and push onto the drained engine —
//    caught as drained_at_stop disagreeing with the final push count.
// ---------------------------------------------------------------------------

struct StopModel {
  Atomic<uint64_t> active_flushes{0};
  Atomic<bool> fence_raised{false};
  Atomic<bool> stopped{false};
  Gate fence_gate;    // flushers park here while the fence is up
  Gate quiesce_gate;  // the stopper parks here until active hits zero
  Var<int> pushed{0, "pushed"};
  /// What the drain observed (written single-threaded by the stopper,
  /// read by the controller after Await).
  int drained_at_stop = -1;
};

void ModelExitFlush(StopModel* m, bool wake_quiescer) {
  m->active_flushes.fetch_sub(1, std::memory_order_release);
  if (wake_quiescer && m->fence_raised.load(std::memory_order_relaxed)) {
    m->quiesce_gate.Wake();
  }
}

/// EnterFlush + one push. `wake_quiescer=false` seeds the forgotten
/// quiescence wake. `stop_check_first=true` seeds the check-order
/// inversion this suite originally FOUND in the real EnterFlush: with
/// stop_ checked before the fence, a flusher can slip in between Stop's
/// quiescence check and its stop_ publish, read both flags clear, and
/// push after the drain. Checking the fence first closes it — observing
/// the lowered fence implies (seq_cst transitivity via LowerFence's
/// store) observing stop_.
void ModelFlusher(StopModel* m, bool wake_quiescer, bool stop_check_first) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    m->active_flushes.fetch_add(1, std::memory_order_seq_cst);
    if (stop_check_first &&
        m->stopped.load(std::memory_order_seq_cst)) {
      ModelExitFlush(m, wake_quiescer);
      return;  // rejected: kFailedPrecondition
    }
    if (!m->fence_raised.load(std::memory_order_seq_cst)) {
      if (!stop_check_first &&
          m->stopped.load(std::memory_order_seq_cst)) {
        ModelExitFlush(m, wake_quiescer);
        return;  // rejected: kFailedPrecondition
      }
      m->pushed.Write(m->pushed.Read() + 1);  // the ring push
      ModelExitFlush(m, wake_quiescer);
      return;
    }
    // Fence up: back out so the quiescence wait can reach zero, then park
    // until it is lowered (eventcount models the bounded StagedWait park).
    ModelExitFlush(m, wake_quiescer);
    const uint64_t epoch = m->fence_gate.PrepareWait();
    if (m->fence_raised.load(std::memory_order_seq_cst)) {
      m->fence_gate.CommitWait(epoch);
    }
  }
  MC_CHECK(false);  // the fence never rises twice: unreachable
}

void ModelStop(StopModel* m, bool stop_before_lower) {
  m->fence_raised.store(true, std::memory_order_seq_cst);
  while (true) {
    const uint64_t epoch = m->quiesce_gate.PrepareWait();
    if (m->active_flushes.load(std::memory_order_seq_cst) == 0) break;
    m->quiesce_gate.CommitWait(epoch);
  }
  // Drain: happens-after every completed push via ExitFlush's release
  // decrement → the seq_cst (acquire) zero read above.
  m->drained_at_stop = m->pushed.Read();
  MC_CHECK(m->drained_at_stop >= 0 && m->drained_at_stop <= 1);
  if (stop_before_lower) {
    m->stopped.store(true, std::memory_order_seq_cst);
  }
  m->fence_raised.store(false, std::memory_order_seq_cst);
  m->fence_gate.Wake();
  if (!stop_before_lower) {
    // The seeded shutdown bug: stop_ published only after the fence
    // dropped — a woken flusher can re-enter, miss it, and push onto a
    // drained engine (a Var race against the drain read above).
    m->stopped.store(true, std::memory_order_seq_cst);
  }
}

Result ExploreStop(bool wake_quiescer, bool stop_before_lower,
                   bool stop_check_first) {
  Options opts;
  opts.mode = Options::Mode::kDfs;
  opts.max_schedules = 20000;
  return Record(Explore(
      opts, [wake_quiescer, stop_before_lower, stop_check_first](McRun& run) {
        auto model = std::make_unique<StopModel>();
        StopModel* m = model.get();
        run.Spawn([m, wake_quiescer, stop_check_first] {
          ModelFlusher(m, wake_quiescer, stop_check_first);
        });
        run.Spawn(
            [m, stop_before_lower] { ModelStop(m, stop_before_lower); });
        run.Await();
        // Shutdown invariant: the drain saw everything ever pushed.
        MC_CHECK(m->pushed.Read() == m->drained_at_stop);
      }));
}

TEST(StopIngestSuite, StopTerminatesAgainstConcurrentIngest) {
  const Result result = ExploreStop(/*wake_quiescer=*/true,
                                    /*stop_before_lower=*/true,
                                    /*stop_check_first=*/false);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.exhausted);
}

TEST(StopIngestSuite, ForgettingTheQuiescenceWakeDeadlocksStop) {
  const Result result = ExploreStop(/*wake_quiescer=*/false,
                                    /*stop_before_lower=*/true,
                                    /*stop_check_first=*/false);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos)
      << result.failure;
}

TEST(StopIngestSuite, PublishingStopAfterLoweringTheFenceIsCaught) {
  const Result result = ExploreStop(/*wake_quiescer=*/true,
                                    /*stop_before_lower=*/false,
                                    /*stop_check_first=*/false);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("drained_at_stop"), std::string::npos)
      << result.failure;
}

TEST(StopIngestSuite, CheckingStopBeforeTheFenceLosesAnAcknowledgedPush) {
  // The inversion this suite found in the shipped EnterFlush (fixed in
  // this PR): stop_ checked before the fence admits a push after the
  // drain — the flusher's stop load precedes Stop's publish in the
  // seq_cst order while its fence load follows LowerFence.
  const Result result = ExploreStop(/*wake_quiescer=*/true,
                                    /*stop_before_lower=*/true,
                                    /*stop_check_first=*/true);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("drained_at_stop"), std::string::npos)
      << result.failure;
}

// ---------------------------------------------------------------------------
// Acceptance floor: ≥10,000 interleavings across the suites. Runs last by
// declaration order, but does not depend on it — if the DFS spaces above
// came in under the floor (or the filter skipped them), seeded-random
// ring schedules top the count up deterministically.
// ---------------------------------------------------------------------------

TEST(CoverageFloor, AtLeastTenThousandInterleavingsExplored) {
  constexpr std::uint64_t kFloor = 10000;
  std::uint64_t seed = 7;
  while (g_explored < kFloor) {
    Options opts;
    opts.mode = Options::Mode::kRandom;
    opts.max_schedules = 1000;
    opts.seed = seed++;
    const Result result =
        Record(Explore(opts, [](McRun& run) { RingFifoBody(run, 0); }));
    ASSERT_FALSE(result.failed) << result.failure;
  }
  EXPECT_GE(g_explored, kFloor);
}

}  // namespace
}  // namespace tds
