#include <cmath>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/factory.h"
#include "decay/polynomial.h"
#include "stream/adversarial.h"
#include "stream/generators.h"
#include "stream/replay.h"

namespace tds {
namespace {

TEST(GeneratorsTest, BernoulliDeterministicAndDense) {
  const Stream a = BernoulliStream(1000, 0.5, 42);
  const Stream b = BernoulliStream(1000, 0.5, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  EXPECT_NEAR(static_cast<double>(a.size()), 500.0, 100.0);
  EXPECT_GE(a.front().t, 1);
  EXPECT_LE(a.back().t, 1000);
}

TEST(GeneratorsTest, StreamsAreTickAscending) {
  for (const Stream& stream :
       {BernoulliStream(500, 0.3, 1), BurstyStream(500, 10, 20, 2.0, 2),
        PoissonStream(500, 1.0, 3), SparseStream(100000, 50, 4),
        LevelShiftStream(500, 250, 3.0, 9.0, 5)}) {
    for (size_t i = 1; i < stream.size(); ++i) {
      EXPECT_GT(stream[i].t, stream[i - 1].t);
    }
  }
}

TEST(GeneratorsTest, ConstantStream) {
  const Stream stream = ConstantStream(10, 3);
  ASSERT_EQ(stream.size(), 10u);
  EXPECT_EQ(StreamTotal(stream), 30u);
  EXPECT_EQ(StreamEnd(stream), 10);
}

TEST(GeneratorsTest, RampCoversRange) {
  const Stream stream = RampStream(100, 5, 55);
  EXPECT_EQ(stream.front().value, 5u);
  EXPECT_EQ(stream.back().value, 55u);
}

TEST(GeneratorsTest, PoissonMeanRoughlyRate) {
  const Stream stream = PoissonStream(20000, 2.5, 7);
  const double mean =
      static_cast<double>(StreamTotal(stream)) / 20000.0;
  EXPECT_NEAR(mean, 2.5, 0.1);
}

TEST(GeneratorsTest, LevelShiftChangesMean) {
  const Stream stream = LevelShiftStream(2000, 1000, 2.0, 12.0, 11);
  double before = 0.0, after = 0.0;
  for (const StreamItem& item : stream) {
    (item.t < 1000 ? before : after) += static_cast<double>(item.value);
  }
  EXPECT_GT(after / before, 3.0);
}

TEST(AdversarialTest, FamilyStructure) {
  EXPECT_FALSE(MakeAdversarialFamily(0.0, 10, 1 << 16).ok());
  EXPECT_FALSE(MakeAdversarialFamily(1.0, 2, 1 << 16).ok());
  EXPECT_FALSE(MakeAdversarialFamily(1.0, 10, 4).ok());
  auto family = MakeAdversarialFamily(1.0, 10, 1 << 16);
  ASSERT_TRUE(family.ok());
  EXPECT_GE(family->slots, 2);
  // Burst ticks strictly decrease with slot index (older bursts are bigger).
  for (int i = 1; i < family->slots; ++i) {
    EXPECT_LT(family->burst_ticks[i], family->burst_ticks[i - 1]);
    EXPECT_EQ(family->base_counts[i], family->base_counts[i - 1] * 10);
  }
  for (int i = 0; i < family->slots; ++i) {
    EXPECT_GE(family->burst_ticks[i], 1);
    EXPECT_GT(family->probe_ticks[i], family->origin);
  }
}

TEST(AdversarialTest, StreamMatchesChoices) {
  auto family = MakeAdversarialFamily(1.0, 10, 1 << 14).value();
  std::vector<int> choices(family.slots, 1);
  choices[0] = 2;
  const Stream stream = MakeAdversarialStream(family, choices);
  ASSERT_EQ(stream.size(), static_cast<size_t>(family.slots));
  // Stream is ascending; slot 0 (newest burst) is last.
  EXPECT_EQ(stream.back().t, family.burst_ticks[0]);
  EXPECT_EQ(stream.back().value, 2 * family.base_counts[0]);
}

TEST(AdversarialTest, DominantTermIsDistinguishable) {
  // The core of Theorem 2: at probe time i, the choice n_i in {1, 2} moves
  // the exact decayed sum by more than the off-slot contributions.
  const double alpha = 1.0;
  auto family = MakeAdversarialFamily(alpha, 10, 1 << 14).value();
  auto decay = PolynomialDecay::Create(alpha).value();
  for (int i = 0; i < family.slots; ++i) {
    std::vector<int> low(family.slots, 1), high(family.slots, 1);
    high[i] = 2;
    auto exact_low = ExactDecayedSum::Create(decay);
    auto exact_high = ExactDecayedSum::Create(decay);
    for (const StreamItem& item : MakeAdversarialStream(family, low)) {
      (*exact_low)->Update(item.t, item.value);
    }
    for (const StreamItem& item : MakeAdversarialStream(family, high)) {
      (*exact_high)->Update(item.t, item.value);
    }
    const double s_low = (*exact_low)->Query(family.probe_ticks[i]);
    const double s_high = (*exact_high)->Query(family.probe_ticks[i]);
    // Doubling burst i moves the sum at probe i by a constant factor.
    EXPECT_GT(s_high / s_low, 1.3) << "slot " << i;
  }
}

TEST(ReplayTest, CompareAgainstSelfIsExact) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kExact)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  auto reference = MakeDecayedSum(decay, options);
  const Stream stream = BernoulliStream(500, 0.5, 1);
  const ReplayReport report =
      ReplayAndCompare(stream, **subject, **reference, 50);
  EXPECT_GT(report.probes.size(), 5u);
  EXPECT_DOUBLE_EQ(report.max_relative_error, 0.0);
  EXPECT_GT(report.max_storage_bits, 0u);
}

TEST(ReplayTest, ReportsErrorsForApproximateSubject) {
  auto decay = PolynomialDecay::Create(2.0).value();
  const AggregateOptions approx = AggregateOptions::Builder()
                                  .backend(Backend::kWbmh)
                                  .epsilon(0.5)
                                  .Build()
                                  .value();
  auto subject = MakeDecayedSum(decay, approx);
  ASSERT_TRUE(subject.ok());
  const AggregateOptions exact = AggregateOptions::Builder()
                                 .backend(Backend::kExact)
                                 .Build()
                                 .value();
  auto reference = MakeDecayedSum(decay, exact);
  const Stream stream = BernoulliStream(2000, 0.5, 2);
  const ReplayReport report =
      ReplayAndCompare(stream, **subject, **reference, 100);
  EXPECT_GT(report.max_relative_error, 0.0);
  EXPECT_LE(report.max_relative_error, 1.3);  // (1+eps)^2 slack
  EXPECT_LE(report.mean_relative_error, report.max_relative_error);
}

TEST(ReplayTest, MaxStorageBits) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kCeh)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  const Stream stream = BernoulliStream(1000, 0.8, 3);
  const size_t bits = ReplayMaxStorageBits(stream, **subject, 100);
  EXPECT_GT(bits, 0u);
  EXPECT_LT(bits, 100000u);
}

}  // namespace
}  // namespace tds
