#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "apps/gateway.h"
#include "apps/holding_policy.h"
#include "apps/red.h"
#include "apps/usage_profile.h"
#include "core/wbmh.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "util/random.h"

namespace tds {
namespace {

TEST(RedEstimatorTest, ValidatesThresholds) {
  auto decay = ExponentialDecay::Create(0.1).value();
  RedEstimator::Options options;
  options.min_threshold = 10.0;
  options.max_threshold = 5.0;
  EXPECT_FALSE(RedEstimator::Create(decay, options).ok());
  options.max_threshold = 20.0;
  options.max_probability = 0.0;
  EXPECT_FALSE(RedEstimator::Create(decay, options).ok());
}

TEST(RedEstimatorTest, DropProbabilityRamps) {
  auto decay = ExponentialDecay::Create(0.1).value();
  RedEstimator::Options options;
  options.min_threshold = 5.0;
  options.max_threshold = 15.0;
  options.max_probability = 0.1;
  auto red = RedEstimator::Create(decay, options);
  ASSERT_TRUE(red.ok());
  EXPECT_DOUBLE_EQ(red->DropProbability(3.0), 0.0);
  EXPECT_DOUBLE_EQ(red->DropProbability(10.0), 0.05);
  EXPECT_DOUBLE_EQ(red->DropProbability(20.0), 1.0);
}

TEST(RedEstimatorTest, AverageTracksCongestion) {
  auto decay = ExponentialDecay::Create(0.05).value();
  auto red = RedEstimator::Create(decay, RedEstimator::Options{});
  ASSERT_TRUE(red.ok());
  // Idle queue: no drops.
  Tick t = 1;
  for (; t <= 200; ++t) EXPECT_EQ(red->OnQueueSample(t, 1), 0.0);
  // Sustained congestion: average climbs above min_threshold -> drops.
  double drop = 0.0;
  for (; t <= 400; ++t) drop = red->OnQueueSample(t, 30);
  EXPECT_GT(drop, 0.0);
  EXPECT_GT(red->AverageQueue(400), 5.0);
  // Congestion clears: average decays back down.
  for (; t <= 1000; ++t) red->OnQueueSample(t, 0);
  EXPECT_LT(red->AverageQueue(1000), 5.0);
}

TEST(CircuitHoldingPolicyTest, RanksIdleCircuitsForClosure) {
  auto decay = ExponentialDecay::Create(0.01).value();
  auto policy = CircuitHoldingPolicy::Create(decay, {});
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy->AddCircuit("chatty").ok());
  ASSERT_TRUE(policy->AddCircuit("quiet").ok());
  // "chatty" bursts every 5 ticks; "quiet" every 100.
  for (Tick t = 5; t <= 1000; t += 5) ASSERT_TRUE(policy->OnBurst("chatty", t).ok());
  for (Tick t = 100; t <= 1000; t += 100) {
    ASSERT_TRUE(policy->OnBurst("quiet", t).ok());
  }
  const auto ordering = policy->CloseOrdering(1000);
  ASSERT_EQ(ordering.size(), 2u);
  EXPECT_EQ(ordering.front().first, "quiet");  // close the idle one first
  auto chatty = policy->AnticipatedIdle("chatty", 1000);
  auto quiet = policy->AnticipatedIdle("quiet", 1000);
  ASSERT_TRUE(chatty.ok());
  ASSERT_TRUE(quiet.ok());
  EXPECT_LT(*chatty, *quiet);
}

TEST(CircuitHoldingPolicyTest, UnknownCircuitRejected) {
  auto decay = ExponentialDecay::Create(0.01).value();
  auto policy = CircuitHoldingPolicy::Create(decay, {});
  ASSERT_TRUE(policy.ok());
  EXPECT_FALSE(policy->OnBurst("ghost", 5).ok());
  EXPECT_FALSE(policy->AnticipatedIdle("ghost", 5).ok());
}

// The Figure 1 scenario: L1 suffers a large failure; 24h later L2 suffers a
// small one. Right after L2's failure, recency makes L2 look worse under
// POLYD; as the age difference becomes negligible relative to elapsed time
// the weights converge and severity takes over, so L2 (30 min) must emerge
// as more reliable than L1 (300 min). Under EXPD the relative weights are
// frozen, so whichever path is preferred just after the failures stays
// preferred forever — the paper's critique.
TEST(GatewaySelectorTest, PolynomialDecayCrossesOverExponentialDoesNot) {
  const Tick l1_failure = 1000;
  const Tick l2_failure = l1_failure + 1440;  // 24h later (minutes)
  const uint64_t l1_severity = 300;           // 5h outage
  const uint64_t l2_severity = 30;            // 30min outage
  const Tick horizon = l2_failure + 40000;

  auto run = [&](DecayPtr decay) {
    auto selector = GatewaySelector::Create(decay, {});
    EXPECT_TRUE(selector.ok());
    const int l1 = selector->AddPath("L1").value();
    const int l2 = selector->AddPath("L2").value();
    EXPECT_TRUE(selector->ReportBadness(l1, l1_failure, l1_severity).ok());
    EXPECT_TRUE(selector->ReportBadness(l2, l2_failure, l2_severity).ok());
    std::vector<int> winners;
    for (Tick t = l2_failure + 1; t <= horizon; t += 500) {
      winners.push_back(selector->BestPath(t).value());
    }
    return winners;
  };

  // EXPD with moderate decay: right after L2's failure, L1's big failure is
  // a day old; whichever path EXPD prefers then, it prefers forever.
  {
    auto winners = run(ExponentialDecay::Create(0.001).value());
    for (size_t i = 1; i < winners.size(); ++i) {
      EXPECT_EQ(winners[i], winners[0]) << "EXPD ranking must never flip";
    }
  }
  // POLYD: initially L2 (fresh failure, decayed badness high) rates worse
  // than L1; as ages converge the severity difference dominates and L2
  // emerges as the more reliable path.
  {
    auto winners = run(PolynomialDecay::Create(2.0).value());
    EXPECT_EQ(winners.front(), 0) << "right after L2's failure, L1 wins";
    EXPECT_EQ(winners.back(), 1) << "eventually L2 must win (severity)";
  }
}

TEST(GatewaySelectorTest, PathManagement) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto selector = GatewaySelector::Create(decay, {});
  ASSERT_TRUE(selector.ok());
  EXPECT_FALSE(selector->BestPath(1).ok());
  EXPECT_FALSE(selector->ReportBadness(0, 1, 1).ok());
  const int a = selector->AddPath("A").value();
  EXPECT_EQ(a, 0);
  EXPECT_TRUE(selector->ReportBadness(a, 5, 10).ok());
  EXPECT_GT(selector->Rating(a, 10).value(), 0.0);
  EXPECT_FALSE(selector->Rating(7, 10).ok());
}

TEST(UsageProfileSetTest, SharedLayoutAmortizesStorage) {
  auto decay = PolynomialDecay::Create(1.5).value();
  UsageProfileSet::Options options;
  options.epsilon = 0.5;
  auto profiles = UsageProfileSet::Create(decay, options);
  ASSERT_TRUE(profiles.ok());
  Rng rng(41);
  const int customers = 500;
  for (Tick t = 1; t <= 2000; ++t) {
    // A few random customers are active per tick.
    for (int k = 0; k < 5; ++k) {
      profiles->Record(rng.NextBelow(customers), t, 1 + rng.NextBelow(3));
    }
  }
  profiles->SyncAll(2000);
  EXPECT_EQ(profiles->CustomerCount(), static_cast<size_t>(customers));
  // Per-customer state must be tiny compared to one full histogram with
  // boundaries: mean bits per customer stays in the low hundreds.
  EXPECT_LT(profiles->MeanCustomerBits(), 600.0);
  EXPECT_GT(profiles->Query(0, 2000), 0.0);
  EXPECT_DOUBLE_EQ(profiles->Query(999999, 2000), 0.0);
  // After SyncAll, the shared op log is trimmed.
  EXPECT_EQ(profiles->layout().LogStart(), profiles->layout().OpSeq());
}

TEST(UsageProfileSetTest, LateJoinerStartsCleanAfterTrim) {
  auto decay = PolynomialDecay::Create(1.0).value();
  UsageProfileSet::Options options;
  auto profiles = UsageProfileSet::Create(decay, options);
  ASSERT_TRUE(profiles.ok());
  for (Tick t = 1; t <= 1000; ++t) profiles->Record(1, t, 1);
  profiles->SyncAll(1000);  // trims the shared op log
  // A brand-new customer after the trim must work (starts at the trimmed
  // op sequence) and not see anyone else's data.
  profiles->Record(2, 1001, 5);
  EXPECT_GT(profiles->Query(2, 1001), 0.0);
  EXPECT_GT(profiles->Query(1, 1001), profiles->Query(2, 1001));
}

TEST(RedEstimatorTest, PolynomialDecayStaysCautiousLonger) {
  // After a congestion burst ends, the POLYD average must sit above the
  // EXPD average for a sustained period (the router_red example's claim).
  RedEstimator::Options options;
  auto ewma =
      RedEstimator::Create(ExponentialDecay::Create(0.05).value(), options);
  auto polyd =
      RedEstimator::Create(PolynomialDecay::Create(1.2).value(), options);
  ASSERT_TRUE(ewma.ok());
  ASSERT_TRUE(polyd.ok());
  Tick t = 1;
  for (; t <= 300; ++t) {
    ewma->OnQueueSample(t, 30);
    polyd->OnQueueSample(t, 30);
  }
  int polyd_higher = 0;
  for (; t <= 800; ++t) {
    ewma->OnQueueSample(t, 0);
    polyd->OnQueueSample(t, 0);
    if (t > 350 && polyd->AverageQueue(t) > ewma->AverageQueue(t)) {
      ++polyd_higher;
    }
  }
  EXPECT_GT(polyd_higher, 400);
}

TEST(UsageProfileSetTest, QueriesMatchPrivateStructure) {
  auto decay = PolynomialDecay::Create(1.0).value();
  UsageProfileSet::Options options;
  options.epsilon = 1.0;
  options.count_epsilon = 0.0;
  auto profiles = UsageProfileSet::Create(decay, options);
  ASSERT_TRUE(profiles.ok());
  WbmhDecayedSum::Options solo_options;
  solo_options.epsilon = 1.0;
  solo_options.count_epsilon = 0.0;
  auto solo = WbmhDecayedSum::Create(decay, solo_options);
  ASSERT_TRUE(solo.ok());
  for (Tick t = 1; t <= 1500; t += 3) {
    profiles->Record(42, t, 2);
    (*solo)->Update(t, 2);
  }
  EXPECT_DOUBLE_EQ(profiles->Query(42, 1500), (*solo)->Query(1500));
}

}  // namespace
}  // namespace tds
