// Differential test for the batch-first API: UpdateBatch must leave every
// backend in a state bit-identical to feeding the same items through Update
// one at a time — equal StorageBits, equal Query results at several
// evaluation times, and green structural audits — under fuzzed batch
// shapes (same-tick runs, tick gaps, zero values, empty batches).
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/ceh.h"
#include "core/factory.h"
#include "core/wbmh.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "stream/stream.h"
#include "util/random.h"

namespace tds {
namespace {

Status BackendAudit(DecayedAggregate& aggregate) {
  if (auto* ceh = dynamic_cast<CehDecayedSum*>(&aggregate)) {
    return ceh->AuditInvariants();
  }
  if (auto* wbmh = dynamic_cast<WbmhDecayedSum*>(&aggregate)) {
    return wbmh->AuditInvariants();
  }
  return Status::OK();
}

TEST(BatchDifferentialTest, BatchBitIdenticalToPerItemUnderFuzz) {
  struct Config {
    DecayPtr decay;
    Backend backend;
  };
  const std::vector<Config> configs = {
      // Plain EH semantics (SLIWIN -> CEH degenerates to the EH).
      {SlidingWindowDecay::Create(1024).value(), Backend::kCeh},
      // CEH proper over a general decay.
      {PolynomialDecay::Create(1.0).value(), Backend::kCeh},
      // WBMH with its per-distinct-tick amortized batch path.
      {PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
      {PolynomialDecay::Create(2.5).value(), Backend::kWbmh},
      // Coarse CEH shares the EH cascade through its own batch grouping.
      {PolynomialDecay::Create(1.0).value(), Backend::kCoarseCeh},
      // Register backends with fused same-tick batch paths.
      {ExponentialDecay::Create(0.01).value(), Backend::kEwma},
      {PolyExponentialDecay::Create(2, 0.05).value(), Backend::kPolyExp},
      // Backends on the default (loop) path, for interface coverage.
      {ExponentialDecay::Create(0.01).value(), Backend::kRecentItems},
      {PolynomialDecay::Create(1.0).value(), Backend::kExact},
  };
  for (const Config& config : configs) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      const AggregateOptions options = AggregateOptions::Builder()
                                           .backend(config.backend)
                                           .epsilon(0.1)
                                           .Build()
                                           .value();
      auto per_item = MakeDecayedSum(config.decay, options);
      auto batched = MakeDecayedSum(config.decay, options);
      ASSERT_TRUE(per_item.ok());
      ASSERT_TRUE(batched.ok());

      Rng rng(seed * 7919 + static_cast<uint64_t>(config.backend));
      Tick t = 1;
      for (int round = 0; round < 30; ++round) {
        // Fuzzed batch shape: bursts of same-tick items with occasional
        // gaps, values including zero, sometimes an empty batch.
        std::vector<StreamItem> batch;
        const size_t size = rng.NextBelow(120);
        for (size_t i = 0; i < size; ++i) {
          if (rng.NextBelow(4) == 0) t += static_cast<Tick>(rng.NextBelow(9));
          batch.push_back(StreamItem{t, rng.NextBelow(6)});
        }
        for (const StreamItem& item : batch) {
          (*per_item)->Update(item.t, item.value);
        }
        (*batched)->UpdateBatch(batch);

        ASSERT_EQ((*per_item)->StorageBits(), (*batched)->StorageBits())
            << (*per_item)->Name() << "/" << config.decay->Name()
            << " seed=" << seed << " round=" << round;
        for (const Tick now : {t, t + 17, t + 1000}) {
          ASSERT_DOUBLE_EQ((*per_item)->Query(now), (*batched)->Query(now))
              << (*per_item)->Name() << "/" << config.decay->Name()
              << " seed=" << seed << " now=" << now;
        }
        ASSERT_TRUE(BackendAudit(**per_item).ok());
        ASSERT_TRUE(BackendAudit(**batched).ok());
      }
    }
  }
}

TEST(BatchDifferentialTest, EmptyAndSingletonBatches) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options =
      AggregateOptions::Builder().backend(Backend::kWbmh).Build().value();
  auto subject = MakeDecayedSum(decay, options);
  ASSERT_TRUE(subject.ok());
  (*subject)->UpdateBatch({});  // no-op
  const StreamItem one{5, 3};
  (*subject)->UpdateBatch({&one, 1});
  EXPECT_DOUBLE_EQ((*subject)->Query(5), 3.0 * decay->Weight(1));
}

}  // namespace
}  // namespace tds
