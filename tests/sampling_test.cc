#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "sampling/bottom_k_mvd.h"
#include "sampling/decayed_quantile.h"
#include "sampling/decayed_sampler.h"
#include "sampling/mvd_list.h"
#include "util/random.h"

namespace tds {
namespace {

TEST(MvdListTest, RanksStrictlyIncreaseWithTime) {
  MvdList list(1);
  for (Tick t = 1; t <= 2000; ++t) list.Add(t, static_cast<double>(t));
  uint64_t prev = 0;
  for (const auto& entry : list.entries()) {
    EXPECT_GT(entry.rank, prev);
    prev = entry.rank;
  }
}

TEST(MvdListTest, SizeIsLogarithmic) {
  MvdList list(2);
  for (Tick t = 1; t <= 100000; ++t) list.Add(t, 0.0);
  // Expected size ~ H_n ~ ln(100000) ~ 11.5; allow generous slack.
  EXPECT_LE(list.Size(), 60u);
  EXPECT_GE(list.Size(), 2u);
}

TEST(MvdListTest, MinRankSinceFindsWindowMinimum) {
  MvdList list(3);
  for (Tick t = 1; t <= 500; ++t) list.Add(t, static_cast<double>(t));
  // The last item is always retained; a window of 1 returns it.
  auto last = list.MinRankSince(500);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->t, 500);
  // Full-window selection returns the globally minimal rank = front.
  auto full = list.MinRankSince(1);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->rank, list.entries().front().rank);
  EXPECT_FALSE(list.MinRankSince(501).has_value());
}

TEST(MvdListTest, UniformSelectionOverWindow) {
  // Repeated independent MV/D lists: the min-rank item of a fixed window is
  // uniform over the window's items.
  const Tick window_start = 51, window_end = 100;
  std::map<Tick, int> histogram;
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    MvdList list(1000 + trial);
    for (Tick t = 1; t <= window_end; ++t) list.Add(t, 0.0);
    auto pick = list.MinRankSince(window_start);
    ASSERT_TRUE(pick.has_value());
    ++histogram[pick->t];
  }
  const double expected = trials / 50.0;
  for (Tick t = window_start; t <= window_end; ++t) {
    EXPECT_NEAR(histogram[t], expected, expected * 0.35) << "t=" << t;
  }
}

TEST(MvdListTest, ExpireDropsOldEntries) {
  MvdList list(4);
  for (Tick t = 1; t <= 100; ++t) list.Add(t, 0.0);
  list.ExpireOlderThan(90);
  for (const auto& entry : list.entries()) EXPECT_GE(entry.t, 90);
}

TEST(DecayedSamplerTest, EmptyReturnsNullopt) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto sampler = DecayedSampler::Create(decay, {});
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  EXPECT_FALSE(sampler->Sample(10, rng).has_value());
}

TEST(DecayedSamplerTest, SingleItemAlwaysSelected) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto sampler = DecayedSampler::Create(decay, {});
  ASSERT_TRUE(sampler.ok());
  sampler->Add(5, 3.14);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    auto pick = sampler->Sample(100, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->t, 5);
    EXPECT_DOUBLE_EQ(pick->value, 3.14);
  }
}

// Selection frequencies should track the decayed weights. Because one
// sampler's repeated draws share the MV/D randomness, we average over many
// independent samplers.
TEST(DecayedSamplerTest, SelectionFollowsDecayWeights) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const Tick n = 64;
  const Tick now = n;
  // Exact weights of items 1..n at time n.
  std::vector<double> weights(n + 1, 0.0);
  double total = 0.0;
  for (Tick t = 1; t <= n; ++t) {
    weights[t] = decay->Weight(AgeAt(t, now));
    total += weights[t];
  }
  std::vector<int> histogram(n + 1, 0);
  const int trials = 30000;
  Rng draw_rng(99);
  for (int trial = 0; trial < trials; ++trial) {
    DecayedSampler::Options options;
    options.seed = 5000 + trial;
    options.epsilon = 0.05;
    auto sampler = DecayedSampler::Create(decay, options);
    ASSERT_TRUE(sampler.ok());
    for (Tick t = 1; t <= n; ++t) sampler->Add(t, static_cast<double>(t));
    auto pick = sampler->Sample(now, draw_rng);
    ASSERT_TRUE(pick.has_value());
    ++histogram[pick->t];
  }
  // Compare aggregated frequencies over coarse age bands (single-item
  // frequencies are noisy and EH-bias-sensitive).
  struct Band {
    Tick lo, hi;
  };
  for (const Band& band : {Band{49, 64}, Band{17, 48}, Band{1, 16}}) {
    double expected = 0.0;
    int observed = 0;
    for (Tick t = band.lo; t <= band.hi; ++t) {
      expected += weights[t] / total;
      observed += histogram[t];
    }
    EXPECT_NEAR(static_cast<double>(observed) / trials, expected,
                0.15 * expected + 0.01)
        << "band [" << band.lo << "," << band.hi << "]";
  }
}

TEST(DecayedSamplerTest, SlidingWindowNeverPicksExpired) {
  auto decay = SlidingWindowDecay::Create(50).value();
  DecayedSampler::Options options;
  options.seed = 7;
  auto sampler = DecayedSampler::Create(decay, options);
  ASSERT_TRUE(sampler.ok());
  for (Tick t = 1; t <= 500; ++t) sampler->Add(t, static_cast<double>(t));
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    auto pick = sampler->Sample(500, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_GE(pick->t, 451) << "expired item selected";
  }
}

TEST(DecayedSamplerTest, RetainedItemsStaySmall) {
  auto decay = PolynomialDecay::Create(2.0).value();
  auto sampler = DecayedSampler::Create(decay, {});
  ASSERT_TRUE(sampler.ok());
  for (Tick t = 1; t <= 50000; ++t) sampler->Add(t, 0.0);
  EXPECT_LE(sampler->RetainedItems(), 64u);
}

TEST(DecayedQuantileTest, MedianOfUniformValues) {
  auto decay = SlidingWindowDecay::Create(1000).value();
  DecayedQuantile::Options options;
  options.copies = 65;
  options.seed = 21;
  auto quantile = DecayedQuantile::Create(decay, options);
  ASSERT_TRUE(quantile.ok());
  // Values 1..1000 all inside the window with equal weight: the q-quantile
  // is ~1000q.
  for (Tick t = 1; t <= 1000; ++t) {
    quantile->Add(t, static_cast<double>(t));
  }
  Rng rng(22);
  auto median = quantile->QueryMedian(1000, rng);
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(*median, 500.0, 170.0);
  auto p90 = quantile->Query(1000, 0.9, rng);
  ASSERT_TRUE(p90.has_value());
  EXPECT_GT(*p90, *median);
}

TEST(DecayedQuantileTest, DecayShiftsQuantiles) {
  // Old small values, recent large values: under strong decay the median
  // should reflect the recent regime.
  auto decay = PolynomialDecay::Create(3.0).value();
  DecayedQuantile::Options options;
  options.copies = 65;
  options.seed = 31;
  auto quantile = DecayedQuantile::Create(decay, options);
  ASSERT_TRUE(quantile.ok());
  for (Tick t = 1; t <= 900; ++t) quantile->Add(t, 1.0);
  for (Tick t = 901; t <= 1000; ++t) quantile->Add(t, 100.0);
  Rng rng(32);
  auto median = quantile->QueryMedian(1000, rng);
  ASSERT_TRUE(median.has_value());
  EXPECT_DOUBLE_EQ(*median, 100.0);
}

TEST(DecayedQuantileTest, EmptyReturnsNullopt) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto quantile = DecayedQuantile::Create(decay, {});
  ASSERT_TRUE(quantile.ok());
  Rng rng(1);
  EXPECT_FALSE(quantile->QueryMedian(10, rng).has_value());
}


TEST(BottomKMvdListTest, CreateValidates) {
  EXPECT_FALSE(BottomKMvdList::Create(1, 5).ok());
  EXPECT_TRUE(BottomKMvdList::Create(2, 5).ok());
}

TEST(BottomKMvdListTest, ExactForSmallWindows) {
  auto list = std::move(BottomKMvdList::Create(8, 9)).value();
  for (Tick t = 1; t <= 5; ++t) list.Add(t);
  EXPECT_DOUBLE_EQ(list.EstimateCountSince(1), 5.0);
  EXPECT_DOUBLE_EQ(list.EstimateCountSince(4), 2.0);
  EXPECT_DOUBLE_EQ(list.EstimateCountSince(6), 0.0);
}

TEST(BottomKMvdListTest, SizeStaysLogarithmic) {
  auto list = std::move(BottomKMvdList::Create(16, 10)).value();
  for (Tick t = 1; t <= 50000; ++t) list.Add(t);
  // Expected size ~ k * ln(n) ~ 16 * 10.8 ~ 173; generous slack.
  EXPECT_LE(list.Size(), 500u);
  EXPECT_GE(list.Size(), 16u);
}

TEST(BottomKMvdListTest, UnbiasedWindowCounts) {
  // Across many independent lists, the (k-1)/r_k estimate of a fixed
  // window's count must average to the true count.
  const Tick n = 4000;
  const Tick cutoff = 1500;  // true window count = 2501
  const double truth = static_cast<double>(n - cutoff + 1);
  const int trials = 300;
  double sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    auto list = std::move(BottomKMvdList::Create(32, 500 + trial)).value();
    for (Tick t = 1; t <= n; ++t) list.Add(t);
    sum += list.EstimateCountSince(cutoff);
  }
  const double mean = sum / trials;
  // Relative std of one estimate ~ 1/sqrt(k-2) ~ 0.18; mean of 300 ~ 0.011.
  EXPECT_NEAR(mean / truth, 1.0, 0.05);
}

TEST(BottomKMvdListTest, RetainedSupersetOfWindowBottomK) {
  // Every suffix window's k minimum ranks must be retained: verify against
  // a full shadow copy of all ranks.
  const int k = 4;
  auto list = std::move(BottomKMvdList::Create(k, 77)).value();
  // Shadow with identical rank sequence: reproduce by reading entries as
  // they are added (ranks of retained entries are visible; evicted ones
  // are the beaten ones). Instead verify the *property*: for each cutoff,
  // the k smallest retained ranks in range have at least (k) entries when
  // the window holds >= k items, and their count never exceeds total.
  const Tick n = 2000;
  for (Tick t = 1; t <= n; ++t) list.Add(t);
  for (Tick cutoff : {1, 500, 1500, 1990, 1999}) {
    int in_range = 0;
    for (const auto& entry : list.entries()) {
      if (entry.t >= cutoff) ++in_range;
    }
    const Tick window_items = n - cutoff + 1;
    EXPECT_GE(in_range, std::min<Tick>(window_items, k)) << cutoff;
  }
}

TEST(DecayedSamplerTest, UnbiasedCountOptionWorks) {
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedSampler::Options options;
  options.seed = 404;
  options.unbiased_count_k = 1;  // invalid
  EXPECT_FALSE(DecayedSampler::Create(decay, options).ok());
  options.unbiased_count_k = 16;
  auto sampler = DecayedSampler::Create(decay, options);
  ASSERT_TRUE(sampler.ok());
  for (Tick t = 1; t <= 500; ++t) sampler->Add(t, static_cast<double>(t));
  Rng rng(405);
  int hits = 0;
  for (int i = 0; i < 50; ++i) {
    hits += sampler->Sample(500, rng).has_value();
  }
  EXPECT_EQ(hits, 50);
}

}  // namespace
}  // namespace tds
