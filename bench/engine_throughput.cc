// Experiment ENG — ingestion throughput of the multi-stream engine
// (docs/ENGINE.md): items/sec of AggregateRegistry as a function of batch
// size (1 / 64 / 4096), of ShardedAggregateEngine as a function of shard
// count, and of concurrent ProducerSessions as a function of producers x
// shards, over a power-law keyed stream. Two reproduction targets: the
// batch-first claim (batch=4096 must beat batch=1 by >= 5x on at least one
// histogram backend) and the session-redesign claim (8 producers x 8
// shards must beat 1x1 by >= 2x — shared-lock routing used to make that
// ratio go *below* one).
//
// Usage: engine_throughput [--smoke] [--smoke-sessions] [--out PATH]
//   --smoke           small sizes for CI; exits nonzero if max batch
//                     speedup < 5x
//   --smoke-sessions  multi-producer gate only: 8x8 must beat 1x1 by
//                     >= 2x; prints a SKIPPED banner and exits 0 on hosts
//                     with < 8 cores (the ratio is meaningless without
//                     real parallelism)
//   --smoke-coldkey   flat-layout gate only: on a run-length-1 shuffled
//                     cold-key stream the flat (SoA) histogram layout must
//                     ingest >= 0.9x the legacy chain layout
//   --smoke-atomics   wrapper-parity gate only: a tds::Atomic SpscRing must
//                     hold >= 0.95x the throughput of a raw std::atomic
//                     twin, proving the -DTDS_MODELCHECK=OFF wrappers are
//                     zero-cost; self-skips in chaos/modelcheck builds
//                     where the wrapped ring is deliberately instrumented
//   --out             JSON results path (default BENCH_engine.json)
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/checkpoint_log.h"
#include "engine/engine.h"
#include "engine/producer_session.h"
#include "engine/registry.h"
#include "engine/spsc_ring.h"
#include "util/random.h"

namespace tds {
namespace {

struct BackendCase {
  std::string label;
  DecayPtr decay;
  Backend backend;
};

/// Bursty per-flow stream, the shape of the paper's applications (RED
/// per-flow state, per-customer usage): at any tick only a bounded set of
/// flows is active, a few heavy hitters recur every tick, and the long tail
/// churns across the full key space. Each 4096-item block is one tick with
/// 64 active flows drawn Pareto-style (rank = u^-2, so rank 1 recurs in
/// ~29% of draws while large ranks are effectively one-shot keys). Ticks
/// advance once per block, so every batch size in the sweep slices
/// identical (key, tick, value) sequences.
std::vector<KeyedItem> MakeStream(size_t items, uint64_t key_space,
                                  uint64_t seed) {
  constexpr size_t kBlock = 4096;
  constexpr size_t kActiveFlows = 64;
  std::vector<KeyedItem> stream;
  stream.reserve(items);
  Rng rng(seed);
  Tick t = 1;
  uint64_t active[kActiveFlows];
  for (size_t i = 0; i < items; ++i) {
    if (i % kBlock == 0) {
      if (i > 0) ++t;
      for (uint64_t& key : active) {
        const double u = rng.NextOpenDouble();
        const auto rank = static_cast<uint64_t>(1.0 / (u * u));
        key = std::min(rank - 1, key_space - 1);
      }
    }
    stream.push_back(KeyedItem{active[rng.NextBelow(kActiveFlows)], t,
                               1 + rng.NextBelow(4)});
  }
  return stream;
}

/// Cold-key stream: every 4096-item tick block visits 4096 DISTINCT keys in
/// freshly shuffled order (run length ~= 1 after the registry's per-tick
/// grouping), cycling through the whole key space so keys stay live but are
/// never touched twice in a row. Each lookup is a miss on a different slot
/// — the workload the flat bucket layout + grouped-path prefetching target,
/// and the one the bursty MakeStream shape (64 hot flows per block) hides.
std::vector<KeyedItem> MakeColdStream(size_t items, uint64_t key_space,
                                      uint64_t seed) {
  constexpr size_t kBlock = 4096;
  std::vector<KeyedItem> stream;
  stream.reserve(items);
  Rng rng(seed);
  std::vector<uint64_t> perm(key_space);
  for (uint64_t k = 0; k < key_space; ++k) perm[k] = k;
  size_t pos = key_space;  // trigger a shuffle on first use
  Tick t = 1;
  for (size_t i = 0; i < items; ++i) {
    if (i % kBlock == 0 && i > 0) ++t;
    if (pos >= key_space) {
      for (size_t j = key_space - 1; j > 0; --j) {
        std::swap(perm[j], perm[rng.NextBelow(j + 1)]);
      }
      pos = 0;
    }
    stream.push_back(KeyedItem{perm[pos++], t, 1 + rng.NextBelow(4)});
  }
  return stream;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::string backend;
  std::string sweep;       // "batch", "shard", "session", or "ckpt"
  size_t param = 0;        // batch size, shard count, or churn percentage
  size_t producers = 1;    // concurrent ProducerSessions feeding the engine
  size_t items = 0;
  size_t keys = 0;
  double seconds = 0.0;
  double items_per_sec = 0.0;
  double check = 0.0;  // QueryTotal at the end: keeps work observable
};

/// Incremental-checkpoint write amplification: seed `population` keys,
/// commit the full generation, then touch `churn_pct`% of the keys and
/// commit again. The row records the churn generation's bytes (items)
/// against the full generation's (keys); query_total carries the ratio —
/// the <0.10 @ 1% churn claim docs/ENGINE.md makes for the segment log.
Row RunCheckpointChurnCase(const BackendCase& bc, size_t population,
                           size_t churn_pct) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(bc.backend)
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  options.shards = 4;
  auto engine = ShardedAggregateEngine::Create(bc.decay, options);
  TDS_CHECK(engine.ok());
  TDS_CHECK((*engine)->EnableCheckpointTracking().ok());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tds_bench_ckptlog").string();
  std::filesystem::remove_all(dir);
  auto log = CheckpointLog::Create(**engine, dir, {});
  TDS_CHECK(log.ok());

  Rng rng(91);
  constexpr size_t kBatch = 4096;
  ProducerSessionOptions session_options;
  session_options.staging_capacity = kBatch;
  auto producer = (*engine)->NewProducer(session_options);
  TDS_CHECK(producer.ok());
  std::vector<KeyedItem> batch;
  batch.reserve(kBatch);
  Tick t = 1;
  const auto drain = [&] {
    TDS_CHECK((*producer)->AddBatch(batch).ok());
    TDS_CHECK((*producer)->Flush().ok());
    batch.clear();
  };
  for (uint64_t k = 0; k < population; ++k) {
    batch.push_back(KeyedItem{k, t, 1 + rng.NextBelow(4)});
    if (batch.size() >= kBatch) drain();
  }
  drain();
  TDS_CHECK(log->WriteIncremental().ok());
  const uint64_t full_bytes = log->LiveBytes();

  ++t;
  const size_t churn = std::max<size_t>(1, population * churn_pct / 100);
  for (size_t i = 0; i < churn; ++i) {
    batch.push_back(KeyedItem{rng.NextBelow(population), t, 1});
    if (batch.size() >= kBatch) drain();
  }
  drain();
  const auto start = std::chrono::steady_clock::now();
  TDS_CHECK(log->WriteIncremental().ok());
  const double seconds = SecondsSince(start);
  uint64_t delta_bytes = 0;
  for (const CheckpointLog::ManifestEntry& entry : log->manifest().entries) {
    if (entry.gen_hi == log->manifest().generation) {
      delta_bytes += entry.length;
    }
  }
  std::filesystem::remove_all(dir);

  Row row;
  row.backend = bc.label;
  row.sweep = "ckpt";
  row.param = churn_pct;
  row.items = delta_bytes;
  row.keys = full_bytes;
  row.seconds = seconds;
  row.items_per_sec = static_cast<double>(delta_bytes) / seconds;
  row.check = full_bytes == 0
                  ? 0.0
                  : static_cast<double>(delta_bytes) /
                        static_cast<double>(full_bytes);
  return row;
}

Row RunBatchCase(const BackendCase& bc, const std::vector<KeyedItem>& stream,
                 size_t key_space, size_t batch) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(bc.backend)
                          .epsilon(0.1)
                          .Build()
                          .value();
  auto registry = AggregateRegistry::Create(bc.decay, options);
  TDS_CHECK(registry.ok());
  const auto start = std::chrono::steady_clock::now();
  if (batch == 1) {
    for (const KeyedItem& item : stream) {
      registry->Update(item.key, item.t, item.value);
    }
  } else {
    for (size_t i = 0; i < stream.size(); i += batch) {
      const size_t n = std::min(batch, stream.size() - i);
      registry->UpdateBatch(
          std::span<const KeyedItem>(stream.data() + i, n));
    }
  }
  const double seconds = SecondsSince(start);
  Row row;
  row.backend = bc.label;
  row.sweep = "batch";
  row.param = batch;
  row.items = stream.size();
  row.keys = key_space;
  row.seconds = seconds;
  row.items_per_sec = static_cast<double>(stream.size()) / seconds;
  row.check = registry->QueryTotal(registry->now());
  return row;
}

/// Flat-vs-chain (and prefetch on/off) over the cold-key stream: same
/// registry path as RunBatchCase, with the layout and prefetch knobs
/// exposed. `label` lands in the JSON so the sweep rows are self-describing
/// ("CEH-flat", "CEH-flat-nopf", "CEH-chain").
Row RunColdKeyCase(const std::string& label, const DecayPtr& decay,
                   Backend backend, HistogramLayout layout, bool prefetch,
                   const std::vector<KeyedItem>& stream, size_t key_space,
                   size_t batch) {
  AggregateRegistry::Options options;
  options.aggregate = AggregateOptions::Builder()
                          .backend(backend)
                          .epsilon(0.1)
                          .layout(layout)
                          .Build()
                          .value();
  options.prefetch = prefetch;
  auto registry = AggregateRegistry::Create(decay, options);
  TDS_CHECK(registry.ok());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < stream.size(); i += batch) {
    const size_t n = std::min(batch, stream.size() - i);
    registry->UpdateBatch(std::span<const KeyedItem>(stream.data() + i, n));
  }
  const double seconds = SecondsSince(start);
  Row row;
  row.backend = label;
  row.sweep = "coldkey";
  row.param = batch;
  row.items = stream.size();
  row.keys = key_space;
  row.seconds = seconds;
  row.items_per_sec = static_cast<double>(stream.size()) / seconds;
  row.check = registry->QueryTotal(registry->now());
  return row;
}

Row RunShardCase(const BackendCase& bc, const std::vector<KeyedItem>& stream,
                 size_t key_space, uint32_t shards, size_t batch) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(bc.backend)
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  options.shards = shards;
  auto engine = ShardedAggregateEngine::Create(bc.decay, options);
  TDS_CHECK(engine.ok());
  ProducerSessionOptions session_options;
  session_options.staging_capacity = batch;
  const auto start = std::chrono::steady_clock::now();
  auto session = (*engine)->NewProducer(session_options);
  TDS_CHECK(session.ok());
  for (size_t i = 0; i < stream.size(); i += batch) {
    const size_t n = std::min(batch, stream.size() - i);
    TDS_CHECK((*session)
                  ->AddBatch(std::span<const KeyedItem>(stream.data() + i, n))
                  .ok());
  }
  TDS_CHECK((*session)->Flush().ok());
  TDS_CHECK((*engine)->Flush().ok());
  const double seconds = SecondsSince(start);
  Row row;
  row.backend = bc.label;
  row.sweep = "shard";
  row.param = shards;
  row.items = stream.size();
  row.keys = key_space;
  row.seconds = seconds;
  row.items_per_sec = static_cast<double>(stream.size()) / seconds;
  row.check = (*engine)->QueryTotal((*engine)->ShardSnapshot(0)->now());
  return row;
}

/// The producers-x-shards sweep the redesign exists for: `producers`
/// threads each own a ProducerSession and feed disjoint slices of the same
/// stream. Producers advance tick-block by tick-block behind a barrier —
/// every session flushes its slice of a block before anyone stages the
/// next one — so each shard sees non-decreasing ticks no matter how the
/// flushes interleave.
Row RunSessionCase(const BackendCase& bc, const std::vector<KeyedItem>& stream,
                   size_t key_space, size_t producers, uint32_t shards,
                   size_t batch) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(bc.backend)
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  options.shards = shards;
  auto engine = ShardedAggregateEngine::Create(bc.decay, options);
  TDS_CHECK(engine.ok());
  constexpr size_t kBlock = 4096;  // MakeStream's items-per-tick block
  std::barrier barrier(static_cast<std::ptrdiff_t>(producers));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      ProducerSessionOptions session_options;
      session_options.staging_capacity = batch;
      auto session = (*engine)->NewProducer(session_options);
      TDS_CHECK(session.ok());
      for (size_t base = 0; base < stream.size(); base += kBlock) {
        const size_t block = std::min(kBlock, stream.size() - base);
        const size_t chunk = (block + producers - 1) / producers;
        const size_t lo = std::min(p * chunk, block);
        const size_t hi = std::min(lo + chunk, block);
        if (hi > lo) {
          TDS_CHECK((*session)
                        ->AddBatch(std::span<const KeyedItem>(
                            stream.data() + base + lo, hi - lo))
                        .ok());
          TDS_CHECK((*session)->Flush().ok());
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  TDS_CHECK((*engine)->Flush().ok());
  const double seconds = SecondsSince(start);
  Row row;
  row.backend = bc.label;
  row.sweep = "session";
  row.param = shards;
  row.producers = producers;
  row.items = stream.size();
  row.keys = key_space;
  row.seconds = seconds;
  row.items_per_sec = static_cast<double>(stream.size()) / seconds;
  row.check = (*engine)->QueryTotal((*engine)->ShardSnapshot(0)->now());
  return row;
}

/// Raw std::atomic twin of SpscRing's cursor protocol (engine/spsc_ring.h):
/// the same loads, stores, and memory orders, without the tds::Atomic
/// wrapper in between. Exists only for the --smoke-atomics parity gate —
/// if the wrapper costs anything with -DTDS_MODELCHECK=OFF, this twin
/// pulls ahead and the gate fails. bench/ sits outside the raw-atomic lint
/// rule's src/ scope, so the std::atomic here needs no suppression.
class RawSpscRing {
 public:
  explicit RawSpscRing(size_t capacity) {
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  size_t TryPushN(const uint64_t* items, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t free_slots = slots_.size() - static_cast<size_t>(tail - head);
    const size_t count = n < free_slots ? n : free_slots;
    for (size_t i = 0; i < count; ++i) {
      slots_[static_cast<size_t>(tail + i) & mask_] = items[i];
    }
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  size_t TryPopN(uint64_t* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const size_t available = static_cast<size_t>(tail - head);
    const size_t count = max < available ? max : available;
    for (size_t i = 0; i < count; ++i) {
      out[i] = slots_[static_cast<size_t>(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

 private:
  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

/// One timed pass of `items` values through a ring in 64-item bursts —
/// push a burst, pop it back, accumulate a checksum so the compiler cannot
/// elide the copies. Works for both SpscRing<uint64_t> and RawSpscRing,
/// which share the TryPushN/TryPopN shape by construction.
template <typename Ring>
Row RunAtomicsCase(const char* label, size_t items) {
  constexpr size_t kBurst = 64;
  Ring ring(1024);
  uint64_t in[kBurst];
  uint64_t out[kBurst];
  for (size_t i = 0; i < kBurst; ++i) in[i] = i + 1;
  uint64_t checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t done = 0; done < items; done += kBurst) {
    TDS_CHECK(ring.TryPushN(in, kBurst) == kBurst);
    TDS_CHECK(ring.TryPopN(out, kBurst) == kBurst);
    checksum += out[kBurst - 1];
  }
  const double seconds = SecondsSince(start);
  Row row;
  row.backend = label;
  row.sweep = "atomics";
  row.param = kBurst;
  row.items = items;
  row.seconds = seconds;
  row.items_per_sec = static_cast<double>(items) / seconds;
  row.check = static_cast<double>(checksum);
  return row;
}

/// Interleaved best-of-`runs` for the wrapped and raw rings: alternating
/// the two variants run-by-run cancels frequency drift, and best-of picks
/// each variant's least-disturbed pass on a busy host.
void RunAtomicsParity(size_t items, int runs, Row* wrapped, Row* raw) {
  for (int r = 0; r < runs; ++r) {
    Row w = RunAtomicsCase<SpscRing<uint64_t>>("ring-wrapped", items);
    Row x = RunAtomicsCase<RawSpscRing>("ring-raw", items);
    if (w.items_per_sec > wrapped->items_per_sec) *wrapped = w;
    if (x.items_per_sec > raw->items_per_sec) *raw = x;
  }
}

void WriteJson(const std::string& path, const std::string& mode,
               const std::vector<Row>& rows, double max_speedup) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(f, "  \"max_batch_speedup\": %.3f,\n", max_speedup);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"sweep\": \"%s\", "
                 "\"param\": %zu, \"producers\": %zu, \"items\": %zu, "
                 "\"keys\": %zu, \"seconds\": %.6f, "
                 "\"items_per_sec\": %.1f, \"query_total\": %.6g}%s\n",
                 r.backend.c_str(), r.sweep.c_str(), r.param, r.producers,
                 r.items, r.keys, r.seconds, r.items_per_sec, r.check,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool smoke_sessions = false;
  bool smoke_coldkey = false;
  bool smoke_atomics = false;
  bool require_sanitizer_skip = false;
  std::string out = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--smoke-sessions") == 0) {
      smoke_sessions = true;
    } else if (std::strcmp(argv[i], "--smoke-coldkey") == 0) {
      smoke_coldkey = true;
    } else if (std::strcmp(argv[i], "--smoke-atomics") == 0) {
      smoke_atomics = true;
    } else if (std::strcmp(argv[i], "--require-sanitizer-skip") == 0) {
      require_sanitizer_skip = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--smoke-sessions] "
                   "[--smoke-coldkey] [--smoke-atomics] "
                   "[--require-sanitizer-skip] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (require_sanitizer_skip) {
    // Sanitizer builds must skip the perf-ratio gate with an explicit,
    // ctest-visible reason (SKIP_REGULAR_EXPRESSION matches this banner);
    // an unsanitized build being asked to skip is a build-system bug.
#ifdef TDS_SANITIZE_BUILD
    std::printf(
        "SKIPPED: engine_throughput smoke gate skipped under sanitizer "
        "build (perf ratios are meaningless with instrumentation)\n");
    return 0;
#else
    std::fprintf(stderr,
                 "--require-sanitizer-skip passed to a non-sanitizer build: "
                 "the smoke gate should have run for real\n");
    return 1;
#endif
  }
  if (smoke_sessions) {
    // The multi-producer gate: the redesign's headline ratio. On hosts
    // that cannot actually run 8 producer threads in parallel the ratio
    // measures scheduler time-slicing, not the ingest path, so the gate
    // self-skips with a ctest-visible banner rather than flaking.
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 8) {
      std::printf(
          "SKIPPED: engine_throughput multi-producer gate skipped on a "
          "%u-core host (8 producer sessions cannot run in parallel, so "
          "the 8x8 >= 2x 1x1 ratio is meaningless)\n",
          cores);
      return 0;
    }
    const size_t gate_items = 1 << 17;
    const size_t gate_keys = 1 << 16;
    const BackendCase bc{"CEH", SlidingWindowDecay::Create(4096).value(),
                         Backend::kCeh};
    const std::vector<KeyedItem> gate_stream =
        MakeStream(gate_items, gate_keys, 43);
    const Row solo = RunSessionCase(bc, gate_stream, gate_keys, 1, 1, 4096);
    const Row fleet = RunSessionCase(bc, gate_stream, gate_keys, 8, 8, 4096);
    const double ratio = fleet.items_per_sec / solo.items_per_sec;
    std::printf("session 8px8s vs 1px1s: %.0f vs %.0f items/sec (%.2fx)\n",
                fleet.items_per_sec, solo.items_per_sec, ratio);
    if (ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL: multi-producer gate requires 8 producers x 8 "
                   "shards >= 2x the 1x1 baseline\n");
      return 1;
    }
    return 0;
  }
  if (smoke_atomics) {
    // Wrapper zero-cost gate: with -DTDS_MODELCHECK=OFF, tds::Atomic is a
    // forwarding shim over std::atomic with no instrumentation branch, so
    // a SpscRing built on it must match a raw std::atomic twin. In builds
    // that deliberately instrument the wrapped ring the comparison would
    // measure the instrumentation, not the wrapper — skip with a
    // ctest-visible banner, same contract as the sanitizer skip.
#if defined(TDS_SCHED_CHAOS) || defined(TDS_MODELCHECK)
    std::printf(
        "SKIPPED: engine_throughput atomics parity gate skipped: the "
        "wrapped ring is deliberately instrumented in this build flavor "
        "(schedule chaos / model check), so wrapper-vs-raw parity is not "
        "measurable\n");
    return 0;
#else
    const size_t gate_items = size_t{1} << 25;
    Row wrapped;
    Row raw;
    RunAtomicsParity(gate_items, 5, &wrapped, &raw);
    const double ratio = wrapped.items_per_sec / raw.items_per_sec;
    std::printf(
        "atomics wrapped vs raw ring: %.0f vs %.0f items/sec (%.3fx)\n",
        wrapped.items_per_sec, raw.items_per_sec, ratio);
    if (ratio < 0.95) {
      std::fprintf(stderr,
                   "FAIL: atomics parity gate requires the tds::Atomic ring "
                   ">= 0.95x the raw std::atomic ring (the production "
                   "wrappers are supposed to be zero-cost)\n");
      return 1;
    }
    return 0;
#endif
  }
  if (smoke_coldkey) {
    // Regression gate for the flat-layout rework: on the run-length-1
    // cold-key workload the flat layout (with prefetching) must not fall
    // behind the legacy chain layout. A conservative 0.9x floor keeps the
    // gate robust against scheduler noise while still catching a layout
    // that tanks the hot path; the full bench records the actual win.
    const size_t gate_items = 1 << 18;
    const size_t gate_keys = 1 << 15;
    const std::vector<KeyedItem> gate_stream =
        MakeColdStream(gate_items, gate_keys, 47);
    const DecayPtr decay = SlidingWindowDecay::Create(4096).value();
    const Row flat =
        RunColdKeyCase("CEH-flat", decay, Backend::kCeh,
                       HistogramLayout::kFlat, true, gate_stream, gate_keys,
                       4096);
    const Row chain =
        RunColdKeyCase("CEH-chain", decay, Backend::kCeh,
                       HistogramLayout::kChain, false, gate_stream, gate_keys,
                       4096);
    const double ratio = flat.items_per_sec / chain.items_per_sec;
    std::printf("coldkey flat vs chain: %.0f vs %.0f items/sec (%.2fx)\n",
                flat.items_per_sec, chain.items_per_sec, ratio);
    if (ratio < 0.9) {
      std::fprintf(stderr,
                   "FAIL: cold-key gate requires the flat layout >= 0.9x "
                   "the chain layout\n");
      return 1;
    }
    return 0;
  }
  const size_t items = smoke ? 1 << 18 : 1 << 22;
  const size_t key_space = smoke ? 1 << 16 : 1 << 20;
  const size_t shard_items = smoke ? 1 << 17 : 1 << 21;

  const std::vector<BackendCase> cases = {
      {"CEH", SlidingWindowDecay::Create(4096).value(), Backend::kCeh},
      {"WBMH", PolynomialDecay::Create(1.0).value(), Backend::kWbmh},
      {"EWMA", ExponentialDecay::Create(0.001).value(), Backend::kEwma},
  };
  const std::vector<KeyedItem> stream = MakeStream(items, key_space, 42);
  const std::vector<KeyedItem> shard_stream =
      MakeStream(shard_items, key_space, 43);

  std::vector<Row> rows;
  double max_speedup = 0.0;
  std::printf("%-8s %-6s %10s %12s %14s\n", "backend", "sweep", "param",
              "seconds", "items/sec");
  for (const BackendCase& bc : cases) {
    double base = 0.0;
    for (const size_t batch : {size_t{1}, size_t{64}, size_t{4096}}) {
      const Row row = RunBatchCase(bc, stream, key_space, batch);
      rows.push_back(row);
      std::printf("%-8s %-6s %10zu %12.3f %14.0f\n", row.backend.c_str(),
                  row.sweep.c_str(), row.param, row.seconds,
                  row.items_per_sec);
      if (batch == 1) base = row.items_per_sec;
      if (batch == 4096 && base > 0.0) {
        const double speedup = row.items_per_sec / base;
        std::printf("%-8s batch=4096 vs batch=1 speedup: %.2fx\n",
                    bc.label.c_str(), speedup);
        if (speedup > max_speedup) max_speedup = speedup;
      }
    }
  }
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    const Row row = RunShardCase(cases[0], shard_stream, key_space, shards,
                                 4096);
    rows.push_back(row);
    std::printf("%-8s %-6s %10zu %12.3f %14.0f\n", row.backend.c_str(),
                row.sweep.c_str(), row.param, row.seconds, row.items_per_sec);
  }
  // Cold-key layout sweep: run-length ~= 1 shuffled keys, where per-slot
  // cache misses dominate. Three rows isolate the two mechanisms — flat
  // layout vs the legacy chain, and the grouped-path prefetch pipeline.
  {
    const size_t cold_items = smoke ? 1 << 18 : 1 << 21;
    const size_t cold_keys = smoke ? 1 << 15 : 1 << 17;
    const std::vector<KeyedItem> cold_stream =
        MakeColdStream(cold_items, cold_keys, 47);
    const DecayPtr cold_decay = SlidingWindowDecay::Create(4096).value();
    struct LayoutCase {
      const char* label;
      HistogramLayout layout;
      bool prefetch;
    };
    for (const LayoutCase lc :
         {LayoutCase{"CEH-flat", HistogramLayout::kFlat, true},
          LayoutCase{"CEH-flat-nopf", HistogramLayout::kFlat, false},
          LayoutCase{"CEH-chain", HistogramLayout::kChain, false}}) {
      const Row row =
          RunColdKeyCase(lc.label, cold_decay, Backend::kCeh, lc.layout,
                         lc.prefetch, cold_stream, cold_keys, 4096);
      rows.push_back(row);
      std::printf("%-14s %-7s %8zu %12.3f %14.0f\n", row.backend.c_str(),
                  row.sweep.c_str(), row.param, row.seconds,
                  row.items_per_sec);
    }
  }
  // Checkpoint write-amplification sweep: incremental bytes committed
  // after touching 100% / 10% / 1% of a settled key population. The 1%
  // row is the segment-log claim — its ratio (query_total) must sit well
  // under the 0.10 that rewriting the full snapshot would approximate.
  {
    const size_t population = smoke ? size_t{1} << 12 : size_t{1} << 15;
    for (const size_t churn_pct : {size_t{100}, size_t{10}, size_t{1}}) {
      const Row row = RunCheckpointChurnCase(cases[0], population, churn_pct);
      rows.push_back(row);
      std::printf("%-8s %-6s %9zu%% %12.3f %10zu/%zu B (%.3fx)\n",
                  row.backend.c_str(), row.sweep.c_str(), row.param,
                  row.seconds, row.items, row.keys, row.check);
    }
  }
  // Wrapper-parity rows: the tds::Atomic ring vs its raw std::atomic twin
  // (best-of-3, interleaved). The smoke gate asserts the >= 0.95x floor;
  // the full bench records the measured ratio here so BENCH_engine.json
  // carries the zero-cost evidence alongside the throughput sweeps.
#if !defined(TDS_SCHED_CHAOS) && !defined(TDS_MODELCHECK)
  {
    Row wrapped;
    Row raw;
    RunAtomicsParity(size_t{1} << 25, 3, &wrapped, &raw);
    for (const Row& row : {wrapped, raw}) {
      rows.push_back(row);
      std::printf("%-14s %-7s %8zu %12.3f %14.0f\n", row.backend.c_str(),
                  row.sweep.c_str(), row.param, row.seconds,
                  row.items_per_sec);
    }
  }
#endif
  struct Combo {
    size_t producers;
    uint32_t shards;
  };
  for (const Combo combo : {Combo{1, 1}, Combo{1, 8}, Combo{2, 2},
                            Combo{4, 4}, Combo{8, 8}}) {
    const Row row = RunSessionCase(cases[0], shard_stream, key_space,
                                   combo.producers, combo.shards, 4096);
    rows.push_back(row);
    std::printf("%-8s %-6s %5zupx%3us %12.3f %14.0f\n", row.backend.c_str(),
                row.sweep.c_str(), row.producers, combo.shards, row.seconds,
                row.items_per_sec);
  }

  WriteJson(out, smoke ? "smoke" : "full", rows, max_speedup);
  std::printf("max batch=4096 speedup over batch=1: %.2fx\n", max_speedup);
  if (smoke && max_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: smoke gate requires >= 5x batch speedup on at least "
                 "one backend\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tds

int main(int argc, char** argv) { return tds::Main(argc, argv); }
