#ifndef TDS_BENCH_BENCH_UTIL_H_
#define TDS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace tds::bench {

/// Prints a fixed-width table row.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double value, int precision = 4) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

inline std::string FmtInt(long long value) { return std::to_string(value); }

inline void Header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace tds::bench

#endif  // TDS_BENCH_BENCH_UTIL_H_
