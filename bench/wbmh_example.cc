// Experiment EX-WBMH — regenerates the paper's Section 5 worked example:
// decay g(x) = 1/x^2 with (1 + eps) = 5. The paper derives region
// boundaries b_1 = 3, b_2 = 7, b_3 = 16 and prints the bucket
// configurations (as weight tuples) at T = 1,2,3,4,6,8,9,10; the newest
// bucket alternates between time-width 1 and 2. This binary prints the
// same trace from the deterministic WbmhLayout.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "decay/polynomial.h"
#include "histogram/wbmh_layout.h"

namespace tds {
namespace {

std::string WeightTuple(const WbmhLayout::BucketSpan& span, Tick now) {
  // The paper lists weights in increasing age order (newest slot first).
  std::string out = "(";
  for (Tick t = std::min(span.end, now); t >= span.start; --t) {
    const Tick age = AgeAt(t, now);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "1/%lld",
                  static_cast<long long>(age) * age);
    out += buffer;
    if (t > span.start) out += ",";
  }
  return out + ")";
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf(
      "EX-WBMH: g(x)=1/x^2, (1+eps)=5. Paper: regions b=(3,7,16,...);\n"
      "bucket weight tuples at T=1..10 as printed in Section 5.\n\n");
  WbmhLayout::Options options;
  options.decay = PolynomialDecay::Create(2.0).value();
  options.epsilon = 4.0;  // 1 + eps = 5
  auto layout = WbmhLayout::Create(options);
  if (!layout.ok()) {
    std::printf("layout error: %s\n", layout.status().ToString().c_str());
    return 1;
  }

  std::printf("region boundaries b_i: ");
  layout->RegionIndex(40);  // force extension past b_3
  for (size_t i = 1; i < layout->RegionStarts().size(); ++i) {
    std::printf("%lld ", static_cast<long long>(layout->RegionStarts()[i]));
  }
  std::printf("  (paper: 3 7 16)\n");
  std::printf("seal period b_1 - 1 = %lld (newest bucket alternates width "
              "1 and 2)\n\n",
              static_cast<long long>(layout->SealPeriod()));

  for (Tick t = 1; t <= 10; ++t) {
    layout->AdvanceTo(t);
    layout->Settle();
    std::printf("T=%2lld: ", static_cast<long long>(t));
    // Newest-first, as the paper prints them.
    auto spans = layout->Spans();
    for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
      if (it->start > t) continue;  // not-yet-started open bucket
      std::printf("%s; ", WeightTuple(*it, t).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper T=10: (1,1/4); (1/9,1/16,1/25,1/36); "
      "(1/49,1/64,1/81,1/100)\n");
  return 0;
}
