// Experiment DGF — decay-family geometry (Sections 3 and 5): for each decay
// function, the dynamic range D(g), the WBMH region count
// ceil(log_{1+eps} D(g)), measured bucket counts, and the WBMH-vs-CEH
// verdict the paper derives:
//   EXPD: log D = Theta(N) -> WBMH needs ~linear buckets; CEH wins.
//   POLYD: log D = alpha log N -> WBMH needs O(log N) buckets; WBMH wins.
//   sub-polynomial decay: even fewer buckets.
// Also ablates the two WBMH knobs (bucketing eps, count rounding eps) and
// the CEH bucket-weighting rule called out in DESIGN.md.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/ceh.h"
#include "core/exact.h"
#include "core/wbmh.h"
#include "decay/custom.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "histogram/wbmh_layout.h"
#include "stream/generators.h"

namespace tds {
namespace {

void GeometryTable() {
  const Tick n = 1 << 16;
  const double epsilon = 0.5;
  bench::Header("region/bucket geometry at N=2^16, eps=0.5");
  bench::PrintRow({"decay", "log2 D(g)", "regions", "buckets", "verdict"},
                  18);
  struct Entry {
    DecayPtr decay;
    const char* verdict;
  };
  std::vector<Entry> entries;
  entries.push_back({ExponentialDecay::Create(0.01).value(), "CEH wins"});
  entries.push_back({PolynomialDecay::Create(0.5).value(), "WBMH wins"});
  entries.push_back({PolynomialDecay::Create(1.0).value(), "WBMH wins"});
  entries.push_back({PolynomialDecay::Create(2.0).value(), "WBMH wins"});
  entries.push_back(
      {CustomDecay::Create(
           [](Tick age) {
             return 1.0 / (1.0 + std::log2(static_cast<double>(age)));
           },
           kInfiniteHorizon, "1/(1+log x)")
           .value(),
       "WBMH wins big"});
  for (const Entry& entry : entries) {
    WbmhLayout::Options options;
    options.decay = entry.decay;
    options.epsilon = epsilon;
    auto layout = WbmhLayout::Create(options);
    if (!layout.ok()) continue;
    layout->AdvanceTo(n);
    layout->Settle();
    const double log_d = std::log2(entry.decay->DynamicRange(n));
    bench::PrintRow({entry.decay->Name(), bench::Fmt(log_d, 4),
                     bench::FmtInt(layout->RegionCountUpTo(n)),
                     bench::FmtInt(static_cast<long long>(
                         layout->BucketCount())),
                     entry.verdict},
                    18);
  }
}

void RoundingAblation() {
  bench::Header("WBMH ablation: count rounding eps (POLYD alpha=1, N=2^15)");
  bench::PrintRow({"count.eps", "max.relerr", "bits"});
  auto decay = PolynomialDecay::Create(1.0).value();
  const Stream stream = BernoulliStream(1 << 15, 0.5, 7);
  for (double count_epsilon : {0.0, 0.05, 0.2, 0.5}) {
    WbmhDecayedSum::Options options;
    options.epsilon = 0.2;
    options.count_epsilon = count_epsilon;
    auto subject = WbmhDecayedSum::Create(decay, options);
    auto exact = ExactDecayedSum::Create(decay);
    double max_rel = 0.0;
    size_t i = 0;
    for (Tick t = 1; t <= (1 << 15); ++t) {
      if (i < stream.size() && stream[i].t == t) {
        (*subject)->Update(t, stream[i].value);
        (*exact)->Update(t, stream[i].value);
        ++i;
      }
      if (t % 4096 == 0) {
        const double truth = (*exact)->Query(t);
        if (truth > 0) {
          max_rel = std::max(max_rel,
                             std::fabs((*subject)->Query(t) - truth) / truth);
        }
      }
    }
    bench::PrintRow({bench::Fmt(count_epsilon, 2), bench::Fmt(max_rel, 3),
                     bench::FmtInt(static_cast<long long>(
                         (*subject)->StorageBits()))});
  }
}

void BucketingAblation() {
  bench::Header("WBMH ablation: bucketing eps (POLYD alpha=2, N=2^15)");
  bench::PrintRow({"eps", "buckets", "max.relerr", "bits"});
  auto decay = PolynomialDecay::Create(2.0).value();
  const Stream stream = BernoulliStream(1 << 15, 0.5, 8);
  for (double epsilon : {1.0, 0.5, 0.2, 0.05}) {
    WbmhDecayedSum::Options options;
    options.epsilon = epsilon;
    options.count_epsilon = 0.0;
    auto subject = WbmhDecayedSum::Create(decay, options);
    auto exact = ExactDecayedSum::Create(decay);
    double max_rel = 0.0;
    size_t i = 0;
    for (Tick t = 1; t <= (1 << 15); ++t) {
      if (i < stream.size() && stream[i].t == t) {
        (*subject)->Update(t, stream[i].value);
        (*exact)->Update(t, stream[i].value);
        ++i;
      }
      if (t % 4096 == 0) {
        const double truth = (*exact)->Query(t);
        if (truth > 0) {
          max_rel = std::max(max_rel,
                             std::fabs((*subject)->Query(t) - truth) / truth);
        }
      }
    }
    bench::PrintRow({bench::Fmt(epsilon, 2),
                     bench::FmtInt(static_cast<long long>(
                         (*subject)->layout().BucketCount())),
                     bench::Fmt(max_rel, 3),
                     bench::FmtInt(static_cast<long long>(
                         (*subject)->StorageBits()))});
  }
}

}  // namespace
}  // namespace tds

int main() {
  std::printf(
      "DGF: decay-family geometry and the WBMH-vs-CEH verdicts "
      "(Section 5).\n");
  tds::GeometryTable();
  tds::RoundingAblation();
  tds::BucketingAblation();
  return 0;
}
