// Experiment THR — update/query throughput of every maintenance structure
// (google-benchmark). The paper's algorithms are designed for per-item
// streaming cost O(1) amortized (EH/WBMH) or O(1) exact (EWMA); this
// harness verifies the implementations sustain millions of updates/sec.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "moments/decayed_variance.h"
#include "sampling/decayed_sampler.h"
#include "sketch/decayed_lp_norm.h"
#include "util/random.h"

namespace tds {
namespace {

std::unique_ptr<DecayedAggregate> MakeSubject(Backend backend) {
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(backend)
                                   .epsilon(0.1)
                                   .Build()
                                   .value();
  DecayPtr decay;
  switch (backend) {
    case Backend::kEwma:
    case Backend::kRecentItems:
      decay = ExponentialDecay::Create(0.001).value();
      break;
    case Backend::kWbmh:
    case Backend::kCoarseCeh:
      decay = PolynomialDecay::Create(1.0).value();
      break;
    default:
      decay = SlidingWindowDecay::Create(1 << 16).value();
      break;
  }
  return std::move(MakeDecayedSum(decay, options)).value();
}

void BM_Update(benchmark::State& state, Backend backend) {
  auto subject = MakeSubject(backend);
  Rng rng(1);
  Tick t = 1;
  for (auto _ : state) {
    subject->Update(t, 1 + (rng.Next() & 1));
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Query(benchmark::State& state, Backend backend) {
  auto subject = MakeSubject(backend);
  for (Tick t = 1; t <= (1 << 15); ++t) subject->Update(t, 1);
  Tick now = 1 << 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subject->Query(now));
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_CAPTURE(BM_Update, ewma, Backend::kEwma);
BENCHMARK_CAPTURE(BM_Update, recent_items, Backend::kRecentItems);
BENCHMARK_CAPTURE(BM_Update, ceh_sliwin, Backend::kCeh);
BENCHMARK_CAPTURE(BM_Update, wbmh_polyd, Backend::kWbmh);
BENCHMARK_CAPTURE(BM_Update, coarse_ceh_polyd, Backend::kCoarseCeh);
BENCHMARK_CAPTURE(BM_Query, ewma, Backend::kEwma);
BENCHMARK_CAPTURE(BM_Query, ceh_sliwin, Backend::kCeh);
BENCHMARK_CAPTURE(BM_Query, wbmh_polyd, Backend::kWbmh);
BENCHMARK_CAPTURE(BM_Query, coarse_ceh_polyd, Backend::kCoarseCeh);

void BM_LpSketchUpdate(benchmark::State& state) {
  auto decay = PolynomialDecay::Create(1.0).value();
  DecayedLpNorm::Options options;
  options.rows = static_cast<int>(state.range(0));
  auto sketch = std::move(DecayedLpNorm::Create(decay, options)).value();
  Rng rng(2);
  Tick t = 1;
  for (auto _ : state) {
    sketch.Update(t, rng.NextBelow(1 << 16), 1 + rng.NextBelow(8));
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpSketchUpdate)->Arg(16)->Arg(64);

void BM_SamplerAdd(benchmark::State& state) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto sampler = std::move(DecayedSampler::Create(decay, {})).value();
  Tick t = 1;
  for (auto _ : state) {
    sampler.Add(t, static_cast<double>(t));
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerAdd);

void BM_SamplerDraw(benchmark::State& state) {
  auto decay = PolynomialDecay::Create(1.0).value();
  auto sampler = std::move(DecayedSampler::Create(decay, {})).value();
  for (Tick t = 1; t <= (1 << 14); ++t) sampler.Add(t, 0.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(1 << 14, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerDraw);

void BM_VarianceObserve(benchmark::State& state) {
  auto decay = PolynomialDecay::Create(1.0).value();
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(Backend::kCeh)
                                   .Build()
                                   .value();
  auto variance = std::move(DecayedVariance::Create(decay, options)).value();
  Rng rng(4);
  Tick t = 1;
  for (auto _ : state) {
    variance.Observe(t, rng.NextBelow(32));
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VarianceObserve);

}  // namespace
}  // namespace tds

BENCHMARK_MAIN();
