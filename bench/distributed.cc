// Experiment DIST — distributed sliding-window streams (the Gibbons &
// Tirthapura setting the paper cites in Section 1.2): k sites each
// maintain an EH over their local substream; a coordinator merges the k
// summaries and answers window queries over the union. Reports the
// coordinator's relative error and communication cost (bits shipped)
// versus a centralized EH over the full stream, across site counts, and
// the same for general decay via merged CEHs.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/ceh.h"
#include "core/exact.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "histogram/exponential_histogram.h"
#include "stream/generators.h"
#include "util/random.h"

namespace tds {
namespace {

void SliwinRow(int sites, const Stream& stream, Tick window) {
  const double epsilon = 0.1;
  ExponentialHistogram::Options options;
  options.epsilon = epsilon;
  options.window = window;
  std::vector<ExponentialHistogram> site_summaries;
  for (int s = 0; s < sites; ++s) {
    site_summaries.push_back(
        std::move(ExponentialHistogram::Create(options)).value());
  }
  auto centralized = std::move(ExponentialHistogram::Create(options)).value();
  Rng rng(4096 + sites);
  for (const StreamItem& item : stream) {
    site_summaries[rng.NextBelow(sites)].Add(item.t, item.value);
    centralized.Add(item.t, item.value);
  }
  const Tick end = StreamEnd(stream);
  auto coordinator = std::move(ExponentialHistogram::Create(options)).value();
  size_t shipped_bits = 0;
  for (auto& site : site_summaries) {
    site.AdvanceTo(end);
    shipped_bits += site.StorageBits();
    coordinator.MergeFrom(site).ok();
  }
  // Exact union count over the window.
  double exact = 0.0;
  for (const StreamItem& item : stream) {
    if (AgeAt(item.t, end) <= window) exact += static_cast<double>(item.value);
  }
  const double merged = coordinator.Estimate();
  const double central = centralized.Estimate();
  bench::PrintRow({bench::FmtInt(sites),
                   bench::Fmt(std::fabs(merged - exact) / exact, 3),
                   bench::Fmt(std::fabs(central - exact) / exact, 3),
                   bench::FmtInt(static_cast<long long>(shipped_bits)),
                   bench::FmtInt(static_cast<long long>(
                       centralized.StorageBits()))});
}

void CehRow(int sites, const Stream& stream) {
  auto decay = PolynomialDecay::Create(1.0).value();
  CehDecayedSum::Options options;
  options.epsilon = 0.1;
  std::vector<std::unique_ptr<CehDecayedSum>> site_summaries;
  for (int s = 0; s < sites; ++s) {
    site_summaries.push_back(
        std::move(CehDecayedSum::Create(decay, options)).value());
  }
  auto exact = ExactDecayedSum::Create(decay);
  Rng rng(9000 + sites);
  for (const StreamItem& item : stream) {
    site_summaries[rng.NextBelow(sites)]->Update(item.t, item.value);
    (*exact)->Update(item.t, item.value);
  }
  const Tick end = StreamEnd(stream);
  auto coordinator = std::move(CehDecayedSum::Create(decay, options)).value();
  for (auto& site : site_summaries) {
    site->Query(end);  // advance clocks
    coordinator->MergeFrom(*site).ok();
  }
  const double truth = (*exact)->Query(end);
  const double merged = coordinator->Query(end);
  bench::PrintRow({bench::FmtInt(sites),
                   bench::Fmt(std::fabs(merged - truth) / truth, 3)});
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf(
      "DIST: k-site distributed summaries merged at a coordinator\n"
      "(Gibbons-Tirthapura setting, Section 1.2 citation).\n\n");
  const Stream stream = BernoulliStream(20000, 0.8, 2718);
  std::printf("SLIWIN(4096) counts, eps=0.1:\n");
  bench::PrintRow({"sites", "merged.err", "central.err", "shipped bits",
                   "central bits"});
  for (int sites : {2, 4, 8, 16, 32}) {
    SliwinRow(sites, stream, 4096);
  }
  std::printf(
      "\nPOLYD(1) decayed sum via merged CEHs, eps=0.1 (merged.err vs "
      "exact):\n");
  bench::PrintRow({"sites", "merged.err"});
  for (int sites : {2, 8, 32}) {
    CehRow(sites, stream);
  }
  std::printf(
      "\nexpectation: merged error stays within ~2x the configured eps\n"
      "regardless of site count; shipped bits = k site summaries (polylog\n"
      "each), far below shipping the raw substreams.\n");
  return 0;
}
