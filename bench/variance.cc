// Experiment VAR — Section 7.3: time-decaying variance from three decayed
// aggregates (V_g = S_g(f^2) - S_g(f)^2 / C_g). Measures accuracy against
// the exact reference on level-shift workloads, including the documented
// cancellation regime (V << A^2) where relative accuracy degrades.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "moments/decayed_variance.h"
#include "moments/window_variance.h"
#include "stream/generators.h"

namespace tds {
namespace {

void Run(DecayPtr decay, const Stream& stream, const char* workload) {
  const AggregateOptions approx = AggregateOptions::Builder()
                                  .backend(Backend::kCeh)
                                  .epsilon(0.02)
                                  .Build()
                                  .value();
  const AggregateOptions exact = AggregateOptions::Builder()
                                 .backend(Backend::kExact)
                                 .Build()
                                 .value();
  auto subject = DecayedVariance::Create(decay, approx);
  auto reference = DecayedVariance::Create(decay, exact);
  if (!subject.ok() || !reference.ok()) return;
  for (const StreamItem& item : stream) {
    subject->Observe(item.t, item.value);
    reference->Observe(item.t, item.value);
  }
  const Tick now = StreamEnd(stream);
  const double v_true = reference->QueryVariance(now);
  const double v_est = subject->QueryVariance(now);
  const double mean_true = reference->QueryMean(now);
  const double mean_est = subject->QueryMean(now);
  const double noise_ratio =
      mean_true > 0 ? v_true / (mean_true * mean_true) : 0.0;
  bench::PrintRow({decay->Name(), workload, bench::Fmt(mean_true, 4),
                   bench::Fmt(mean_est / std::max(mean_true, 1e-12), 3),
                   bench::Fmt(v_true, 4),
                   bench::Fmt(v_est / std::max(v_true, 1e-12), 3),
                   bench::Fmt(noise_ratio, 2)},
                  16);
}

// Head-to-head under sliding-window decay: the paper's three-decayed-sums
// reduction vs the dedicated Babcock et al. variance histogram ([1]).
void WindowShowdown() {
  std::printf("\nSLIWIN variance: three-sums reduction vs [1]-style "
              "histogram (window=1500)\n");
  bench::PrintRow({"workload", "true var", "3-sums ratio", "[1] ratio",
                   "3-sums bits", "[1] bits"},
                  16);
  auto decay = SlidingWindowDecay::Create(1500).value();
  for (const auto& [label, stream] :
       std::vector<std::pair<const char*, Stream>>{
           {"level-shift", LevelShiftStream(6000, 3000, 4.0, 16.0, 42)},
           {"poisson", PoissonStream(6000, 9.0, 43)}}) {
    const AggregateOptions reduction_options = AggregateOptions::Builder()
                                               .backend(Backend::kCeh)
                                               .epsilon(0.02)
                                               .Build()
                                               .value();
    auto reduction = DecayedVariance::Create(decay, reduction_options);
    const AggregateOptions exact_options = AggregateOptions::Builder()
                                           .backend(Backend::kExact)
                                           .Build()
                                           .value();
    auto reference = DecayedVariance::Create(decay, exact_options);
    SlidingWindowVariance::Options window_options;
    window_options.epsilon = 0.1;
    window_options.window = 1500;
    auto histogram = SlidingWindowVariance::Create(window_options);
    for (const StreamItem& item : stream) {
      reduction->Observe(item.t, item.value);
      reference->Observe(item.t, item.value);
      histogram->Observe(item.t, static_cast<double>(item.value));
    }
    const Tick now = StreamEnd(stream);
    const double truth = reference->QueryVariance(now);
    bench::PrintRow(
        {label, bench::Fmt(truth, 4),
         bench::Fmt(reduction->QueryVariance(now) / truth, 3),
         bench::Fmt(histogram->Variance() / truth, 3),
         bench::FmtInt(static_cast<long long>(reduction->StorageBits())),
         bench::FmtInt(static_cast<long long>(histogram->StorageBits()))},
        16);
  }
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf(
      "VAR: decayed variance via three decayed sums (Section 7.3).\n"
      "est/true ratios near 1; accuracy degrades as V/A^2 -> 0\n"
      "(cancellation), which the last column exposes.\n\n");
  bench::PrintRow({"decay", "workload", "mean", "mean.ratio", "Vg/C",
                   "var.ratio", "V/A^2"},
                  16);
  const Stream shift = LevelShiftStream(6000, 3000, 4.0, 16.0, 42);
  const Stream noisy = PoissonStream(6000, 9.0, 43);
  const Stream near_constant = LevelShiftStream(6000, 1, 400.0, 400.0, 44);
  for (auto decay :
       {PolynomialDecay::Create(1.0).value(),
        PolynomialDecay::Create(2.0).value(),
        DecayPtr(SlidingWindowDecay::Create(1500).value()),
        DecayPtr(ExponentialDecay::Create(0.002).value())}) {
    Run(decay, shift, "level-shift");
    Run(decay, noisy, "poisson");
    Run(decay, near_constant, "cancellation");
  }
  tds::WindowShowdown();
  return 0;
}
