// Experiment STOR — the paper's storage-bound comparison (Sections 1.2, 3,
// 4, 5, 8). For a dense 0/1 stream of length N, measures the bits held by
// each maintenance algorithm at matched accuracy:
//   EWMA (EXPD)             Theta(log N)             [Lemma 3.1]
//   RecentItems (EXPD)      Theta(log N) * C(eps)    [Lemma 3.1]
//   EH == CEH (SLIWIN)      Theta(eps^-1 log^2 N)    [Datar et al / Sec 4]
//   CEH (POLYD)             O(eps^-1 log^2 N)        [Theorem 1]
//   WBMH (POLYD)            O(log N log log N)       [Lemma 5.1]
//   Morris (no decay)       Theta(log log N)         [intro]
// Absolute constants differ from the paper's model (we charge real
// timestamp/counter widths); the *shapes* — who grows like log, log^2,
// log log — are the reproduction target, plus the WBMH < CEH gap for
// POLYD at large N.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/ewma.h"
#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "util/morris.h"

namespace tds {
namespace {

size_t MeasureBits(DecayPtr decay, Backend backend, double epsilon, Tick n) {
  const AggregateOptions options = AggregateOptions::Builder()
                                   .backend(backend)
                                   .epsilon(epsilon)
                                   .Build()
                                   .value();
  auto subject = MakeDecayedSum(decay, options);
  if (!subject.ok()) return 0;
  for (Tick t = 1; t <= n; ++t) (*subject)->Update(t, 1);
  return (*subject)->StorageBits();
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  const double epsilon = 0.1;
  std::printf("STOR: storage bits vs N (dense 0/1 stream, eps=%.2f)\n",
              epsilon);
  bench::PrintRow({"N", "EWMA", "Recent", "EH/SLIWIN", "CEH/POLY1",
                   "WBMH/POLY1", "WBMH/POLY2", "COARSE/P1", "Morris"}, 12);
  std::vector<int> exponents = {8, 10, 12, 14, 16, 18, 20};
  std::vector<std::vector<double>> table;
  // Fixed lambda: the paper's N is elapsed time, so the decay parameter
  // must not shrink with N (otherwise both EXPD algorithms are O(1)).
  const double lambda = 1.0 / 64.0;
  for (int e : exponents) {
    const Tick n = Tick{1} << e;
    std::vector<double> row;
    {
      // Finite significand so the Theta(log N) exponent field is visible
      // over the mantissa constant.
      EwmaCounter::Options ewma_options;
      ewma_options.mantissa_bits = 16;
      auto ewma = EwmaCounter::Create(ExponentialDecay::Create(lambda).value(),
                                      ewma_options);
      for (Tick t = 1; t <= n; ++t) (*ewma)->Update(t, 1);
      row.push_back(static_cast<double>((*ewma)->StorageBits()));
    }
    row.push_back(static_cast<double>(
        MeasureBits(ExponentialDecay::Create(lambda).value(),
                    Backend::kRecentItems, epsilon, n)));
    row.push_back(static_cast<double>(
        MeasureBits(SlidingWindowDecay::Create(n).value(), Backend::kCeh,
                    epsilon, n)));
    row.push_back(static_cast<double>(
        MeasureBits(PolynomialDecay::Create(1.0).value(), Backend::kCeh,
                    epsilon, n)));
    row.push_back(static_cast<double>(
        MeasureBits(PolynomialDecay::Create(1.0).value(), Backend::kWbmh,
                    epsilon, n)));
    row.push_back(static_cast<double>(
        MeasureBits(PolynomialDecay::Create(2.0).value(), Backend::kWbmh,
                    epsilon, n)));
    row.push_back(static_cast<double>(
        MeasureBits(PolynomialDecay::Create(1.0).value(), Backend::kCoarseCeh,
                    epsilon, n)));
    {
      MorrisCounter::Options morris_options;
      morris_options.a = epsilon * epsilon * 2;  // rel std ~ eps
      morris_options.seed = 9;
      auto morris = MorrisCounter::Create(morris_options);
      morris->Add(static_cast<uint64_t>(n));
      row.push_back(static_cast<double>(morris->StorageBits()));
    }
    table.push_back(row);
    std::vector<std::string> cells = {"2^" + std::to_string(e)};
    for (double value : row) cells.push_back(bench::Fmt(value, 5));
    bench::PrintRow(cells, 12);
  }

  // Growth factors across the 4x N steps expose the asymptotic class:
  // log N doubles every squaring; log^2 N quadruples; log log N creeps.
  std::printf("\ngrowth factor per 4x N (last/first row ratios):\n");
  bench::PrintRow({"", "EWMA", "Recent", "EH/SLIWIN", "CEH/POLY1",
                   "WBMH/POLY1", "WBMH/POLY2", "COARSE/P1", "Morris"}, 12);
  std::vector<std::string> cells = {"total-ratio"};
  for (size_t c = 0; c < table.front().size(); ++c) {
    cells.push_back(bench::Fmt(table.back()[c] / table.front()[c], 3));
  }
  bench::PrintRow(cells, 12);
  std::printf(
      "\nreference ratios 2^8 -> 2^20: log: 2.5x, log^2: 6.3x, loglog: "
      "1.3x\n");

  // The eps axis: histogram storage carries the Theta(1/eps) bucket
  // factor; the single-register EWMA does not.
  std::printf("\nstorage bits vs eps at N = 2^18:\n");
  bench::PrintRow({"eps", "EH/SLIWIN", "CEH/POLY1", "WBMH/POLY1"}, 12);
  const Tick n18 = Tick{1} << 18;
  for (double eps : {0.5, 0.1, 0.02}) {
    std::vector<std::string> cells = {bench::Fmt(eps, 2)};
    cells.push_back(bench::Fmt(
        static_cast<double>(MeasureBits(SlidingWindowDecay::Create(n18).value(),
                                        Backend::kCeh, eps, n18)),
        6));
    cells.push_back(bench::Fmt(
        static_cast<double>(MeasureBits(PolynomialDecay::Create(1.0).value(),
                                        Backend::kCeh, eps, n18)),
        6));
    cells.push_back(bench::Fmt(
        static_cast<double>(MeasureBits(PolynomialDecay::Create(1.0).value(),
                                        Backend::kWbmh, eps, n18)),
        6));
    bench::PrintRow(cells, 12);
  }
  std::printf("expectation: ~linear growth in 1/eps for all three.\n");
  return 0;
}
