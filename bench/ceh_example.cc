// Experiment EX-CEH — regenerates the paper's Section 4.2 worked example:
// with consecutive weights g = (8, 5, 3, 2) at T = 4, the decaying count
//   8 f(3) + 5 f(2) + 3 f(1) + 2 f(0)
// is rewritten by summation by parts as a positively-weighted sum of
// sliding-window counts:
//   2 [f0+f1+f2+f3] + 1 [f1+f2+f3] + 2 [f2+f3] + 3 [f3].
// This binary evaluates both forms on exact window counts, then shows the
// CEH estimate (EH windows + cascade) against the exact decaying sum on a
// stream where the EH has actually merged buckets.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/ceh.h"
#include "core/exact.h"
#include "decay/custom.h"
#include "stream/generators.h"

namespace tds {
namespace {

// The example's weights: age 1 -> 8, age 2 -> 5, age 3 -> 3, age 4 -> 2.
// (The paper indexes elapsed time from 0; our age convention starts at 1.)
DecayPtr ExampleDecay() {
  return CustomDecay::Create(
             [](Tick age) -> double {
               switch (age) {
                 case 1: return 8.0;
                 case 2: return 5.0;
                 case 3: return 3.0;
                 case 4: return 2.0;
                 default: return 0.0;
               }
             },
             /*horizon=*/4, "paper-4.2")
      .value();
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf("EX-CEH: Section 4.2 example, weights (8,5,3,2).\n\n");

  // f(1..4) = values observed at ticks 1..4 (paper's f(0..3)).
  const std::vector<uint64_t> f = {3, 1, 4, 2};
  const Tick now = 4;

  double direct = 0.0;
  for (Tick t = 1; t <= 4; ++t) {
    direct += static_cast<double>(f[t - 1]) *
              ExampleDecay()->Weight(AgeAt(t, now));
  }
  // Summation by parts: weights differences (2, 3-2, 5-3, 8-5) over suffix
  // window counts.
  const double win4 = f[0] + f[1] + f[2] + f[3];
  const double win3 = f[1] + f[2] + f[3];
  const double win2 = f[2] + f[3];
  const double win1 = f[3];
  const double by_parts = 2 * win4 + (3 - 2) * win3 + (5 - 3) * win2 +
                          (8 - 5) * win1;
  std::printf("direct decaying sum      : %.1f\n", direct);
  std::printf("summation-by-parts form  : %.1f   (must match exactly)\n\n",
              by_parts);

  // Now the same decay maintained by a real CEH over a longer stream.
  auto decay = ExampleDecay();
  CehDecayedSum::Options options;
  options.epsilon = 0.1;
  auto ceh = CehDecayedSum::Create(decay, options);
  auto exact = ExactDecayedSum::Create(decay);
  const Stream stream = BernoulliStream(2000, 0.7, 4242);
  bench::PrintRow({"T", "exact S_g", "CEH S_g'", "rel.err", "EH buckets"});
  size_t i = 0;
  for (Tick t = 1; t <= 2000; ++t) {
    if (i < stream.size() && stream[i].t == t) {
      (*ceh)->Update(t, stream[i].value);
      (*exact)->Update(t, stream[i].value);
      ++i;
    }
    if (t % 250 == 0) {
      const double truth = (*exact)->Query(t);
      const double estimate = (*ceh)->Query(t);
      const double rel =
          truth > 0 ? std::abs(estimate - truth) / truth : 0.0;
      bench::PrintRow({bench::FmtInt(t), bench::Fmt(truth),
                       bench::Fmt(estimate), bench::Fmt(rel, 2),
                       bench::FmtInt(static_cast<long long>(
                           (*ceh)->histogram().BucketCount()))});
    }
  }
  return 0;
}
