// Experiment LB — Theorem 2 (Section 6) operationalized. The adversarial
// family places bursts C_i = n_i k^i (n_i in {1,2}) at times -k^{2i/alpha};
// querying at +k^{2i/alpha} makes slot i dominate, so a (1 +- 1/4)
// estimator must remember all r = Theta(log N) slot choices. We verify:
//  (1) separation: doubling slot i moves the exact sum at probe i by a
//      constant factor (the information is there to be remembered);
//  (2) our approximate structures decode every slot of random members of
//      the 2^r family — i.e. they actually retain those Omega(log N) bits;
//  (3) r grows like log N while the structures' storage stays within their
//      own bounds (a structure beating Omega(log N) would be a
//      contradiction; measured bits stay comfortably above r).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/exact.h"
#include "core/factory.h"
#include "decay/polynomial.h"
#include "stream/adversarial.h"
#include "util/random.h"

namespace tds {
namespace {

int DecodeSlot(const AdversarialFamily& family, const DecayPtr& decay,
               const std::vector<int>& truth, int slot, double estimate) {
  double best_candidate = 0.0;
  int best_n = 0;
  for (int n : {1, 2}) {
    std::vector<int> hypothetical = truth;
    hypothetical[slot] = n;
    auto exact = ExactDecayedSum::Create(decay);
    for (const StreamItem& item : MakeAdversarialStream(family, hypothetical)) {
      (*exact)->Update(item.t, item.value);
    }
    const double candidate = (*exact)->Query(family.probe_ticks[slot]);
    if (best_n == 0 ||
        std::fabs(estimate - candidate) < std::fabs(estimate - best_candidate)) {
      best_candidate = candidate;
      best_n = n;
    }
  }
  return best_n;
}

void RunHorizon(double alpha, Tick n, Rng& rng) {
  auto family_or = MakeAdversarialFamily(alpha, 10, n);
  if (!family_or.ok()) return;
  const AdversarialFamily& family = *family_or;
  auto decay = PolynomialDecay::Create(alpha).value();

  // (1) separation factors per slot (exact).
  double min_separation = 1e9;
  for (int i = 0; i < family.slots; ++i) {
    std::vector<int> low(family.slots, 1), high(family.slots, 1);
    high[i] = 2;
    auto exact_low = ExactDecayedSum::Create(decay);
    auto exact_high = ExactDecayedSum::Create(decay);
    for (const StreamItem& item : MakeAdversarialStream(family, low)) {
      (*exact_low)->Update(item.t, item.value);
    }
    for (const StreamItem& item : MakeAdversarialStream(family, high)) {
      (*exact_high)->Update(item.t, item.value);
    }
    const double sep = (*exact_high)->Query(family.probe_ticks[i]) /
                       (*exact_low)->Query(family.probe_ticks[i]);
    min_separation = std::min(min_separation, sep);
  }

  // (2) decode random family members through approximate structures.
  int decoded_ok = 0, decoded_total = 0;
  size_t ceh_bits = 0, wbmh_bits = 0;
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<int> choices(family.slots);
    for (int& c : choices) c = 1 + static_cast<int>(rng.NextBelow(2));
    const Stream stream = MakeAdversarialStream(family, choices);
    for (Backend backend : {Backend::kCeh, Backend::kWbmh}) {
      const AggregateOptions options = AggregateOptions::Builder()
                                       .backend(backend)
                                       .epsilon(0.02)
                                       .Build()
                                       .value();
      auto subject = MakeDecayedSum(decay, options);
      if (!subject.ok()) continue;
      for (const StreamItem& item : stream) {
        (*subject)->Update(item.t, item.value);
      }
      for (int i = 0; i < family.slots; ++i) {
        const double estimate = (*subject)->Query(family.probe_ticks[i]);
        decoded_ok +=
            DecodeSlot(family, decay, choices, i, estimate) == choices[i];
        ++decoded_total;
      }
      if (backend == Backend::kCeh) {
        ceh_bits = (*subject)->StorageBits();
      } else {
        wbmh_bits = (*subject)->StorageBits();
      }
    }
  }
  bench::PrintRow({("2^" + std::to_string(static_cast<int>(std::log2(n)))),
                   bench::FmtInt(family.slots), bench::Fmt(min_separation, 3),
                   (std::to_string(decoded_ok) + "/" +
                    std::to_string(decoded_total)),
                   bench::FmtInt(static_cast<long long>(ceh_bits)),
                   bench::FmtInt(static_cast<long long>(wbmh_bits))});
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf(
      "LB: Theorem 2 family (k=10). r slots of Omega(log N) necessary "
      "bits;\nany (1+-1/4)-estimator distinguishes all 2^r members.\n\n");
  for (double alpha : {1.0, 2.0}) {
    std::printf("alpha = %.1f\n", alpha);
    bench::PrintRow({"N", "slots r", "min.sep", "decoded", "CEH bits",
                     "WBMH bits"});
    Rng rng(2024);
    for (int e : {12, 16, 20}) {
      RunHorizon(alpha, Tick{1} << e, rng);
    }
    std::printf("\n");
  }
  std::printf(
      "expectation: slots r grows ~ linearly in log N; decoded = all;\n"
      "structure bits >= r (consistent with the Omega(log N) bound).\n");
  return 0;
}
