// Experiment ACC — the (1 +- eps) guarantee (Problems 2.1/2.2, Theorem 1,
// Lemma 5.1): measured maximum and mean relative error of each structure
// against the exact reference, across decay families, stream shapes, and
// epsilon targets. The reproduction target: measured error tracks (and
// stays within a small constant of) the configured epsilon.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/exact.h"
#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "stream/generators.h"
#include "stream/replay.h"

namespace tds {
namespace {

struct Case {
  std::string label;
  DecayPtr decay;
  Backend backend;
};

void RunEpsilon(double epsilon) {
  std::printf("\n--- eps = %.3f ---\n", epsilon);
  bench::PrintRow(
      {"structure", "decay", "stream", "max.relerr", "mean.relerr", "bits"},
      16);
  std::vector<Case> cases;
  cases.push_back({"CEH", SlidingWindowDecay::Create(1024).value(),
                   Backend::kCeh});
  cases.push_back({"CEH", PolynomialDecay::Create(1.0).value(),
                   Backend::kCeh});
  cases.push_back({"CEH", PolynomialDecay::Create(2.0).value(),
                   Backend::kCeh});
  cases.push_back({"CEH", ExponentialDecay::Create(0.005).value(),
                   Backend::kCeh});
  cases.push_back({"COARSE", PolynomialDecay::Create(1.0).value(),
                   Backend::kCoarseCeh});
  cases.push_back({"WBMH", PolynomialDecay::Create(1.0).value(),
                   Backend::kWbmh});
  cases.push_back({"WBMH", PolynomialDecay::Create(2.0).value(),
                   Backend::kWbmh});
  cases.push_back({"EWMA", ExponentialDecay::Create(0.005).value(),
                   Backend::kEwma});
  cases.push_back({"RECENT", ExponentialDecay::Create(0.005).value(),
                   Backend::kRecentItems});

  struct Workload {
    std::string label;
    Stream stream;
  };
  const std::vector<Workload> workloads = {
      {"bernoulli", BernoulliStream(8000, 0.5, 101)},
      {"bursty", BurstyStream(8000, 30, 50, 2.5, 102)},
      {"sparse", SparseStream(8000, 160, 103)},
  };

  for (const Case& c : cases) {
    for (const Workload& w : workloads) {
      const AggregateOptions options = AggregateOptions::Builder()
                                       .backend(c.backend)
                                       .epsilon(epsilon)
                                       .Build()
                                       .value();
      auto subject = MakeDecayedSum(c.decay, options);
      if (!subject.ok()) continue;
      auto reference = ExactDecayedSum::Create(c.decay);
      const ReplayReport report =
          ReplayAndCompare(w.stream, **subject, **reference, 193);
      bench::PrintRow({c.label, c.decay->Name(), w.label,
                       bench::Fmt(report.max_relative_error, 3),
                       bench::Fmt(report.mean_relative_error, 3),
                       bench::FmtInt(static_cast<long long>(
                           report.max_storage_bits))},
                      16);
    }
  }
}

}  // namespace
}  // namespace tds

int main() {
  std::printf(
      "ACC: measured relative error vs configured eps (paper guarantee:\n"
      "(1+-eps) for CEH/EH/WBMH; COARSE_CEH is the Section 5 Matias\n"
      "variant with a constant-factor (not 1+eps) contract; EWMA is exact\n"
      "up to float rounding).\n");
  for (double epsilon : {0.5, 0.1, 0.02}) {
    tds::RunEpsilon(epsilon);
  }
  return 0;
}
