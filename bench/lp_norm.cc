// Experiment LP — Section 7.1: time-decaying L_p norms via Indyk's p-stable
// sketch cascaded through decayed sums. Measures estimate/exact ratios
// across p, decay, and row counts, plus storage vs the trivial
// per-coordinate solution.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "sketch/decayed_lp_norm.h"
#include "util/random.h"

namespace tds {
namespace {

struct CoordUpdate {
  Tick t;
  uint64_t coord;
  uint64_t amount;
};

std::vector<CoordUpdate> MakeWorkload(Tick length, uint64_t dims,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<CoordUpdate> updates;
  for (Tick t = 1; t <= length; ++t) {
    const int per_tick = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < per_tick; ++i) {
      // Zipf-ish coordinate popularity.
      const uint64_t coord =
          static_cast<uint64_t>(dims * std::pow(rng.NextOpenDouble(), 2.0));
      updates.push_back(CoordUpdate{t, coord, 1 + rng.NextBelow(9)});
    }
  }
  return updates;
}

double ExactNorm(const std::vector<CoordUpdate>& updates,
                 const DecayFunction& g, Tick now, double p) {
  std::map<uint64_t, double> coords;
  for (const CoordUpdate& u : updates) {
    const Tick age = AgeAt(u.t, now);
    if (age > g.Horizon()) continue;
    coords[u.coord] += static_cast<double>(u.amount) * g.Weight(age);
  }
  double sum = 0.0;
  for (const auto& [coord, value] : coords) {
    sum += std::pow(std::fabs(value), p);
  }
  return std::pow(sum, 1.0 / p);
}

void Run(DecayPtr decay) {
  bench::Header(decay->Name().c_str());
  bench::PrintRow({"p", "rows", "est/exact", "sketch bits", "naive bits"});
  const uint64_t dims = 1 << 16;
  const auto updates = MakeWorkload(3000, dims, 555);
  const Tick now = 3000;
  for (double p : {1.0, 1.5, 2.0}) {
    const double exact = ExactNorm(updates, *decay, now, p);
    for (int rows : {32, 128}) {
      DecayedLpNorm::Options options;
      options.p = p;
      options.rows = rows;
      options.epsilon = 0.1;
      options.seed = 808 + rows;
      auto sketch = DecayedLpNorm::Create(decay, options);
      if (!sketch.ok()) continue;
      for (const CoordUpdate& u : updates) {
        sketch->Update(u.t, u.coord, u.amount);
      }
      const double estimate = sketch->Query(now);
      // Naive: one exact decayed counter per live coordinate.
      std::map<uint64_t, bool> live;
      for (const CoordUpdate& u : updates) live[u.coord] = true;
      const size_t naive_bits = live.size() * 64;
      bench::PrintRow({bench::Fmt(p, 2), bench::FmtInt(rows),
                       bench::Fmt(estimate / exact, 3),
                       bench::FmtInt(static_cast<long long>(
                           sketch->StorageBits())),
                       bench::FmtInt(static_cast<long long>(naive_bits))});
    }
  }
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf(
      "LP: decayed L_p sketch (Section 7.1). est/exact should concentrate\n"
      "around 1.0, tightening with more rows; sketch bits << naive bits.\n");
  Run(PolynomialDecay::Create(1.0).value());
  Run(SlidingWindowDecay::Create(1024).value());
  return 0;
}
