// Experiment SHARE — the paper's carrier-scale storage argument
// quantified (Sections 1.1 and 5): with S streams over the same decay,
// WBMH boundaries are computed once and shared, so total storage is
//   layout (once)  +  S * (bucket counts only),
// while any timestamp-carrying structure (CEH) pays its full boundary
// cost per stream. This bench sweeps the number of streams and reports
// total and per-stream bits for both designs, plus the break-even point.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "apps/usage_profile.h"
#include "core/ceh.h"
#include "decay/polynomial.h"
#include "util/random.h"

namespace tds {
namespace {

void Run(int streams, Tick ticks) {
  auto decay = PolynomialDecay::Create(1.0).value();

  // Shared-layout WBMH via the usage-profile application.
  UsageProfileSet::Options options;
  options.epsilon = 0.5;
  options.count_epsilon = 0.5;
  auto profiles = UsageProfileSet::Create(decay, options).value();

  // Per-stream CEH baseline at a comparable accuracy point.
  CehDecayedSum::Options ceh_options;
  ceh_options.epsilon = 0.5;
  std::vector<std::unique_ptr<CehDecayedSum>> cehs;
  cehs.reserve(streams);
  for (int s = 0; s < streams; ++s) {
    cehs.push_back(
        std::move(CehDecayedSum::Create(decay, ceh_options)).value());
  }

  // Every stream sees sparse activity: each tick, a few streams get items.
  Rng rng(987);
  for (Tick t = 1; t <= ticks; ++t) {
    const int active = 1 + static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < active; ++i) {
      const auto stream =
          static_cast<uint64_t>(rng.NextBelow(static_cast<uint64_t>(streams)));
      profiles.Record(stream, t, 1);
      cehs[stream]->Update(t, 1);
    }
  }
  profiles.SyncAll(ticks);

  size_t ceh_total = 0;
  for (auto& ceh : cehs) {
    ceh->Query(ticks);
    ceh_total += ceh->StorageBits();
  }
  const size_t wbmh_total = profiles.TotalStorageBits();
  bench::PrintRow(
      {bench::FmtInt(streams), bench::FmtInt(static_cast<long long>(ticks)),
       bench::FmtInt(static_cast<long long>(wbmh_total)),
       bench::FmtInt(static_cast<long long>(ceh_total)),
       bench::Fmt(profiles.MeanCustomerBits(), 4),
       bench::Fmt(static_cast<double>(ceh_total) /
                      static_cast<double>(streams),
                  4),
       bench::Fmt(static_cast<double>(ceh_total) /
                      static_cast<double>(wbmh_total),
                  3)});
}

}  // namespace
}  // namespace tds

int main() {
  std::printf(
      "SHARE: S streams over POLYD(1): shared-layout WBMH (boundaries once,\n"
      "counts per stream) vs per-stream CEH (full histogram each).\n\n");
  tds::bench::PrintRow({"streams", "ticks", "WBMH bits", "CEH bits",
                        "WBMH b/strm", "CEH b/strm", "CEH/WBMH"});
  for (int streams : {10, 100, 1000, 10000}) {
    tds::Run(streams, 20000);
  }
  std::printf(
      "\nexpectation: per-stream WBMH bits stay ~flat (counts only) while\n"
      "the shared layout amortizes away; the CEH/WBMH total ratio grows\n"
      "toward the per-stream boundary overhead (the paper's 100M-customer\n"
      "argument).\n");
  return 0;
}
