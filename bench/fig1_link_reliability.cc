// Experiment FIG1 — reproduces the paper's Figure 1 / Section 1.2 link
// reliability example. Link L1 fails for 5 hours; 24 hours later link L2
// fails for 30 minutes; no further failures. Ratings are the time-decaying
// sum of failure minutes (lower = more reliable), computed online by the
// factory-selected structure for each decay family. The paper's claims:
//   * SLIWIN: small window discounts L1 entirely; large window flips once,
//     from "L2 much better" to "L1 much better" — never converging.
//   * EXPD: the relative rating of the two links is frozen forever.
//   * POLYD: L1 rates better right after L2's failure (recency), but L2
//     must eventually emerge as the more reliable link (severity wins as
//     the weights converge) — the behavior the paper argues for.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"

namespace tds {
namespace {

constexpr Tick kMinutesPerHour = 60;
constexpr Tick kMinutesPerDay = 24 * kMinutesPerHour;

struct LinkScenario {
  Tick l1_failure = kMinutesPerDay;                   // day 1
  Tick l2_failure = kMinutesPerDay + kMinutesPerDay;  // 24h later
  uint64_t l1_minutes = 5 * kMinutesPerHour;          // 5h outage
  uint64_t l2_minutes = 30;                           // 30min outage
};

void RunDecay(const char* label, DecayPtr decay, const LinkScenario& s) {
  const AggregateOptions options = AggregateOptions::Builder()
                                   .epsilon(0.05)
                                   .Build()
                                   .value();
  auto l1 = MakeDecayedSum(decay, options);
  auto l2 = MakeDecayedSum(decay, options);
  if (!l1.ok() || !l2.ok()) {
    std::printf("%s: %s\n", label, l1.status().ToString().c_str());
    return;
  }
  (*l1)->Update(s.l1_failure, s.l1_minutes);
  (*l2)->Update(s.l2_failure, s.l2_minutes);

  bench::Header(label);
  bench::PrintRow({"day", "rating(L1)", "rating(L2)", "more-reliable"});
  int flips = 0;
  int prev_winner = 0;
  for (int day = 2; day <= 30; ++day) {
    const Tick now = static_cast<Tick>(day) * kMinutesPerDay + 1;
    const double r1 = (*l1)->Query(now);
    const double r2 = (*l2)->Query(now);
    const int winner = r1 <= r2 ? 1 : 2;
    if (day > 2 && winner != prev_winner) ++flips;
    prev_winner = winner;
    if (day <= 6 || day % 4 == 0 || day == 30) {
      bench::PrintRow({bench::FmtInt(day), bench::Fmt(r1), bench::Fmt(r2),
                       winner == 1 ? "L1" : "L2"});
    }
  }
  std::printf("ranking flips over days 2..30: %d\n", flips);
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf(
      "FIG1: L1 fails 5h on day 1; L2 fails 30min on day 2 (ratings are\n"
      "decayed failure minutes; lower is better). Paper: only smooth\n"
      "sub-exponential decay lets L2 emerge as more reliable over time.\n");
  LinkScenario s;
  RunDecay("SLIWIN window=12h", SlidingWindowDecay::Create(12 * 60).value(), s);
  RunDecay("SLIWIN window=3d",
           SlidingWindowDecay::Create(3 * kMinutesPerDay).value(), s);
  RunDecay("EXPD half-life=6h",
           ExponentialDecay::Create(
               ExponentialDecay::LambdaForHalfLife(6 * kMinutesPerHour))
               .value(),
           s);
  RunDecay("EXPD half-life=1d",
           ExponentialDecay::Create(
               ExponentialDecay::LambdaForHalfLife(kMinutesPerDay))
               .value(),
           s);
  RunDecay("EXPD half-life=7d",
           ExponentialDecay::Create(
               ExponentialDecay::LambdaForHalfLife(7 * kMinutesPerDay))
               .value(),
           s);
  RunDecay("POLYD alpha=1", PolynomialDecay::Create(1.0).value(), s);
  RunDecay("POLYD alpha=2", PolynomialDecay::Create(2.0).value(), s);
  return 0;
}
