// Experiment SEL — Section 7.2: time-decaying random selection and
// quantiles. Measures (a) how closely selection frequencies track the
// normalized decayed weights (total variation distance), (b) the MV/D
// list's logarithmic size, and (c) quantile rank error across decay
// functions. The residual bias from using (biased) EH counts in the window
// reduction — the paper's unbiasedness caveat — shows up in the TV column.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "sampling/decayed_quantile.h"
#include "sampling/decayed_sampler.h"
#include "util/random.h"

namespace tds {
namespace {

void SelectionDistribution(DecayPtr decay, int unbiased_k = 0) {
  const Tick n = 96;
  const int trials = 20000;
  std::vector<double> weights(n + 1, 0.0);
  double total = 0.0;
  for (Tick t = 1; t <= n; ++t) {
    weights[t] = decay->Weight(AgeAt(t, n));
    if (AgeAt(t, n) > decay->Horizon()) weights[t] = 0.0;
    total += weights[t];
  }
  std::vector<int> histogram(n + 1, 0);
  Rng draw_rng(4242);
  size_t retained = 0;
  for (int trial = 0; trial < trials; ++trial) {
    DecayedSampler::Options options;
    options.seed = 10000 + trial;
    options.epsilon = 0.05;
    options.unbiased_count_k = unbiased_k;
    auto sampler = DecayedSampler::Create(decay, options);
    for (Tick t = 1; t <= n; ++t) sampler->Add(t, static_cast<double>(t));
    auto pick = sampler->Sample(n, draw_rng);
    if (pick.has_value()) ++histogram[pick->t];
    retained = std::max(retained, sampler->RetainedItems());
  }
  double tv = 0.0;
  for (Tick t = 1; t <= n; ++t) {
    tv += std::fabs(static_cast<double>(histogram[t]) / trials -
                    weights[t] / total);
  }
  tv /= 2.0;
  bench::PrintRow({decay->Name() + (unbiased_k > 0 ? "+bottomK" : ""),
                   bench::Fmt(tv, 3),
                   bench::FmtInt(static_cast<long long>(retained))},
                  20);
}

void QuantileAccuracy(DecayPtr decay) {
  // Stream of values = arrival ticks; compute true decayed quantiles by
  // brute force and compare.
  const Tick n = 2000;
  DecayedQuantile::Options options;
  options.copies = 65;
  options.seed = 99;
  auto quantile = DecayedQuantile::Create(decay, options);
  if (!quantile.ok()) return;
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  for (Tick t = 1; t <= n; ++t) {
    quantile->Add(t, static_cast<double>(t));
  }
  double total = 0.0;
  for (Tick t = 1; t <= n; ++t) {
    double w = decay->Weight(AgeAt(t, n));
    if (AgeAt(t, n) > decay->Horizon()) w = 0.0;
    weighted.emplace_back(static_cast<double>(t), w);
    total += w;
  }
  auto true_quantile = [&](double q) {
    double acc = 0.0;
    for (const auto& [value, weight] : weighted) {
      acc += weight;
      if (acc >= q * total) return value;
    }
    return weighted.back().first;
  };
  // A value occupies a rank *interval* [mass below it, mass through it];
  // the error of an estimate is q's distance to that interval (a heavy
  // item legitimately answers every quantile its mass spans).
  auto rank_error = [&](double value, double q) {
    double below = 0.0, through = 0.0;
    for (const auto& [v, weight] : weighted) {
      if (v > value) break;
      through += weight;
      if (v < value) below += weight;
    }
    const double lo = below / total, hi = through / total;
    if (q < lo) return lo - q;
    if (q > hi) return q - hi;
    return 0.0;
  };
  Rng rng(7);
  for (double q : {0.25, 0.5, 0.9}) {
    auto estimate = quantile->Query(n, q, rng);
    if (!estimate.has_value()) continue;
    bench::PrintRow({decay->Name(), bench::Fmt(q, 2),
                     bench::Fmt(true_quantile(q), 6),
                     bench::Fmt(*estimate, 6),
                     bench::Fmt(rank_error(*estimate, q), 3)},
                    18);
  }
}

}  // namespace
}  // namespace tds

int main() {
  using namespace tds;
  std::printf("SEL: decayed random selection (Section 7.2).\n");
  bench::Header("selection frequency vs decayed weights (96 items)");
  bench::PrintRow({"decay", "TV distance", "max MV/D size"}, 20);
  SelectionDistribution(PolynomialDecay::Create(1.0).value());
  SelectionDistribution(PolynomialDecay::Create(2.0).value());
  SelectionDistribution(ExponentialDecay::Create(0.05).value());
  SelectionDistribution(SlidingWindowDecay::Create(48).value());
  // Footnote 4: unbiased window counts from a bottom-k MV/D list.
  SelectionDistribution(PolynomialDecay::Create(1.0).value(),
                        /*unbiased_k=*/16);
  SelectionDistribution(SlidingWindowDecay::Create(48).value(),
                        /*unbiased_k=*/16);

  bench::Header("quantiles: rank error of 65-copy selection (2000 items)");
  bench::PrintRow({"decay", "q", "true", "estimate", "rank.err"}, 18);
  QuantileAccuracy(SlidingWindowDecay::Create(1000).value());
  QuantileAccuracy(PolynomialDecay::Create(1.0).value());
  QuantileAccuracy(PolynomialDecay::Create(3.0).value());
  std::printf(
      "\nexpectation: TV well below 0.1; MV/D size ~ log(n); rank errors\n"
      "within ~0.12 (1/sqrt(65) plus EH bias).\n");
  return 0;
}
