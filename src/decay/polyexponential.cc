#include "decay/polyexponential.h"

#include <cmath>

#include "util/check.h"

namespace tds {

PolyExponentialDecay::PolyExponentialDecay(int k, double lambda)
    : k_(k), lambda_(lambda) {
  double factorial = 1.0;
  for (int i = 2; i <= k; ++i) factorial *= i;
  inv_k_factorial_ = 1.0 / factorial;
}

StatusOr<DecayPtr> PolyExponentialDecay::Create(int k, double lambda) {
  if (k < 0) return Status::InvalidArgument("PolyExp requires k >= 0");
  if (k > 20) {
    return Status::InvalidArgument("PolyExp supports k <= 20 (k! overflow)");
  }
  if (!(lambda > 0.0) || !std::isfinite(lambda)) {
    return Status::InvalidArgument("PolyExp requires lambda > 0");
  }
  return DecayPtr(new PolyExponentialDecay(k, lambda));
}

double PolyExponentialDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  const double x = static_cast<double>(age);
  return std::pow(x, k_) * std::exp(-lambda_ * x) * inv_k_factorial_;
}

std::string PolyExponentialDecay::Name() const {
  return "POLYEXP(k=" + std::to_string(k_) + ",lambda=" +
         std::to_string(lambda_) + ")";
}

StatusOr<DecayPtr> GeneralPolyExpDecay::Create(
    std::vector<double> coefficients, double lambda) {
  if (coefficients.empty() || coefficients.size() > 21) {
    return Status::InvalidArgument("polynomial degree must be in [0, 20]");
  }
  bool any_positive = false;
  for (double c : coefficients) {
    if (c < 0.0 || !std::isfinite(c)) {
      return Status::InvalidArgument("coefficients must be nonnegative");
    }
    any_positive |= c > 0.0;
  }
  if (!any_positive) {
    return Status::InvalidArgument("polynomial must not be identically zero");
  }
  if (!(lambda > 0.0) || !std::isfinite(lambda)) {
    return Status::InvalidArgument("lambda must be > 0");
  }
  return DecayPtr(new GeneralPolyExpDecay(std::move(coefficients), lambda));
}

double GeneralPolyExpDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  const double x = static_cast<double>(age);
  double p = 0.0;
  for (size_t j = coefficients_.size(); j-- > 0;) {
    p = p * x + coefficients_[j];
  }
  return p * std::exp(-lambda_ * x);
}

std::string GeneralPolyExpDecay::Name() const {
  std::string name = "GENPOLYEXP(deg=" + std::to_string(degree()) +
                     ",lambda=" + std::to_string(lambda_) + ")";
  return name;
}

bool GeneralPolyExpDecay::IsWbmhAdmissible() const {
  // Constant polynomial reduces to pure exponential decay (admissible);
  // anything with a rising part fails the monotone-ratio property.
  return degree() == 0;
}

}  // namespace tds
