#include "decay/decay_function.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tds {

bool DecayFunction::IsWbmhAdmissible() const {
  // Numeric probe: checks that r(x) = g(x) / g(x+1) is non-increasing along
  // a dense-then-geometric grid of ages. A closed-form override is preferred
  // where available (EXPD, POLYD, SLIWIN all override).
  const Tick limit = std::min(Horizon(), kProbeLimit);
  double prev_ratio = std::numeric_limits<double>::infinity();
  Tick x = 1;
  Tick step = 1;
  int dense_steps = 0;
  while (x + 1 <= limit) {
    const double gx = Weight(x);
    const double gx1 = Weight(x + 1);
    if (gx1 <= 0.0) break;  // reached the horizon
    const double ratio = gx / gx1;
    // Allow a hair of floating-point slack.
    if (ratio > prev_ratio * (1.0 + 1e-12)) return false;
    prev_ratio = ratio;
    // Dense for the first 4096 ages, then geometric.
    if (++dense_steps > 4096) step = std::max<Tick>(1, step + step / 8);
    x += step;
  }
  return true;
}

double DecayFunction::DynamicRange(Tick n) const {
  const double head = Weight(1);
  const double tail = Weight(n);
  if (tail <= 0.0) return std::numeric_limits<double>::infinity();
  return head / tail;
}

}  // namespace tds
