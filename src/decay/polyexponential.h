#ifndef TDS_DECAY_POLYEXPONENTIAL_H_
#define TDS_DECAY_POLYEXPONENTIAL_H_

#include <string>
#include <vector>

#include "decay/decay_function.h"
#include "util/status.h"

namespace tds {

/// Polyexponential decay (paper Section 3.4): g(x) = x^k e^{-lambda x} / k!.
/// Non-monotone in general (rises to x = k/lambda then decays); the paper
/// tracks it by reduction to k+1 pipelined exponential registers (Brown's
/// double/triple exponential smoothing for k = 1, 2). Because the weight is
/// not non-increasing for k >= 1, this family is handled by its dedicated
/// PolyExpCounter rather than the histogram algorithms; Weight() still
/// reports g for reference computations.
class PolyExponentialDecay : public DecayFunction {
 public:
  /// k >= 0, lambda > 0.
  static StatusOr<DecayPtr> Create(int k, double lambda);

  double Weight(Tick age) const override;
  std::string Name() const override;

  /// Monotone only for k = 0; the ratio test also fails on the rising part.
  bool IsWbmhAdmissible() const override { return k_ == 0; }

  int k() const { return k_; }
  double lambda() const { return lambda_; }

 private:
  PolyExponentialDecay(int k, double lambda);

  int k_;
  double lambda_;
  double inv_k_factorial_;
};

/// General polyexponential decay g(x) = p(x) e^{-lambda x} for an arbitrary
/// polynomial p with nonnegative coefficients (paper Section 3.4: decay by
/// p_k(x) e^{-lambda x} reduces to k+1 pipelined exponential registers).
/// Like the monomial case, g is generally non-monotone; it is maintained
/// by GeneralPolyExpSum, not by the histogram algorithms.
class GeneralPolyExpDecay : public DecayFunction {
 public:
  /// coefficients[j] multiplies x^j; at least one must be positive, all
  /// nonnegative (so g >= 0), degree <= 20. lambda > 0.
  static StatusOr<DecayPtr> Create(std::vector<double> coefficients,
                                   double lambda);

  double Weight(Tick age) const override;
  std::string Name() const override;
  bool IsWbmhAdmissible() const override;

  const std::vector<double>& coefficients() const { return coefficients_; }
  double lambda() const { return lambda_; }
  int degree() const { return static_cast<int>(coefficients_.size()) - 1; }

 private:
  GeneralPolyExpDecay(std::vector<double> coefficients, double lambda)
      : coefficients_(std::move(coefficients)), lambda_(lambda) {}

  std::vector<double> coefficients_;
  double lambda_;
};

}  // namespace tds

#endif  // TDS_DECAY_POLYEXPONENTIAL_H_
