#ifndef TDS_DECAY_POLYNOMIAL_H_
#define TDS_DECAY_POLYNOMIAL_H_

#include <string>

#include "decay/decay_function.h"
#include "util/status.h"

namespace tds {

/// Polynomial decay POLYD_alpha (paper Section 3.3): g(x) = x^{-alpha}.
/// The paper's headline family: the relative weights of two items approach 1
/// over time (severity can outlast recency), log D(g) = alpha log N, and the
/// WBMH tracks it in O(log N log log N) bits (Lemma 5.1) against the
/// Omega(log N) lower bound of Theorem 2.
class PolynomialDecay : public DecayFunction {
 public:
  /// alpha > 0.
  static StatusOr<DecayPtr> Create(double alpha);

  double Weight(Tick age) const override;
  std::string Name() const override;

  /// g(x)/g(x+1) = (1 + 1/x)^alpha is strictly decreasing in x.
  bool IsWbmhAdmissible() const override { return true; }

  double alpha() const { return alpha_; }

 private:
  explicit PolynomialDecay(double alpha) : alpha_(alpha) {}

  double alpha_;
};

/// Shifted polynomial decay: g(x) = ((x + shift) / (1 + shift))^{-alpha},
/// normalized so g(1) = 1. The shift flattens the decay for young ages (the
/// first `shift` ticks lose little weight) while keeping the polynomial
/// tail — a practical tuning knob between SLIWIN-like plateaus and pure
/// POLYD, still WBMH-admissible (the ratio g(x)/g(x+1) = ((x+1+s)/(x+s))^a
/// is decreasing in x).
class ShiftedPolynomialDecay : public DecayFunction {
 public:
  /// alpha > 0, shift >= 0.
  static StatusOr<DecayPtr> Create(double alpha, double shift);

  double Weight(Tick age) const override;
  std::string Name() const override;
  bool IsWbmhAdmissible() const override { return true; }

  double alpha() const { return alpha_; }
  double shift() const { return shift_; }

 private:
  ShiftedPolynomialDecay(double alpha, double shift)
      : alpha_(alpha), shift_(shift) {}

  double alpha_;
  double shift_;
};

}  // namespace tds

#endif  // TDS_DECAY_POLYNOMIAL_H_
