#include "decay/sliding_window.h"

#include "util/check.h"

namespace tds {

StatusOr<DecayPtr> SlidingWindowDecay::Create(Tick window) {
  if (window < 1) {
    return Status::InvalidArgument("SLIWIN requires window >= 1");
  }
  return DecayPtr(new SlidingWindowDecay(window));
}

double SlidingWindowDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  return age <= window_ ? 1.0 : 0.0;
}

std::string SlidingWindowDecay::Name() const {
  return "SLIWIN(" + std::to_string(window_) + ")";
}

}  // namespace tds
