#ifndef TDS_DECAY_SLIDING_WINDOW_H_
#define TDS_DECAY_SLIDING_WINDOW_H_

#include <string>

#include "decay/decay_function.h"
#include "util/status.h"

namespace tds {

/// Sliding-window decay SLIWIN_W (paper Section 3.2): g(x) = 1 for x <= W
/// and 0 beyond. Introduced by Datar, Gionis, Indyk & Motwani, who showed
/// Theta(eps^{-1} log^2 W) bits suffice and are necessary.
class SlidingWindowDecay : public DecayFunction {
 public:
  /// window >= 1 ticks.
  static StatusOr<DecayPtr> Create(Tick window);

  double Weight(Tick age) const override;
  Tick Horizon() const override { return window_; }
  std::string Name() const override;

  /// g(x)/g(x+1) jumps from 1 to +inf at the window edge, so the weight
  /// ratio of two items *diverges* instead of approaching 1: sliding
  /// windows are not WBMH-admissible (Section 5).
  bool IsWbmhAdmissible() const override { return false; }

  Tick window() const { return window_; }

 private:
  explicit SlidingWindowDecay(Tick window) : window_(window) {}

  Tick window_;
};

}  // namespace tds

#endif  // TDS_DECAY_SLIDING_WINDOW_H_
