#include "decay/polynomial.h"

#include <cmath>

#include "util/check.h"

namespace tds {

StatusOr<DecayPtr> PolynomialDecay::Create(double alpha) {
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("POLYD requires alpha > 0");
  }
  return DecayPtr(new PolynomialDecay(alpha));
}

double PolynomialDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  return std::pow(static_cast<double>(age), -alpha_);
}

std::string PolynomialDecay::Name() const {
  return "POLYD(" + std::to_string(alpha_) + ")";
}

StatusOr<DecayPtr> ShiftedPolynomialDecay::Create(double alpha, double shift) {
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("shifted POLYD requires alpha > 0");
  }
  if (!(shift >= 0.0) || !std::isfinite(shift)) {
    return Status::InvalidArgument("shifted POLYD requires shift >= 0");
  }
  return DecayPtr(new ShiftedPolynomialDecay(alpha, shift));
}

double ShiftedPolynomialDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  return std::pow((static_cast<double>(age) + shift_) / (1.0 + shift_),
                  -alpha_);
}

std::string ShiftedPolynomialDecay::Name() const {
  return "SHIFTPOLYD(" + std::to_string(alpha_) + "," +
         std::to_string(shift_) + ")";
}

}  // namespace tds
