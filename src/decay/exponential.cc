#include "decay/exponential.h"

#include <cmath>

#include "util/check.h"

namespace tds {

StatusOr<DecayPtr> ExponentialDecay::Create(double lambda) {
  if (!(lambda > 0.0) || !std::isfinite(lambda)) {
    return Status::InvalidArgument("EXPD requires lambda > 0");
  }
  return DecayPtr(new ExponentialDecay(lambda));
}

double ExponentialDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  return std::exp(-lambda_ * static_cast<double>(age));
}

std::string ExponentialDecay::Name() const {
  return "EXPD(" + std::to_string(lambda_) + ")";
}

double ExponentialDecay::LambdaForHalfLife(double half_life) {
  TDS_CHECK_GT(half_life, 0.0);
  return std::log(2.0) / half_life;
}

}  // namespace tds
