#ifndef TDS_DECAY_EXPONENTIAL_H_
#define TDS_DECAY_EXPONENTIAL_H_

#include <string>

#include "decay/decay_function.h"
#include "util/status.h"

namespace tds {

/// Exponential decay EXPD_lambda (paper Section 3.1): g(x) = exp(-lambda x).
/// The relative weight of two items is constant over time, so the decay's
/// "view" of the past never changes — the property the paper's link example
/// argues against for reliability ratings.
class ExponentialDecay : public DecayFunction {
 public:
  /// lambda > 0.
  static StatusOr<DecayPtr> Create(double lambda);

  double Weight(Tick age) const override;
  std::string Name() const override;

  /// g(x)/g(x+1) = e^lambda is constant, hence non-increasing.
  bool IsWbmhAdmissible() const override { return true; }

  double lambda() const { return lambda_; }

  /// Convenience: the lambda for which weight halves every `half_life` ticks.
  static double LambdaForHalfLife(double half_life);

 private:
  explicit ExponentialDecay(double lambda) : lambda_(lambda) {}

  double lambda_;
};

}  // namespace tds

#endif  // TDS_DECAY_EXPONENTIAL_H_
