#include "decay/custom.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tds {

StatusOr<DecayPtr> CustomDecay::Create(WeightFn weight, Tick horizon,
                                       std::string name) {
  if (!weight) return Status::InvalidArgument("null weight function");
  if (horizon < 1) return Status::InvalidArgument("horizon must be >= 1");
  // Spot-check non-negativity and monotonicity on a geometric grid.
  const Tick limit = std::min<Tick>(horizon, Tick{1} << 20);
  double prev = weight(1);
  if (prev < 0.0) return Status::InvalidArgument("negative weight at age 1");
  for (Tick age = 2; age <= limit; age = age + std::max<Tick>(1, age / 3)) {
    const double w = weight(age);
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    if (w > prev * (1.0 + 1e-12)) {
      return Status::InvalidArgument("weight increases with age");
    }
    prev = w;
  }
  return DecayPtr(new CustomDecay(std::move(weight), horizon, std::move(name)));
}

double CustomDecay::Weight(Tick age) const {
  TDS_CHECK_GE(age, 1);
  if (age > horizon_) return 0.0;
  return weight_(age);
}

StatusOr<DecayPtr> MakeTableDecay(const std::vector<double>& weights,
                                  Tick step, std::string name) {
  if (weights.empty()) return Status::InvalidArgument("empty weight table");
  if (step < 1) return Status::InvalidArgument("step must be >= 1");
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] > weights[i - 1]) {
      return Status::InvalidArgument("weight table must be non-increasing");
    }
  }
  if (weights.front() < 0.0 || weights.back() < 0.0) {
    return Status::InvalidArgument("weights must be nonnegative");
  }
  const Tick horizon = static_cast<Tick>(weights.size()) * step;
  std::vector<double> table = weights;
  auto fn = [table, step](Tick age) -> double {
    const size_t index = static_cast<size_t>((age - 1) / step);
    if (index >= table.size()) return 0.0;
    return table[index];
  };
  return CustomDecay::Create(std::move(fn), horizon, std::move(name));
}

}  // namespace tds
