#ifndef TDS_DECAY_CUSTOM_H_
#define TDS_DECAY_CUSTOM_H_

#include <functional>
#include <string>
#include <vector>

#include "decay/decay_function.h"
#include "util/status.h"

namespace tds {

/// A decay function backed by an arbitrary callable. The CEH algorithm
/// (Theorem 1) works for *any* decay function; this adapter lets users
/// supply one. Monotonicity is the caller's responsibility; Validate()
/// spot-checks it on a grid.
class CustomDecay : public DecayFunction {
 public:
  using WeightFn = std::function<double(Tick age)>;

  /// `horizon` may be kInfiniteHorizon. `name` is used in reports.
  /// Fails if a grid probe finds a negative or increasing weight.
  static StatusOr<DecayPtr> Create(WeightFn weight, Tick horizon,
                                   std::string name);

  double Weight(Tick age) const override;
  Tick Horizon() const override { return horizon_; }
  std::string Name() const override { return name_; }

 private:
  CustomDecay(WeightFn weight, Tick horizon, std::string name)
      : weight_(std::move(weight)), horizon_(horizon), name_(std::move(name)) {}

  WeightFn weight_;
  Tick horizon_;
  std::string name_;
};

/// Step decay from an explicit table: weight `weights[i]` for ages in
/// (edges[i-1], edges[i]] style ranges. Useful for piecewise policies, and a
/// stress case for CEH on non-smooth functions.
StatusOr<DecayPtr> MakeTableDecay(const std::vector<double>& weights,
                                  Tick step, std::string name);

}  // namespace tds

#endif  // TDS_DECAY_CUSTOM_H_
