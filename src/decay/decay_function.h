#ifndef TDS_DECAY_DECAY_FUNCTION_H_
#define TDS_DECAY_DECAY_FUNCTION_H_

#include <memory>
#include <string>

#include "util/common.h"

namespace tds {

/// A decay function g (paper Section 2): non-increasing, nonnegative weight
/// as a function of item age. Ages are >= 1 under this library's convention
/// (see AgeAt in util/common.h).
///
/// Implementations must be immutable and thread-compatible; one instance is
/// typically shared (via shared_ptr) across many aggregate structures.
class DecayFunction {
 public:
  virtual ~DecayFunction() = default;

  /// Weight assigned to an item of age `age >= 1`. Must be non-increasing in
  /// `age` and zero for ages beyond Horizon().
  virtual double Weight(Tick age) const = 0;

  /// N(g): the largest age with positive weight, or kInfiniteHorizon if the
  /// function never nullifies. The paper's storage metric N is
  /// min(elapsed time, Horizon()).
  virtual Tick Horizon() const { return kInfiniteHorizon; }

  /// Human-readable name, e.g. "POLYD(2.0)".
  virtual std::string Name() const = 0;

  /// True when g(x)/g(x+1) is non-increasing in x — the applicability
  /// condition of weight-based merging histograms (Section 5): the ratio of
  /// two items' weights stays fixed or approaches 1 as time passes.
  /// Subclasses with a closed form override this; the default performs a
  /// numeric check over a geometric grid of ages (up to `probe_limit`).
  virtual bool IsWbmhAdmissible() const;

  /// D(g) truncated at age n: Weight(1) / Weight(n). The WBMH bucket count
  /// is O(eps^{-1} log D(g)) (Section 5). Returns +inf if Weight(n) == 0.
  double DynamicRange(Tick n) const;

 protected:
  /// Age bound used by the default numeric admissibility probe.
  static constexpr Tick kProbeLimit = Tick{1} << 22;
};

/// Shared handle used across the library.
using DecayPtr = std::shared_ptr<const DecayFunction>;

}  // namespace tds

#endif  // TDS_DECAY_DECAY_FUNCTION_H_
