#include "apps/gateway.h"

namespace tds {

StatusOr<GatewaySelector> GatewaySelector::Create(DecayPtr decay,
                                                  const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  return GatewaySelector(std::move(decay), options);
}

StatusOr<int> GatewaySelector::AddPath(const std::string& name) {
  auto badness = MakeDecayedSum(decay_, options_.aggregate);
  if (!badness.ok()) return badness.status();
  paths_.push_back(PathState{name, std::move(badness).value()});
  return static_cast<int>(paths_.size()) - 1;
}

Status GatewaySelector::ReportBadness(int path, Tick t, uint64_t badness) {
  if (path < 0 || path >= PathCount()) {
    return Status::OutOfRange("no such path");
  }
  paths_[path].badness->Update(t, badness);
  return Status::OK();
}

StatusOr<double> GatewaySelector::Rating(int path, Tick now) {
  if (path < 0 || path >= PathCount()) {
    return Status::OutOfRange("no such path");
  }
  return paths_[path].badness->Query(now);
}

StatusOr<int> GatewaySelector::BestPath(Tick now) {
  if (paths_.empty()) return Status::FailedPrecondition("no paths");
  int best = 0;
  double best_rating = paths_[0].badness->Query(now);
  for (int i = 1; i < PathCount(); ++i) {
    const double rating = paths_[i].badness->Query(now);
    if (rating < best_rating) {
      best = i;
      best_rating = rating;
    }
  }
  return best;
}

size_t GatewaySelector::StorageBits() const {
  size_t bits = 0;
  for (const PathState& path : paths_) bits += path.badness->StorageBits();
  return bits;
}

}  // namespace tds
