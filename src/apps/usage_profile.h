#ifndef TDS_APPS_USAGE_PROFILE_H_
#define TDS_APPS_USAGE_PROFILE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "histogram/wbmh_counter.h"
#include "histogram/wbmh_layout.h"
#include "util/status.h"

namespace tds {

/// Per-customer usage summaries at carrier scale (paper Section 1.1, the
/// AT&T "giga-mining" application: a summary per field on ~100M customers,
/// where balancing information value against storage is critical). This is
/// the showcase for the WBMH's stream-independent boundaries: one
/// WbmhLayout serves every customer, and each customer costs only its
/// bucket counts (Section 5's per-stream storage argument).
class UsageProfileSet {
 public:
  struct Options {
    /// Bucketing precision shared by all customers.
    double epsilon = 0.5;
    /// Count-rounding precision (see WbmhCounter).
    double count_epsilon = 0.5;
    Tick start = 1;
  };

  static StatusOr<UsageProfileSet> Create(DecayPtr decay,
                                          const Options& options);

  /// Records `amount` usage units for a customer at tick t. Customers are
  /// created on first touch.
  void Record(uint64_t customer, Tick t, uint64_t amount);

  /// Decayed usage score for a customer (0 for never-seen customers).
  double Query(uint64_t customer, Tick now);

  /// Brings every counter up to date and trims the shared op log — the
  /// periodic maintenance a deployment would run.
  void SyncAll(Tick now);

  size_t CustomerCount() const { return counters_.size(); }

  /// Total storage: all per-customer counters plus the one shared layout's
  /// boundary state (counted once).
  size_t TotalStorageBits() const;

  /// Average per-customer storage bits (counters only).
  double MeanCustomerBits() const;

  const WbmhLayout& layout() const { return *layout_; }

 private:
  UsageProfileSet(std::shared_ptr<WbmhLayout> layout, const Options& options)
      : layout_(std::move(layout)), options_(options) {}

  std::shared_ptr<WbmhLayout> layout_;
  Options options_;
  std::unordered_map<uint64_t, WbmhCounter> counters_;
};

}  // namespace tds

#endif  // TDS_APPS_USAGE_PROFILE_H_
