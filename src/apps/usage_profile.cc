#include "apps/usage_profile.h"

#include <algorithm>
#include <cmath>

namespace tds {

StatusOr<UsageProfileSet> UsageProfileSet::Create(DecayPtr decay,
                                                  const Options& options) {
  WbmhLayout::Options layout_options;
  layout_options.decay = std::move(decay);
  layout_options.epsilon = options.epsilon;
  layout_options.start = options.start;
  auto layout = WbmhLayout::Create(layout_options);
  if (!layout.ok()) return layout.status();
  return UsageProfileSet(std::make_shared<WbmhLayout>(std::move(layout).value()),
                         options);
}

void UsageProfileSet::Record(uint64_t customer, Tick t, uint64_t amount) {
  auto it = counters_.find(customer);
  if (it == counters_.end()) {
    WbmhCounter::Options counter_options;
    counter_options.count_epsilon = options_.count_epsilon;
    it = counters_.emplace(customer, WbmhCounter(layout_, counter_options))
             .first;
  }
  it->second.Add(t, amount);
}

double UsageProfileSet::Query(uint64_t customer, Tick now) {
  auto it = counters_.find(customer);
  if (it == counters_.end()) {
    layout_->AdvanceTo(now);
    return 0.0;
  }
  return it->second.Query(now);
}

void UsageProfileSet::SyncAll(Tick now) {
  layout_->AdvanceTo(now);
  uint64_t min_applied = layout_->OpSeq();
  for (auto& [customer, counter] : counters_) {
    counter.Sync();
    min_applied = std::min(min_applied, counter.AppliedSeq());
  }
  layout_->TrimLog(min_applied);
}

size_t UsageProfileSet::TotalStorageBits() const {
  size_t bits = 0;
  for (const auto& [customer, counter] : counters_) {
    bits += counter.StorageBits();
  }
  // Shared layout state, charged once: each bucket span is two timestamps.
  const double ts_bits = std::ceil(std::log2(
      static_cast<double>(std::max<Tick>(layout_->now(), 2)) + 1.0));
  bits += static_cast<size_t>(2.0 * ts_bits *
                              static_cast<double>(layout_->BucketCount()));
  return bits;
}

double UsageProfileSet::MeanCustomerBits() const {
  if (counters_.empty()) return 0.0;
  size_t bits = 0;
  for (const auto& [customer, counter] : counters_) {
    bits += counter.StorageBits();
  }
  return static_cast<double>(bits) / static_cast<double>(counters_.size());
}

}  // namespace tds
