#include "apps/red.h"

#include <algorithm>

namespace tds {

StatusOr<RedEstimator> RedEstimator::Create(DecayPtr decay,
                                            const Options& options) {
  if (!(options.min_threshold >= 0.0) ||
      options.max_threshold <= options.min_threshold) {
    return Status::InvalidArgument("need 0 <= min_threshold < max_threshold");
  }
  if (!(options.max_probability > 0.0) || options.max_probability > 1.0) {
    return Status::InvalidArgument("max_probability must be in (0, 1]");
  }
  auto average = MakeDecayedAverage(decay, options.aggregate);
  if (!average.ok()) return average.status();
  return RedEstimator(options, std::move(average).value());
}

double RedEstimator::OnQueueSample(Tick t, uint64_t queue_length) {
  average_.Observe(t, queue_length);
  return DropProbability(average_.Query(t));
}

double RedEstimator::AverageQueue(Tick now) { return average_.Query(now); }

double RedEstimator::DropProbability(double average_queue) const {
  if (average_queue <= options_.min_threshold) return 0.0;
  if (average_queue >= options_.max_threshold) return 1.0;
  const double fraction = (average_queue - options_.min_threshold) /
                          (options_.max_threshold - options_.min_threshold);
  return std::clamp(fraction * options_.max_probability, 0.0, 1.0);
}

}  // namespace tds
