#ifndef TDS_APPS_HOLDING_POLICY_H_
#define TDS_APPS_HOLDING_POLICY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/factory.h"
#include "util/status.h"

namespace tds {

/// Holding-time policy for virtual circuits / persistent connections (paper
/// Section 1.1, after Keshav et al. and Cohen–Kaplan–Oldham): each open
/// circuit costs resources; when capacity is needed, close first the
/// circuits with the longest *anticipated* idle time, estimated as a
/// time-decaying average of previous idle gaps.
class CircuitHoldingPolicy {
 public:
  struct Options {
    AggregateOptions aggregate;
  };

  static StatusOr<CircuitHoldingPolicy> Create(DecayPtr decay,
                                               const Options& options);

  /// Registers a circuit (idempotent).
  Status AddCircuit(const std::string& id);

  /// Records a data burst on the circuit at tick t: the gap since the
  /// previous burst is one observed idle time.
  Status OnBurst(const std::string& id, Tick t);

  /// Anticipated idle time (decayed average of observed idles) plus the
  /// time already idle — higher means "close me first".
  StatusOr<double> AnticipatedIdle(const std::string& id, Tick now);

  /// Circuits ordered by descending anticipated idle time: the closing
  /// order when capacity must be reclaimed.
  std::vector<std::pair<std::string, double>> CloseOrdering(Tick now);

  size_t StorageBits() const;

 private:
  struct CircuitState {
    DecayedAverage idle_average;
    Tick last_burst = 0;
  };

  CircuitHoldingPolicy(DecayPtr decay, const Options& options)
      : decay_(std::move(decay)), options_(options) {}

  DecayPtr decay_;
  Options options_;
  std::unordered_map<std::string, CircuitState> circuits_;
};

}  // namespace tds

#endif  // TDS_APPS_HOLDING_POLICY_H_
