#ifndef TDS_APPS_GATEWAY_H_
#define TDS_APPS_GATEWAY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "util/status.h"

namespace tds {

/// Internet gateway / path selection (paper Section 1.1 and the Figure 1
/// link-reliability example): each candidate path accumulates a
/// time-decaying sum of observed "badness" (failure minutes, losses,
/// degradations); the path with the lowest decayed badness is selected.
/// The choice of decay function determines how the ranking evolves — the
/// paper's central illustration: under SLIWIN or EXPD the relative rating
/// of two past failures is frozen (or flips once, by truncation), while
/// under POLYD a link with a less severe failure eventually overtakes one
/// with an older but larger failure.
class GatewaySelector {
 public:
  struct Options {
    AggregateOptions aggregate;
  };

  static StatusOr<GatewaySelector> Create(DecayPtr decay,
                                          const Options& options);

  /// Registers a path; returns its index.
  StatusOr<int> AddPath(const std::string& name);

  /// Records `badness` units (e.g. minutes of outage) on a path at tick t.
  Status ReportBadness(int path, Tick t, uint64_t badness);

  /// Decayed badness rating (lower is better).
  StatusOr<double> Rating(int path, Tick now);

  /// Index of the best (lowest-rated) path; ties break to lower index.
  StatusOr<int> BestPath(Tick now);

  int PathCount() const { return static_cast<int>(paths_.size()); }
  const std::string& PathName(int path) const { return paths_[path].name; }

  size_t StorageBits() const;

 private:
  struct PathState {
    std::string name;
    std::unique_ptr<DecayedAggregate> badness;
  };

  GatewaySelector(DecayPtr decay, const Options& options)
      : decay_(std::move(decay)), options_(options) {}

  DecayPtr decay_;
  Options options_;
  std::vector<PathState> paths_;
};

}  // namespace tds

#endif  // TDS_APPS_GATEWAY_H_
