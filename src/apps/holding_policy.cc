#include "apps/holding_policy.h"

#include <algorithm>

namespace tds {

StatusOr<CircuitHoldingPolicy> CircuitHoldingPolicy::Create(
    DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  return CircuitHoldingPolicy(std::move(decay), options);
}

Status CircuitHoldingPolicy::AddCircuit(const std::string& id) {
  if (circuits_.contains(id)) return Status::OK();
  auto average = MakeDecayedAverage(decay_, options_.aggregate);
  if (!average.ok()) return average.status();
  circuits_.emplace(id, CircuitState{std::move(average).value(), 0});
  return Status::OK();
}

Status CircuitHoldingPolicy::OnBurst(const std::string& id, Tick t) {
  auto it = circuits_.find(id);
  if (it == circuits_.end()) {
    return Status::InvalidArgument("unknown circuit: " + id);
  }
  CircuitState& state = it->second;
  if (state.last_burst > 0 && t > state.last_burst) {
    const uint64_t idle = static_cast<uint64_t>(t - state.last_burst);
    state.idle_average.Observe(t, idle);
  }
  state.last_burst = t;
  return Status::OK();
}

StatusOr<double> CircuitHoldingPolicy::AnticipatedIdle(const std::string& id,
                                                       Tick now) {
  auto it = circuits_.find(id);
  if (it == circuits_.end()) {
    return Status::InvalidArgument("unknown circuit: " + id);
  }
  CircuitState& state = it->second;
  const double expected_gap = state.idle_average.Query(now, /*fallback=*/0.0);
  const double already_idle =
      state.last_burst > 0 ? static_cast<double>(now - state.last_burst) : 0.0;
  // Expected remaining idle = expected gap net of time already waited,
  // floored at zero, plus nothing if we have no history (fresh circuits are
  // kept): a simple, monotone ranking score.
  return std::max(0.0, expected_gap - already_idle) + already_idle;
}

std::vector<std::pair<std::string, double>> CircuitHoldingPolicy::CloseOrdering(
    Tick now) {
  std::vector<std::pair<std::string, double>> ordering;
  ordering.reserve(circuits_.size());
  for (auto& [id, state] : circuits_) {
    auto score = AnticipatedIdle(id, now);
    ordering.emplace_back(id, score.ok() ? *score : 0.0);
  }
  std::sort(ordering.begin(), ordering.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return ordering;
}

size_t CircuitHoldingPolicy::StorageBits() const {
  size_t bits = 0;
  for (const auto& [id, state] : circuits_) {
    bits += state.idle_average.StorageBits();
  }
  return bits;
}

}  // namespace tds
