#ifndef TDS_APPS_RED_H_
#define TDS_APPS_RED_H_

#include <memory>

#include "core/factory.h"
#include "util/status.h"

namespace tds {

/// Random Early Detection congestion estimator (paper Section 1.1, after
/// Floyd & Jacobson): routers track a time-decaying average of queue
/// lengths and drop packets with a probability that ramps up between two
/// thresholds. Classically the average is an EWMA; this implementation
/// accepts any decay function, which is exactly the flexibility the paper
/// argues for (polynomial decay remembers congestion events longer without
/// freezing their relative weight).
class RedEstimator {
 public:
  struct Options {
    /// No drops below this average queue length.
    double min_threshold = 5.0;
    /// All packets dropped above this average queue length.
    double max_threshold = 15.0;
    /// Drop probability as the average reaches max_threshold.
    double max_probability = 0.1;
    AggregateOptions aggregate;
  };

  static StatusOr<RedEstimator> Create(DecayPtr decay, const Options& options);

  /// Records the instantaneous queue length observed at tick t and returns
  /// the resulting drop probability for packets arriving now.
  double OnQueueSample(Tick t, uint64_t queue_length);

  /// Current decayed average queue length.
  double AverageQueue(Tick now);

  /// Drop probability implied by an average queue value.
  double DropProbability(double average_queue) const;

  size_t StorageBits() const { return average_.StorageBits(); }

 private:
  RedEstimator(const Options& options, DecayedAverage average)
      : options_(options), average_(std::move(average)) {}

  Options options_;
  DecayedAverage average_;
};

}  // namespace tds

#endif  // TDS_APPS_RED_H_
