#include "histogram/exponential_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/audit.h"

namespace tds {

ExponentialHistogram::ExponentialHistogram(const Options& options)
    : epsilon_(options.epsilon),
      window_(options.window),
      layout_(options.layout) {
  // Per-class bucket budget k = ceil(1/eps) + 1 (Datar et al.): with at
  // least cap_-1 buckets per smaller class, the straddling bucket's
  // half-count correction is at most an eps fraction of the window count,
  // including the worst case of a size-2 straddler.
  cap_ = static_cast<uint64_t>(std::ceil(1.0 / epsilon_)) + 1;
}

StatusOr<ExponentialHistogram> ExponentialHistogram::Create(
    const Options& options) {
  if (!(options.epsilon > 0.0) || options.epsilon > 1.0) {
    return Status::InvalidArgument("EH requires epsilon in (0, 1]");
  }
  if (options.window < 1) {
    return Status::InvalidArgument("EH requires window >= 1");
  }
  return ExponentialHistogram(options);
}

void ExponentialHistogram::AdvanceTo(Tick t) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  Expire();
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void ExponentialHistogram::Add(Tick t, uint64_t value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  // Expire BEFORE inserting: the merge cascade then only ever pairs live
  // buckets, and — since a carry takes the newer partner's timestamp — can
  // never produce a bucket that is itself already expired, so no trailing
  // sweep is needed. This ordering is also what makes coalescing same-tick
  // items into one Add identical to adding them one at a time: with
  // insertion first, the expiry interleaved between two adds could remove a
  // straddling bucket that the coalesced cascade would instead have merged.
  Expire();
  if (value != 0) {
    if (first_arrival_ == 0) first_arrival_ = t;
    total_count_ += value;
    InsertUnits(t, value);
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void ExponentialHistogram::InsertUnits(Tick t, uint64_t incoming_units) {
  if (layout_ == HistogramLayout::kFlat) {
    // Same digit arithmetic, run by the flat store as a suffix compaction
    // sweep; a merged bucket keeps the newer partner's end timestamp.
    flat_.InsertUnits(incoming_units, t, cap_,
                      [](Tick /*older*/, Tick newer) { return newer; });
    return;
  }
  // `virtual_new` tracks not-yet-materialized buckets of count 2^i, all with
  // timestamp t. Real carry buckets (which may carry older timestamps when
  // pre-existing buckets get merged) are materialized eagerly; there are at
  // most `cap_` of them per class, so the whole insertion costs
  // O(cap_ * log(value)) instead of O(value).
  uint64_t virtual_new = incoming_units;
  std::vector<Bucket> real_carries;
  size_t i = 0;
  while (true) {
    if (i >= classes_.size()) classes_.emplace_back();
    auto& cls = classes_[i];
    const uint64_t total = cls.size() + virtual_new;
    uint64_t next_virtual = 0;
    real_carries.clear();
    if (total > cap_) {
      // Sequential-insertion semantics: a merge fires each time the class
      // reaches cap_+1 buckets, so `merges` pairs of the oldest buckets
      // combine into the next class.
      const uint64_t merges = (total - cap_ + 1) / 2;
      for (uint64_t m = 0; m < merges; ++m) {
        if (cls.size() >= 2) {
          // Two oldest are both pre-existing buckets.
          Bucket a = cls.front();
          cls.pop_front();
          Bucket b = cls.front();
          cls.pop_front();
          real_carries.push_back(Bucket{b.end, a.count + b.count});
        } else if (cls.size() == 1) {
          // One pre-existing bucket pairs with one incoming unit-bucket.
          Bucket a = cls.front();
          cls.pop_front();
          TDS_CHECK_GE(virtual_new, 1u);
          --virtual_new;
          real_carries.push_back(Bucket{t, a.count << 1});
        } else {
          // All remaining merges pair incoming buckets with each other:
          // pure arithmetic, so close them out in one step (this is what
          // keeps huge-value insertion O(log v) instead of O(v)).
          const uint64_t remaining = merges - m;
          TDS_CHECK_GE(virtual_new, 2 * remaining);
          virtual_new -= 2 * remaining;
          next_virtual += remaining;
          break;
        }
      }
    }
    // Materialize the surviving incoming buckets (newest in the class).
    const uint64_t unit = uint64_t{1} << i;
    for (uint64_t v = 0; v < virtual_new; ++v) cls.push_back(Bucket{t, unit});

    if (real_carries.empty() && next_virtual == 0) break;
    if (i + 1 >= classes_.size()) classes_.emplace_back();
    // Carries were produced oldest-first and are newer than everything
    // already in class i+1, so appending preserves the ordering invariant.
    for (const Bucket& carry : real_carries) classes_[i + 1].push_back(carry);
    virtual_new = next_virtual;
    ++i;
  }
}

void ExponentialHistogram::Expire() {
  if (window_ == kInfiniteHorizon || total_count_ == 0) return;
  const Tick cutoff = now_ - window_ + 1;  // arrivals < cutoff have age > W
  if (layout_ == HistogramLayout::kFlat) {
    total_count_ -=
        flat_.ExpireOldest([cutoff](Tick end) { return end < cutoff; });
    return;
  }
  for (size_t c = classes_.size(); c-- > 0;) {
    auto& cls = classes_[c];
    while (!cls.empty() && cls.front().end < cutoff) {
      total_count_ -= cls.front().count;
      cls.pop_front();
    }
    // Ordering invariant: once a bucket in this class survives, every
    // bucket in lower classes is newer and survives too.
    if (!cls.empty()) break;
  }
}

double ExponentialHistogram::Estimate() const {
  return EstimateWindow(window_ == kInfiniteHorizon
                            ? (first_arrival_ == 0
                                   ? Tick{1}
                                   : now_ - first_arrival_ + 1)
                            : window_);
}

double ExponentialHistogram::EstimateWindow(Tick w) const {
  TDS_CHECK_GE(w, 1);
  if (total_count_ == 0) return 0.0;
  const Tick cutoff = now_ - w + 1;
  double sum = 0.0;
  bool found_oldest_kept = false;
  double oldest_kept_count = 0.0;
  bool any_skipped = false;
  ForEachBucketOldestFirst([&](const Bucket& b) {
    if (b.end < cutoff) {
      any_skipped = true;
      return;
    }
    if (!found_oldest_kept) {
      found_oldest_kept = true;
      oldest_kept_count = static_cast<double>(b.count);
    }
    sum += static_cast<double>(b.count);
  });
  if (!found_oldest_kept) return 0.0;
  // The oldest kept bucket straddles the window boundary unless the entire
  // stream lies inside the window; count half of it in that case. A size-1
  // bucket never straddles: its single item sits exactly at the stored
  // timestamp, which is inside the window.
  if (oldest_kept_count > 1.5 && (any_skipped || first_arrival_ < cutoff)) {
    sum -= oldest_kept_count / 2.0;
  }
  return sum;
}

size_t ExponentialHistogram::BucketCount() const {
  if (layout_ == HistogramLayout::kFlat) return flat_.size();
  size_t n = 0;
  for (const auto& cls : classes_) n += cls.size();
  return n;
}

std::vector<ExponentialHistogram::Bucket> ExponentialHistogram::Buckets()
    const {
  std::vector<Bucket> out;
  out.reserve(BucketCount());
  ForEachBucketOldestFirst([&](const Bucket& b) { out.push_back(b); });
  return out;
}

Status ExponentialHistogram::MergeFrom(const ExponentialHistogram& other) {
  if (other.epsilon_ != epsilon_ || other.window_ != window_) {
    return Status::InvalidArgument(
        "cannot merge histograms with different options");
  }
  // Gather both bucket lists and rebuild canonically. A bucket only
  // records its end timestamp, but its items are spread back to the older
  // neighbor's end; re-stamping everything at one point would bias the
  // union estimate (newer -> systematic overweight under decay, older ->
  // spurious expiry under sliding windows). Instead each input bucket is
  // split into up to kMergeChunks pseudo-batches spread evenly across its
  // reconstructed span (the last chunk exactly at the recorded end, so
  // expiry semantics stay end-anchored), preserving the time distribution
  // to within span/kMergeChunks.
  constexpr uint64_t kMergeChunks = 8;
  std::vector<Bucket> combined;
  combined.reserve(kMergeChunks * (BucketCount() + other.BucketCount()));
  auto gather = [&combined](const ExponentialHistogram& source) {
    // Live buckets contain only in-window items, but the reconstructed
    // span of the oldest one reaches back to the first arrival (older
    // buckets expired wholesale); clamp to the window so chunks are not
    // spuriously expired on re-insertion.
    Tick floor = source.first_arrival();
    if (source.window() != kInfiniteHorizon) {
      floor = std::max(floor, source.now() - source.window() + 1);
    }
    Tick previous_end = floor;
    source.ForEachBucketOldestFirst([&](const Bucket& b) {
      // Clamp to b.end: buckets in different classes may share an end
      // timestamp (one multi-digit Add), making previous_end overshoot —
      // an unclamped start would yield span -1 and zero chunks, silently
      // dropping the bucket's whole count.
      const Tick start = std::min(std::max(previous_end, floor), b.end);
      previous_end = b.end + 1;
      const Tick span = b.end - start;
      const uint64_t chunks =
          std::min<uint64_t>({kMergeChunks, b.count,
                              static_cast<uint64_t>(span) + 1});
      uint64_t remaining = b.count;
      for (uint64_t c = 0; c < chunks; ++c) {
        const uint64_t piece =
            c + 1 == chunks ? remaining : b.count / chunks;
        remaining -= piece;
        // Chunk c covers the c-th slice of [start, end]; stamp it at the
        // slice end so the newest chunk sits exactly at b.end.
        const Tick stamp =
            start + span * static_cast<Tick>(c + 1) /
                        static_cast<Tick>(chunks);
        combined.push_back(Bucket{stamp, piece});
      }
    });
  };
  gather(*this);
  gather(other);
  std::stable_sort(
      combined.begin(), combined.end(),
      [](const Bucket& a, const Bucket& b) { return a.end < b.end; });

  const Tick merged_now = std::max(now_, other.now_);
  Tick merged_first = 0;
  if (first_arrival_ != 0 && other.first_arrival_ != 0) {
    merged_first = std::min(first_arrival_, other.first_arrival_);
  } else {
    merged_first = first_arrival_ != 0 ? first_arrival_
                                       : other.first_arrival_;
  }

  classes_.clear();
  flat_.Clear();
  total_count_ = 0;
  now_ = 0;
  first_arrival_ = 0;
  for (const Bucket& b : combined) {
    Add(b.end, b.count);
  }
  now_ = merged_now;
  first_arrival_ = merged_first;
  Expire();
  TDS_AUDIT_MUTATION(AuditInvariants());
  return Status::OK();
}

void ExponentialHistogram::EncodeState(Encoder& encoder) const {
  encoder.PutDouble(epsilon_);
  encoder.PutSigned(window_);
  encoder.PutSigned(now_);
  encoder.PutSigned(first_arrival_);
  encoder.PutVarint(total_count_);
  if (layout_ == HistogramLayout::kFlat) {
    // Identical wire format to the chain branch below: the flat store keeps
    // the same class count (empty classes included) and the same per-class
    // oldest-first order, so the delta stream matches byte-for-byte.
    encoder.PutVarint(flat_.num_classes());
    flat_.ForEachSegmentAscendingClass([&](size_t, size_t begin, size_t end) {
      encoder.PutVarint(end - begin);
      Tick previous = 0;
      for (size_t k = begin; k < end; ++k) {
        encoder.PutVarint(static_cast<uint64_t>(flat_.stamp(k) - previous));
        previous = flat_.stamp(k);
        encoder.PutVarint(flat_.count(k));
      }
    });
    return;
  }
  encoder.PutVarint(classes_.size());
  for (const auto& cls : classes_) {
    encoder.PutVarint(cls.size());
    Tick previous = 0;
    for (const Bucket& b : cls) {
      encoder.PutVarint(static_cast<uint64_t>(b.end - previous));
      previous = b.end;
      encoder.PutVarint(b.count);
    }
  }
}

Status ExponentialHistogram::DecodeState(Decoder& decoder) {
  double epsilon = 0.0;
  int64_t window = 0, now = 0, first_arrival = 0;
  uint64_t total = 0, class_count = 0;
  if (!decoder.GetDouble(&epsilon) || !decoder.GetSigned(&window) ||
      !decoder.GetSigned(&now) || !decoder.GetSigned(&first_arrival) ||
      !decoder.GetVarint(&total) || !decoder.GetVarint(&class_count)) {
    return CorruptSnapshot("EH header");
  }
  if (epsilon != epsilon_ || window != window_) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  if (class_count > 64) return CorruptSnapshot("EH class count");
  if (now < 0 || first_arrival < 0 || first_arrival > now) {
    return CorruptSnapshot("EH clock");
  }
  now_ = now;
  first_arrival_ = first_arrival;
  total_count_ = total;
  std::vector<std::deque<Bucket>> decoded(class_count);
  for (auto& cls : decoded) {
    uint64_t buckets = 0;
    if (!decoder.GetVarint(&buckets) || buckets > 2 * cap_ + 2) {
      return CorruptSnapshot("EH class size");
    }
    Tick previous = 0;
    for (uint64_t i = 0; i < buckets; ++i) {
      uint64_t delta = 0, count = 0;
      if (!decoder.GetVarint(&delta) || !decoder.GetVarint(&count)) {
        return CorruptSnapshot("EH bucket");
      }
      previous += static_cast<Tick>(delta);
      cls.push_back(Bucket{previous, count});
    }
  }
  if (layout_ == HistogramLayout::kFlat) {
    classes_.clear();
    flat_.AssignFromClasses(
        decoded, [](const Bucket& b) { return b.end; },
        [](const Bucket& b) { return b.count; });
  } else {
    classes_ = std::move(decoded);
  }
  // Structural validation (hostile snapshots must not yield a structure
  // that later trips internal CHECKs) is exactly the audit protocol:
  // power-of-two counts matching the class, end timestamps within
  // [first_arrival, now] non-decreasing in canonical order, the per-class
  // cap, and the count checksum.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

Status ExponentialHistogram::AuditInvariants() const {
  TDS_AUDIT_CHECK(
      cap_ == static_cast<uint64_t>(std::ceil(1.0 / epsilon_)) + 1,
      "per-class budget must be ceil(1/eps) + 1");
  TDS_AUDIT_CHECK(first_arrival_ >= 0 && now_ >= first_arrival_,
                  "clock precedes first arrival");
  if (first_arrival_ == 0) {
    TDS_AUDIT_CHECK(total_count_ == 0 && BucketCount() == 0,
                    "buckets present before any arrival");
  }
  const Tick cutoff = window_ == kInfiniteHorizon
                          ? std::numeric_limits<Tick>::min()
                          : now_ - window_ + 1;
  uint64_t checksum = 0;
  Tick previous_end = std::numeric_limits<Tick>::min();
  auto check_bucket = [&](size_t c, uint64_t count, Tick end) -> Status {
    TDS_AUDIT_CHECK(count == (uint64_t{1} << c),
                    "class " + std::to_string(c) + " bucket count " +
                        std::to_string(count));
    // Canonical EH ordering: walking classes oldest-to-newest, end
    // timestamps never decrease (equal stamps are legal — one batch
    // insert spawns buckets in several classes).
    TDS_AUDIT_CHECK(end >= previous_end, "canonical ordering violated");
    TDS_AUDIT_CHECK(end >= first_arrival_ && end <= now_,
                    "bucket timestamp outside [first_arrival, now]");
    TDS_AUDIT_CHECK(end >= cutoff, "expired bucket retained");
    previous_end = end;
    checksum += count;
    return Status::OK();
  };
  if (layout_ == HistogramLayout::kFlat) {
    TDS_AUDIT_CHECK(classes_.empty(),
                    "chain storage populated under the flat layout");
    TDS_AUDIT_CHECK(flat_.num_classes() <= 64, "more than 64 size classes");
    size_t segment_sum = 0;
    for (size_t c = 0; c < flat_.num_classes(); ++c) {
      segment_sum += flat_.class_size(c);
    }
    TDS_AUDIT_CHECK(segment_sum == flat_.size(),
                    "flat class segments disagree with bucket storage");
    size_t pos = flat_.begin_index();
    for (size_t c = flat_.num_classes(); c-- > 0;) {
      const size_t segment = flat_.class_size(c);
      TDS_AUDIT_CHECK(segment <= cap_,
                      "class " + std::to_string(c) + " holds " +
                          std::to_string(segment) + " buckets, cap " +
                          std::to_string(cap_));
      for (size_t k = 0; k < segment; ++k, ++pos) {
        const Status bucket_status =
            check_bucket(c, flat_.count(pos), flat_.stamp(pos));
        if (!bucket_status.ok()) return bucket_status;
      }
    }
    TDS_AUDIT_CHECK(pos == flat_.end_index(),
                    "flat segment walk missed trailing buckets");
  } else {
    TDS_AUDIT_CHECK(flat_.empty() && flat_.num_classes() == 0,
                    "flat storage populated under the chain layout");
    TDS_AUDIT_CHECK(classes_.size() <= 64, "more than 64 size classes");
    for (size_t c = classes_.size(); c-- > 0;) {
      const auto& cls = classes_[c];
      TDS_AUDIT_CHECK(cls.size() <= cap_,
                      "class " + std::to_string(c) + " holds " +
                          std::to_string(cls.size()) + " buckets, cap " +
                          std::to_string(cap_));
      for (const Bucket& b : cls) {
        const Status bucket_status = check_bucket(c, b.count, b.end);
        if (!bucket_status.ok()) return bucket_status;
      }
    }
  }
  TDS_AUDIT_CHECK(checksum == total_count_,
                  "total_count_ " + std::to_string(total_count_) +
                      " != bucket sum " + std::to_string(checksum));
  return Status::OK();
}

size_t ExponentialHistogram::StorageBits() const {
  const Tick elapsed =
      first_arrival_ == 0 ? Tick{1} : now_ - first_arrival_ + 1;
  const Tick n_eff =
      window_ == kInfiniteHorizon ? elapsed : std::min(elapsed, window_);
  const double ts_bits =
      std::ceil(std::log2(static_cast<double>(n_eff) + 1.0));
  const double count_log =
      std::log2(static_cast<double>(std::max<uint64_t>(total_count_, 2)));
  const double exp_bits = std::ceil(std::log2(count_log + 1.0));
  return static_cast<size_t>(
      static_cast<double>(BucketCount()) * (ts_bits + exp_bits) + ts_bits);
}

}  // namespace tds
