#ifndef TDS_HISTOGRAM_WBMH_LAYOUT_H_
#define TDS_HISTOGRAM_WBMH_LAYOUT_H_

#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "decay/decay_function.h"
#include "util/common.h"
#include "util/status.h"

namespace tds {

/// Deterministic bucket-boundary engine of the Weight-Based Merging
/// Histogram (paper Section 5).
///
/// The age axis is partitioned into *regions* [b_i, b_{i+1}-1], where b_1 is
/// the maximum b with (1+eps) * g(b-1) >= g(1) and b_{i+1} the maximum b
/// with (1+eps) * g(b-1) >= g(b_i): all ages within one region have weights
/// within a (1+eps) factor of each other. Buckets evolve by a process that
/// is *independent of the stream*:
///
///  * the open bucket is sealed every `b_1 - 1` ticks (in the paper's worked
///    example, g = 1/x^2 with 1+eps = 5, the newest bucket alternates
///    between time-widths 1 and 2);
///  * two adjacent sealed buckets merge as soon as their combined age span
///    fits inside a single region;
///  * a bucket is dropped once even its newest item slot is older than the
///    decay horizon N(g).
///
/// Because boundaries depend only on (g, eps, T), one layout can be shared
/// by arbitrarily many per-stream counters — the paper's storage argument:
/// boundary values need not be stored per stream. The layout publishes a log
/// of structural operations (seal / merge / drop) with monotone sequence
/// numbers, and each WbmhCounter replays the suffix it has not yet applied.
/// Buckets are identified by stable 64-bit ids (a doubly linked list
/// internally), so merges are O(1) regardless of bucket count.
///
/// Time costs are amortized O(1) per elapsed tick: advancing over a gap of
/// D ticks performs O(D / b_1) seal and merge events.
class WbmhLayout {
 public:
  struct Options {
    DecayPtr decay;
    /// Bucketing precision: items in one bucket have weights within 1+eps.
    double epsilon = 0.5;
    /// First tick of the stream's life.
    Tick start = 1;
  };

  enum class OpKind : uint8_t {
    kSeal,   ///< Open bucket sealed; a new open bucket `a` was appended.
    kMerge,  ///< Bucket `b` merged into its older neighbor `a`.
    kDrop,   ///< Bucket `a` (the oldest) fell past the horizon; removed.
  };

  struct Op {
    OpKind kind;
    uint64_t a = 0;
    uint64_t b = 0;
  };

  struct BucketSpan {
    uint64_t id = 0;
    Tick start = 0;  ///< Oldest item slot (arrival tick) covered.
    Tick end = 0;    ///< Newest item slot covered.
  };

  static StatusOr<WbmhLayout> Create(const Options& options);

  /// Advances to tick t (>= now()): processes end-of-tick events (seal /
  /// merge / drop) for every tick *before* t, so that arrivals at t can
  /// still be routed into the bucket covering slot t.
  void AdvanceTo(Tick t);

  /// Runs the end-of-tick events of the current tick as well (used to
  /// observe the exact post-seal configuration the paper's example prints).
  void Settle();

  Tick now() const { return now_; }
  Tick start() const { return start_; }
  const DecayPtr& decay() const { return decay_; }
  double epsilon() const { return epsilon_; }

  /// Snapshot of bucket spans, oldest first; the last one is open.
  std::vector<BucketSpan> Spans() const;

  /// Id of the bucket whose span contains arrival tick t (searching from
  /// the newest side; arrivals are expected near `now`). 0 if none.
  uint64_t BucketForArrival(Tick t) const;

  /// Calls f(const BucketSpan&) oldest-to-newest.
  template <typename F>
  void ForEachSpanOldestFirst(F&& f) const {
    for (uint64_t id = head_; id != 0;) {
      const Node& node = nodes_.at(id);
      // The open bucket's span extends with the clock; a just-created open
      // bucket may still lie one tick in the future (reported start==end).
      const Tick end = node.next == 0 ? std::max(node.start, now_) : node.end;
      f(BucketSpan{id, node.start, end});
      id = node.next;
    }
  }

  size_t BucketCount() const { return nodes_.size(); }

  /// Total ops emitted so far; ops are numbered [0, OpSeq()).
  uint64_t OpSeq() const { return next_seq_; }

  /// First op still retained in the log.
  uint64_t LogStart() const { return log_start_; }

  /// Op with sequence number `seq` (must be in [LogStart(), OpSeq())).
  const Op& OpAt(uint64_t seq) const;

  /// Discards ops with seq < upto. Counters must have applied them already.
  void TrimLog(uint64_t upto);

  /// Region index of an age (0-based; region 0 starts at age 1), extending
  /// boundaries on demand. Ages past the horizon return -1.
  int RegionIndex(Tick age);

  /// Region start ages computed so far: starts[0] = 1, starts[1] = b_1, ...
  const std::vector<Tick>& RegionStarts() const { return starts_; }

  /// Number of regions needed to cover ages up to n:
  /// ceil(log_{1+eps} D(g)) by the paper's bound.
  int RegionCountUpTo(Tick n);

  /// Open-bucket cycle width: b_1 - 1.
  Tick SealPeriod() const { return seal_period_; }

  /// Snapshot support. The op log must be fully trimmed first (sync every
  /// counter, then TrimLog(OpSeq())): snapshots carry no log, so counters
  /// restored alongside must already be at the layout's op sequence.
  Status EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

  /// Verifies every structural invariant (see util/audit.h): bucket spans
  /// partition [start, ...] with consistent prev/next links and in-range
  /// ids, op-log window accounting, strictly increasing region boundaries,
  /// horizon-based drop eligibility of the head, and the weight-based merge
  /// condition — no adjacent sealed pair may still be merge-eligible at the
  /// last settled tick. Non-const only because the merge check can extend
  /// the memoized region table (derived configuration, not stream state).
  Status AuditInvariants();

 private:
  struct Node {
    Tick start = 0;
    Tick end = 0;
    uint64_t prev = 0;
    uint64_t next = 0;
  };

  struct PairEvent {
    Tick time;
    uint64_t left;
    uint64_t right;
    bool operator>(const PairEvent& other) const { return time > other.time; }
  };

  explicit WbmhLayout(const Options& options);

  /// Extends starts_ until it covers `age` or the horizon/search cap.
  void ExtendBoundaries(Tick age);

  /// Earliest T >= t0 at which buckets (left, right) could merge;
  /// kInfiniteHorizon if not found within the region-scan budget.
  Tick NextMergeTime(const Node& left, const Node& right, Tick t0);

  /// Runs all end-of-tick events at tick e (seal first, then merges, then
  /// drops); requires e to be the earliest pending event time.
  void ProcessTick(Tick e);

  Tick NextEventTime() const;

  void Emit(Op op);
  void DoSeal(Tick e);
  void DoMerge(uint64_t left, uint64_t right, Tick e);
  void DoDrops(Tick e);
  void SchedulePair(uint64_t left, uint64_t right, Tick t0);
  void RefreshNextDrop();

  DecayPtr decay_;
  double epsilon_;
  Tick start_;
  Tick seal_period_ = 1;
  Tick horizon_ = kInfiniteHorizon;

  Tick now_ = 0;
  Tick next_seal_ = 0;
  Tick next_drop_ = kInfiniteHorizon;
  Tick settled_through_ = 0;  ///< End-of-tick work done through this tick.

  std::vector<Tick> starts_;   ///< Region start ages; starts_[0] == 1.
  bool starts_capped_ = false;

  std::unordered_map<uint64_t, Node> nodes_;
  uint64_t head_ = 0;  ///< Oldest bucket id.
  uint64_t tail_ = 0;  ///< Open (newest) bucket id.
  uint64_t next_id_ = 1;

  std::priority_queue<PairEvent, std::vector<PairEvent>,
                      std::greater<PairEvent>>
      merge_events_;

  std::deque<Op> log_;
  uint64_t next_seq_ = 0;
  uint64_t log_start_ = 0;
};

}  // namespace tds

#endif  // TDS_HISTOGRAM_WBMH_LAYOUT_H_
