#ifndef TDS_HISTOGRAM_FLAT_STORE_H_
#define TDS_HISTOGRAM_FLAT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace tds {

/// Contiguous (SoA) bucket storage for exponential-histogram-shaped
/// structures — the FlatEH layout. Stamps and counts live in two parallel
/// arrays in canonical oldest-first order (highest size class first, class 0
/// last); `class_size_[c]` delimits the class segments and `head_` marks the
/// oldest live bucket, so front expiry is an offset bump (a compaction sweep
/// reclaims the dead prefix once it outgrows the live region).
///
/// Why this is the same structure as a vector of per-class deques: the
/// canonical EH ordering invariant — every bucket of class c is newer than
/// every bucket of class c+1 — means the concatenation class N-1, ...,
/// class 1, class 0 IS the global oldest-first order, so one array pair plus
/// per-class sizes represents the chains bucket-for-bucket.
///
/// Cost model: inserts are tail pushes (vector growth is geometric); a merge
/// cascade that reaches class A rewrites only the array suffix occupied by
/// classes A..0 as one in-place compaction sweep. A merge at class c fires
/// once per ~2^c inserted units, so the amortized insert cost is O(cap) —
/// the same as the chain layout, without its per-bucket heap scatter.
///
/// `Stamp` is the per-bucket boundary representation: an exact end tick for
/// the EH/CEH, an ApproxAge for the coarse CEH.
template <typename Stamp>
class FlatBucketStore {
 public:
  size_t num_classes() const { return class_size_.size(); }
  size_t class_size(size_t c) const { return class_size_[c]; }
  /// Live buckets (excludes the not-yet-compacted expired prefix).
  size_t size() const { return stamps_.size() - head_; }
  bool empty() const { return size() == 0; }

  /// Index range of the live buckets, oldest first.
  size_t begin_index() const { return head_; }
  size_t end_index() const { return stamps_.size(); }

  const Stamp& stamp(size_t i) const { return stamps_[i]; }
  Stamp& stamp(size_t i) { return stamps_[i]; }
  uint64_t count(size_t i) const { return counts_[i]; }

  void Clear() {
    stamps_.clear();
    counts_.clear();
    class_size_.clear();
    head_ = 0;
  }

  /// Calls f(stamp, count) for every live bucket, oldest to newest: a single
  /// linear scan — the layout's whole point.
  template <typename F>
  void ForEachOldestFirst(F&& f) const {
    for (size_t i = head_; i < stamps_.size(); ++i) f(stamps_[i], counts_[i]);
  }

  /// Calls f(c, begin, end) for each class segment in ascending class order
  /// (class 0 — the newest segment, at the array tail — first). This is the
  /// chain layout's `for (cls : classes_)` iteration order, which the codecs
  /// and the coarse-CEH RNG sweep depend on for bit-identity.
  template <typename F>
  void ForEachSegmentAscendingClass(F&& f) const {
    size_t end = stamps_.size();
    for (size_t c = 0; c < class_size_.size(); ++c) {
      const size_t begin = end - class_size_[c];
      f(c, begin, end);
      end = begin;
    }
    TDS_CHECK(end == head_);
  }

  /// Replaces the contents with `classes` (classes[c] = the class-c buckets,
  /// oldest first), laid out canonically. Cold path: snapshot decode.
  template <typename Classes, typename StampOf, typename CountOf>
  void AssignFromClasses(const Classes& classes, StampOf&& stamp_of,
                         CountOf&& count_of) {
    Clear();
    size_t total = 0;
    for (const auto& cls : classes) total += cls.size();
    stamps_.reserve(total);
    counts_.reserve(total);
    class_size_.assign(classes.size(), 0);
    for (size_t c = classes.size(); c-- > 0;) {
      for (const auto& bucket : classes[c]) {
        stamps_.push_back(stamp_of(bucket));
        counts_.push_back(count_of(bucket));
      }
      class_size_[c] = classes[c].size();
    }
  }

  /// Pops buckets off the global front while `expired(stamp)` holds and
  /// returns the total count removed. Canonical ordering makes the chain
  /// layout's per-class front expiry (highest class down, stop at the first
  /// survivor) exactly this global front pop. Class sizes shrink highest
  /// class first; `class_size_` keeps its length — the chain layout never
  /// drops emptied classes either, and codec byte-identity depends on that.
  template <typename Pred>
  uint64_t ExpireOldest(Pred&& expired) {
    size_t h = head_;
    uint64_t removed_count = 0;
    while (h < stamps_.size() && expired(stamps_[h])) {
      removed_count += counts_[h];
      ++h;
    }
    size_t removed = h - head_;
    head_ = h;
    for (size_t c = class_size_.size(); c-- > 0 && removed > 0;) {
      const size_t take = removed < class_size_[c] ? removed : class_size_[c];
      class_size_[c] -= take;
      removed -= take;
    }
    MaybeCompact();
    return removed_count;
  }

  /// Inserts `incoming_units` unit buckets stamped `fresh` into class 0 and
  /// runs the EH merge cascade (the two oldest buckets of a class merge into
  /// the next while the class exceeds `cap`), mirroring the chain layout's
  /// sequential-insertion digit arithmetic step-for-step.
  /// `merge_stamps(older, newer)` yields the merged bucket's stamp: the EH
  /// keeps the newer end timestamp, the coarse variant the younger age.
  template <typename MergeStamps>
  void InsertUnits(uint64_t incoming_units, const Stamp& fresh, uint64_t cap,
                   MergeStamps&& merge_stamps) {
    // Lazy class-0 creation, matching the chain layout's emplace_back site.
    if (class_size_.empty()) class_size_.push_back(0);
    // Fast path: class 0 stays within budget — a pure tail append.
    if (class_size_[0] + incoming_units <= cap) {
      for (uint64_t v = 0; v < incoming_units; ++v) {
        stamps_.push_back(fresh);
        counts_.push_back(1);
      }
      class_size_[0] += incoming_units;
      return;
    }
    CascadeInsert(incoming_units, fresh, cap, merge_stamps);
  }

 private:
  /// Per-class working state for one cascade: a pop cursor over the class's
  /// original segment plus the buckets appended during the cascade (carries
  /// from below, then materialized incoming buckets) with their own pop
  /// cursor — later merges at the same class may consume appended carries,
  /// so deque pop-front order is original-segment-first, then appended.
  struct ClassWork {
    size_t orig_begin = 0;
    size_t orig_size = 0;
    size_t popped = 0;
    size_t app_taken = 0;
    std::vector<Stamp> app_stamps;
    std::vector<uint64_t> app_counts;
  };

  /// Cascade scratch, shared thread-local rather than member-owned: a
  /// registry holds one store per key, and per-instance scratch (especially
  /// the nested per-class vectors) would both bloat every key by ~10 heap
  /// blocks and drag all of them through the cache on each cold-key
  /// cascade. One thread's scratch stays hot across every store it touches;
  /// mutation already requires exclusive access per store, so per-thread
  /// sharing is race-free.
  struct Scratch {
    std::vector<ClassWork> work;
    std::vector<size_t> seg_offs;
    std::vector<Stamp> carry_stamps;
    std::vector<uint64_t> carry_counts;
    std::vector<Stamp> rebuild_stamps;
    std::vector<uint64_t> rebuild_counts;
  };
  static Scratch& TlsScratch() {
    static thread_local Scratch scratch;
    return scratch;
  }

  void PopFront(ClassWork& w, Stamp* stamp, uint64_t* count) {
    if (w.popped < w.orig_size) {
      const size_t k = w.orig_begin + w.popped++;
      *stamp = stamps_[k];
      *count = counts_[k];
    } else {
      *stamp = w.app_stamps[w.app_taken];
      *count = w.app_counts[w.app_taken];
      ++w.app_taken;
    }
  }

  template <typename MergeStamps>
  void CascadeInsert(uint64_t incoming_units, const Stamp& fresh,
                     uint64_t cap, MergeStamps&& merge_stamps) {
    Scratch& s = TlsScratch();
    std::vector<ClassWork>& work_ = s.work;
    std::vector<size_t>& seg_offs_ = s.seg_offs;
    std::vector<Stamp>& carry_stamps_ = s.carry_stamps;
    std::vector<uint64_t>& carry_counts_ = s.carry_counts;
    std::vector<Stamp>& rebuild_stamps_ = s.rebuild_stamps;
    std::vector<uint64_t>& rebuild_counts_ = s.rebuild_counts;
    // Segment offsets of the classes as they stand (class N-1 at head_).
    seg_offs_.resize(class_size_.size());
    {
      size_t pos = head_;
      for (size_t c = class_size_.size(); c-- > 0;) {
        seg_offs_[c] = pos;
        pos += class_size_[c];
      }
    }
    // Classes created mid-cascade sit above every existing segment and are
    // empty, so their (vacuous) original segment is at head_.
    auto init_work = [this, &work_, &seg_offs_](size_t c) {
      while (work_.size() <= c) work_.emplace_back();
      ClassWork& w = work_[c];
      w.orig_begin = c < seg_offs_.size() ? seg_offs_[c] : head_;
      w.orig_size = class_size_[c];
      w.popped = 0;
      w.app_taken = 0;
      w.app_stamps.clear();
      w.app_counts.clear();
    };
    init_work(0);
    // `virtual_new` tracks not-yet-materialized incoming buckets of count
    // 2^i (all stamped `fresh`); real carries — which may inherit older
    // stamps — materialize eagerly, exactly as in the chain layout.
    uint64_t virtual_new = incoming_units;
    size_t i = 0;
    while (true) {
      if (i >= class_size_.size()) class_size_.push_back(0);
      ClassWork& w = work_[i];
      const uint64_t real_live =
          (w.orig_size - w.popped) + (w.app_stamps.size() - w.app_taken);
      const uint64_t total = real_live + virtual_new;
      uint64_t next_virtual = 0;
      carry_stamps_.clear();
      carry_counts_.clear();
      if (total > cap) {
        // Sequential-insertion semantics: a merge fires each time the class
        // reaches cap+1 buckets, pairing its two oldest.
        const uint64_t merges = (total - cap + 1) / 2;
        for (uint64_t m = 0; m < merges; ++m) {
          const size_t real =
              (w.orig_size - w.popped) + (w.app_stamps.size() - w.app_taken);
          if (real >= 2) {
            Stamp older_stamp;
            Stamp newer_stamp;
            uint64_t older_count = 0;
            uint64_t newer_count = 0;
            PopFront(w, &older_stamp, &older_count);
            PopFront(w, &newer_stamp, &newer_count);
            carry_stamps_.push_back(merge_stamps(older_stamp, newer_stamp));
            carry_counts_.push_back(older_count + newer_count);
          } else if (real == 1) {
            // One pre-existing bucket pairs with one incoming unit bucket.
            Stamp older_stamp;
            uint64_t older_count = 0;
            PopFront(w, &older_stamp, &older_count);
            TDS_CHECK_GE(virtual_new, 1u);
            --virtual_new;
            carry_stamps_.push_back(fresh);
            carry_counts_.push_back(older_count << 1);
          } else {
            // All remaining merges pair incoming buckets with each other:
            // pure arithmetic, closed out in one step (what keeps huge-value
            // insertion O(log v) instead of O(v)).
            const uint64_t remaining = merges - m;
            TDS_CHECK_GE(virtual_new, 2 * remaining);
            virtual_new -= 2 * remaining;
            next_virtual += remaining;
            break;
          }
        }
      }
      // Materialize the surviving incoming buckets (newest in the class).
      for (uint64_t v = 0; v < virtual_new; ++v) {
        w.app_stamps.push_back(fresh);
        w.app_counts.push_back(uint64_t{1} << i);
      }
      if (carry_stamps_.empty() && next_virtual == 0) break;
      if (i + 1 >= class_size_.size()) class_size_.push_back(0);
      init_work(i + 1);
      // Carries were produced oldest-first and are newer than everything in
      // class i+1, so appending preserves the ordering invariant.
      ClassWork& up = work_[i + 1];
      for (size_t k = 0; k < carry_stamps_.size(); ++k) {
        up.app_stamps.push_back(carry_stamps_[k]);
        up.app_counts.push_back(carry_counts_[k]);
      }
      virtual_new = next_virtual;
      ++i;
    }
    // Rebuild the affected suffix (classes i..0) as one compaction sweep;
    // every class above i kept its segment untouched.
    const size_t terminal = i;
    rebuild_stamps_.clear();
    rebuild_counts_.clear();
    const size_t suffix_begin = work_[terminal].orig_begin;
    for (size_t c = terminal + 1; c-- > 0;) {
      ClassWork& w = work_[c];
      for (size_t k = w.orig_begin + w.popped; k < w.orig_begin + w.orig_size;
           ++k) {
        rebuild_stamps_.push_back(stamps_[k]);
        rebuild_counts_.push_back(counts_[k]);
      }
      for (size_t k = w.app_taken; k < w.app_stamps.size(); ++k) {
        rebuild_stamps_.push_back(w.app_stamps[k]);
        rebuild_counts_.push_back(w.app_counts[k]);
      }
      class_size_[c] =
          (w.orig_size - w.popped) + (w.app_stamps.size() - w.app_taken);
    }
    stamps_.resize(suffix_begin);
    counts_.resize(suffix_begin);
    stamps_.insert(stamps_.end(), rebuild_stamps_.begin(),
                   rebuild_stamps_.end());
    counts_.insert(counts_.end(), rebuild_counts_.begin(),
                   rebuild_counts_.end());
  }

  /// Reclaims the expired prefix once it is at least as large as the live
  /// region — amortized O(1) per expired bucket.
  void MaybeCompact() {
    if (head_ == 0) return;
    if (stamps_.size() - head_ <= head_) {
      stamps_.erase(stamps_.begin(),
                    stamps_.begin() + static_cast<std::ptrdiff_t>(head_));
      counts_.erase(counts_.begin(),
                    counts_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<Stamp> stamps_;
  std::vector<uint64_t> counts_;
  std::vector<size_t> class_size_;
  size_t head_ = 0;
};

}  // namespace tds

#endif  // TDS_HISTOGRAM_FLAT_STORE_H_
