#ifndef TDS_HISTOGRAM_WBMH_COUNTER_H_
#define TDS_HISTOGRAM_WBMH_COUNTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "histogram/wbmh_layout.h"
#include "stream/stream.h"
#include "util/rounded_counter.h"
#include "util/status.h"

namespace tds {

/// Per-stream state of a Weight-Based Merging Histogram (paper Section 5):
/// one (approximate) count per layout bucket, keyed by the layout's stable
/// bucket ids. Boundaries live in the shared WbmhLayout; this object stores
/// only counts, which is the paper's point — for 100M customer streams the
/// boundary process is amortized across all of them.
///
/// Counts are held in RoundedCounter registers of ~log(1/eps) significant
/// bits. Each merge re-rounds once; tracking the merge level l and widening
/// the mantissa by 2*log2(l) bits implements the paper's beta_i = eps/i^2
/// schedule, so the total multiplicative drift stays below (1 + eps) without
/// knowing N in advance.
class WbmhCounter {
 public:
  struct Options {
    /// Count-rounding precision: accumulated rounding drift stays below
    /// (1 + count_epsilon). Zero or negative disables rounding (exact
    /// counts; the CEH-vs-WBMH ablation uses this).
    double count_epsilon = 0.0;
  };

  WbmhCounter(std::shared_ptr<WbmhLayout> layout, const Options& options);

  /// Adds `value` unit items arriving at tick t. Advances the shared layout
  /// to t and replays any pending structural ops first.
  void Add(Tick t, uint64_t value);

  /// Batch of tick-sorted items: the layout advance / op replay / bucket
  /// lookup run once per *distinct* tick while counts are still added
  /// per item (RoundedCounter rounds after every Add, so summing a run
  /// first would change the register). Bit-identical to per-item Add.
  void AddBatch(std::span<const StreamItem> items);

  /// Replays structural ops up to the layout's current sequence number
  /// without adding data (call before WbmhLayout::TrimLog when sharing).
  void Sync();

  /// Advances the shared layout to `now` and replays the resulting ops.
  void Advance(Tick now);

  /// Estimated decayed sum at time `now` (advances the layout).
  /// Each bucket contributes count * g(age of its newest slot).
  double Query(Tick now);

  /// Side-effect-free estimate at `now` (>= the layout's clock): evaluates
  /// the decayed sum over the bucket structure as of the layout's last
  /// advance, with true ages relative to `now`. If this counter has not
  /// applied the layout's latest ops, they are replayed on a local copy of
  /// the count values (without re-rounding, a one-sided difference bounded
  /// by the rounding eps). Buckets whose newest slot is past the horizon
  /// contribute 0. Safe for concurrent readers of a quiescent structure.
  double Estimate(Tick now) const;

  /// Sum of all bucket counts (no decay weighting).
  double RawTotal() const;

  /// Number of buckets with nonzero counts.
  size_t ActiveBuckets() const { return counts_.size(); }

  /// Last layout op sequence number applied.
  uint64_t AppliedSeq() const { return applied_seq_; }

  /// Storage bits under the paper's metric: per active bucket, the rounded
  /// counter's mantissa+exponent (or exact log-count bits), plus one
  /// sequence register. Boundary storage is *not* charged here — it is
  /// shared across streams (charge the layout separately if unshared).
  size_t StorageBits() const;

  const std::shared_ptr<WbmhLayout>& layout() const { return layout_; }

  /// Snapshot support. The counter must be synced to the layout's current
  /// op sequence (Sync()) before encoding.
  Status EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

  /// Verifies every structural invariant (see util/audit.h): the applied
  /// sequence lies within the layout's retained log window, every count
  /// register is finite and nonnegative with a mantissa width matching the
  /// beta_i = eps/i^2 schedule for its merge level, and — once fully synced
  /// — every counted bucket id is live in the layout.
  Status AuditInvariants() const;

 private:
  struct Cell {
    RoundedCounter count;
    uint32_t level = 0;  ///< Merge depth, drives the mantissa schedule.
  };

  int MantissaBitsForLevel(uint32_t level) const;

  std::shared_ptr<WbmhLayout> layout_;
  double count_epsilon_;
  int base_mantissa_bits_;  ///< 0 when rounding is disabled.

  std::unordered_map<uint64_t, Cell> counts_;
  uint64_t applied_seq_ = 0;
};

}  // namespace tds

#endif  // TDS_HISTOGRAM_WBMH_COUNTER_H_
