#ifndef TDS_HISTOGRAM_EXPONENTIAL_HISTOGRAM_H_
#define TDS_HISTOGRAM_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "histogram/flat_store.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/common.h"
#include "util/status.h"

namespace tds {

/// Exponential Histogram of Datar, Gionis, Indyk & Motwani (paper
/// Section 4.1): a (1 +- epsilon)-approximate count of 1s (or sum of small
/// nonnegative integers) over a sliding window, in O(eps^{-1} log^2 W) bits.
///
/// Buckets hold power-of-two counts; per size class at most
/// `cap = ceil(1/eps) + 1` buckets are kept, and when a class overflows
/// its two oldest buckets merge into the next class (the paper's
/// "domination-based" aggregation). Each bucket stores only the timestamp of
/// its most recent item; a bucket expires when even that timestamp leaves
/// the window. The estimate counts expired-straddling mass as half the
/// oldest bucket.
///
/// Lemma 4.1 of the paper: the same structure answers *every* window size
/// w <= W (EstimateWindow), which is what the cascaded general-decay
/// estimator (CEH, Section 4.2) builds on.
///
/// Values v > 1 are inserted as v logical unit items sharing one timestamp.
/// The insertion is performed with per-class digit arithmetic, so the cost
/// is O(cap * log v) rather than O(v).
class ExponentialHistogram {
 public:
  struct Options {
    /// Target relative error (0, 1].
    double epsilon = 0.1;
    /// Window size W in ticks; kInfiniteHorizon means never expire
    /// (used when cascading decay functions with unbounded support).
    Tick window = kInfiniteHorizon;
    /// Bucket-storage layout. kFlat (default) keeps buckets in contiguous
    /// SoA arrays; kChain keeps the original per-class deques. The two are
    /// bit-identical in every observable way (queries, snapshot bytes,
    /// audits) — see tests/flat_layout_differential_test.cc.
    HistogramLayout layout = HistogramLayout::kFlat;
  };

  struct Bucket {
    Tick end = 0;        ///< Arrival tick of the bucket's most recent item.
    uint64_t count = 0;  ///< Number of unit items aggregated in the bucket.
  };

  static StatusOr<ExponentialHistogram> Create(const Options& options);

  /// Adds `value` unit items at tick `t`. Requires t >= now().
  void Add(Tick t, uint64_t value);

  /// Advances the clock (expiring buckets); requires t >= now().
  void AdvanceTo(Tick t);

  Tick now() const { return now_; }

  /// Estimate of the count over the full window [now-W+1, now].
  double Estimate() const;

  /// Estimate of the count over the window of size w <= W ending at now()
  /// (Lemma 4.1).
  double EstimateWindow(Tick w) const;

  /// Sum of all live bucket counts (upper bound on the window count).
  uint64_t TotalCount() const { return total_count_; }

  /// Number of live buckets.
  size_t BucketCount() const;

  /// True if no unexpired items remain.
  bool Empty() const { return total_count_ == 0; }

  /// Calls f(Bucket) for every live bucket from oldest to newest: a single
  /// linear scan in the flat layout, a class-major walk in the chain layout
  /// (identical visit order either way — canonical EH ordering makes the
  /// descending-class concatenation the global oldest-first order).
  template <typename F>
  void ForEachBucketOldestFirst(F&& f) const {
    if (layout_ == HistogramLayout::kFlat) {
      flat_.ForEachOldestFirst(
          [&f](Tick end, uint64_t count) { f(Bucket{end, count}); });
      return;
    }
    for (size_t c = classes_.size(); c-- > 0;) {
      for (const Bucket& b : classes_[c]) f(b);
    }
  }

  /// Snapshot of buckets, oldest first (test/inspection convenience).
  std::vector<Bucket> Buckets() const;

  /// Arrival tick of the earliest item ever added, or 0 if none.
  Tick first_arrival() const { return first_arrival_; }

  /// Storage accounting under the paper's bit metric: each bucket is charged
  /// a timestamp of ceil(log2(N+1)) bits plus a size exponent of
  /// ceil(log2(log2(maxCount)+1)) bits, where N = min(elapsed, W).
  /// One extra timestamp register is charged for the clock.
  size_t StorageBits() const;

  double epsilon() const { return epsilon_; }
  Tick window() const { return window_; }
  HistogramLayout layout() const { return layout_; }

  /// Merges another histogram over a *disjoint* substream of the same
  /// window into this one (the distributed sliding-window setting of
  /// Gibbons & Tirthapura, cited in the paper's Section 1.2: per-site
  /// summaries combined at a coordinator). Every bucket of `other` is
  /// replayed as a batch insert at its end timestamp, so the result is a
  /// valid canonical EH whose additional error is bounded by the *input*
  /// histogram's own bucket spread: the combined estimate stays within
  /// ~(eps_this + eps_other) of the union stream's window count.
  /// Requires matching epsilon and window. The clocks may differ; the
  /// merged clock is the max.
  Status MergeFrom(const ExponentialHistogram& other);

  /// Snapshot support: serializes options and full bucket state.
  void EncodeState(class Encoder& encoder) const;
  /// Restores onto a freshly-created histogram; the encoded options must
  /// match this instance's options.
  Status DecodeState(class Decoder& decoder);

  /// Verifies every structural invariant (see util/audit.h): the canonical
  /// ordering — walking classes newest-to-oldest class index, all bucket end
  /// timestamps are globally non-decreasing oldest-to-newest — per-class
  /// power-of-two counts and the `cap = ceil(1/eps) + 1` budget, timestamps
  /// within [first_arrival, now], no bucket outside a finite window, and
  /// `total_count_` equal to the sum of bucket counts.
  Status AuditInvariants() const;

 private:
  explicit ExponentialHistogram(const Options& options);

  /// Inserts `count` unit items at tick t into class 0 and cascades.
  void InsertUnits(Tick t, uint64_t count);

  /// Expires buckets whose end timestamp has left the window.
  void Expire();

  double epsilon_;
  Tick window_;
  /// Max buckets per size class before a merge is forced.
  uint64_t cap_;
  HistogramLayout layout_;

  /// kChain storage: classes_[i] holds the buckets of count 2^i, oldest at
  /// the front. Invariant: every bucket in classes_[i] is newer than every
  /// bucket in classes_[i+1] (canonical EH ordering). Empty under kFlat.
  std::vector<std::deque<Bucket>> classes_;
  /// kFlat storage: the same buckets in contiguous SoA arrays (stamps =
  /// end ticks). Empty under kChain.
  FlatBucketStore<Tick> flat_;

  Tick now_ = 0;
  Tick first_arrival_ = 0;
  uint64_t total_count_ = 0;
};

}  // namespace tds

#endif  // TDS_HISTOGRAM_EXPONENTIAL_HISTOGRAM_H_
