#include "histogram/wbmh_layout.h"

#include <algorithm>
#include <string>

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"

namespace tds {

namespace {
/// Boundary search cap for decays that never (or barely) decay: a region
/// whose end would exceed this is treated as unbounded.
constexpr Tick kMaxBoundary = Tick{1} << 40;
/// How many regions ahead NextMergeTime scans before giving up. Missing a
/// merge only costs storage (extra buckets), never accuracy; for decays
/// where region widths grow (the WBMH-admissible families of interest,
/// e.g. POLYD) the scan succeeds within a few regions.
constexpr int kRegionScanBudget = 128;
}  // namespace

WbmhLayout::WbmhLayout(const Options& options)
    : decay_(options.decay),
      epsilon_(options.epsilon),
      start_(options.start),
      horizon_(options.decay->Horizon()) {
  starts_.push_back(1);
  ExtendBoundaries(1);  // computes b_1
  if (starts_.size() >= 2) {
    seal_period_ = starts_[1] - 1;
  } else {
    // The decay never drops below g(1)/(1+eps) within the search cap: one
    // region covers everything, and the open bucket effectively never seals.
    seal_period_ = kMaxBoundary;
  }
  TDS_CHECK_GE(seal_period_, 1);

  now_ = start_;
  settled_through_ = start_ - 1;
  const uint64_t id = next_id_++;
  nodes_[id] = Node{start_, start_, 0, 0};
  head_ = tail_ = id;
  next_seal_ = start_ + seal_period_ - 1;
}

StatusOr<WbmhLayout> WbmhLayout::Create(const Options& options) {
  if (options.decay == nullptr) {
    return Status::InvalidArgument("WBMH layout requires a decay function");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("WBMH layout requires epsilon > 0");
  }
  if (!(options.decay->Weight(1) > 0.0)) {
    return Status::InvalidArgument("decay weight at age 1 must be positive");
  }
  return WbmhLayout(options);
}

void WbmhLayout::ExtendBoundaries(Tick age) {
  while (!starts_capped_ && starts_.back() <= age) {
    const Tick prev = starts_.back();
    const double tau = decay_->Weight(prev);
    if (!(tau > 0.0)) {
      // The previous region start already lies past the horizon.
      starts_capped_ = true;
      return;
    }
    const double threshold = tau / (1.0 + epsilon_);
    Tick cap = kMaxBoundary;
    if (horizon_ != kInfiniteHorizon) cap = std::min(cap, horizon_);
    // Largest x in [prev, cap] with Weight(x) >= threshold; the next region
    // starts at x + 1 (paper: b_{i+1} maximal with (1+eps) g(b-1) >= g(b_i)).
    Tick good = prev;  // Weight(prev) == tau >= threshold.
    Tick step = 1;
    while (good + step <= cap && decay_->Weight(good + step) >= threshold) {
      good += step;
      step <<= 1;
    }
    Tick bad = std::min(good + step, cap + 1);
    while (good + 1 < bad) {
      const Tick mid = good + (bad - good) / 2;
      if (decay_->Weight(mid) >= threshold) {
        good = mid;
      } else {
        bad = mid;
      }
    }
    if (good >= cap) {
      // Condition holds through the cap (horizon or search bound): the last
      // region is effectively unbounded.
      starts_capped_ = true;
      starts_.push_back(cap + 1);
      return;
    }
    starts_.push_back(good + 1);
  }
}

int WbmhLayout::RegionIndex(Tick age) {
  if (age < 1) age = 1;
  if (horizon_ != kInfiniteHorizon && age > horizon_) return -1;
  ExtendBoundaries(age);
  if (age >= starts_.back()) {
    // Only reachable when capped (ExtendBoundaries otherwise guarantees
    // starts_.back() > age): the final region is unbounded.
    return static_cast<int>(starts_.size()) - 1;
  }
  auto it = std::upper_bound(starts_.begin(), starts_.end(), age);
  return static_cast<int>(it - starts_.begin()) - 1;
}

int WbmhLayout::RegionCountUpTo(Tick n) {
  Tick probe = n;
  if (horizon_ != kInfiniteHorizon) probe = std::min(probe, horizon_);
  const int r = RegionIndex(probe);
  return r < 0 ? 0 : r + 1;
}

Tick WbmhLayout::NextMergeTime(const Node& left, const Node& right, Tick t0) {
  // Merged span would cover slots [left.start, right.end]; at time T its
  // ages run lo(T) .. lo(T)+L with lo(T) = T - right.end + 1. The pair can
  // merge at the first T >= t0 where that whole range fits in one region.
  const Tick t_min = std::max(t0, right.end);
  const Tick lo0 = t_min - right.end + 1;
  int r = RegionIndex(lo0);
  if (r < 0) return kInfiniteHorizon;  // already past the horizon
  const Tick span = right.end - left.start;
  for (int iter = 0; iter < kRegionScanBudget; ++iter, ++r) {
    while (static_cast<int>(starts_.size()) <= r + 1 && !starts_capped_) {
      ExtendBoundaries(starts_.back());
    }
    if (r >= static_cast<int>(starts_.size())) break;
    const Tick region_start = starts_[r];
    Tick region_end;
    if (r + 1 < static_cast<int>(starts_.size())) {
      region_end = starts_[r + 1] - 1;
    } else {
      region_end =
          horizon_ != kInfiniteHorizon ? horizon_ : kMaxBoundary;
    }
    if (horizon_ != kInfiniteHorizon) {
      region_end = std::min(region_end, horizon_);
    }
    const Tick lo_min = std::max(region_start, lo0);
    const Tick lo_max = region_end - span;
    if (lo_max >= lo_min) return right.end - 1 + lo_min;
    if (horizon_ != kInfiniteHorizon && region_end >= horizon_) break;
    if (r + 1 >= static_cast<int>(starts_.size())) break;  // capped
  }
  return kInfiniteHorizon;
}

Tick WbmhLayout::NextEventTime() const {
  Tick e = next_seal_;
  if (!merge_events_.empty()) e = std::min(e, merge_events_.top().time);
  e = std::min(e, next_drop_);
  return e;
}

void WbmhLayout::Emit(Op op) {
  log_.push_back(op);
  ++next_seq_;
}

void WbmhLayout::SchedulePair(uint64_t left, uint64_t right, Tick t0) {
  auto left_it = nodes_.find(left);
  auto right_it = nodes_.find(right);
  if (left_it == nodes_.end() || right_it == nodes_.end()) return;
  const Tick t = NextMergeTime(left_it->second, right_it->second, t0);
  if (t != kInfiniteHorizon) merge_events_.push(PairEvent{t, left, right});
}

void WbmhLayout::DoSeal(Tick e) {
  Node& open = nodes_[tail_];
  open.end = e;  // seal arithmetic guarantees full width
  const uint64_t new_id = next_id_++;
  const uint64_t sealed = tail_;
  nodes_[new_id] = Node{e + 1, e + 1, sealed, 0};
  nodes_[sealed].next = new_id;
  tail_ = new_id;
  Emit(Op{OpKind::kSeal, new_id, 0});
  next_seal_ += seal_period_;
  const uint64_t prev = nodes_[sealed].prev;
  if (prev != 0) SchedulePair(prev, sealed, e);
}

void WbmhLayout::DoMerge(uint64_t left, uint64_t right, Tick e) {
  Node& ln = nodes_[left];
  const Node rn = nodes_[right];
  TDS_CHECK_NE(right, tail_);
  ln.end = rn.end;
  ln.next = rn.next;
  TDS_CHECK_NE(rn.next, 0u);
  nodes_[rn.next].prev = left;
  nodes_.erase(right);
  Emit(Op{OpKind::kMerge, left, right});
  if (ln.prev != 0) SchedulePair(ln.prev, left, e);
  if (ln.next != 0 && ln.next != tail_) SchedulePair(left, ln.next, e);
}

void WbmhLayout::DoDrops(Tick e) {
  if (horizon_ == kInfiniteHorizon) return;
  while (head_ != 0 && head_ != tail_) {
    const Node& h = nodes_[head_];
    if (e < horizon_ + h.end) break;  // newest slot age == horizon+1 at drop
    const uint64_t old = head_;
    head_ = h.next;
    nodes_[head_].prev = 0;
    nodes_.erase(old);
    Emit(Op{OpKind::kDrop, old, 0});
  }
}

void WbmhLayout::RefreshNextDrop() {
  if (horizon_ == kInfiniteHorizon || head_ == tail_) {
    next_drop_ = kInfiniteHorizon;
    return;
  }
  next_drop_ = horizon_ + nodes_[head_].end;
}

void WbmhLayout::ProcessTick(Tick e) {
  if (e == next_seal_) DoSeal(e);
  while (!merge_events_.empty() && merge_events_.top().time <= e) {
    const PairEvent ev = merge_events_.top();
    merge_events_.pop();
    auto left_it = nodes_.find(ev.left);
    if (left_it == nodes_.end()) continue;
    if (left_it->second.next != ev.right) continue;
    if (ev.right == tail_) continue;
    const Tick t = NextMergeTime(left_it->second, nodes_.at(ev.right), e);
    if (t <= e) {
      DoMerge(ev.left, ev.right, e);
    } else if (t != kInfiniteHorizon) {
      merge_events_.push(PairEvent{t, ev.left, ev.right});
    }
  }
  DoDrops(e);
  RefreshNextDrop();
  settled_through_ = e;
}

void WbmhLayout::AdvanceTo(Tick t) {
  TDS_CHECK_GE(t, now_);
  while (true) {
    const Tick e = NextEventTime();
    if (e >= t) break;
    ProcessTick(e);
  }
  now_ = t;
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void WbmhLayout::Settle() {
  while (true) {
    const Tick e = NextEventTime();
    if (e > now_) break;
    ProcessTick(e);
  }
  settled_through_ = now_;
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status WbmhLayout::AuditInvariants() {
  TDS_AUDIT_CHECK(!nodes_.empty() && head_ != 0 && tail_ != 0,
                  "the layout always holds an open bucket");
  TDS_AUDIT_CHECK(now_ >= start_, "clock precedes the stream start");
  TDS_AUDIT_CHECK(settled_through_ <= now_,
                  "settled past the current clock");
  TDS_AUDIT_CHECK(next_seq_ >= log_start_ &&
                      next_seq_ - log_start_ == log_.size(),
                  "op-log window does not match its sequence numbers");
  TDS_AUDIT_CHECK(!starts_.empty() && starts_.front() == 1,
                  "region table must start at age 1");
  for (size_t i = 0; i + 1 < starts_.size(); ++i) {
    TDS_AUDIT_CHECK(starts_[i] < starts_[i + 1],
                    "region boundaries must be strictly increasing");
  }

  // Walk the bucket list oldest-to-newest: ids in range, links consistent,
  // spans partitioning the timeline from `start_`, open bucket last.
  size_t visited = 0;
  uint64_t previous = 0;
  Tick expected_start = start_;
  for (uint64_t id = head_; id != 0;) {
    const auto it = nodes_.find(id);
    TDS_AUDIT_CHECK(it != nodes_.end(), "dangling bucket link");
    const Node& node = it->second;
    TDS_AUDIT_CHECK(++visited <= nodes_.size(), "cycle in the bucket list");
    TDS_AUDIT_CHECK(id < next_id_, "bucket id beyond the id allocator");
    TDS_AUDIT_CHECK(node.prev == previous, "prev link mismatch");
    TDS_AUDIT_CHECK(node.start == expected_start,
                    "bucket spans must partition the timeline (gap at " +
                        std::to_string(node.start) + ")");
    if (node.next != 0) {
      TDS_AUDIT_CHECK(node.end >= node.start, "inverted sealed span");
      expected_start = node.end + 1;
    } else {
      TDS_AUDIT_CHECK(id == tail_, "open bucket must be the tail");
      TDS_AUDIT_CHECK(node.start <= now_ + 1,
                      "open bucket starts past the clock");
    }
    previous = id;
    id = node.next;
  }
  TDS_AUDIT_CHECK(visited == nodes_.size(), "orphaned bucket nodes");

  // Drop eligibility: the head would have been dropped at the first settled
  // tick where even its newest slot fell past the horizon.
  if (horizon_ != kInfiniteHorizon && head_ != tail_) {
    TDS_AUDIT_CHECK(settled_through_ - nodes_.at(head_).end < horizon_,
                    "head bucket outlived the decay horizon");
  }

  // Weight-based merge condition: merges fire as soon as a sealed pair's
  // combined span fits in one region, so at the settled tick no adjacent
  // sealed pair may be merge-eligible (NextMergeTime returns the earliest
  // T >= settled_through_; eligibility exactly at the settled tick means a
  // merge event was missed).
  for (uint64_t id = head_; id != 0; id = nodes_.at(id).next) {
    const uint64_t next = nodes_.at(id).next;
    if (next == 0 || next == tail_) continue;
    const Tick t =
        NextMergeTime(nodes_.at(id), nodes_.at(next), settled_through_);
    TDS_AUDIT_CHECK(t > settled_through_,
                    "adjacent sealed buckets were merge-eligible at the "
                    "settled tick");
  }
  return Status::OK();
}

Status WbmhLayout::EncodeState(Encoder& encoder) const {
  if (!log_.empty()) {
    return Status::FailedPrecondition(
        "op log not trimmed: sync all counters and TrimLog before encoding");
  }
  encoder.PutDouble(epsilon_);
  encoder.PutSigned(start_);
  encoder.PutSigned(now_);
  encoder.PutSigned(settled_through_);
  encoder.PutSigned(next_seal_);
  encoder.PutVarint(next_id_);
  encoder.PutVarint(next_seq_);
  encoder.PutVarint(nodes_.size());
  for (uint64_t id = head_; id != 0;) {
    const Node& node = nodes_.at(id);
    encoder.PutVarint(id);
    encoder.PutSigned(node.start);
    encoder.PutSigned(node.end);
    id = node.next;
  }
  return Status::OK();
}

Status WbmhLayout::DecodeState(Decoder& decoder) {
  double epsilon = 0.0;
  int64_t start = 0, now = 0, settled = 0, next_seal = 0;
  uint64_t next_id = 0, next_seq = 0, node_count = 0;
  if (!decoder.GetDouble(&epsilon) || !decoder.GetSigned(&start) ||
      !decoder.GetSigned(&now) || !decoder.GetSigned(&settled) ||
      !decoder.GetSigned(&next_seal) || !decoder.GetVarint(&next_id) ||
      !decoder.GetVarint(&next_seq) || !decoder.GetVarint(&node_count)) {
    return CorruptSnapshot("WBMH layout header");
  }
  if (epsilon != epsilon_ || start != start_) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  if (node_count == 0 || node_count > (1u << 22)) {
    return CorruptSnapshot("WBMH layout empty");
  }
  if (now < start || settled > now || next_seal < start) {
    return CorruptSnapshot("WBMH layout clock");
  }
  now_ = now;
  settled_through_ = settled;
  next_seal_ = next_seal;
  next_id_ = next_id;
  next_seq_ = next_seq;
  log_start_ = next_seq;
  log_.clear();
  nodes_.clear();
  merge_events_ = {};
  head_ = tail_ = 0;
  uint64_t previous = 0;
  Tick expected_start = 0;
  for (uint64_t i = 0; i < node_count; ++i) {
    uint64_t id = 0;
    int64_t node_start = 0, node_end = 0;
    if (!decoder.GetVarint(&id) || !decoder.GetSigned(&node_start) ||
        !decoder.GetSigned(&node_end) || id == 0 || id >= next_id_ ||
        nodes_.contains(id)) {
      return CorruptSnapshot("WBMH layout node");
    }
    // Spans must partition the timeline from `start` (open bucket last).
    if (node_end < node_start ||
        (i == 0 ? node_start != start_ : node_start != expected_start)) {
      return CorruptSnapshot("WBMH layout span");
    }
    expected_start = node_end + 1;
    nodes_[id] = Node{node_start, node_end, previous, 0};
    if (previous != 0) {
      nodes_[previous].next = id;
    } else {
      head_ = id;
    }
    previous = id;
  }
  tail_ = previous;
  if (nodes_.at(tail_).start > now_ + 1) {
    return CorruptSnapshot("WBMH layout open bucket");
  }
  // Rebuild the (memoryless) merge schedule for every adjacent sealed pair
  // and the drop horizon.
  for (uint64_t id = head_; id != 0; id = nodes_.at(id).next) {
    const uint64_t next = nodes_.at(id).next;
    if (next != 0 && next != tail_) SchedulePair(id, next, now_);
  }
  RefreshNextDrop();
  // A hostile snapshot that passed the field-level checks must still form a
  // structurally valid layout (the audit covers cross-field invariants the
  // per-node checks cannot see, e.g. merge eligibility at the settled tick).
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

std::vector<WbmhLayout::BucketSpan> WbmhLayout::Spans() const {
  std::vector<BucketSpan> spans;
  spans.reserve(nodes_.size());
  ForEachSpanOldestFirst([&](const BucketSpan& s) { spans.push_back(s); });
  return spans;
}

uint64_t WbmhLayout::BucketForArrival(Tick t) const {
  for (uint64_t id = tail_; id != 0;) {
    const Node& node = nodes_.at(id);
    if (node.start <= t) {
      const Tick end = id == tail_ ? std::max(node.start, now_) : node.end;
      return t <= end ? id : 0;
    }
    id = node.prev;
  }
  return 0;
}

const WbmhLayout::Op& WbmhLayout::OpAt(uint64_t seq) const {
  TDS_CHECK_GE(seq, log_start_);
  TDS_CHECK_LT(seq, next_seq_);
  return log_[seq - log_start_];
}

void WbmhLayout::TrimLog(uint64_t upto) {
  while (log_start_ < upto && !log_.empty()) {
    log_.pop_front();
    ++log_start_;
  }
}

}  // namespace tds
