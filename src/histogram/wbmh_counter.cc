#include "histogram/wbmh_counter.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/common.h"

namespace tds {

WbmhCounter::WbmhCounter(std::shared_ptr<WbmhLayout> layout,
                         const Options& options)
    : layout_(std::move(layout)), count_epsilon_(options.count_epsilon) {
  TDS_CHECK(layout_ != nullptr);
  if (count_epsilon_ > 0.0) {
    // RoundedCounter's per-round factor is (1 + 2^{1-bits}); choose bits so
    // that factor <= 1 + eps (the level schedule widens it from here).
    base_mantissa_bits_ = std::max(
        2, static_cast<int>(std::ceil(std::log2(2.0 / count_epsilon_))));
  } else {
    base_mantissa_bits_ = 0;
  }
  applied_seq_ = layout_->OpSeq();
}

int WbmhCounter::MantissaBitsForLevel(uint32_t level) const {
  if (base_mantissa_bits_ == 0) return 0;
  // beta_i = eps / i^2 schedule (paper Section 5, unknown-N variant):
  // 2 * log2(level) extra bits at merge level `level`.
  const uint32_t l = std::max<uint32_t>(level, 1);
  const int extra =
      2 * static_cast<int>(std::ceil(std::log2(static_cast<double>(l) + 1.0)));
  return base_mantissa_bits_ + extra;
}

void WbmhCounter::Sync() {
  const uint64_t latest = layout_->OpSeq();
  TDS_CHECK_MSG(applied_seq_ >= layout_->LogStart(),
                "layout op log was trimmed past this counter's position");
  for (; applied_seq_ < latest; ++applied_seq_) {
    const WbmhLayout::Op& op = layout_->OpAt(applied_seq_);
    switch (op.kind) {
      case WbmhLayout::OpKind::kSeal:
        break;  // counts materialize lazily on first Add
      case WbmhLayout::OpKind::kMerge: {
        auto right = counts_.find(op.b);
        if (right == counts_.end()) break;
        Cell absorbed = right->second;
        counts_.erase(right);
        Cell& left = counts_[op.a];
        const uint32_t level =
            std::max(left.level, absorbed.level) + 1;
        left.level = level;
        left.count.set_mantissa_bits(MantissaBitsForLevel(level));
        left.count.Merge(absorbed.count);
        break;
      }
      case WbmhLayout::OpKind::kDrop:
        counts_.erase(op.a);
        break;
    }
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void WbmhCounter::Add(Tick t, uint64_t value) {
  layout_->AdvanceTo(t);
  Sync();
  if (value == 0) return;
  const uint64_t bucket = layout_->BucketForArrival(t);
  TDS_CHECK_MSG(bucket != 0, "arrival tick is before the oldest live bucket");
  Cell& cell = counts_[bucket];
  if (cell.count.mantissa_bits() == 0 && base_mantissa_bits_ > 0) {
    cell.count.set_mantissa_bits(MantissaBitsForLevel(cell.level));
  }
  cell.count.Add(static_cast<double>(value));
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void WbmhCounter::AddBatch(std::span<const StreamItem> items) {
  size_t i = 0;
  while (i < items.size()) {
    const Tick t = items[i].t;
    layout_->AdvanceTo(t);
    Sync();
    uint64_t bucket = 0;
    Cell* cell = nullptr;
    for (; i < items.size() && items[i].t == t; ++i) {
      if (items[i].value == 0) continue;
      if (cell == nullptr) {
        bucket = layout_->BucketForArrival(t);
        TDS_CHECK_MSG(bucket != 0,
                      "arrival tick is before the oldest live bucket");
        cell = &counts_[bucket];
        if (cell->count.mantissa_bits() == 0 && base_mantissa_bits_ > 0) {
          cell->count.set_mantissa_bits(MantissaBitsForLevel(cell->level));
        }
      }
      cell->count.Add(static_cast<double>(items[i].value));
    }
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void WbmhCounter::Advance(Tick now) {
  layout_->AdvanceTo(now);
  Sync();
}

Status WbmhCounter::AuditInvariants() const {
  TDS_AUDIT_CHECK(applied_seq_ >= layout_->LogStart(),
                  "layout op log was trimmed past this counter");
  TDS_AUDIT_CHECK(applied_seq_ <= layout_->OpSeq(),
                  "counter is ahead of the layout's op sequence");
  const bool synced = applied_seq_ == layout_->OpSeq();
  std::unordered_set<uint64_t> live;
  if (synced) {
    live.reserve(layout_->BucketCount());
    layout_->ForEachSpanOldestFirst(
        [&live](const WbmhLayout::BucketSpan& span) { live.insert(span.id); });
  }
  for (const auto& [id, cell] : counts_) {
    TDS_AUDIT_CHECK(id != 0, "count keyed by the null bucket id");
    const double value = cell.count.Value();
    TDS_AUDIT_CHECK(std::isfinite(value) && value >= 0.0,
                    "count register must be finite and nonnegative");
    if (base_mantissa_bits_ == 0) {
      TDS_AUDIT_CHECK(cell.count.mantissa_bits() == 0,
                      "exact-mode register carries a mantissa width");
    } else if (!cell.count.IsZero()) {
      TDS_AUDIT_CHECK(
          cell.count.mantissa_bits() == MantissaBitsForLevel(cell.level),
          "mantissa width off the eps/i^2 schedule at level " +
              std::to_string(cell.level));
    }
    if (synced) {
      TDS_AUDIT_CHECK(live.contains(id),
                      "count held for a bucket the layout dropped");
    }
  }
  return Status::OK();
}

double WbmhCounter::Query(Tick now) {
  layout_->AdvanceTo(now);
  Sync();
  double sum = 0.0;
  const DecayFunction& g = *layout_->decay();
  layout_->ForEachSpanOldestFirst([&](const WbmhLayout::BucketSpan& span) {
    auto it = counts_.find(span.id);
    if (it == counts_.end() || it->second.count.IsZero()) return;
    // All slots in a bucket carry weights within (1+eps); weight by the
    // newest slot (one-sided overestimate, matching the paper's analysis).
    const Tick age = std::max<Tick>(1, AgeAt(std::min(span.end, now), now));
    sum += it->second.count.Value() * g.Weight(age);
  });
  return sum;
}

double WbmhCounter::Estimate(Tick now) const {
  const DecayFunction& g = *layout_->decay();
  const Tick horizon = g.Horizon();
  TDS_CHECK_GE(now, layout_->now());
  double sum = 0.0;
  if (applied_seq_ == layout_->OpSeq()) {
    layout_->ForEachSpanOldestFirst([&](const WbmhLayout::BucketSpan& span) {
      auto it = counts_.find(span.id);
      if (it == counts_.end() || it->second.count.IsZero()) return;
      const Tick age = std::max<Tick>(1, AgeAt(std::min(span.end, now), now));
      if (horizon != kInfiniteHorizon && age > horizon) return;
      sum += it->second.count.Value() * g.Weight(age);
    });
    return sum;
  }
  // Behind the layout: replay the pending structural ops on a local copy of
  // the count values. Merges add exactly (no re-round), a one-sided
  // difference from the synced register bounded by the rounding schedule.
  TDS_CHECK_MSG(applied_seq_ >= layout_->LogStart(),
                "layout op log was trimmed past this counter's position");
  std::unordered_map<uint64_t, double> values;
  values.reserve(counts_.size());
  for (const auto& [id, cell] : counts_) {
    if (!cell.count.IsZero()) values[id] = cell.count.Value();
  }
  for (uint64_t seq = applied_seq_; seq < layout_->OpSeq(); ++seq) {
    const WbmhLayout::Op& op = layout_->OpAt(seq);
    switch (op.kind) {
      case WbmhLayout::OpKind::kSeal:
        break;
      case WbmhLayout::OpKind::kMerge: {
        auto right = values.find(op.b);
        if (right == values.end()) break;
        const double absorbed = right->second;
        values.erase(right);
        values[op.a] += absorbed;
        break;
      }
      case WbmhLayout::OpKind::kDrop:
        values.erase(op.a);
        break;
    }
  }
  // Buckets the (frozen) layout has not yet dropped may already be fully
  // past the horizon at `now`; they contribute nothing.
  layout_->ForEachSpanOldestFirst([&](const WbmhLayout::BucketSpan& span) {
    auto it = values.find(span.id);
    if (it == values.end() || it->second == 0.0) return;
    const Tick age = std::max<Tick>(1, AgeAt(std::min(span.end, now), now));
    if (horizon != kInfiniteHorizon && age > horizon) return;
    sum += it->second * g.Weight(age);
  });
  return sum;
}

double WbmhCounter::RawTotal() const {
  double total = 0.0;
  for (const auto& [id, cell] : counts_) total += cell.count.Value();
  return total;
}

Status WbmhCounter::EncodeState(Encoder& encoder) const {
  if (applied_seq_ != layout_->OpSeq()) {
    return Status::FailedPrecondition("counter not synced before encoding");
  }
  encoder.PutDouble(count_epsilon_);
  encoder.PutVarint(applied_seq_);
  encoder.PutVarint(counts_.size());
  // Deterministic cell order: the codec's self-inverse contract (see
  // AuditSnapshotRoundTrip) requires byte-identical re-encoding, which the
  // hash map's iteration order cannot provide.
  std::vector<uint64_t> ids;
  ids.reserve(counts_.size());
  for (const auto& [id, cell] : counts_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const uint64_t id : ids) {
    const Cell& cell = counts_.at(id);
    encoder.PutVarint(id);
    encoder.PutDouble(cell.count.Value());
    encoder.PutVarint(cell.level);
  }
  return Status::OK();
}

Status WbmhCounter::DecodeState(Decoder& decoder) {
  double count_epsilon = 0.0;
  uint64_t applied = 0, size = 0;
  if (!decoder.GetDouble(&count_epsilon) || !decoder.GetVarint(&applied) ||
      !decoder.GetVarint(&size)) {
    return CorruptSnapshot("WBMH counter header");
  }
  // count_epsilon is derived configuration: adopt the snapshot's value.
  count_epsilon_ = count_epsilon;
  if (count_epsilon_ > 0.0) {
    base_mantissa_bits_ = std::max(
        2, static_cast<int>(std::ceil(std::log2(2.0 / count_epsilon_))));
  } else {
    base_mantissa_bits_ = 0;
  }
  if (applied != layout_->OpSeq() || applied < layout_->LogStart()) {
    return Status::FailedPrecondition(
        "counter snapshot does not match the layout's op sequence");
  }
  applied_seq_ = applied;
  counts_.clear();
  for (uint64_t i = 0; i < size; ++i) {
    uint64_t id = 0, level = 0;
    double value = 0.0;
    if (!decoder.GetVarint(&id) || !decoder.GetDouble(&value) ||
        !decoder.GetVarint(&level)) {
      return CorruptSnapshot("WBMH counter cell");
    }
    if (id == 0 || !std::isfinite(value) || value < 0.0 || level > 64) {
      return CorruptSnapshot("WBMH counter cell value");
    }
    Cell cell;
    cell.level = static_cast<uint32_t>(level);
    cell.count.set_mantissa_bits(MantissaBitsForLevel(cell.level));
    cell.count.Add(value);
    counts_[id] = cell;
  }
  // Cross-structure validation: e.g. a hostile snapshot may carry counts
  // for bucket ids the (already decoded) layout does not hold.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

size_t WbmhCounter::StorageBits() const {
  const double max_count = std::max(RawTotal(), 2.0);
  size_t bits = 0;
  for (const auto& [id, cell] : counts_) {
    bits += static_cast<size_t>(cell.count.StorageBits(max_count));
  }
  // One op-sequence register (clock analogue), log2 of elapsed ticks.
  const Tick elapsed = std::max<Tick>(2, layout_->now() - layout_->start() + 1);
  bits += static_cast<size_t>(
      std::ceil(std::log2(static_cast<double>(elapsed) + 1.0)));
  return bits;
}

}  // namespace tds
