#include "stream/replay.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tds {

double ProbeResult::RelativeError() const {
  if (exact <= 0.0) {
    return estimate <= 1e-12 ? 0.0 : 1.0;
  }
  return std::fabs(estimate - exact) / exact;
}

ReplayReport ReplayAndCompare(const Stream& stream, DecayedAggregate& subject,
                              DecayedAggregate& reference, Tick probe_every) {
  TDS_CHECK_GE(probe_every, 1);
  ReplayReport report;
  Tick next_probe = probe_every;
  auto probe = [&](Tick t) {
    ProbeResult result;
    result.t = t;
    result.estimate = subject.Query(t);
    result.exact = reference.Query(t);
    result.storage_bits = subject.StorageBits();
    report.probes.push_back(result);
  };
  for (const StreamItem& item : stream) {
    while (next_probe < item.t) {
      probe(next_probe);
      next_probe += probe_every;
    }
    subject.Update(item.t, item.value);
    reference.Update(item.t, item.value);
  }
  const Tick end = StreamEnd(stream);
  while (next_probe <= end) {
    probe(next_probe);
    next_probe += probe_every;
  }
  if (end > 0 && (report.probes.empty() || report.probes.back().t != end)) {
    probe(end);
  }

  double total = 0.0;
  for (const ProbeResult& p : report.probes) {
    const double err = p.RelativeError();
    report.max_relative_error = std::max(report.max_relative_error, err);
    report.max_storage_bits = std::max(report.max_storage_bits, p.storage_bits);
    total += err;
  }
  if (!report.probes.empty()) {
    report.mean_relative_error =
        total / static_cast<double>(report.probes.size());
  }
  return report;
}

size_t ReplayMaxStorageBits(const Stream& stream, DecayedAggregate& subject,
                            Tick probe_every) {
  TDS_CHECK_GE(probe_every, 1);
  size_t max_bits = 0;
  Tick next_probe = probe_every;
  for (const StreamItem& item : stream) {
    while (next_probe < item.t) {
      subject.Query(next_probe);
      max_bits = std::max(max_bits, subject.StorageBits());
      next_probe += probe_every;
    }
    subject.Update(item.t, item.value);
  }
  const Tick end = StreamEnd(stream);
  if (end > 0) {
    subject.Query(end);
    max_bits = std::max(max_bits, subject.StorageBits());
  }
  return max_bits;
}

}  // namespace tds
