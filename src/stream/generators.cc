#include "stream/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace tds {

namespace {

uint64_t SamplePoisson(Rng& rng, double rate) {
  // Knuth's method; adequate for the modest rates used in workloads.
  const double limit = std::exp(-rate);
  uint64_t k = 0;
  double product = 1.0;
  do {
    ++k;
    product *= rng.NextDouble();
  } while (product > limit);
  return k - 1;
}

Tick SampleGeometric(Rng& rng, double mean) {
  // Geometric with the given mean, at least 1.
  const double p = 1.0 / std::max(1.0, mean);
  const double u = rng.NextOpenDouble();
  const Tick value =
      1 + static_cast<Tick>(std::floor(std::log(u) / std::log(1.0 - p)));
  return std::max<Tick>(1, value);
}

}  // namespace

Stream BernoulliStream(Tick length, double p, uint64_t seed) {
  TDS_CHECK_GE(length, 1);
  Rng rng(seed);
  Stream stream;
  for (Tick t = 1; t <= length; ++t) {
    if (rng.NextBernoulli(p)) stream.push_back(StreamItem{t, 1});
  }
  return stream;
}

Stream ConstantStream(Tick length, uint64_t value) {
  TDS_CHECK_GE(length, 1);
  Stream stream;
  stream.reserve(static_cast<size_t>(length));
  for (Tick t = 1; t <= length; ++t) stream.push_back(StreamItem{t, value});
  return stream;
}

Stream BurstyStream(Tick length, double busy_mean, double idle_mean,
                    double rate, uint64_t seed) {
  TDS_CHECK_GE(length, 1);
  Rng rng(seed);
  Stream stream;
  Tick t = 1;
  while (t <= length) {
    const Tick busy = SampleGeometric(rng, busy_mean);
    for (Tick i = 0; i < busy && t <= length; ++i, ++t) {
      const uint64_t value = SamplePoisson(rng, rate);
      if (value > 0) stream.push_back(StreamItem{t, value});
    }
    t += SampleGeometric(rng, idle_mean);
  }
  return stream;
}

Stream PoissonStream(Tick length, double rate, uint64_t seed) {
  TDS_CHECK_GE(length, 1);
  Rng rng(seed);
  Stream stream;
  for (Tick t = 1; t <= length; ++t) {
    const uint64_t value = SamplePoisson(rng, rate);
    if (value > 0) stream.push_back(StreamItem{t, value});
  }
  return stream;
}

Stream RampStream(Tick length, uint64_t low, uint64_t high) {
  TDS_CHECK_GE(length, 1);
  TDS_CHECK_LE(low, high);
  Stream stream;
  stream.reserve(static_cast<size_t>(length));
  for (Tick t = 1; t <= length; ++t) {
    const double frac =
        length == 1 ? 1.0
                    : static_cast<double>(t - 1) / static_cast<double>(length - 1);
    const uint64_t value =
        low + static_cast<uint64_t>(std::llround(frac * static_cast<double>(
                                                            high - low)));
    stream.push_back(StreamItem{t, value});
  }
  return stream;
}

Stream SparseStream(Tick length, Tick count, uint64_t seed) {
  TDS_CHECK_GE(length, 1);
  TDS_CHECK_GE(count, 1);
  Rng rng(seed);
  std::vector<Tick> ticks;
  ticks.reserve(static_cast<size_t>(count));
  for (Tick i = 0; i < count; ++i) {
    ticks.push_back(1 + static_cast<Tick>(
                            rng.NextBelow(static_cast<uint64_t>(length))));
  }
  std::sort(ticks.begin(), ticks.end());
  ticks.erase(std::unique(ticks.begin(), ticks.end()), ticks.end());
  Stream stream;
  stream.reserve(ticks.size());
  for (Tick t : ticks) stream.push_back(StreamItem{t, 1});
  return stream;
}

Stream LevelShiftStream(Tick length, Tick change_tick, double level_a,
                        double level_b, uint64_t seed) {
  TDS_CHECK_GE(length, 1);
  Rng rng(seed);
  Stream stream;
  stream.reserve(static_cast<size_t>(length));
  for (Tick t = 1; t <= length; ++t) {
    const double level = t < change_tick ? level_a : level_b;
    const uint64_t value = SamplePoisson(rng, level);
    stream.push_back(StreamItem{t, value});
  }
  return stream;
}

}  // namespace tds
