#ifndef TDS_STREAM_ADVERSARIAL_H_
#define TDS_STREAM_ADVERSARIAL_H_

#include <cstdint>
#include <vector>

#include "stream/stream.h"
#include "util/status.h"

namespace tds {

/// The lower-bound stream family of paper Section 6 (Theorem 2): for decay
/// g(x) = 1/x^alpha, bursts of count C_i = n_i * k^i (n_i in {1,2}) placed
/// at times -k^{2i/alpha} relative to an origin; when queried at time
/// +k^{2i/alpha}, the i-th burst dominates the decayed sum, so any
/// (1 +- 1/4)-estimator must remember every n_i — r = Theta(log N) bits.
///
/// Times are shifted so the whole construction lives on positive ticks:
/// paper-time 0 maps to tick `origin`.
struct AdversarialFamily {
  double alpha = 1.0;
  int k = 10;
  Tick n = 0;          ///< Overall horizon parameter N.
  Tick origin = 0;     ///< Tick corresponding to the paper's time 0.
  int slots = 0;       ///< r: number of usable burst slots.
  std::vector<Tick> burst_ticks;      ///< burst_ticks[i]: tick of slot i+1.
  std::vector<Tick> probe_ticks;      ///< query tick for slot i+1.
  std::vector<uint64_t> base_counts;  ///< k^{i+1}: burst i+1 is n * base.
};

/// Builds the family for decay 1/x^alpha with burst base k over horizon n.
/// Slots whose burst ticks would collide after rounding are dropped.
StatusOr<AdversarialFamily> MakeAdversarialFamily(double alpha, int k, Tick n);

/// Materializes one member of the family. `choices[i]` must be 1 or 2 and
/// selects n_{i+1}.
Stream MakeAdversarialStream(const AdversarialFamily& family,
                             const std::vector<int>& choices);

}  // namespace tds

#endif  // TDS_STREAM_ADVERSARIAL_H_
