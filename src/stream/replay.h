#ifndef TDS_STREAM_REPLAY_H_
#define TDS_STREAM_REPLAY_H_

#include <vector>

#include "core/decayed_aggregate.h"
#include "stream/stream.h"

namespace tds {

/// One probe of an aggregate during a replay.
struct ProbeResult {
  Tick t = 0;
  double estimate = 0.0;
  double exact = 0.0;
  size_t storage_bits = 0;

  /// Relative error against the exact value (0 when both are ~0).
  double RelativeError() const;
};

/// Accuracy summary over a replay.
struct ReplayReport {
  std::vector<ProbeResult> probes;
  double max_relative_error = 0.0;
  double mean_relative_error = 0.0;
  size_t max_storage_bits = 0;
};

/// Replays `stream` into both `subject` and `reference` (which must use the
/// same decay function; `reference` is typically ExactDecayedSum), probing
/// both every `probe_every` ticks and at the final tick. Returns the
/// accuracy report. This is the measurement harness behind the accuracy
/// and lower-bound benchmarks.
ReplayReport ReplayAndCompare(const Stream& stream, DecayedAggregate& subject,
                              DecayedAggregate& reference, Tick probe_every);

/// Replays without a reference, probing only storage.
size_t ReplayMaxStorageBits(const Stream& stream, DecayedAggregate& subject,
                            Tick probe_every);

}  // namespace tds

#endif  // TDS_STREAM_REPLAY_H_
