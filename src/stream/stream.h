#ifndef TDS_STREAM_STREAM_H_
#define TDS_STREAM_STREAM_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace tds {

/// One stream element: `value` unit items arriving at tick `t`
/// (the paper's f(t), the sum of item values observed at time t).
struct StreamItem {
  Tick t = 0;
  uint64_t value = 0;
};

/// A materialized stream: items in strictly increasing tick order.
using Stream = std::vector<StreamItem>;

/// Last tick of a stream (0 if empty).
inline Tick StreamEnd(const Stream& stream) {
  return stream.empty() ? 0 : stream.back().t;
}

/// Total item count.
inline uint64_t StreamTotal(const Stream& stream) {
  uint64_t total = 0;
  for (const StreamItem& item : stream) total += item.value;
  return total;
}

}  // namespace tds

#endif  // TDS_STREAM_STREAM_H_
