#include "stream/adversarial.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tds {

StatusOr<AdversarialFamily> MakeAdversarialFamily(double alpha, int k,
                                                  Tick n) {
  if (!(alpha > 0.0)) return Status::InvalidArgument("alpha must be > 0");
  if (k < 3) return Status::InvalidArgument("k must be >= 3");
  if (n < 16) return Status::InvalidArgument("n must be >= 16");

  AdversarialFamily family;
  family.alpha = alpha;
  family.k = k;
  family.n = n;
  family.origin = n / 2 + 1;

  // r = floor(alpha / (2 log k) * log(N/2)): the deepest slot's offset
  // k^{2r/alpha} still fits within N/2.
  const double log_k = std::log(static_cast<double>(k));
  const double r_exact = alpha / (2.0 * log_k) *
                         std::log(static_cast<double>(n) / 2.0);
  const int r = static_cast<int>(std::floor(r_exact));
  Tick prev_tick = family.origin;  // burst ticks must be strictly older
  double base = 1.0;
  for (int i = 1; i <= r; ++i) {
    base *= k;
    if (base > 1e15) break;  // keep counts in exactly-representable range
    const double offset =
        std::pow(static_cast<double>(k), 2.0 * i / alpha);
    const Tick burst = family.origin - static_cast<Tick>(std::llround(offset));
    if (burst < 1 || burst >= prev_tick) continue;  // rounded collision
    family.burst_ticks.push_back(burst);
    family.probe_ticks.push_back(family.origin +
                                 static_cast<Tick>(std::llround(offset)));
    family.base_counts.push_back(static_cast<uint64_t>(base));
    prev_tick = burst;
  }
  family.slots = static_cast<int>(family.burst_ticks.size());
  if (family.slots == 0) {
    return Status::InvalidArgument("horizon too small for any burst slot");
  }
  return family;
}

Stream MakeAdversarialStream(const AdversarialFamily& family,
                             const std::vector<int>& choices) {
  TDS_CHECK_EQ(choices.size(), family.burst_ticks.size());
  Stream stream;
  stream.reserve(choices.size());
  // Slot i+1 has the oldest tick for the largest i: emit in reverse so the
  // stream is tick-ascending.
  for (int i = family.slots - 1; i >= 0; --i) {
    TDS_CHECK(choices[i] == 1 || choices[i] == 2);
    stream.push_back(StreamItem{
        family.burst_ticks[i],
        static_cast<uint64_t>(choices[i]) * family.base_counts[i]});
  }
  return stream;
}

}  // namespace tds
