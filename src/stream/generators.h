#ifndef TDS_STREAM_GENERATORS_H_
#define TDS_STREAM_GENERATORS_H_

#include <cstdint>

#include "stream/stream.h"

namespace tds {

/// Synthetic workloads standing in for the paper's application traces
/// (Section 1.1): the paper reports no datasets, so these generators
/// exercise the same code paths with controlled structure.

/// Bernoulli 0/1 stream over ticks [1, length]: each tick carries a 1 with
/// probability p.
Stream BernoulliStream(Tick length, double p, uint64_t seed);

/// Every tick carries exactly `value` items (the densest DCP input).
Stream ConstantStream(Tick length, uint64_t value);

/// On-off bursty stream: alternating busy/idle periods with geometric
/// lengths (means busy_mean/idle_mean); busy ticks carry Poisson-ish values
/// with mean `rate`. Models bursty data transfers (ATM circuits, RED
/// queues).
Stream BurstyStream(Tick length, double busy_mean, double idle_mean,
                    double rate, uint64_t seed);

/// Poisson arrivals: per-tick value ~ Poisson(rate) (Knuth's method; rate
/// should be modest).
Stream PoissonStream(Tick length, double rate, uint64_t seed);

/// Integer values ramping from `low` to `high` over the stream (tests
/// non-binary DSP handling and variance tracking).
Stream RampStream(Tick length, uint64_t low, uint64_t high);

/// Sparse stream: `count` single items at uniformly random distinct ticks
/// in [1, length]. Stresses large time gaps between updates.
Stream SparseStream(Tick length, Tick count, uint64_t seed);

/// A stream of values with a level shift: mean `level_a` before
/// `change_tick`, mean `level_b` after (for decayed average/variance
/// responsiveness experiments).
Stream LevelShiftStream(Tick length, Tick change_tick, double level_a,
                        double level_b, uint64_t seed);

}  // namespace tds

#endif  // TDS_STREAM_GENERATORS_H_
