#ifndef TDS_ENGINE_ENGINE_H_
#define TDS_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "engine/spsc_ring.h"
#include "util/status.h"

namespace tds {

/// Sharded multi-stream aggregation engine: keys hash to N shards, each
/// shard owns one AggregateRegistry mutated by exactly one writer thread,
/// fed through a lock-free SPSC ring (multiple front-end producers are
/// serialized by a per-shard mutex around the push side only — writers
/// never take it).
///
/// Readers never block writers: queries are served from immutable
/// point-in-time registry snapshots (encode → decode clones) that the
/// writer publishes on request. A snapshot requested after Flush() reflects
/// every item ingested before the Flush.
///
/// Ordering contract: each shard must observe non-decreasing ticks. A
/// single producer feeding tick-ordered items satisfies this for every
/// shard; concurrent producers must coordinate externally so their
/// interleaving per shard stays tick-ordered (e.g. epoch-sliced ingestion,
/// where all producers use the same tick within a slice and barrier
/// between slices).
class ShardedAggregateEngine {
 public:
  struct Options {
    AggregateRegistry::Options registry;
    uint32_t shards = 4;
    /// Per-shard ingest queue capacity in items (rounded up to a power of
    /// two). Producers block (yield-spin) when a queue is full.
    size_t queue_capacity = 1 << 16;
    /// Drain the queue through AggregateRegistry::UpdateBatch (amortized
    /// hot path) instead of per-item Update. The resulting state is
    /// bit-identical either way; this is the throughput knob.
    bool apply_batched = true;
  };

  static StatusOr<std::unique_ptr<ShardedAggregateEngine>> Create(
      DecayPtr decay, const Options& options);

  /// Stops the writer threads and joins them (pending queue items are
  /// drained first).
  ~ShardedAggregateEngine();

  ShardedAggregateEngine(const ShardedAggregateEngine&) = delete;
  ShardedAggregateEngine& operator=(const ShardedAggregateEngine&) = delete;

  /// Enqueues one item (thread-safe; blocks while the shard queue is full).
  void Ingest(uint64_t key, Tick t, uint64_t value);

  /// Enqueues a batch, preserving per-shard arrival order (thread-safe).
  void IngestBatch(std::span<const KeyedItem> items);

  /// Returns once every item ingested before the call has been applied.
  void Flush();

  /// Fresh immutable snapshot of one shard's registry, published by the
  /// shard's writer without blocking ingestion. The snapshot reflects at
  /// least everything applied before this call began.
  std::shared_ptr<const AggregateRegistry> ShardSnapshot(uint32_t shard);

  /// Decayed sum for `key` via a fresh shard snapshot. Evaluated at
  /// max(now, snapshot clock) — a caller's clock may lag the stream's.
  double QueryKey(uint64_t key, Tick now);

  /// Sum over all shards, each via a fresh snapshot at max(now, its clock).
  double QueryTotal(Tick now);

  /// Total live keys across all shards (via fresh snapshots).
  size_t KeyCount();

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t ItemsApplied() const;

  static uint32_t ShardForKey(uint64_t key, uint32_t shard_count);

 private:
  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    SpscRing<KeyedItem> queue;
    std::mutex producer_mutex;  ///< serializes producers; writer never takes it
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> applied{0};

    /// Written only by the shard's writer thread (constructed before the
    /// thread starts, which establishes the happens-before edge).
    std::optional<AggregateRegistry> registry;

    std::mutex snapshot_mutex;
    std::condition_variable snapshot_cv;
    std::atomic<bool> snapshot_requested{false};
    std::shared_ptr<const AggregateRegistry> snapshot;  // guarded by mutex
    uint64_t tickets_issued = 0;                        // guarded by mutex
    uint64_t tickets_served = 0;                        // guarded by mutex
    bool stopped = false;                               // guarded by mutex

    std::thread writer;
  };

  explicit ShardedAggregateEngine(const Options& options);

  void WriterLoop(Shard& shard);
  void PublishSnapshot(Shard& shard);

  DecayPtr decay_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
};

}  // namespace tds

#endif  // TDS_ENGINE_ENGINE_H_
