#ifndef TDS_ENGINE_ENGINE_H_
#define TDS_ENGINE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/merged_snapshot.h"
#include "engine/registry.h"
#include "engine/spsc_ring.h"
#include "engine/wait_strategy.h"
#include "util/atomic.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tds {

class ProducerSession;

/// Per-session knobs for ShardedAggregateEngine::NewProducer().
struct ProducerSessionOptions {
  /// Items a session stages across its per-shard buffers before Add /
  /// AddBatch auto-flushes them to the rings. Larger runs amortize the
  /// per-flush route load and ring handoff; staged items are invisible to
  /// queries (and to engine Flush()) until a session flush — explicit,
  /// automatic, or on destruction.
  size_t staging_capacity = 4096;
  /// Full-queue behavior for this session's flushes; defaults to the
  /// engine-wide Options::backpressure.
  std::optional<BackpressurePolicy> backpressure;
  /// Admission deadline per flush episode when the effective policy is
  /// kBlockWithDeadline; defaults to Options::block_deadline.
  std::optional<std::chrono::nanoseconds> block_deadline;
};

/// Sharded multi-stream aggregation engine: keys hash to route *slices*
/// (a fixed salted-hash partition), slices map to N shards through an
/// epoch-published route table, and each shard owns one AggregateRegistry
/// mutated by exactly one writer thread, fed through a lock-free SPSC ring
/// (multiple front-end producers are serialized by a per-shard mutex
/// around the push side only — writers never take it).
///
/// Ingest surface: producers open a ProducerSession (NewProducer(), see
/// engine/producer_session.h) that stages items into per-shard runs
/// locally and publishes whole pre-grouped runs to the target rings — the
/// hot path takes no shared lock and loads the route table once per flush
/// (one atomic shared_ptr load per batch, not per item). The engine-global
/// Ingest/IngestBatch/TryUpdateBatch entry points are DEPRECATED thin
/// shims over an internal one-shot session; they keep their historical
/// contracts but new in-tree callers are rejected by tools/tds_lint.py
/// (rule deprecated-ingest).
///
/// Readers never block writers: queries are served from immutable
/// point-in-time registry snapshots (encode → decode clones) that the
/// writer publishes on request. A snapshot requested after Flush() reflects
/// every item ingested before the Flush. Snapshot() assembles one
/// engine-wide MergedSnapshot from all shards at a single route-table cut.
///
/// Backpressure: when a shard's ring fills, producers escalate through the
/// staged wait (spin → yield → CondVar park; see BackpressurePolicy) and
/// the writer signals on consumption — a blocked producer no longer burns
/// a core. Admission control (TryUpdateBatch, kBlockWithDeadline) bounds
/// the blocking and rejects the overflow with kUnavailable; rejects and
/// parks are counted per shard in Stats(). Restore() (with
/// engine/checkpoint.h) rebuilds a fresh engine from a checkpointed
/// merged snapshot, byte-identical to the checkpointed state.
///
/// Route-epoch protocol: the slice→shard table is an immutable snapshot
/// (RouteTable) published through an atomic shared_ptr with a
/// monotonically increasing generation. Flush episodes bracket themselves
/// with the flush *fence* (EnterFlush/ExitFlush — two atomic RMWs, no
/// lock); a migration raises the fence (blocking new episodes, waiting
/// out in-flight ones), drains the rings, moves the keys on the owner
/// writer threads, publishes the successor table, and lowers the fence.
/// A session whose staged runs predate the current generation
/// re-partitions them against the fresh table before pushing, so a staged
/// item can never land on — and double-count in — a stale shard.
///
/// Locking discipline — machine-checked, not just documented: every
/// guarded field below carries TDS_GUARDED_BY and every lock-holding
/// method TDS_REQUIRES, so `tools/check.sh thread-safety` (clang,
/// -Werror=thread-safety) proves the rules hold on every path. route_mutex_
/// is now control-plane only (migrations exclusive; snapshot gathers and
/// per-key reads shared) — producers never touch it. See util/mutex.h for
/// the annotated lock types and docs/CORRECTNESS.md for how to annotate
/// new guarded state.
///
/// Ordering contract: each shard must observe non-decreasing ticks. A
/// single producer feeding tick-ordered items satisfies this for every
/// shard; concurrent producers must coordinate externally so their
/// interleaving per shard stays tick-ordered (e.g. epoch-sliced ingestion,
/// where all producers use the same tick within a slice, flush their
/// sessions, and barrier between slices). Rebalancing additionally
/// requires *globally* tick-ordered ingest: a migration can raise the
/// receiving registry's clock to the donor's, so items enqueued later must
/// not carry older ticks. Both example disciplines above already satisfy
/// this.
class ShardedAggregateEngine {
 public:
  struct Options {
    AggregateRegistry::Options registry;
    uint32_t shards = 4;
    /// Route-table granularity: keys hash into this many slices, each
    /// routed to one shard (must be >= shards; ideally many times larger
    /// so migrations can move fine-grained key ranges).
    uint32_t route_slices = 256;
    /// Per-shard ingest queue capacity in items (rounded up to a power of
    /// two). What a producer does when a queue is full is `backpressure`'s
    /// call.
    size_t queue_capacity = 1 << 16;
    /// Full-queue behavior for session flushes and Ingest/IngestBatch (see
    /// BackpressurePolicy in engine/wait_strategy.h). TryUpdateBatch
    /// ignores this: it always runs the staged ladder against its
    /// caller-supplied deadline.
    BackpressurePolicy backpressure = BackpressurePolicy::kAdaptive;
    /// Admission deadline for kBlockWithDeadline: how long one flush
    /// episode may block before the remainder of the batch is rejected
    /// with Status::Unavailable.
    std::chrono::nanoseconds block_deadline = std::chrono::milliseconds(100);
    /// Drain the queue through AggregateRegistry::UpdateBatch (amortized
    /// hot path) instead of per-item Update. The resulting state is
    /// bit-identical either way; this is the throughput knob.
    bool apply_batched = true;
    /// Skew trigger for RebalanceIfSkewed: rebalance when the busiest
    /// shard holds at least this many times the live keys of the idlest.
    double rebalance_skew = 2.0;
    /// The busiest shard must hold at least this many live keys before a
    /// rebalance is worth its stall (prevents thrashing on tiny tables).
    uint64_t rebalance_min_keys = 1024;
  };

  /// Point-in-time per-shard occupancy counters, maintained by the shard
  /// writers (exact after a Flush(), approximate while ingest is running).
  struct ShardStats {
    uint64_t live_keys = 0;
    uint64_t arena_extent = 0;  ///< slots ever allocated (occupancy + churn)
    uint64_t items_applied = 0;
    uint64_t queue_depth = 0;  ///< enqueued but not yet applied
    /// Overload counters (admission control / backpressure):
    uint64_t items_rejected = 0;  ///< dropped past a deadline (kUnavailable)
    uint64_t park_count = 0;      ///< producer CondVar parks on a full queue
    /// Longest run of consecutive failed push attempts by one producer — a
    /// unitless stall measure (the engine reads no clock); anything large
    /// means producers outran the shard writer for a sustained stretch.
    uint64_t max_queue_stall = 0;
  };

  /// Engine-wide producer-session counters (one session's own view is
  /// ProducerSession::stats()). `items_staged` counts items accepted into
  /// session staging buffers, `items_flushed` items handed to the shard
  /// rings, and `flush_stalls` flush episodes that had to wait (route
  /// fence or full ring). The legacy shims run on internal one-shot
  /// sessions and contribute to the item counters but not to
  /// sessions_opened/closed.
  struct SessionStats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_closed = 0;
    uint64_t items_staged = 0;
    uint64_t items_flushed = 0;
    uint64_t flush_stalls = 0;
  };

  static StatusOr<std::unique_ptr<ShardedAggregateEngine>> Create(
      DecayPtr decay, const Options& options);

  /// Stops the writer threads and joins them (pending queue items are
  /// drained first). Equivalent to Stop().
  ~ShardedAggregateEngine();

  ShardedAggregateEngine(const ShardedAggregateEngine&) = delete;
  ShardedAggregateEngine& operator=(const ShardedAggregateEngine&) = delete;

  /// Drains every queue, stops the writer threads, and joins them.
  /// Idempotent. After Stop() the ingest surface returns
  /// kFailedPrecondition (never blocks), while queries keep serving the
  /// final published snapshots. Items still staged in live sessions are
  /// not drained — flush sessions first.
  void Stop() TDS_EXCLUDES(route_mutex_);

  /// Opens a producer session — the preferred (and fastest) ingest
  /// surface. One session per producer thread: the handle itself is not
  /// thread-safe. See ProducerSession in engine/producer_session.h for
  /// the staging/flush semantics.
  StatusOr<std::unique_ptr<ProducerSession>> NewProducer(
      const ProducerSessionOptions& options = {});

  /// DEPRECATED shim over an internal one-shot ProducerSession — prefer
  /// NewProducer(). Enqueues one item (thread-safe). Blocking behavior
  /// follows Options::backpressure; a stopped engine returns
  /// kFailedPrecondition, a missed kBlockWithDeadline deadline returns
  /// kUnavailable. New in-tree callers are rejected by tools/tds_lint.py
  /// (rule deprecated-ingest).
  Status Ingest(uint64_t key, Tick t, uint64_t value);

  /// DEPRECATED shim over an internal one-shot ProducerSession — prefer
  /// NewProducer(). Enqueues a batch, preserving per-shard arrival order
  /// (thread-safe). Error contract as Ingest; on kUnavailable the items
  /// that fit were enqueued and the remainder is counted in
  /// ShardStats::items_rejected.
  Status IngestBatch(std::span<const KeyedItem> items);

  /// DEPRECATED shim over an internal one-shot ProducerSession — prefer
  /// NewProducer() with kBlockWithDeadline. Admission-controlled enqueue:
  /// blocks at most `deadline` (0 = one non-blocking attempt per shard),
  /// then rejects the remainder with kUnavailable and counts it in
  /// ShardStats::items_rejected. Ignores Options::backpressure.
  Status TryUpdateBatch(std::span<const KeyedItem> items,
                        std::chrono::nanoseconds deadline);

  /// Returns once every item ingested before the call has been applied —
  /// or kFailedPrecondition if the engine stopped with items unapplied
  /// (cannot happen through the public API, which drains before
  /// stopping; defends against a writer dying mid-drain). Covers items
  /// handed to the rings; items still staged in a live session need a
  /// session Flush() first.
  Status Flush();

  /// Fresh immutable snapshot of one shard's registry, published by the
  /// shard's writer without blocking ingestion. The snapshot reflects at
  /// least everything applied before this call began.
  std::shared_ptr<const AggregateRegistry> ShardSnapshot(uint32_t shard);

  /// One engine-wide merged view at a single route-table cut: per-shard
  /// snapshots are gathered under the route lock (so no rebalance can slip
  /// between shard captures and double-count a key) and folded into a
  /// MergedSnapshot whose cut tick is the max shard clock captured.
  StatusOr<MergedSnapshot> Snapshot() TDS_EXCLUDES(route_mutex_);

  /// Decayed sum for `key` via a fresh snapshot of its owning shard.
  /// Evaluated at max(now, snapshot clock) — a caller's clock may lag the
  /// stream's.
  double QueryKey(uint64_t key, Tick now) TDS_EXCLUDES(route_mutex_);

  /// Sum over all shards, each via a fresh snapshot at max(now, its clock).
  double QueryTotal(Tick now);

  /// Total live keys across all shards (via fresh snapshots).
  size_t KeyCount();

  /// Per-shard occupancy stats (the rebalance trigger's inputs).
  std::vector<ShardStats> Stats() const;

  /// Engine-wide producer-session counters (see SessionStats).
  SessionStats SessionTotals() const;

  /// Checks the live-key skew trigger and, when it fires, migrates route
  /// slices from the busiest shard to the idlest until the imbalance is
  /// halved. Donor slices are chosen *hottest first* — by offered-load
  /// ingest rate since the last selection (per-slice counters the session
  /// flush path maintains), with live keys as the tiebreak — so a small
  /// but hot slice moves before a populous cold one. Returns true when a
  /// migration ran. Producers are stalled for the duration (flush fence +
  /// queue drain).
  StatusOr<bool> RebalanceIfSkewed() TDS_EXCLUDES(route_mutex_);

  /// Explicitly re-routes `slices` to `to_shard`, migrating their live
  /// keys from the current owners (the manual counterpart of
  /// RebalanceIfSkewed, and the test hook for forced migrations).
  Status MigrateSlices(std::span<const uint32_t> slices, uint32_t to_shard)
      TDS_EXCLUDES(route_mutex_);

  /// Rebuilds shard state from a checkpointed merged snapshot (see
  /// engine/checkpoint.h): the snapshot's registry is re-partitioned along
  /// the current route table and merged onto the shard writers through the
  /// same audited ExtractIf/MergeFrom path migrations use. Requires a
  /// fresh engine (no items applied, no live keys) whose options match the
  /// checkpoint's; queries afterwards are byte-identical to the
  /// checkpointed state.
  Status Restore(MergedSnapshot snapshot) TDS_EXCLUDES(route_mutex_);

  /// One shard's incremental-checkpoint delta (the unit the checkpoint log
  /// turns into a segment file — see engine/checkpoint_log.h).
  struct ShardCheckpointDelta {
    uint32_t shard = 0;
    AggregateRegistry::CheckpointDelta delta;
  };

  /// Switches every shard registry to checkpoint dirty tracking (see
  /// AggregateRegistry::EnableCheckpointTracking). Idempotent; existing
  /// keys are stamped so the first capture is a complete snapshot. Runs a
  /// command on every shard writer, so the engine must not be stopped.
  Status EnableCheckpointTracking() TDS_EXCLUDES(route_mutex_);
  bool checkpoint_tracking() const {
    return ckpt_tracking_.load(std::memory_order_acquire);
  }

  /// Captures each shard's delta since `since[shard]` (one watermark per
  /// shard, 0 = everything) at a single route-table cut — the shared route
  /// lock spans all shard captures, so a migration can never split a
  /// moving key's donor-eviction and receiver-update across two manifest
  /// generations (the same guarantee Snapshot() gives its gather). Each
  /// capture runs on its shard's writer thread (no torn reads). Requires
  /// EnableCheckpointTracking; callers wanting a drained cut Flush first.
  Status CaptureCheckpointDeltas(std::span<const uint64_t> since,
                                 std::vector<ShardCheckpointDelta>* out)
      TDS_EXCLUDES(route_mutex_);

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t route_slices() const { return options_.route_slices; }
  const Options& options() const { return options_; }
  const DecayPtr& decay() const { return decay_; }
  uint64_t ItemsApplied() const;

  /// Completed migrations (RebalanceIfSkewed firings + MigrateSlices calls
  /// that moved at least one slice).
  uint64_t Rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// Route-table generation: bumped by every published migration. A
  /// session compares its staged runs' generation against this to decide
  /// whether to re-partition at flush.
  uint64_t RouteGeneration() const { return CurrentRoute()->generation; }

  /// The route slice a key hashes into (stable across rebalances; salted
  /// independently of the registry's table probe hash).
  static uint32_t SliceForKey(uint64_t key, uint32_t slice_count);

  /// The shard currently routed for `key` (advisory: a rebalance may move
  /// it at any time unless the caller also holds ingest quiescent).
  /// Lock-free — one atomic route-table load.
  uint32_t RouteForKey(uint64_t key) const;

  /// Test hook: runs `fn` against `shard`'s registry on its writer thread
  /// and blocks until done. A blocking `fn` deterministically stalls that
  /// writer — the backpressure tests use this to fill a ring on purpose.
  /// Holds the route lock shared (ingest keeps running); at most one
  /// concurrent command per shard (migrations hold the lock exclusively,
  /// so they never race this).
  void RunOnWriterForTest(uint32_t shard,
                          std::function<void(AggregateRegistry&)> fn)
      TDS_EXCLUDES(route_mutex_);

 private:
  friend class ProducerSession;

  /// Immutable slice→shard snapshot, epoch-published (see the class
  /// comment's route-epoch protocol). Never mutated after publish;
  /// migrations build a successor with generation + 1.
  struct RouteTable {
    uint64_t generation = 0;
    std::vector<uint32_t> shard_of_slice;
  };

  /// Per-push-episode feedback for session stats (engine-side shard
  /// counters are updated regardless).
  struct PushCounters {
    uint64_t rejected = 0;
    bool stalled = false;
  };

  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    SpscRing<KeyedItem> queue;
    Mutex producer_mutex;  ///< serializes producers; writer never takes it
    Atomic<uint64_t> enqueued{0};
    Atomic<uint64_t> applied{0};

    /// Full-queue producer parking (backpressure). The mutex guards no
    /// fields — the waited-on state is the lock-free ring itself — so
    /// waiter registration is an advisory atomic and parks are bounded
    /// slices (see StagedWait); the writer notifies after consuming when
    /// `space_waiters` is nonzero.
    Mutex space_mutex;
    CondVar space_cv;
    Atomic<uint32_t> space_waiters{0};

    /// Drain watchers (Flush / WaitQueuesDrained) park here; the writer
    /// notifies after advancing `applied` when `drain_waiters` is nonzero.
    Mutex drain_mutex;
    CondVar drain_cv;
    Atomic<uint32_t> drain_waiters{0};

    /// Writer-idle parking: the writer parks in bounded slices when it has
    /// nothing to do; producers, snapshot requesters, command posters, and
    /// Stop() wake it through WakeWriter().
    Mutex wake_mutex;
    CondVar wake_cv;
    Atomic<bool> writer_parked{false};

    /// Overload counters (ShardStats mirrors).
    Atomic<uint64_t> items_rejected{0};
    Atomic<uint64_t> park_count{0};
    Atomic<uint64_t> max_queue_stall{0};

    /// Set by the writer thread on exit (Flush's defense against waiting
    /// on a writer that no longer exists).
    Atomic<bool> writer_done{false};

    /// Written only by the shard's writer thread (constructed before the
    /// thread starts, which establishes the happens-before edge; a
    /// migration mutates it on the writer thread via RunOnWriter). Thread
    /// *ownership* is a discipline Clang TSA cannot express, so this field
    /// is deliberately unannotated.
    std::optional<AggregateRegistry> registry;

    /// Occupancy stats mirrored by the writer after every applied batch
    /// and every command (readable without stopping the writer).
    Atomic<uint64_t> live_keys{0};
    Atomic<uint64_t> arena_extent{0};

    /// Snapshot ticket channel: readers post a ticket and block; the
    /// writer publishes a clone and serves every ticket issued before the
    /// publish began.
    Mutex snapshot_mutex;
    CondVar snapshot_cv;
    Atomic<bool> snapshot_requested{false};
    std::shared_ptr<const AggregateRegistry> snapshot
        TDS_GUARDED_BY(snapshot_mutex);
    std::shared_ptr<const std::string> snapshot_blob
        TDS_GUARDED_BY(snapshot_mutex);
    uint64_t tickets_issued TDS_GUARDED_BY(snapshot_mutex) = 0;
    uint64_t tickets_served TDS_GUARDED_BY(snapshot_mutex) = 0;
    bool stopped TDS_GUARDED_BY(snapshot_mutex) = false;

    /// Writer-command channel (migrations): the registry must only ever be
    /// touched from its writer thread, so cross-shard moves post closures
    /// here and block until the writer has run them.
    Mutex command_mutex;
    CondVar command_cv;
    std::function<void(AggregateRegistry&)> command
        TDS_GUARDED_BY(command_mutex);
    bool command_done TDS_GUARDED_BY(command_mutex) = false;
    Atomic<bool> command_requested{false};

    std::thread writer;
  };

  explicit ShardedAggregateEngine(const Options& options);

  void WriterLoop(Shard& shard);
  void PublishSnapshot(Shard& shard);
  void RunPendingCommand(Shard& shard);
  void UpdateStats(Shard& shard);

  /// Issues a snapshot ticket and blocks until the writer serves it;
  /// returns the published registry clone and its encode blob.
  std::pair<std::shared_ptr<const AggregateRegistry>,
            std::shared_ptr<const std::string>>
  TakeShardSnapshot(Shard& shard);

  /// Runs `fn` against the shard's registry on the shard's writer thread
  /// and waits for completion. Callers must hold the route lock (shared
  /// suffices for the analysis; migrations hold it exclusively, which is
  /// what actually keeps commands one-at-a-time — the test hook's shared
  /// mode relies on migrations being excluded by its own lock).
  void RunOnWriter(Shard& shard, std::function<void(AggregateRegistry&)> fn)
      TDS_REQUIRES_SHARED(route_mutex_);

  /// Pushes `items` onto one shard's ring, escalating through the staged
  /// wait when full. Returns kUnavailable once `deadline` expires with
  /// items still unqueued (the remainder is dropped and counted). Callers
  /// hold the flush fence (EnterFlush), not the route lock.
  Status PushToShard(Shard& shard, std::span<const KeyedItem> items,
                     BackpressurePolicy policy, const Deadline& deadline,
                     PushCounters* counters = nullptr);

  /// DEPRECATED-shim core: stages `items` on an internal one-shot session
  /// and flushes once against `deadline`.
  Status IngestRouted(std::span<const KeyedItem> items,
                      BackpressurePolicy policy, const Deadline& deadline);

  /// The current epoch-published route snapshot (one plain acquire load —
  /// no refcount traffic, no lock word). The pointee is immutable and
  /// stays alive until the engine is destroyed (see route_history_), so
  /// readers never need to pin it.
  const RouteTable* CurrentRoute() const {
    return route_table_.load(std::memory_order_acquire);
  }

  /// Publishes a successor route table. Only migrations (and Create) do
  /// this, under the exclusive route lock with the fence raised. The
  /// table is retired into route_history_ rather than freed on
  /// replacement: tables are ~1KB and migrations are rare, so retaining
  /// every epoch is the cheapest safe reclamation (and the one TSan can
  /// model — gcc's std::atomic<shared_ptr> hides an unmodeled lock bit).
  void PublishRoute(std::shared_ptr<const RouteTable> next)
      TDS_REQUIRES(route_mutex_) {
    const RouteTable* raw = next.get();
    route_history_.push_back(std::move(next));
    route_table_.store(raw, std::memory_order_release);
  }

  /// Flush fence — the generation fence of the route-epoch protocol.
  /// EnterFlush/ExitFlush bracket every ring-push episode (sessions and
  /// legacy shims): two seq_cst RMWs on the uncontended fast path.
  /// EnterFlush fails fast with kFailedPrecondition on a stopped engine
  /// and with kUnavailable when the fence stays up past `deadline`
  /// (`*stalled` is set if it had to wait at all).
  Status EnterFlush(const Deadline& deadline, bool* stalled)
      TDS_EXCLUDES(fence_mutex_);
  void ExitFlush() TDS_EXCLUDES(fence_mutex_);

  /// Raises the fence and waits out in-flight flush episodes — the
  /// quiescence migrations need (the role the exclusive route lock played
  /// when producers still took it). Seq_cst Dekker pairing with
  /// EnterFlush: either the migration observes a flusher's active count,
  /// or the flusher observes the raised fence and backs out.
  void RaiseFence() TDS_REQUIRES(route_mutex_) TDS_EXCLUDES(fence_mutex_);
  void LowerFence() TDS_REQUIRES(route_mutex_) TDS_EXCLUDES(fence_mutex_);

  /// Offered-load accounting for the rebalancer's hot-slice selection
  /// (relaxed; sessions publish batched counts at flush).
  void AddSliceIngest(uint32_t slice, uint64_t n) {
    slice_ingest_[slice].fetch_add(n, std::memory_order_relaxed);
  }

  /// Blocks (parked) until `shard.applied` reaches `target`;
  /// kFailedPrecondition if the writer exited first.
  Status WaitShardApplied(Shard& shard, uint64_t target);

  /// Wakes the shard's writer if it is parked idle.
  void WakeWriter(Shard& shard);

  /// Waits (parked) until every queue is drained (the raised fence
  /// guarantees no new items can arrive).
  void WaitQueuesDrained() TDS_REQUIRES(route_mutex_);

  /// Moves the live keys of `moving` (all currently routed to
  /// `from_index`) to `to_index` and publishes a successor route table.
  /// Requires the exclusive route lock, a raised fence, and drained
  /// queues.
  Status MoveSlicesLocked(uint32_t from_index, uint32_t to_index,
                          const std::vector<uint32_t>& moving)
      TDS_REQUIRES(route_mutex_);

  /// RebalanceIfSkewed's body once the lock is held, the fence raised,
  /// and the queues drained (single-exit so the caller can lower the
  /// fence unconditionally).
  StatusOr<bool> RebalanceLocked() TDS_REQUIRES(route_mutex_);

  /// Restore's body under the same bracket as RebalanceLocked.
  Status RestoreLocked(MergedSnapshot snapshot) TDS_REQUIRES(route_mutex_);

  DecayPtr decay_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Control-plane lock: migrations/Stop/Restore hold it exclusive;
  /// snapshot gathers, per-key reads, and the writer-command test hook
  /// hold it shared. Producers never take it.
  mutable SharedMutex route_mutex_;

  /// Current epoch-published route snapshot. Load via CurrentRoute()
  /// (a single acquire load — the whole point is lock-free producer
  /// routing); store only via PublishRoute() under the exclusive route
  /// lock. Every table ever published lives in route_history_ until the
  /// engine dies, so the raw pointer is always valid.
  Atomic<const RouteTable*> route_table_{nullptr};
  std::vector<std::shared_ptr<const RouteTable>> route_history_
      TDS_GUARDED_BY(route_mutex_);

  /// Flush-fence state (see EnterFlush/RaiseFence). fence_mutex_ guards
  /// no fields — the waited-on state is the pair of atomics — so waiter
  /// registration is advisory and parks are bounded slices, exactly the
  /// StagedWait discipline the shard rings use.
  Atomic<uint64_t> active_flushes_{0};
  Atomic<bool> fence_raised_{false};
  mutable Mutex fence_mutex_;
  CondVar fence_cv_;    ///< flushers park here while the fence is up
  CondVar quiesce_cv_;  ///< the fence holder parks here until active == 0
  Atomic<uint32_t> fence_waiters_{0};
  Atomic<uint32_t> quiesce_waiters_{0};

  /// Offered-load per route slice (cumulative), maintained by session
  /// flushes; RebalanceIfSkewed diffs against slice_ingest_seen_ to rank
  /// donor slices by recent heat.
  std::vector<Atomic<uint64_t>> slice_ingest_;
  std::vector<uint64_t> slice_ingest_seen_ TDS_GUARDED_BY(route_mutex_);

  /// SessionTotals() mirrors (relaxed; sessions publish at flush/close).
  Atomic<uint64_t> sessions_opened_{0};
  Atomic<uint64_t> sessions_closed_{0};
  Atomic<uint64_t> session_staged_{0};
  Atomic<uint64_t> session_flushed_{0};
  Atomic<uint64_t> session_flush_stalls_{0};

  Atomic<uint64_t> rebalances_{0};
  /// Set (once) by EnableCheckpointTracking; read by the checkpoint log.
  Atomic<bool> ckpt_tracking_{false};
  Atomic<bool> stop_{false};
};

}  // namespace tds

#endif  // TDS_ENGINE_ENGINE_H_
