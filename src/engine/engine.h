#ifndef TDS_ENGINE_ENGINE_H_
#define TDS_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/merged_snapshot.h"
#include "engine/registry.h"
#include "engine/spsc_ring.h"
#include "engine/wait_strategy.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tds {

/// Sharded multi-stream aggregation engine: keys hash to route *slices*
/// (a fixed salted-hash partition), slices map to N shards through a
/// mutable route table, and each shard owns one AggregateRegistry mutated
/// by exactly one writer thread, fed through a lock-free SPSC ring
/// (multiple front-end producers are serialized by a per-shard mutex
/// around the push side only — writers never take it).
///
/// Readers never block writers: queries are served from immutable
/// point-in-time registry snapshots (encode → decode clones) that the
/// writer publishes on request. A snapshot requested after Flush() reflects
/// every item ingested before the Flush. Snapshot() assembles one
/// engine-wide MergedSnapshot from all shards at a single route-table cut.
///
/// Backpressure: when a shard's ring fills, producers escalate through the
/// staged wait (spin → yield → CondVar park; see BackpressurePolicy) and
/// the writer signals on consumption — a blocked producer no longer burns
/// a core. Admission control (TryUpdateBatch, kBlockWithDeadline) bounds
/// the blocking and rejects the overflow with kUnavailable; rejects and
/// parks are counted per shard in Stats(). Restore() (with
/// engine/checkpoint.h) rebuilds a fresh engine from a checkpointed
/// merged snapshot, byte-identical to the checkpointed state.
///
/// Rebalancing: the slice→shard route table can be rewritten at runtime
/// (RebalanceIfSkewed / MigrateSlices). A migration takes the route lock
/// exclusively (briefly stalling producers), drains the affected queues,
/// and moves the keys of the chosen slices between registries on the owner
/// writer threads via AggregateRegistry::ExtractIf / MergeFrom — which
/// preserve the engine's bit-identical-to-serial guarantee (per-key states
/// are never advanced or re-rounded in transit).
///
/// Locking discipline — machine-checked, not just documented: every
/// guarded field below carries TDS_GUARDED_BY and every lock-holding
/// method TDS_REQUIRES, so `tools/check.sh thread-safety` (clang,
/// -Werror=thread-safety) proves the rules hold on every path. See
/// util/mutex.h for the annotated lock types and docs/CORRECTNESS.md for
/// how to annotate new guarded state.
///
/// Ordering contract: each shard must observe non-decreasing ticks. A
/// single producer feeding tick-ordered items satisfies this for every
/// shard; concurrent producers must coordinate externally so their
/// interleaving per shard stays tick-ordered (e.g. epoch-sliced ingestion,
/// where all producers use the same tick within a slice and barrier
/// between slices). Rebalancing additionally requires *globally*
/// tick-ordered ingest: a migration can raise the receiving registry's
/// clock to the donor's, so items enqueued later must not carry older
/// ticks. Both example disciplines above already satisfy this.
class ShardedAggregateEngine {
 public:
  struct Options {
    AggregateRegistry::Options registry;
    uint32_t shards = 4;
    /// Route-table granularity: keys hash into this many slices, each
    /// routed to one shard (must be >= shards; ideally many times larger
    /// so migrations can move fine-grained key ranges).
    uint32_t route_slices = 256;
    /// Per-shard ingest queue capacity in items (rounded up to a power of
    /// two). What a producer does when a queue is full is `backpressure`'s
    /// call.
    size_t queue_capacity = 1 << 16;
    /// Full-queue behavior for Ingest/IngestBatch (see BackpressurePolicy
    /// in engine/wait_strategy.h). TryUpdateBatch ignores this: it always
    /// runs the staged ladder against its caller-supplied deadline.
    BackpressurePolicy backpressure = BackpressurePolicy::kAdaptive;
    /// Admission deadline for kBlockWithDeadline: how long one
    /// Ingest/IngestBatch call may block before the remainder of the batch
    /// is rejected with Status::Unavailable.
    std::chrono::nanoseconds block_deadline = std::chrono::milliseconds(100);
    /// Drain the queue through AggregateRegistry::UpdateBatch (amortized
    /// hot path) instead of per-item Update. The resulting state is
    /// bit-identical either way; this is the throughput knob.
    bool apply_batched = true;
    /// Skew trigger for RebalanceIfSkewed: rebalance when the busiest
    /// shard holds at least this many times the live keys of the idlest.
    double rebalance_skew = 2.0;
    /// The busiest shard must hold at least this many live keys before a
    /// rebalance is worth its stall (prevents thrashing on tiny tables).
    uint64_t rebalance_min_keys = 1024;
  };

  /// Point-in-time per-shard occupancy counters, maintained by the shard
  /// writers (exact after a Flush(), approximate while ingest is running).
  struct ShardStats {
    uint64_t live_keys = 0;
    uint64_t arena_extent = 0;  ///< slots ever allocated (occupancy + churn)
    uint64_t items_applied = 0;
    uint64_t queue_depth = 0;  ///< enqueued but not yet applied
    /// Overload counters (admission control / backpressure):
    uint64_t items_rejected = 0;  ///< dropped past a deadline (kUnavailable)
    uint64_t park_count = 0;      ///< producer CondVar parks on a full queue
    /// Longest run of consecutive failed push attempts by one producer — a
    /// unitless stall measure (the engine reads no clock); anything large
    /// means producers outran the shard writer for a sustained stretch.
    uint64_t max_queue_stall = 0;
  };

  static StatusOr<std::unique_ptr<ShardedAggregateEngine>> Create(
      DecayPtr decay, const Options& options);

  /// Stops the writer threads and joins them (pending queue items are
  /// drained first). Equivalent to Stop().
  ~ShardedAggregateEngine();

  ShardedAggregateEngine(const ShardedAggregateEngine&) = delete;
  ShardedAggregateEngine& operator=(const ShardedAggregateEngine&) = delete;

  /// Drains every queue, stops the writer threads, and joins them.
  /// Idempotent. After Stop() the ingest surface returns
  /// kFailedPrecondition (never blocks), while queries keep serving the
  /// final published snapshots.
  void Stop() TDS_EXCLUDES(route_mutex_);

  /// Enqueues one item (thread-safe). Blocking behavior follows
  /// Options::backpressure; a stopped engine returns kFailedPrecondition,
  /// a missed kBlockWithDeadline deadline returns kUnavailable.
  Status Ingest(uint64_t key, Tick t, uint64_t value)
      TDS_EXCLUDES(route_mutex_);

  /// Enqueues a batch, preserving per-shard arrival order (thread-safe).
  /// Error contract as Ingest; on kUnavailable the items that fit were
  /// enqueued and the remainder is counted in ShardStats::items_rejected.
  Status IngestBatch(std::span<const KeyedItem> items)
      TDS_EXCLUDES(route_mutex_);

  /// Admission-controlled enqueue: blocks at most `deadline` (0 = one
  /// non-blocking attempt per shard), then rejects the remainder with
  /// kUnavailable and counts it in ShardStats::items_rejected. Ignores
  /// Options::backpressure.
  Status TryUpdateBatch(std::span<const KeyedItem> items,
                        std::chrono::nanoseconds deadline)
      TDS_EXCLUDES(route_mutex_);

  /// Returns once every item ingested before the call has been applied —
  /// or kFailedPrecondition if the engine stopped with items unapplied
  /// (cannot happen through the public API, which drains before
  /// stopping; defends against a writer dying mid-drain).
  Status Flush();

  /// Fresh immutable snapshot of one shard's registry, published by the
  /// shard's writer without blocking ingestion. The snapshot reflects at
  /// least everything applied before this call began.
  std::shared_ptr<const AggregateRegistry> ShardSnapshot(uint32_t shard);

  /// One engine-wide merged view at a single route-table cut: per-shard
  /// snapshots are gathered under the route lock (so no rebalance can slip
  /// between shard captures and double-count a key) and folded into a
  /// MergedSnapshot whose cut tick is the max shard clock captured.
  StatusOr<MergedSnapshot> Snapshot() TDS_EXCLUDES(route_mutex_);

  /// Decayed sum for `key` via a fresh snapshot of its owning shard.
  /// Evaluated at max(now, snapshot clock) — a caller's clock may lag the
  /// stream's.
  double QueryKey(uint64_t key, Tick now) TDS_EXCLUDES(route_mutex_);

  /// Sum over all shards, each via a fresh snapshot at max(now, its clock).
  double QueryTotal(Tick now);

  /// Total live keys across all shards (via fresh snapshots).
  size_t KeyCount();

  /// Per-shard occupancy stats (the rebalance trigger's inputs).
  std::vector<ShardStats> Stats() const;

  /// Checks the live-key skew trigger and, when it fires, migrates the
  /// heaviest route slices from the busiest shard to the idlest until the
  /// imbalance is halved. Returns true when a migration ran. Producers are
  /// stalled for the duration (exclusive route lock + queue drain).
  StatusOr<bool> RebalanceIfSkewed() TDS_EXCLUDES(route_mutex_);

  /// Explicitly re-routes `slices` to `to_shard`, migrating their live
  /// keys from the current owners (the manual counterpart of
  /// RebalanceIfSkewed, and the test hook for forced migrations).
  Status MigrateSlices(std::span<const uint32_t> slices, uint32_t to_shard)
      TDS_EXCLUDES(route_mutex_);

  /// Rebuilds shard state from a checkpointed merged snapshot (see
  /// engine/checkpoint.h): the snapshot's registry is re-partitioned along
  /// the current route table and merged onto the shard writers through the
  /// same audited ExtractIf/MergeFrom path migrations use. Requires a
  /// fresh engine (no items applied, no live keys) whose options match the
  /// checkpoint's; queries afterwards are byte-identical to the
  /// checkpointed state.
  Status Restore(MergedSnapshot snapshot) TDS_EXCLUDES(route_mutex_);

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t route_slices() const { return options_.route_slices; }
  const Options& options() const { return options_; }
  const DecayPtr& decay() const { return decay_; }
  uint64_t ItemsApplied() const;

  /// Completed migrations (RebalanceIfSkewed firings + MigrateSlices calls
  /// that moved at least one slice).
  uint64_t Rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// The route slice a key hashes into (stable across rebalances; salted
  /// independently of the registry's table probe hash).
  static uint32_t SliceForKey(uint64_t key, uint32_t slice_count);

  /// The shard currently routed for `key` (advisory: a rebalance may move
  /// it at any time unless the caller also holds ingest quiescent).
  uint32_t RouteForKey(uint64_t key) const TDS_EXCLUDES(route_mutex_);

  /// Test hook: runs `fn` against `shard`'s registry on its writer thread
  /// and blocks until done. A blocking `fn` deterministically stalls that
  /// writer — the backpressure tests use this to fill a ring on purpose.
  /// Holds the route lock shared (ingest keeps running); at most one
  /// concurrent command per shard (migrations hold the lock exclusively,
  /// so they never race this).
  void RunOnWriterForTest(uint32_t shard,
                          std::function<void(AggregateRegistry&)> fn)
      TDS_EXCLUDES(route_mutex_);

 private:
  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    SpscRing<KeyedItem> queue;
    Mutex producer_mutex;  ///< serializes producers; writer never takes it
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> applied{0};

    /// Full-queue producer parking (backpressure). The mutex guards no
    /// fields — the waited-on state is the lock-free ring itself — so
    /// waiter registration is an advisory atomic and parks are bounded
    /// slices (see StagedWait); the writer notifies after consuming when
    /// `space_waiters` is nonzero.
    Mutex space_mutex;
    CondVar space_cv;
    std::atomic<uint32_t> space_waiters{0};

    /// Drain watchers (Flush / WaitQueuesDrained) park here; the writer
    /// notifies after advancing `applied` when `drain_waiters` is nonzero.
    Mutex drain_mutex;
    CondVar drain_cv;
    std::atomic<uint32_t> drain_waiters{0};

    /// Writer-idle parking: the writer parks in bounded slices when it has
    /// nothing to do; producers, snapshot requesters, command posters, and
    /// Stop() wake it through WakeWriter().
    Mutex wake_mutex;
    CondVar wake_cv;
    std::atomic<bool> writer_parked{false};

    /// Overload counters (ShardStats mirrors).
    std::atomic<uint64_t> items_rejected{0};
    std::atomic<uint64_t> park_count{0};
    std::atomic<uint64_t> max_queue_stall{0};

    /// Set by the writer thread on exit (Flush's defense against waiting
    /// on a writer that no longer exists).
    std::atomic<bool> writer_done{false};

    /// Written only by the shard's writer thread (constructed before the
    /// thread starts, which establishes the happens-before edge; a
    /// migration mutates it on the writer thread via RunOnWriter). Thread
    /// *ownership* is a discipline Clang TSA cannot express, so this field
    /// is deliberately unannotated.
    std::optional<AggregateRegistry> registry;

    /// Occupancy stats mirrored by the writer after every applied batch
    /// and every command (readable without stopping the writer).
    std::atomic<uint64_t> live_keys{0};
    std::atomic<uint64_t> arena_extent{0};

    /// Snapshot ticket channel: readers post a ticket and block; the
    /// writer publishes a clone and serves every ticket issued before the
    /// publish began.
    Mutex snapshot_mutex;
    CondVar snapshot_cv;
    std::atomic<bool> snapshot_requested{false};
    std::shared_ptr<const AggregateRegistry> snapshot
        TDS_GUARDED_BY(snapshot_mutex);
    std::shared_ptr<const std::string> snapshot_blob
        TDS_GUARDED_BY(snapshot_mutex);
    uint64_t tickets_issued TDS_GUARDED_BY(snapshot_mutex) = 0;
    uint64_t tickets_served TDS_GUARDED_BY(snapshot_mutex) = 0;
    bool stopped TDS_GUARDED_BY(snapshot_mutex) = false;

    /// Writer-command channel (migrations): the registry must only ever be
    /// touched from its writer thread, so cross-shard moves post closures
    /// here and block until the writer has run them.
    Mutex command_mutex;
    CondVar command_cv;
    std::function<void(AggregateRegistry&)> command
        TDS_GUARDED_BY(command_mutex);
    bool command_done TDS_GUARDED_BY(command_mutex) = false;
    std::atomic<bool> command_requested{false};

    std::thread writer;
  };

  explicit ShardedAggregateEngine(const Options& options);

  void WriterLoop(Shard& shard);
  void PublishSnapshot(Shard& shard);
  void RunPendingCommand(Shard& shard);
  void UpdateStats(Shard& shard);

  /// Issues a snapshot ticket and blocks until the writer serves it;
  /// returns the published registry clone and its encode blob.
  std::pair<std::shared_ptr<const AggregateRegistry>,
            std::shared_ptr<const std::string>>
  TakeShardSnapshot(Shard& shard);

  /// Runs `fn` against the shard's registry on the shard's writer thread
  /// and waits for completion. Callers must hold the route lock (shared
  /// suffices for the analysis; migrations hold it exclusively, which is
  /// what actually keeps commands one-at-a-time — the test hook's shared
  /// mode relies on migrations being excluded by its own lock).
  void RunOnWriter(Shard& shard, std::function<void(AggregateRegistry&)> fn)
      TDS_REQUIRES_SHARED(route_mutex_);

  /// Pushes `items` onto one shard's ring, escalating through the staged
  /// wait when full. Returns kUnavailable once `deadline` expires with
  /// items still unqueued (the remainder is dropped and counted).
  Status PushToShard(Shard& shard, std::span<const KeyedItem> items,
                     BackpressurePolicy policy, const Deadline& deadline)
      TDS_REQUIRES_SHARED(route_mutex_);

  /// Route + partition + push for the whole ingest surface.
  Status IngestRouted(std::span<const KeyedItem> items,
                      BackpressurePolicy policy, const Deadline& deadline)
      TDS_EXCLUDES(route_mutex_);

  /// Blocks (parked) until `shard.applied` reaches `target`;
  /// kFailedPrecondition if the writer exited first.
  Status WaitShardApplied(Shard& shard, uint64_t target);

  /// Wakes the shard's writer if it is parked idle.
  void WakeWriter(Shard& shard);

  /// Waits (parked) until every queue is drained (the exclusive route
  /// lock guarantees no new items can arrive).
  void WaitQueuesDrained() TDS_REQUIRES(route_mutex_);

  /// Moves the live keys of `moving` (all currently routed to
  /// `from_index`) to `to_index` and flips their route entries. Requires
  /// the exclusive route lock and drained queues.
  Status MoveSlicesLocked(uint32_t from_index, uint32_t to_index,
                          const std::vector<uint32_t>& moving)
      TDS_REQUIRES(route_mutex_);

  DecayPtr decay_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// slice → shard. Producers, per-key readers, and the merged-snapshot
  /// gather hold route_mutex_ shared; migrations hold it exclusive.
  mutable SharedMutex route_mutex_;
  std::vector<uint32_t> route_ TDS_GUARDED_BY(route_mutex_);

  std::atomic<uint64_t> rebalances_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace tds

#endif  // TDS_ENGINE_ENGINE_H_
