#include "engine/standby.h"

#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "engine/merged_snapshot.h"
#include "util/audit.h"
#include "util/failpoint.h"

namespace tds {

StatusOr<StandbyFollower> StandbyFollower::Create(
    DecayPtr decay, const AggregateRegistry::Options& options,
    std::string dir) {
  auto registry = AggregateRegistry::Create(decay, options);
  if (!registry.ok()) return registry.status();
  return StandbyFollower(std::move(decay), options, std::move(dir),
                         std::move(registry).value());
}

/// Catch-up. Each committed generation applies atomically, so any failure
/// (including the "standby.apply" injected fault) leaves the follower
/// serving its last fully applied — still consistent — view.
Status StandbyFollower::ApplyNew() {
  TDS_FAILPOINT_RETURN("standby.apply");
  if (promoted_) {
    return Status::FailedPrecondition("standby follower already promoted");
  }
  const std::string manifest_path = dir_ + "/MANIFEST.tds";
  if (::access(manifest_path.c_str(), F_OK) != 0 &&
      ::access((manifest_path + ".prev").c_str(), F_OK) != 0) {
    return Status::OK();  // primary has not committed anything yet
  }
  StatusOr<CheckpointLog::Manifest> loaded = LoadManifest(dir_);
  if (!loaded.ok()) return loaded.status();
  CheckpointLog::Manifest manifest = std::move(loaded).value();
  if (manifest.decay_name != decay_->Name()) {
    return Status::InvalidArgument("manifest decay mismatch: " +
                                   manifest.decay_name);
  }
  if (manifest.generation < applied_generation_) {
    return Status::InvalidArgument(
        "manifest generation regressed below the follower's");
  }
  if (manifest.generation == applied_generation_) return Status::OK();

  const bool base_covers_applied =
      !manifest.entries.empty() &&
      manifest.entries.front().shard == CheckpointLog::kBaseShard &&
      manifest.entries.front().gen_hi > applied_generation_;
  if (base_covers_applied || applied_generation_ == 0) {
    // Compaction rewrote generations we already hold (or we hold nothing):
    // rebuild aside, then swap — the old view serves until the new one is
    // fully validated.
    StatusOr<AggregateRegistry> rebuilt =
        ckptlog_internal::FoldManifest(decay_, options_, dir_, manifest);
    if (!rebuilt.ok()) return rebuilt.status();
    registry_ = std::move(rebuilt).value();
    applied_generation_ = manifest.generation;
    TDS_AUDIT_MUTATION(AuditInvariants());
    return Status::OK();
  }

  // Incremental catch-up: apply each generation newer than ours, in order.
  size_t i = 0;
  while (i < manifest.entries.size()) {
    const CheckpointLog::ManifestEntry& head = manifest.entries[i];
    if (head.shard == CheckpointLog::kBaseShard ||
        head.gen_lo <= applied_generation_) {
      ++i;
      continue;
    }
    const uint64_t generation = head.gen_lo;
    std::vector<ckptlog_internal::Segment> segments;
    while (i < manifest.entries.size() &&
           manifest.entries[i].gen_lo == generation) {
      auto segment =
          ckptlog_internal::ReadManifestEntry(dir_, manifest.entries[i]);
      if (!segment.ok()) return segment.status();
      segments.push_back(std::move(segment).value());
      ++i;
    }
    std::vector<AggregateRegistry> minis;
    std::vector<const ckptlog_internal::Segment*> views;
    minis.reserve(segments.size());
    views.reserve(segments.size());
    for (const auto& segment : segments) {
      auto mini =
          AggregateRegistry::Decode(decay_, options_, segment.registry_blob);
      if (!mini.ok()) return mini.status();
      minis.push_back(std::move(mini).value());
      views.push_back(&segment);
    }
    Status applied =
        ckptlog_internal::ApplyGeneration(registry_, std::move(minis), views);
    if (!applied.ok()) return applied;
    applied_generation_ = generation;
  }
  // Commits without surviving segments (e.g. a compaction emptied by GC of
  // a later incremental) still advance the watermark.
  applied_generation_ = manifest.generation;
  TDS_AUDIT_MUTATION(AuditInvariants());
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardedAggregateEngine>> StandbyFollower::Promote(
    const ShardedAggregateEngine::Options& options) {
  if (promoted_) {
    return Status::FailedPrecondition("standby follower already promoted");
  }
  Status caught_up = ApplyNew();
  if (!caught_up.ok()) return caught_up;
  auto engine = ShardedAggregateEngine::Create(decay_, options);
  if (!engine.ok()) return engine.status();
  // The registry moves into the snapshot below; from here on the follower
  // is consumed even if the restore fails.
  promoted_ = true;
  std::vector<AggregateRegistry> shards;
  shards.push_back(std::move(registry_));
  StatusOr<MergedSnapshot> snapshot =
      MergedSnapshot::FromShards(std::move(shards));
  if (!snapshot.ok()) return snapshot.status();
  Status restored = (*engine)->Restore(std::move(snapshot).value());
  if (!restored.ok()) return restored;
  promoted_ = true;
  return std::move(engine).value();
}

Status StandbyFollower::AuditInvariants() {
  if (promoted_) {
    return Status::FailedPrecondition("standby follower already promoted");
  }
  return registry_.AuditInvariants();
}

double StandbyFollower::Query(uint64_t key, Tick now) const {
  return registry_.Query(key, std::max(now, registry_.now()));
}

double StandbyFollower::QueryTotal(Tick now) const {
  return registry_.QueryTotal(std::max(now, registry_.now()));
}

}  // namespace tds
