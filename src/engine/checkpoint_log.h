#ifndef TDS_ENGINE_CHECKPOINT_LOG_H_
#define TDS_ENGINE_CHECKPOINT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "engine/registry.h"
#include "util/backoff.h"
#include "util/status.h"

namespace tds {

/// Incremental segment/manifest checkpointing — durability whose write
/// cost scales with *churn*, not key population (the full-blob
/// engine/checkpoint.h rewrites every key every time).
///
/// On-disk layout (one directory per log):
///   seg-<generation>-s<shard>.tds   incremental segment (one shard's delta)
///   base-<glo>-<ghi>.tds            compacted base (generations glo..ghi)
///   MANIFEST.tds                    the manifest; .prev = prior generation
/// Every file carries the engine/checkpoint_io.h "TDSCKPT1" integrity
/// footer, and the manifest additionally records each live file's length
/// and FNV-1a checksum — a reader validates twice (manifest entry, then
/// the file's own footer) before decoding anything.
///
/// A segment's payload ("TDSSEG1") is the shard's dead-key list plus a
/// registry sub-blob ("TDSREG1") holding exactly the keys dirtied since
/// the shard's last committed checkpoint epoch — so applying a segment is
/// AggregateRegistry::Decode + MergeFrom, the same audit-on-decode funnel
/// snapshots use. The manifest ("TDSMAN1") names the live segments, the
/// config fingerprint, and each shard's committed epoch watermark.
///
/// Commit protocol: segments are written first (tmp→fsync→rename; until
/// the manifest names them they are invisible garbage), then the manifest
/// commits via tmp→fsync→rotate-to-.prev→rename→dir-sync — the same
/// all-or-nothing protocol as the full-blob checkpoint, so a crash at any
/// point leaves the previous manifest generation fully loadable. Files no
/// longer named by either the manifest or its .prev are garbage-collected
/// after commit.
///
/// Compaction folds every live segment into one base file and commits a
/// manifest naming only it, bounding live bytes by (current population +
/// churn since the last compaction) instead of total history. Writers
/// auto-compact when the live segment count crosses
/// Options::compact_min_segments; a crashed compaction leaves the
/// pre-compaction manifest generation intact.
///
/// Transient IO failures (Status kUnavailable) retry up to
/// Options::io_retries times with bounded exponential backoff
/// (util/backoff.h; the sleeper is injectable, so retry schedules are
/// deterministic under failpoints). Injected faults count as transient —
/// that is the point of the retry satellite.
///
/// Failpoints (all honor unchanged-on-error: in-memory state and the
/// committed manifest survive):
///   "ckptlog.segment.write"  fails a segment write before any IO
///   "ckptlog.manifest.commit" fails after the manifest temp file is
///                             durable but before the commit renames
///   "ckptlog.compact"         fails a compaction before any IO
class CheckpointLog {
 public:
  struct Options {
    /// Retries per failed segment/manifest write on kUnavailable (total
    /// attempts = io_retries + 1). 0 disables retrying.
    uint32_t io_retries = 2;
    /// Backoff schedule for those retries; supply Options::backoff.sleeper
    /// to make waits deterministic (tests inject a recorder).
    ExponentialBackoff::Options backoff;
    /// WriteIncremental auto-compacts once the manifest holds more than
    /// this many live files. 0 disables auto-compaction.
    size_t compact_min_segments = 32;
  };

  /// One live file as the manifest records it.
  struct ManifestEntry {
    std::string file;       ///< name within the log directory
    uint32_t shard = 0;     ///< writing shard; kBaseShard for a base
    uint64_t gen_lo = 0;    ///< first generation folded into the file
    uint64_t gen_hi = 0;    ///< last generation (== gen_lo for segments)
    uint64_t length = 0;    ///< whole-file length, footer included
    uint64_t checksum = 0;  ///< FNV-1a of the whole file
  };
  static constexpr uint32_t kBaseShard = 0xffffffffu;

  /// The decoded manifest ("TDSMAN1"). All Status-returning methods are
  /// const or static: the codec mutates only its explicit outputs.
  struct Manifest {
    uint64_t generation = 0;  ///< bumped by every commit (incl. compaction)
    /// Config fingerprint — a manifest only applies to a matching engine.
    std::string decay_name;
    uint64_t backend = 0;
    double epsilon = 0.0;
    int64_t start = 0;
    /// Per-shard committed checkpoint-epoch watermarks (size == shards).
    std::vector<uint64_t> shard_epochs;
    /// Live files, ordered: at most one base first, then segments by
    /// (gen_lo, shard) ascending.
    std::vector<ManifestEntry> entries;

    Status Encode(std::string* out) const;
    static StatusOr<Manifest> Decode(std::string_view data);
    /// Structural audit: entry ordering, generation bounds, base
    /// uniqueness, name uniqueness. Decode runs it; commit paths re-run it
    /// on what they are about to publish.
    Status AuditInvariants() const;
  };

  /// Opens (creating the directory's manifest lineage lazily) a checkpoint
  /// log for `engine`, which must already have checkpoint tracking enabled
  /// (EnableCheckpointTracking) and must outlive the log. If `dir` holds a
  /// manifest, the log resumes *writing* after its newest generation —
  /// restore the engine from it first (RestoreFromCheckpointLog) if the
  /// history should carry over; the first capture after Create is a full
  /// snapshot either way (in-memory epochs restart at zero).
  static StatusOr<CheckpointLog> Create(ShardedAggregateEngine& engine,
                                        std::string dir,
                                        const Options& options);

  CheckpointLog(CheckpointLog&&) = default;
  CheckpointLog& operator=(CheckpointLog&&) = default;

  /// Flushes the engine, captures every shard's delta since its committed
  /// watermark at one route-table cut, writes one segment per shard, and
  /// commits a manifest naming them. On any error the previous manifest
  /// generation (and the in-memory watermarks) are unchanged — a retried
  /// call re-captures a superset of the lost delta. Auto-compacts per
  /// Options::compact_min_segments after a successful commit; a compaction
  /// failure is surfaced but the incremental commit has already landed.
  Status WriteIncremental();

  /// Folds all live files into one base and commits a manifest naming only
  /// it. A crash or injected fault leaves the previous generation intact.
  Status Compact();

  /// The last committed manifest (empty, generation 0, before the first
  /// WriteIncremental on a fresh directory).
  const Manifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }

  /// Total bytes across the manifest's live files — the write-amplification
  /// metric the bench records.
  uint64_t LiveBytes() const;

 private:
  CheckpointLog(ShardedAggregateEngine& engine, std::string dir,
                const Options& options)
      : engine_(&engine), dir_(std::move(dir)), options_(options) {}

  Status CommitManifest(Manifest next);
  /// Runs `write` (which must be unchanged-on-error), retrying
  /// kUnavailable per Options::io_retries.
  template <typename Fn>
  Status WithRetry(Fn&& write);
  void CollectGarbage();

  ShardedAggregateEngine* engine_;
  std::string dir_;
  Options options_;
  Manifest manifest_;  ///< last committed
};

/// Loads the newest committed manifest in `dir` (falling back to the .prev
/// generation when the primary fails validation — both failing reports
/// both errors, mirroring LoadCheckpoint).
StatusOr<CheckpointLog::Manifest> LoadManifest(const std::string& dir);

/// Decodes and folds a manifest's files (validating manifest checksums,
/// file footers, and the registry codec's invariants) into one registry
/// equal to the checkpointed engine state. `decay`/`options` must match
/// the engine the log came from.
StatusOr<AggregateRegistry> LoadCheckpointLog(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& dir);

/// LoadCheckpointLog + Restore onto a fresh engine (same contract as
/// RestoreFromCheckpoint).
Status RestoreFromCheckpointLog(ShardedAggregateEngine& engine,
                                const std::string& dir);

namespace ckptlog_internal {

/// Segment codec ("TDSSEG1"), exposed for the fuzz driver. All
/// Status-returning methods const/static, like Manifest.
struct Segment {
  uint32_t shard = 0;
  uint64_t gen_lo = 0;
  uint64_t gen_hi = 0;
  uint64_t epoch = 0;  ///< shard epoch watermark this segment advances to
  std::vector<uint64_t> dead_keys;  ///< sorted, strictly increasing
  std::string registry_blob;        ///< partial "TDSREG1" blob

  Status Encode(std::string* out) const;
  static StatusOr<Segment> Decode(std::string_view data);
  Status AuditInvariants() const;
};

/// Applies one generation's decoded segments (pairwise key-disjoint: they
/// came from different shards at one route cut) onto `registry`:
/// fold the minis together, extract every key the generation supersedes
/// (updated or dead), merge the fold in. On error `registry` is restored
/// to its prior state (the extracted keys merge back) — unchanged-on-error
/// for appliers. Exposed for the standby follower and the fuzz driver.
Status ApplyGeneration(AggregateRegistry& registry,
                       std::vector<AggregateRegistry> minis,
                       const std::vector<const Segment*>& segments);

/// Reads and fully validates one manifest-listed file: whole-file length
/// and checksum against the manifest entry, then the footer, then the
/// segment codec (which audits itself).
StatusOr<Segment> ReadManifestEntry(const std::string& dir,
                                    const CheckpointLog::ManifestEntry& entry);

/// Folds one already-loaded manifest's files into a registry equal to the
/// checkpointed engine state: the base (if any) seeds it, then each
/// surviving generation applies in ascending order. The standby follower
/// uses this for full rebuilds; LoadCheckpointLog is LoadManifest + this.
StatusOr<AggregateRegistry> FoldManifest(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& dir, const CheckpointLog::Manifest& manifest);

}  // namespace ckptlog_internal

}  // namespace tds

#endif  // TDS_ENGINE_CHECKPOINT_LOG_H_
