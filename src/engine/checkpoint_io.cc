#include "engine/checkpoint_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tds {
namespace ckptio {
namespace {

/// write(2) the whole buffer, riding out partial writes and EINTR.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void AppendU64Le(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadU64Le(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
  }
  return value;
}

Status IoError(const std::string& what, const std::string& path) {
  // kUnavailable: environmental IO failures are transient from the
  // engine's point of view — the in-memory state is intact and the write
  // can be retried (against another path if need be).
  // strerror's static buffer is racy only if two threads fail IO in the
  // same instant and both read the result later; checkpoint IO is
  // serialized per engine, and a garbled message string cannot corrupt
  // state.
  return Status::Unavailable(what + " " + path + ": " +
                             std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  std::string contents;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = IoError("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

void AppendFooter(std::string* file) {
  const uint64_t payload_size = file->size();
  const uint64_t checksum = Fnv1a(*file);
  file->append(kFooterMagic, sizeof(kFooterMagic));
  AppendU64Le(file, payload_size);
  AppendU64Le(file, checksum);
}

StatusOr<std::string_view> ValidateFooter(std::string_view file,
                                          const std::string& what) {
  if (file.size() < kFooterSize) {
    return Status::InvalidArgument(what + " truncated: no footer");
  }
  const char* footer = file.data() + (file.size() - kFooterSize);
  if (std::memcmp(footer, kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Status::InvalidArgument(what + " footer magic mismatch");
  }
  const uint64_t payload_size = ReadU64Le(footer + sizeof(kFooterMagic));
  const std::string_view payload = file.substr(0, file.size() - kFooterSize);
  if (payload_size != payload.size()) {
    return Status::InvalidArgument(what + " payload length mismatch");
  }
  const uint64_t checksum = ReadU64Le(footer + sizeof(kFooterMagic) + 8);
  if (checksum != Fnv1a(payload)) {
    return Status::InvalidArgument(what + " checksum mismatch");
  }
  return payload;
}

Status WriteTmpDurable(const std::string& tmp_path, std::string_view bytes) {
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp_path);
  Status written = WriteAll(fd, bytes, tmp_path);
  if (written.ok() && ::fsync(fd) != 0) written = IoError("fsync", tmp_path);
  if (::close(fd) != 0 && written.ok()) written = IoError("close", tmp_path);
  if (!written.ok()) {
    (void)::unlink(tmp_path.c_str());
    return written;
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view payload) {
  std::string file(payload);
  AppendFooter(&file);

  const std::string tmp_path = path + ".tmp";
  Status written = WriteTmpDurable(tmp_path, file);
  if (!written.ok()) return written;
  // rename(2) is atomic, so `path` never holds a half-written file.
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status renamed = IoError("rename", tmp_path);
    (void)::unlink(tmp_path.c_str());
    return renamed;
  }
  return Status::OK();
}

StatusOr<std::string> ReadValidatedFile(const std::string& path,
                                        const std::string& what) {
  StatusOr<std::string> contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  StatusOr<std::string_view> payload = ValidateFooter(*contents, what);
  if (!payload.ok()) return payload.status();
  // Trim the footer in place so the caller owns exactly the payload bytes.
  contents.value().resize(payload->size());
  return contents;
}

}  // namespace ckptio
}  // namespace tds
