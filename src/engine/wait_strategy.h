#ifndef TDS_ENGINE_WAIT_STRATEGY_H_
#define TDS_ENGINE_WAIT_STRATEGY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/atomic.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tds {

/// How a producer behaves when its shard's ingest queue is full.
enum class BackpressurePolicy {
  /// Yield-spin until space appears (the pre-backpressure behavior; burns
  /// a core per blocked producer — kept for latency-critical pinned-core
  /// deployments and as the comparison baseline).
  kSpin,
  /// Staged wait: bounded spin, then bounded yielding, then park on the
  /// shard's CondVar until the writer signals consumption. Blocked
  /// producers cost (almost) no CPU. The default.
  kAdaptive,
  /// kAdaptive, but gives up once Options::block_deadline has elapsed:
  /// the remainder of the batch is rejected with Status::Unavailable and
  /// counted in ShardStats::items_rejected (admission control).
  kBlockWithDeadline,
};

/// The staged wait ladder — and the ONLY sanctioned retry-wait loop in
/// src/engine (tools/tds_lint.py rule `spin-loop` rejects yield/spin
/// retries anywhere else in the engine; waits either go through this class
/// or park on a CondVar).
///
/// Usage: attempt the operation; on failure call Step(), which escalates
/// spin → yield → bounded CondVar park and returns false once the deadline
/// has expired; on success call OnProgress() to reset the ladder.
///
/// Parks are bounded slices (kParkSlice) rather than open-ended waits:
/// waiter registration (`waiters`) is advisory, so a notify that races a
/// waiter's registration may be missed — the slice bounds the resulting
/// stall instead of requiring a lock-step handshake on the hot path.
class StagedWait {
 public:
  static constexpr uint32_t kSpinRounds = 64;
  static constexpr uint32_t kYieldRounds = 16;
  static constexpr std::chrono::nanoseconds kParkSlice =
      std::chrono::milliseconds(1);

  explicit StagedWait(BackpressurePolicy policy) : policy_(policy) {}

  /// One escalation step after a failed attempt. Returns true to retry,
  /// false once `deadline` is expired (give up; nothing waited on then).
  bool Step(Mutex& mu, CondVar& cv, Atomic<uint32_t>& waiters,
            const Deadline& deadline) TDS_EXCLUDES(mu) {
    if (deadline.Expired()) return false;
    const uint64_t round = ++rounds_;
    if (policy_ == BackpressurePolicy::kSpin) {
      std::this_thread::yield();
      return true;
    }
    if (round <= kSpinRounds) return true;  // hot retry, no syscall
    if (round <= kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
      return true;
    }
    // Relaxed: waiter registration is advisory by design. If the writer's
    // load of `waiters` misses this increment, the notify is skipped and
    // this park simply runs out its bounded kParkSlice — the documented
    // one-slice missed-wake bound (proven in the park/wake model-check
    // suite). No release/acquire edge is needed because no data is
    // published through the counter.
    waiters.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu);
      (void)cv.WaitFor(mu, deadline.RemainingCapped(kParkSlice));
    }
    waiters.fetch_sub(1, std::memory_order_relaxed);
    ++parks_;
    return !deadline.Expired();
  }

  /// The attempt succeeded (or partially progressed): reset the ladder so
  /// the next stall starts back at the spin stage.
  void OnProgress() {
    max_streak_ = std::max(max_streak_, rounds_);
    rounds_ = 0;
  }

  /// CondVar parks taken so far (ShardStats::park_count).
  uint64_t parks() const { return parks_; }

  /// Whether this wait ever had to step at all — the "did the episode
  /// stall" bit session flush stats record (parks or any failed-attempt
  /// streak count).
  bool stalled() const { return parks_ > 0 || max_streak() > 0; }

  /// Longest run of consecutive failed attempts — a unitless stall measure
  /// (ShardStats::max_queue_stall) that needs no clock in the engine.
  uint64_t max_streak() const { return std::max(max_streak_, rounds_); }

 private:
  BackpressurePolicy policy_;
  uint64_t rounds_ = 0;
  uint64_t parks_ = 0;
  uint64_t max_streak_ = 0;
};

}  // namespace tds

#endif  // TDS_ENGINE_WAIT_STRATEGY_H_
