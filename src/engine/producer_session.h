#ifndef TDS_ENGINE_PRODUCER_SESSION_H_
#define TDS_ENGINE_PRODUCER_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/engine.h"
#include "engine/registry.h"
#include "engine/wait_strategy.h"
#include "util/deadline.h"
#include "util/status.h"

namespace tds {

/// A per-producer ingest handle (ShardedAggregateEngine::NewProducer).
///
/// A session owns per-shard staging buffers: Add/AddBatch pre-group items
/// by target shard locally — against a cached route-table snapshot, with
/// no shared lock and no allocation on the steady-state path — and a
/// flush publishes each shard's whole pre-grouped run to that shard's
/// SPSC ring in one push episode. Flushes happen explicitly (Flush()),
/// automatically once `staging_capacity` items are staged, and
/// best-effort on destruction.
///
/// Threading: a session is intentionally single-threaded — one handle per
/// producer thread (the engine stays fully thread-safe across sessions;
/// this is what removes the shared lock from the hot path). The handle
/// itself therefore takes no locks of its own; the only synchronization a
/// flush touches is the engine's annotated flush fence and per-shard
/// producer mutex.
///
/// Route epochs: staged runs are grouped under the generation of the
/// session's cached table. If a migration published a newer table since,
/// the flush re-partitions the staged items against the fresh snapshot
/// before pushing (restoring per-shard tick order by a stable tick sort),
/// so a staged item never lands on a stale shard — migrations can never
/// double-count it. The engine's flush fence keeps the table stable for
/// the duration of the push.
///
/// Error contract (mirrors the legacy surface): a stopped engine returns
/// kFailedPrecondition and *keeps* the items staged; a flush that misses
/// its admission deadline (kBlockWithDeadline, or the fence held past the
/// deadline) returns kUnavailable, drops the still-unpushed staged items,
/// and counts them in ShardStats::items_rejected (and in stats()).
///
/// Ordering: within a session, per-shard runs preserve Add order.
/// Concurrent sessions must coordinate externally exactly like concurrent
/// legacy producers (e.g. epoch-sliced ingestion: same tick within a
/// round, Flush(), then barrier).
class ProducerSession {
 public:
  /// This session's counters; SessionTotals() aggregates engine-wide.
  struct Stats {
    uint64_t staged_now = 0;      ///< items currently staged, not yet flushed
    uint64_t items_staged = 0;    ///< cumulative items accepted into staging
    uint64_t items_flushed = 0;   ///< cumulative items handed to the rings
    uint64_t items_rejected = 0;  ///< staged items dropped past a deadline
    uint64_t flush_stalls = 0;    ///< flush episodes that had to wait
  };

  /// Best-effort flush of anything still staged (errors are swallowed —
  /// flush explicitly if you need the Status), then closes the session.
  ~ProducerSession();

  ProducerSession(const ProducerSession&) = delete;
  ProducerSession& operator=(const ProducerSession&) = delete;

  /// Stages one item (auto-flushes once staging_capacity is reached).
  Status Add(uint64_t key, Tick t, uint64_t value);

  /// Stages a batch, auto-flushing every staging_capacity items. On a
  /// flush error the not-yet-staged remainder of `items` is left to the
  /// caller (staged-item accounting follows the flush contract above).
  Status AddBatch(std::span<const KeyedItem> items);

  /// Publishes every staged run to its shard ring. Items become visible
  /// to queries once the shard writers apply them (engine Flush() waits
  /// for that).
  Status Flush();

  /// Items currently staged (not yet handed to the rings).
  size_t staged() const { return staged_now_; }

  Stats stats() const;

  /// Cheap self-check: staging buffers and counters agree. kInternal on
  /// violation (exercised by the session tests and fuzz driver).
  Status AuditInvariants() const;

 private:
  friend class ShardedAggregateEngine;

  ProducerSession(ShardedAggregateEngine* engine,
                  const ProducerSessionOptions& options, bool internal);

  /// Flush core against an explicit deadline (the legacy shims pass the
  /// caller's whole-batch deadline through here).
  Status FlushStaged(const Deadline& deadline);

  /// Re-groups staged runs under `table` after a route-epoch change.
  void RepartitionStaged(const ShardedAggregateEngine::RouteTable& table);

  /// Drops all staged items as rejected (admission deadline missed),
  /// counting them per target shard. Returns how many were dropped.
  uint64_t DropStagedAsRejected();

  /// Publishes the per-slice offered-load counts to the engine and
  /// resets them.
  void PublishSliceCounts();

  ShardedAggregateEngine* engine_;
  ProducerSessionOptions options_;
  bool internal_;
  BackpressurePolicy policy_;
  std::chrono::nanoseconds block_deadline_;

  /// Cached route snapshot the staged runs are grouped under (null until
  /// the first Add; refreshed by every flush).
  const ShardedAggregateEngine::RouteTable* table_ = nullptr;

  std::vector<std::vector<KeyedItem>> runs_;  ///< per-shard staging
  std::vector<KeyedItem> scratch_;            ///< repartition workspace
  /// Per-slice offered-load accumulator (empty for internal one-shot
  /// sessions and single-shard engines, where the rebalancer never runs).
  std::vector<uint64_t> slice_counts_;
  size_t staged_now_ = 0;

  Stats stats_;
};

}  // namespace tds

#endif  // TDS_ENGINE_PRODUCER_SESSION_H_
