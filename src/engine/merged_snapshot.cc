#include "engine/merged_snapshot.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/codec.h"

namespace tds {
namespace {

constexpr char kMergedMagic[] = "TDSMRG1";

}  // namespace

StatusOr<MergedSnapshot> MergedSnapshot::FromShards(
    std::vector<AggregateRegistry> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("merged snapshot needs at least one shard");
  }
  const auto source_shards = static_cast<uint32_t>(shards.size());
  AggregateRegistry merged = std::move(shards.front());
  for (size_t i = 1; i < shards.size(); ++i) {
    const Status status = merged.MergeFrom(std::move(shards[i]));
    if (!status.ok()) return status;
  }
  return MergedSnapshot(std::move(merged), source_shards);
}

StatusOr<MergedSnapshot> MergedSnapshot::FromShardBlobs(
    DecayPtr decay, const AggregateRegistry::Options& options,
    std::span<const std::string> blobs) {
  std::vector<AggregateRegistry> shards;
  shards.reserve(blobs.size());
  for (const std::string& blob : blobs) {
    auto decoded = AggregateRegistry::Decode(decay, options, blob);
    if (!decoded.ok()) return decoded.status();
    shards.push_back(std::move(decoded).value());
  }
  return FromShards(std::move(shards));
}

double MergedSnapshot::Query(uint64_t key, Tick now) const {
  return registry_.Query(key, std::max(now, cut()));
}

double MergedSnapshot::QueryTotal(Tick now) const {
  return registry_.QueryTotal(std::max(now, cut()));
}

std::vector<uint64_t> MergedSnapshot::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(registry_.KeyCount());
  registry_.ForEachKey(
      [&](uint64_t key, Tick, const DecayedAggregate&) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<MergedSnapshot::WeightedKey> MergedSnapshot::TopK(size_t k,
                                                              Tick now) const {
  const Tick at = std::max(now, cut());
  std::vector<WeightedKey> all;
  all.reserve(registry_.KeyCount());
  registry_.ForEachKey(
      [&](uint64_t key, Tick, const DecayedAggregate& aggregate) {
        all.push_back(WeightedKey{key, aggregate.Query(at)});
      });
  // Partial selection: O(n + k log k) instead of sorting all n live keys.
  // The comparator is a strict total order (key breaks weight ties), so the
  // result is deterministic regardless of nth_element's internal ordering.
  const auto heavier = [](const WeightedKey& a, const WeightedKey& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.key < b.key;
  };
  if (all.size() > k) {
    std::nth_element(all.begin(), all.begin() + static_cast<ptrdiff_t>(k),
                     all.end(), heavier);
    all.resize(k);
  }
  std::sort(all.begin(), all.end(), heavier);
  return all;
}

Status MergedSnapshot::EncodeState(std::string* out) {
  TDS_CHECK(out != nullptr);
  std::string inner;
  const Status status = registry_.EncodeState(&inner);
  if (!status.ok()) return status;
  Encoder encoder;
  encoder.PutString(kMergedMagic);
  encoder.PutVarint(source_shards_);
  encoder.PutString(inner);
  *out = encoder.Finish();
  return Status::OK();
}

StatusOr<MergedSnapshot> MergedSnapshot::Decode(
    DecayPtr decay, const AggregateRegistry::Options& options,
    std::string_view data) {
  Decoder decoder(data);
  std::string magic;
  if (!decoder.GetString(&magic) || magic != kMergedMagic) {
    return CorruptSnapshot("merged snapshot magic");
  }
  uint64_t source_shards = 0;
  std::string inner;
  if (!decoder.GetVarint(&source_shards) || !decoder.GetString(&inner)) {
    return CorruptSnapshot("merged snapshot header");
  }
  if (!decoder.Done()) return CorruptSnapshot("merged snapshot trailer");
  if (source_shards == 0) return CorruptSnapshot("merged snapshot shards");
  // The inner blob goes through the registry codec's full audit-on-decode.
  auto registry = AggregateRegistry::Decode(std::move(decay), options, inner);
  if (!registry.ok()) return registry.status();
  return MergedSnapshot(std::move(registry).value(),
                        static_cast<uint32_t>(source_shards));
}

}  // namespace tds
