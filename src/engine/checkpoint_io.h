#ifndef TDS_ENGINE_CHECKPOINT_IO_H_
#define TDS_ENGINE_CHECKPOINT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tds {
/// Shared durable-file plumbing for the checkpoint family
/// (engine/checkpoint.h full blobs, engine/checkpoint_log.h segments and
/// manifests): the integrity footer, FNV-1a checksumming, and the
/// tmp→fsync→rename commit protocol. Internal to src/engine — tests reach
/// these paths through the checkpoint / checkpoint-log surfaces.
namespace ckptio {

/// Every durable file ends in a fixed 24-byte footer: the magic
/// "TDSCKPT1", the payload length, and an FNV-1a checksum of the payload
/// (both little-endian u64). Integrity data *after* the payload means any
/// torn or truncated write fails validation — a partial file cannot end in
/// a footer matching its own contents.
inline constexpr char kFooterMagic[8] = {'T', 'D', 'S', 'C', 'K', 'P', 'T',
                                         '1'};
inline constexpr size_t kFooterSize = sizeof(kFooterMagic) + 8 + 8;

uint64_t Fnv1a(std::string_view data);
void AppendU64Le(std::string* out, uint64_t value);
uint64_t ReadU64Le(const char* p);

/// kUnavailable for environmental IO failures (errno carried in the
/// message): the in-memory state is intact and the write can be retried.
Status IoError(const std::string& what, const std::string& path);

std::string DirOf(const std::string& path);

/// fsync the directory so renames themselves are durable. Best-effort:
/// some filesystems refuse O_RDONLY directory syncs; the data files are
/// already synced.
void SyncDir(const std::string& dir);

StatusOr<std::string> ReadWholeFile(const std::string& path);

/// Appends the integrity footer to `file` (whose current contents are the
/// payload).
void AppendFooter(std::string* file);

/// Splits a raw footered file into its validated payload, or explains
/// exactly which integrity check failed. `what` names the file kind in the
/// error ("checkpoint", "segment", "manifest").
StatusOr<std::string_view> ValidateFooter(std::string_view file,
                                          const std::string& what);

/// Writes `bytes` (already footered) to `tmp_path` and fsyncs it, cleaning
/// the file up on failure. The building block for commit protocols that
/// need a hook (a failpoint, a rotation) between the durable temp file and
/// the rename that publishes it.
Status WriteTmpDurable(const std::string& tmp_path, std::string_view bytes);

/// Writes payload+footer to `path + ".tmp"`, fsyncs, and renames onto
/// `path` (atomic against crashes: `path` either holds its old contents or
/// the complete new file; a crash leaves at most a stale .tmp behind).
/// Does NOT rotate a previous file and does not sync the directory —
/// commit-protocol callers sequence those themselves.
Status WriteFileAtomic(const std::string& path, std::string_view payload);

/// Reads `path` and validates its footer, returning the payload.
StatusOr<std::string> ReadValidatedFile(const std::string& path,
                                        const std::string& what);

}  // namespace ckptio
}  // namespace tds

#endif  // TDS_ENGINE_CHECKPOINT_IO_H_
