#include "engine/registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/ceh.h"
#include "core/snapshot.h"
#include "core/wbmh.h"
#include "histogram/wbmh_layout.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tds {
namespace {

constexpr char kRegistryMagic[] = "TDSREG1";
constexpr size_t kInitialTableCapacity = 64;
/// Shared-layout op-log high-water mark: past this many retained ops, the
/// registry syncs every counter and trims the whole log (amortized O(1)
/// per op: each op is replayed at most once per counter either way).
constexpr uint64_t kMaxRetainedOps = 16384;

const char* BackendTypeName(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return "EXACT";
    case Backend::kEwma:
      return "EWMA";
    case Backend::kRecentItems:
      return "RECENT_ITEMS";
    case Backend::kCeh:
      return "CEH";
    case Backend::kCoarseCeh:
      return "COARSE_CEH";
    case Backend::kWbmh:
      return "WBMH";
    case Backend::kPolyExp:
      return "POLYEXP_PIPE";
    case Backend::kAuto:
      break;
  }
  TDS_CHECK_MSG(false, "unresolved backend");
  return "";
}

}  // namespace

AggregateRegistry::AggregateRegistry(DecayPtr decay, const Options& options,
                                     Backend backend,
                                     AggregateOptions resolved)
    : decay_(std::move(decay)),
      options_(options),
      backend_(backend),
      resolved_(resolved),
      table_(kInitialTableCapacity, kEmptyEntry),
      table_mask_(kInitialTableCapacity - 1),
      now_(resolved.start() - 1) {}

StatusOr<AggregateRegistry> AggregateRegistry::Create(DecayPtr decay,
                                                      const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  const Backend backend =
      ResolveBackend(*decay, options.aggregate.backend());
  auto resolved = AggregateOptions::Builder()
                      .backend(backend)
                      .epsilon(options.aggregate.epsilon())
                      .start(options.aggregate.start())
                      .layout(options.aggregate.layout())
                      .Build();
  if (!resolved.ok()) return resolved.status();
  AggregateRegistry registry(decay, options, backend, resolved.value());
  if (backend == Backend::kWbmh) {
    if (!decay->IsWbmhAdmissible()) {
      return Status::FailedPrecondition(
          "decay function fails the WBMH admissibility test "
          "(g(x)/g(x+1) must be non-increasing); use another backend");
    }
    WbmhLayout::Options layout_options;
    layout_options.decay = decay;
    layout_options.epsilon = options.aggregate.epsilon();
    layout_options.start = options.aggregate.start();
    auto layout = WbmhLayout::Create(layout_options);
    if (!layout.ok()) return layout.status();
    registry.layout_ = std::make_shared<WbmhLayout>(std::move(layout).value());
    // A fresh layout already sits at the stream start tick; align the
    // registry clock so an empty registry's snapshot is self-consistent
    // (decode rejects blobs whose layout clock is ahead of the registry).
    registry.now_ = registry.layout_->now();
  }
  // Probe construction: surface option/decay incompatibilities here, so the
  // per-key create inside the ingest hot path can simply CHECK.
  auto probe = registry.NewAggregate();
  if (!probe.ok()) return probe.status();
  registry.expiry_age_ = registry.DeriveExpiryAge();
  return registry;
}

StatusOr<std::unique_ptr<DecayedAggregate>> AggregateRegistry::NewAggregate()
    const {
  if (layout_ != nullptr) {
    WbmhDecayedSum::Options wbmh_options;
    wbmh_options.epsilon = resolved_.epsilon();
    wbmh_options.start = resolved_.start();
    auto counter = WbmhDecayedSum::CreateShared(layout_, wbmh_options);
    if (!counter.ok()) return counter.status();
    return std::unique_ptr<DecayedAggregate>(std::move(counter).value());
  }
  return MakeDecayedSum(decay_, resolved_);
}

Tick AggregateRegistry::DeriveExpiryAge() const {
  const double floor = options_.expiry_weight_floor;
  if (floor < 0.0) return kInfiniteHorizon;  // expiry disabled entirely
  const Tick horizon = decay_->Horizon();
  if (horizon != kInfiniteHorizon) return horizon;
  if (floor == 0.0) return kInfiniteHorizon;
  const double w1 = decay_->Weight(1);
  if (!(w1 > 0.0)) return 1;
  const double target = floor * w1;
  if (decay_->Weight(1) <= target) return 1;
  // Doubling search then bisection for the smallest age whose weight has
  // fallen to the floor. Decays that never get there (e.g. a constant tail)
  // cap out and disable expiry.
  const Tick cap = Tick{1} << 42;
  Tick hi = 2;
  while (hi < cap && decay_->Weight(hi) > target) hi <<= 1;
  if (decay_->Weight(hi) > target) return kInfiniteHorizon;
  Tick lo = hi >> 1;
  while (lo + 1 < hi) {
    const Tick mid = lo + (hi - lo) / 2;
    if (decay_->Weight(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

uint32_t AggregateRegistry::Find(uint64_t key) const {
  size_t pos = SplitMix64(key) & table_mask_;
  while (true) {
    const uint32_t entry = table_[pos];
    if (entry == kEmptyEntry) return SlotArena<Slot>::kNone;
    if (entry != kTombEntry && arena_.at(entry).key == key) return entry;
    pos = (pos + 1) & table_mask_;
  }
}

uint32_t AggregateRegistry::GetOrCreate(uint64_t key) {
  RehashIfNeeded();
  size_t pos = SplitMix64(key) & table_mask_;
  size_t insert_pos = table_.size();  // first tombstone on the probe path
  while (true) {
    const uint32_t entry = table_[pos];
    if (entry == kEmptyEntry) break;
    if (entry == kTombEntry) {
      if (insert_pos == table_.size()) insert_pos = pos;
    } else if (arena_.at(entry).key == key) {
      return entry;
    }
    pos = (pos + 1) & table_mask_;
  }
  if (insert_pos == table_.size()) {
    insert_pos = pos;
  } else {
    --tombstones_;
  }
  auto aggregate = NewAggregate();
  TDS_CHECK_MSG(aggregate.ok(), "per-key aggregate construction failed");
  const uint32_t index = arena_.Allocate();
  Slot& slot = arena_.at(index);
  slot.aggregate = std::move(aggregate).value();
  slot.key = key;
  slot.last_tick = now_;
  if (ckpt_tracking_) slot.dirty_epoch = ckpt_epoch_;
  table_[insert_pos] = index;
  ++live_;
  return index;
}

StatusOr<uint32_t> AggregateRegistry::TryGetOrCreate(uint64_t key) {
  if (Find(key) == SlotArena<Slot>::kNone &&
      arena_.occupied() == arena_.extent()) {
    TDS_FAILPOINT_RETURN("registry.arena.grow");
  }
  return GetOrCreate(key);
}

void AggregateRegistry::RehashIfNeeded() {
  if ((live_ + tombstones_ + 1) * 10 < table_.size() * 7) return;
  // Double only when live keys drive the load; a tombstone-heavy table is
  // rebuilt at the same size to reclaim the probe chains.
  size_t capacity = table_.size();
  if ((live_ + 1) * 10 >= capacity * 7) capacity *= 2;
  Rehash(capacity);
}

void AggregateRegistry::Rehash(size_t new_capacity) {
  std::vector<uint32_t> old = std::move(table_);
  table_.assign(new_capacity, kEmptyEntry);
  table_mask_ = new_capacity - 1;
  tombstones_ = 0;
  for (const uint32_t entry : old) {
    if (entry == kEmptyEntry || entry == kTombEntry) continue;
    size_t pos = SplitMix64(arena_.at(entry).key) & table_mask_;
    while (table_[pos] != kEmptyEntry) pos = (pos + 1) & table_mask_;
    table_[pos] = entry;
  }
}

void AggregateRegistry::Evict(uint32_t index) {
  // The eviction must reach the next checkpoint delta so appliers drop the
  // key too; SlotArena::Free resets the slot (dirty_epoch included), so the
  // record has to be taken before the slot dies.
  if (ckpt_tracking_) dead_keys_.push_back({arena_.at(index).key, ckpt_epoch_});
  size_t pos = SplitMix64(arena_.at(index).key) & table_mask_;
  while (table_[pos] != index) {
    TDS_CHECK(table_[pos] != kEmptyEntry);
    pos = (pos + 1) & table_mask_;
  }
  table_[pos] = kTombEntry;
  ++tombstones_;
  arena_.Free(index);
  --live_;
}

void AggregateRegistry::SweepStep(size_t budget) {
  if (expiry_age_ == kInfiniteHorizon || arena_.extent() == 0) return;
  budget = std::min<size_t>(budget, arena_.extent());
  for (size_t i = 0; i < budget; ++i) {
    if (sweep_cursor_ >= arena_.extent()) {
      sweep_cursor_ = 0;
      ++epoch_;
    }
    const uint32_t index = sweep_cursor_++;
    const Slot& slot = arena_.at(index);
    if (slot.aggregate != nullptr &&
        AgeAt(slot.last_tick, now_) > expiry_age_) {
      Evict(index);
    }
  }
}

void AggregateRegistry::SyncAllCounters() {
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    Slot& slot = arena_.at(i);
    if (slot.aggregate == nullptr) continue;
    static_cast<WbmhDecayedSum*>(slot.aggregate.get())->SyncShared();
  }
}

void AggregateRegistry::MaybeTrimSharedLog() {
  if (layout_ == nullptr) return;
  if (layout_->OpSeq() - layout_->LogStart() <= kMaxRetainedOps) return;
  // A counter may only be outrun by a trim after it has synced, so the
  // policy is sync-all-then-trim (WbmhCounter::Sync CHECKs this).
  SyncAllCounters();
  layout_->TrimLog(layout_->OpSeq());
}

void AggregateRegistry::Update(uint64_t key, Tick t, uint64_t value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  const uint32_t index = GetOrCreate(key);
  Slot& slot = arena_.at(index);
  slot.aggregate->Update(t, value);
  slot.last_tick = t;
  if (ckpt_tracking_) slot.dirty_epoch = ckpt_epoch_;
  SweepStep(options_.sweep_per_update);
  MaybeTrimSharedLog();
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void AggregateRegistry::UpdateBatch(std::span<const KeyedItem> items) {
  if (items.empty()) return;
  TDS_CHECK_GE(items.front().t, now_);
  for (size_t i = 1; i < items.size(); ++i) {
    TDS_CHECK_GE(items[i].t, items[i - 1].t);
  }
  // Tick-major processing keeps the shared WBMH layout's clock monotone and
  // replays its structural ops in the same order as per-item ingestion
  // (merge re-rounding is order-sensitive). The input is already tick-
  // sorted, so the tick segments are contiguous as-is.
  size_t begin = 0;
  size_t total_runs = 0;
  while (begin < items.size()) {
    const Tick t = items[begin].t;
    size_t end = begin;
    while (end < items.size() && items[end].t == t) ++end;
    now_ = t;
    total_runs += IngestTickSegment(t, items.subspan(begin, end - begin));
    begin = end;
  }
  SweepStep(static_cast<size_t>(options_.sweep_per_update) * total_runs);
  MaybeTrimSharedLog();
  TDS_AUDIT_MUTATION(AuditInvariants());
}

size_t AggregateRegistry::IngestTickSegment(Tick t,
                                            std::span<const KeyedItem> segment) {
  // Group the segment's items by key in O(n): an open-addressing scratch
  // map assigns each key a run, and per-item index chains keep that key's
  // items in encounter order. Runs then apply in first-encounter order —
  // per-key order is what per-item Update would have produced, and the
  // reordering across keys is invisible because keys are independent and
  // the shared layout state is a pure function of the (already advanced)
  // tick. One table probe, one aggregate dispatch, and one histogram
  // cascade per run instead of per item.
  const size_t n = segment.size();
  constexpr uint32_t kNoRun = 0xffffffffu;
  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  group_table_.assign(cap, kNoRun);
  chain_.assign(n, kNoRun);
  runs_.clear();
  const size_t cap_mask = cap - 1;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t key = segment[i].key;
    size_t probe = SplitMix64(key) & cap_mask;
    while (true) {
      const uint32_t r = group_table_[probe];
      if (r == kNoRun) {
        group_table_[probe] = static_cast<uint32_t>(runs_.size());
        runs_.push_back(Run{key, i, i});
        break;
      }
      if (runs_[r].key == key) {
        chain_[runs_[r].tail] = i;
        runs_[r].tail = i;
        break;
      }
      probe = (probe + 1) & cap_mask;
    }
  }
  // Two-stage prefetch pipeline over the run directory: the cold-key wall is
  // two dependent misses per run (the table line, then the slot it names),
  // so run r+2's table line and run r+1's slot guess are requested while run
  // r does real work. The slot guess reads only the first probe entry — on a
  // collision the guess line is wasted but never wrong, and a rehash inside
  // GetOrCreate merely stales pending hints (prefetches are hints, never
  // loads). Semantically inert by construction; options_.prefetch == false
  // must be byte-identical (tests/property_test.cc diffs the two).
  const size_t num_runs = runs_.size();
  auto prefetch_table = [this](size_t r) {
    TDS_PREFETCH(&table_[SplitMix64(runs_[r].key) & table_mask_]);
  };
  auto prefetch_slot_guess = [this](size_t r) {
    const uint32_t entry = table_[SplitMix64(runs_[r].key) & table_mask_];
    if (entry != kEmptyEntry && entry != kTombEntry) arena_.Prefetch(entry);
  };
  if (options_.prefetch && num_runs > 0) {
    prefetch_table(0);
    if (num_runs > 1) prefetch_table(1);
    prefetch_slot_guess(0);
  }
  for (size_t r = 0; r < num_runs; ++r) {
    if (options_.prefetch) {
      if (r + 2 < num_runs) prefetch_table(r + 2);
      if (r + 1 < num_runs) prefetch_slot_guess(r + 1);
    }
    const Run& run = runs_[r];
    run_scratch_.clear();
    for (uint32_t i = run.head;; i = chain_[i]) {
      run_scratch_.push_back(StreamItem{t, segment[i].value});
      if (i == run.tail) break;
    }
    const uint32_t index = GetOrCreate(run.key);
    Slot& slot = arena_.at(index);
    slot.aggregate->UpdateBatch(run_scratch_);
    slot.last_tick = t;
    if (ckpt_tracking_) slot.dirty_epoch = ckpt_epoch_;
  }
  return runs_.size();
}

namespace {

/// Moves one WBMH counter's state onto another counter bound to a
/// structurally identical layout (same clock, same bucket ids, same op
/// sequence) through the counter codec — the decode side re-validates the
/// binding and audits the result.
Status TransplantWbmhCounter(DecayedAggregate& from, DecayedAggregate& to) {
  Encoder encoder;
  Status status =
      static_cast<WbmhDecayedSum&>(from).EncodeCounterState(encoder);
  if (!status.ok()) return status;
  const std::string blob = encoder.Finish();
  Decoder decoder(blob);
  status = static_cast<WbmhDecayedSum&>(to).DecodeCounterState(decoder);
  if (!status.ok()) return status;
  if (!decoder.Done()) return CorruptSnapshot("counter trailer");
  return Status::OK();
}

}  // namespace

Status AggregateRegistry::MergeFrom(AggregateRegistry&& other) {
  // Entry-only injection: past this point the per-slot loop moves state
  // (and WBMH transplant copies it), so a mid-loop abort could not honor
  // "on error this registry is unchanged".
  TDS_FAILPOINT_RETURN("registry.merge");
  if (decay_->Name() != other.decay_->Name() || backend_ != other.backend_ ||
      resolved_.epsilon() != other.resolved_.epsilon() ||
      resolved_.start() != other.resolved_.start()) {
    return Status::InvalidArgument("MergeFrom: registry options mismatch");
  }
  // Disjointness pre-check before any mutation, so a failed merge leaves
  // both registries intact.
  for (uint32_t i = 0; i < other.arena_.extent(); ++i) {
    const Slot& src = other.arena_.at(i);
    if (src.aggregate != nullptr && Find(src.key) != SlotArena<Slot>::kNone) {
      return Status::InvalidArgument("MergeFrom: registries share a key");
    }
  }
  if (layout_ != nullptr) {
    // Layout state at a given clock is stream-independent (the paper's
    // boundary-sharing argument), so advancing the lagging layout to the
    // leading layout's clock makes the two structurally identical — same
    // bucket spans, same bucket ids, same op sequence — and counters can
    // transplant across through the counter codec. Advancing a layout is
    // exactly what ingesting at the later tick would have done, so the
    // merged state stays bit-identical to a serially-fed registry.
    const Tick layout_cut = std::max(layout_->now(), other.layout_->now());
    layout_->AdvanceTo(layout_cut);
    other.layout_->AdvanceTo(layout_cut);
    SyncAllCounters();
    other.SyncAllCounters();
    layout_->TrimLog(layout_->OpSeq());
    other.layout_->TrimLog(other.layout_->OpSeq());
    if (layout_->OpSeq() != other.layout_->OpSeq()) {
      return Status::FailedPrecondition(
          "MergeFrom: shared layouts diverged at one clock");
    }
  }
  // Per-key aggregates move over un-advanced: a key's state remains the
  // pure function of its own update sequence (advancing here would insert
  // an extra decay-and-reround step that a serially-fed registry never
  // performs).
  now_ = std::max(now_, other.now_);
  for (uint32_t i = 0; i < other.arena_.extent(); ++i) {
    Slot& src = other.arena_.at(i);
    if (src.aggregate == nullptr) continue;
    const uint32_t index = GetOrCreate(src.key);
    Slot& dst = arena_.at(index);
    if (layout_ != nullptr) {
      const Status status =
          TransplantWbmhCounter(*src.aggregate, *dst.aggregate);
      if (!status.ok()) return status;
    } else {
      dst.aggregate = std::move(src.aggregate);
    }
    dst.last_tick = src.last_tick;
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
  return Status::OK();
}

StatusOr<AggregateRegistry> AggregateRegistry::ExtractIf(
    const std::function<bool(uint64_t)>& pred) {
  // Entry-only injection, mirroring MergeFrom: a failure here leaves the
  // source registry untouched (the migration donor stays intact).
  TDS_FAILPOINT_RETURN("registry.extract");
  auto created = Create(decay_, options_);
  if (!created.ok()) return created.status();
  AggregateRegistry out = std::move(created).value();
  if (layout_ != nullptr) {
    SyncAllCounters();
    layout_->TrimLog(layout_->OpSeq());
    // A fresh layout replayed to this layout's clock is structurally
    // identical (stream independence again), including bucket ids and the
    // op sequence, so extracted counters can bind to it via the codec.
    out.layout_->AdvanceTo(layout_->now());
    out.layout_->TrimLog(out.layout_->OpSeq());
    if (out.layout_->OpSeq() != layout_->OpSeq()) {
      return Status::FailedPrecondition(
          "ExtractIf: replayed layout diverged from the source layout");
    }
  }
  out.now_ = now_;
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    Slot& src = arena_.at(i);
    if (src.aggregate == nullptr || !pred(src.key)) continue;
    const uint32_t index = out.GetOrCreate(src.key);
    Slot& dst = out.arena_.at(index);
    if (layout_ != nullptr) {
      const Status status =
          TransplantWbmhCounter(*src.aggregate, *dst.aggregate);
      if (!status.ok()) return status;
    } else {
      dst.aggregate = std::move(src.aggregate);
    }
    dst.last_tick = src.last_tick;
    Evict(i);
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
  TDS_AUDIT_MUTATION(out.AuditInvariants());
  return out;
}

void AggregateRegistry::Advance(Tick now) {
  TDS_CHECK_GE(now, now_);
  now_ = now;
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    Slot& slot = arena_.at(i);
    if (slot.aggregate == nullptr) continue;
    slot.aggregate->Advance(now);
    // An eager advance rewrites every aggregate's internal representation
    // (decay, cascades, re-rounding), so every key's encoded payload
    // changes — the whole registry is dirty for checkpoint purposes.
    if (ckpt_tracking_) slot.dirty_epoch = ckpt_epoch_;
  }
  if (expiry_age_ != kInfiniteHorizon) {
    for (uint32_t i = 0; i < arena_.extent(); ++i) {
      const Slot& slot = arena_.at(i);
      if (slot.aggregate != nullptr &&
          AgeAt(slot.last_tick, now_) > expiry_age_) {
        Evict(i);
      }
    }
  }
  // The eager pass completes an epoch and restarts the lazy cursor.
  sweep_cursor_ = 0;
  ++epoch_;
  if (layout_ != nullptr) {
    // Advance() synced every counter, so the whole log can go.
    layout_->TrimLog(layout_->OpSeq());
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

double AggregateRegistry::Query(uint64_t key, Tick now) const {
  TDS_CHECK_GE(now, now_);
  const uint32_t index = Find(key);
  if (index == SlotArena<Slot>::kNone) return 0.0;
  return arena_.at(index).aggregate->Query(now);
}

double AggregateRegistry::QueryTotal(Tick now) const {
  TDS_CHECK_GE(now, now_);
  double total = 0.0;
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    const Slot& slot = arena_.at(i);
    if (slot.aggregate != nullptr) total += slot.aggregate->Query(now);
  }
  return total;
}

bool AggregateRegistry::Contains(uint64_t key) const {
  return Find(key) != SlotArena<Slot>::kNone;
}

size_t AggregateRegistry::StorageBits() const {
  size_t bits = 0;
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    const Slot& slot = arena_.at(i);
    if (slot.aggregate != nullptr) bits += slot.aggregate->StorageBits();
  }
  if (layout_ != nullptr) {
    // Shared boundary storage, charged once across all keys (the paper's
    // amortization): two tick endpoints per bucket.
    bits += layout_->BucketCount() * 2 * sizeof(Tick) * 8;
  }
  return bits;
}

Status AggregateRegistry::AuditInvariants() {
  TDS_AUDIT_CHECK(
      !table_.empty() && (table_.size() & (table_.size() - 1)) == 0,
      "table capacity must be a power of two");
  TDS_AUDIT_CHECK(table_mask_ == table_.size() - 1, "stale table mask");
  TDS_AUDIT_CHECK(live_ + tombstones_ < table_.size(),
                  "table has no empty entry left");
  size_t live = 0;
  size_t tombs = 0;
  for (size_t pos = 0; pos < table_.size(); ++pos) {
    const uint32_t entry = table_[pos];
    if (entry == kEmptyEntry) continue;
    if (entry == kTombEntry) {
      ++tombs;
      continue;
    }
    TDS_AUDIT_CHECK(entry < arena_.extent(), "table entry out of arena range");
    const Slot& slot = arena_.at(entry);
    TDS_AUDIT_CHECK(slot.aggregate != nullptr,
                    "table entry points at a freed slot");
    TDS_AUDIT_CHECK(Find(slot.key) == entry,
                    "slot unreachable from its key's probe chain");
    TDS_AUDIT_CHECK(slot.last_tick <= now_,
                    "slot clock ahead of the registry clock");
    ++live;
  }
  TDS_AUDIT_CHECK(live == live_, "live-count drift");
  TDS_AUDIT_CHECK(tombs == tombstones_, "tombstone-count drift");
  size_t arena_live = 0;
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    if (arena_.at(i).aggregate != nullptr) ++arena_live;
  }
  TDS_AUDIT_CHECK(arena_live == live_, "arena/table live-count mismatch");
  TDS_AUDIT_CHECK(arena_.free_count() == arena_.extent() - live_,
                  "arena free-list accounting drift");
  TDS_AUDIT_CHECK(arena_.occupied() == live_,
                  "arena occupancy / live-count drift");
  if (layout_ != nullptr) {
    const Status layout_audit = layout_->AuditInvariants();
    if (!layout_audit.ok()) return layout_audit;
  }
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    const Slot& slot = arena_.at(i);
    if (slot.aggregate == nullptr) continue;
    Status sub = Status::OK();
    if (backend_ == Backend::kWbmh) {
      // Counter-level audit: the shared layout was audited once above.
      sub = static_cast<const WbmhDecayedSum*>(slot.aggregate.get())
                ->counter()
                .AuditInvariants();
    } else if (auto* ceh = dynamic_cast<CehDecayedSum*>(slot.aggregate.get());
               ceh != nullptr) {
      sub = ceh->AuditInvariants();
    }
    if (!sub.ok()) return sub;
  }
  return Status::OK();
}

Status AggregateRegistry::EncodeState(std::string* out) {
  size_t entry_count = 0;
  return EncodeStateImpl(out, /*partial=*/false, /*since=*/0, &entry_count);
}

Status AggregateRegistry::EncodeStateImpl(std::string* out, bool partial,
                                          uint64_t since,
                                          size_t* entry_count) {
  TDS_CHECK(out != nullptr);
  TDS_FAILPOINT_RETURN("registry.encode");
  Encoder encoder;
  encoder.PutString(kRegistryMagic);
  encoder.PutString(decay_->Name());
  encoder.PutVarint(static_cast<uint64_t>(backend_));
  encoder.PutDouble(resolved_.epsilon());
  encoder.PutSigned(resolved_.start());
  encoder.PutSigned(now_);
  // Sorted keys: the codec's self-inverse contract (byte-identical
  // re-encode, see AuditSnapshotRoundTrip) rules out hash-order iteration.
  // A partial encode keeps only the slots dirtied after `since`; the
  // header (clock, layout) is always emitted so appliers stay in lockstep
  // even across update-free stretches.
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  entries.reserve(partial ? 0 : live_);
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    const Slot& slot = arena_.at(i);
    if (slot.aggregate == nullptr) continue;
    if (partial && slot.dirty_epoch <= since) continue;
    entries.push_back({slot.key, i});
  }
  std::sort(entries.begin(), entries.end());
  *entry_count = entries.size();
  encoder.PutVarint(entries.size());
  if (layout_ != nullptr) {
    // Layout snapshots carry no op log, so every counter must be at the
    // layout's op sequence before the log is dropped.
    SyncAllCounters();
    layout_->TrimLog(layout_->OpSeq());
    Encoder sub;
    const Status status = layout_->EncodeState(sub);
    if (!status.ok()) return status;
    encoder.PutString(sub.Finish());
  }
  for (const auto& [key, index] : entries) {
    Slot& slot = arena_.at(index);
    encoder.PutVarint(key);
    encoder.PutSigned(slot.last_tick);
    std::string payload;
    if (layout_ != nullptr) {
      Encoder sub;
      const Status status =
          static_cast<WbmhDecayedSum*>(slot.aggregate.get())
              ->EncodeCounterState(sub);
      if (!status.ok()) return status;
      payload = sub.Finish();
    } else {
      const Status status = EncodeDecayedSum(*slot.aggregate, &payload);
      if (!status.ok()) return status;
    }
    encoder.PutString(payload);
  }
  *out = encoder.Finish();
  // Encoding syncs counters and trims the layout log — representation
  // mutations that deserve the same audit net as logical ones.
  TDS_AUDIT_MUTATION(AuditInvariants());
  return Status::OK();
}

void AggregateRegistry::EnableCheckpointTracking() {
  if (ckpt_tracking_) return;
  ckpt_tracking_ = true;
  // Stamp the present population so the first capture (since == 0) is a
  // complete snapshot no matter when tracking was switched on.
  for (uint32_t i = 0; i < arena_.extent(); ++i) {
    Slot& slot = arena_.at(i);
    if (slot.aggregate != nullptr) slot.dirty_epoch = ckpt_epoch_;
  }
}

Status AggregateRegistry::CaptureCheckpointDelta(uint64_t since,
                                                 CheckpointDelta* out) {
  TDS_CHECK(out != nullptr);
  if (!ckpt_tracking_) {
    return Status::FailedPrecondition(
        "CaptureCheckpointDelta requires EnableCheckpointTracking");
  }
  if (since >= ckpt_epoch_) {
    return Status::InvalidArgument(
        "CaptureCheckpointDelta: since epoch is not in the past");
  }
  out->epoch = ckpt_epoch_;
  out->dead_keys.clear();
  const Status encoded =
      EncodeStateImpl(&out->blob, /*partial=*/true, since, &out->dirty_count);
  if (!encoded.ok()) return encoded;
  // Dead keys: evicted after `since` and not alive now. A key recreated
  // after its eviction is covered by its (dirty) update entry — appliers
  // replace it wholesale — so only keys that stayed dead need a tombstone.
  // Entries at or before `since` were carried by a capture the caller has
  // already committed, so the log is pruned to what later captures might
  // still need.
  std::vector<std::pair<uint64_t, uint64_t>> keep;
  keep.reserve(dead_keys_.size());
  for (const auto& [key, epoch] : dead_keys_) {
    if (epoch <= since) continue;
    keep.push_back({key, epoch});
    if (Find(key) == SlotArena<Slot>::kNone) out->dead_keys.push_back(key);
  }
  dead_keys_ = std::move(keep);
  std::sort(out->dead_keys.begin(), out->dead_keys.end());
  out->dead_keys.erase(
      std::unique(out->dead_keys.begin(), out->dead_keys.end()),
      out->dead_keys.end());
  // Open the next epoch only after a successful capture; mutations landing
  // from here on stamp the new epoch and belong to the next delta.
  ++ckpt_epoch_;
  TDS_AUDIT_MUTATION(AuditInvariants());
  return Status::OK();
}

StatusOr<AggregateRegistry> AggregateRegistry::Decode(DecayPtr decay,
                                                      const Options& options,
                                                      std::string_view data) {
  TDS_FAILPOINT_RETURN("registry.decode");
  auto created = Create(std::move(decay), options);
  if (!created.ok()) return created.status();
  AggregateRegistry registry = std::move(created).value();
  Decoder decoder(data);
  std::string magic;
  std::string name;
  if (!decoder.GetString(&magic) || magic != kRegistryMagic) {
    return CorruptSnapshot("registry magic");
  }
  if (!decoder.GetString(&name)) return CorruptSnapshot("decay name");
  if (name != registry.decay_->Name()) {
    return Status::InvalidArgument("snapshot decay mismatch: " + name);
  }
  uint64_t backend = 0;
  double epsilon = 0.0;
  int64_t start = 0;
  int64_t now = 0;
  uint64_t count = 0;
  if (!decoder.GetVarint(&backend) || !decoder.GetDouble(&epsilon) ||
      !decoder.GetSigned(&start) || !decoder.GetSigned(&now) ||
      !decoder.GetVarint(&count)) {
    return CorruptSnapshot("registry header");
  }
  if (backend != static_cast<uint64_t>(registry.backend_) ||
      epsilon != registry.resolved_.epsilon() ||
      start != registry.resolved_.start()) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  if (now < registry.now_) return CorruptSnapshot("registry clock");
  registry.now_ = now;
  if (registry.layout_ != nullptr) {
    std::string blob;
    if (!decoder.GetString(&blob)) return CorruptSnapshot("layout blob");
    Decoder sub(blob);
    const Status status = registry.layout_->DecodeState(sub);
    if (!status.ok()) return status;
    if (!sub.Done()) return CorruptSnapshot("layout trailer");
    if (registry.layout_->now() > now) {
      return CorruptSnapshot("layout clock ahead of the registry");
    }
  }
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    int64_t last_tick = 0;
    std::string payload;
    if (!decoder.GetVarint(&key) || !decoder.GetSigned(&last_tick) ||
        !decoder.GetString(&payload)) {
      return CorruptSnapshot("registry entry");
    }
    if (i > 0 && key <= prev_key) {
      return CorruptSnapshot("keys not strictly increasing");
    }
    prev_key = key;
    if (last_tick > now) return CorruptSnapshot("entry clock");
    const StatusOr<uint32_t> index = registry.TryGetOrCreate(key);
    if (!index.ok()) return index.status();
    Slot& slot = registry.arena_.at(*index);
    slot.last_tick = last_tick;
    if (registry.layout_ != nullptr) {
      Decoder sub(payload);
      const Status status =
          static_cast<WbmhDecayedSum*>(slot.aggregate.get())
              ->DecodeCounterState(sub);
      if (!status.ok()) return status;
      if (!sub.Done()) return CorruptSnapshot("counter trailer");
    } else {
      auto decoded = DecodeDecayedSum(registry.decay_, payload,
                                      registry.resolved_.layout());
      if (!decoded.ok()) return decoded.status();
      if ((*decoded)->Name() != BackendTypeName(registry.backend_)) {
        return Status::InvalidArgument(
            "snapshot backend mismatch: " + (*decoded)->Name());
      }
      slot.aggregate = std::move(decoded).value();
    }
  }
  if (!decoder.Done()) return CorruptSnapshot("registry trailer");
  const Status audit = registry.AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return registry;
}

}  // namespace tds
