#include "engine/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "util/failpoint.h"

namespace tds {
namespace {

constexpr char kFooterMagic[8] = {'T', 'D', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kFooterSize = sizeof(kFooterMagic) + 8 + 8;

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void AppendU64Le(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadU64Le(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
  }
  return value;
}

Status IoError(const std::string& what, const std::string& path) {
  // kUnavailable: environmental IO failures are transient from the
  // engine's point of view — the in-memory state is intact and the write
  // can be retried (against another path if need be).
  // strerror's static buffer is racy only if two threads fail IO in the
  // same instant and both read the result later; checkpoint IO is
  // serialized per engine, and a garbled message string cannot corrupt
  // state.
  return Status::Unavailable(what + " " + path + ": " +
                             std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

/// write(2) the whole buffer, riding out partial writes and EINTR.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync the directory so the renames themselves are durable. Best-effort:
/// some filesystems refuse O_RDONLY directory syncs; the data file itself
/// is already synced.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  std::string contents;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = IoError("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

/// Splits a raw checkpoint file into its validated payload, or explains
/// exactly which integrity check failed.
StatusOr<std::string_view> ValidateFooter(std::string_view file) {
  if (file.size() < kFooterSize) {
    return Status::InvalidArgument("checkpoint truncated: no footer");
  }
  const char* footer = file.data() + (file.size() - kFooterSize);
  if (std::memcmp(footer, kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Status::InvalidArgument("checkpoint footer magic mismatch");
  }
  const uint64_t payload_size = ReadU64Le(footer + sizeof(kFooterMagic));
  const std::string_view payload = file.substr(0, file.size() - kFooterSize);
  if (payload_size != payload.size()) {
    return Status::InvalidArgument("checkpoint payload length mismatch");
  }
  const uint64_t checksum = ReadU64Le(footer + sizeof(kFooterMagic) + 8);
  if (checksum != Fnv1a(payload)) {
    return Status::InvalidArgument("checkpoint checksum mismatch");
  }
  return payload;
}

StatusOr<MergedSnapshot> LoadOne(DecayPtr decay,
                                 const AggregateRegistry::Options& options,
                                 const std::string& path) {
  StatusOr<std::string> contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  StatusOr<std::string_view> payload = ValidateFooter(*contents);
  if (!payload.ok()) return payload.status();
  // The registry codec re-audits every structural invariant on decode, so
  // a payload that passes the checksum but encodes an impossible state is
  // still rejected here.
  return MergedSnapshot::Decode(decay, options, *payload);
}

}  // namespace

Status WriteCheckpointSnapshot(MergedSnapshot& snapshot,
                               const std::string& path) {
  TDS_FAILPOINT_RETURN("checkpoint.write");
  std::string file;
  Status encoded = snapshot.EncodeState(&file);
  if (!encoded.ok()) return encoded;
  const uint64_t payload_size = file.size();
  const uint64_t checksum = Fnv1a(file);
  file.append(kFooterMagic, sizeof(kFooterMagic));
  AppendU64Le(&file, payload_size);
  AppendU64Le(&file, checksum);

  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp_path);
  Status written = WriteAll(fd, file, tmp_path);
  if (written.ok() && ::fsync(fd) != 0) written = IoError("fsync", tmp_path);
  if (::close(fd) != 0 && written.ok()) written = IoError("close", tmp_path);
  if (!written.ok()) {
    (void)::unlink(tmp_path.c_str());
    return written;
  }

  if (TDS_FAILPOINT("checkpoint.commit")) {
    // Simulated crash between the temp-file sync and the commit renames:
    // the temp file is left behind (as a real crash would) and the
    // previous checkpoint remains the newest valid one.
    return Status::Unavailable("injected fault: checkpoint.commit");
  }

  // Rotate, then commit. A crash between the renames leaves the previous
  // checkpoint at ".prev" (LoadCheckpoint's fallback); rename(2) itself is
  // atomic, so `path` never holds a half-written file.
  const std::string prev_path = path + ".prev";
  if (::rename(path.c_str(), prev_path.c_str()) != 0 && errno != ENOENT) {
    return IoError("rename to .prev", path);
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return IoError("rename", tmp_path);
  }
  SyncDir(DirOf(path));
  return Status::OK();
}

Status WriteCheckpoint(ShardedAggregateEngine& engine,
                       const std::string& path) {
  Status flushed = engine.Flush();
  if (!flushed.ok()) return flushed;
  StatusOr<MergedSnapshot> snapshot = engine.Snapshot();
  if (!snapshot.ok()) return snapshot.status();
  return WriteCheckpointSnapshot(*snapshot, path);
}

StatusOr<MergedSnapshot> LoadCheckpoint(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& path) {
  StatusOr<MergedSnapshot> primary = LoadOne(decay, options, path);
  if (primary.ok()) return primary;
  StatusOr<MergedSnapshot> fallback =
      LoadOne(decay, options, path + ".prev");
  if (fallback.ok()) return fallback;
  // Surface the primary's failure: "checksum mismatch" on the file the
  // caller named beats ENOENT on a rotation that never happened.
  return primary.status();
}

Status RestoreFromCheckpoint(ShardedAggregateEngine& engine,
                             const std::string& path) {
  StatusOr<MergedSnapshot> snapshot = LoadCheckpoint(
      engine.decay(), engine.options().registry, path);
  if (!snapshot.ok()) return snapshot.status();
  return engine.Restore(std::move(snapshot).value());
}

}  // namespace tds
