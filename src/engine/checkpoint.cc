#include "engine/checkpoint.h"

#include <unistd.h>

#include <cerrno>
#include <string_view>
#include <utility>

#include "engine/checkpoint_io.h"
#include "util/failpoint.h"

namespace tds {
namespace {

StatusOr<MergedSnapshot> LoadOne(DecayPtr decay,
                                 const AggregateRegistry::Options& options,
                                 const std::string& path) {
  StatusOr<std::string> contents = ckptio::ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  StatusOr<std::string_view> payload =
      ckptio::ValidateFooter(*contents, "checkpoint");
  if (!payload.ok()) return payload.status();
  // The registry codec re-audits every structural invariant on decode, so
  // a payload that passes the checksum but encodes an impossible state is
  // still rejected here.
  return MergedSnapshot::Decode(decay, options, *payload);
}

}  // namespace

Status WriteCheckpointSnapshot(MergedSnapshot& snapshot,
                               const std::string& path) {
  TDS_FAILPOINT_RETURN("checkpoint.write");
  std::string file;
  Status encoded = snapshot.EncodeState(&file);
  if (!encoded.ok()) return encoded;
  ckptio::AppendFooter(&file);

  const std::string tmp_path = path + ".tmp";
  Status written = ckptio::WriteTmpDurable(tmp_path, file);
  if (!written.ok()) return written;

  if (TDS_FAILPOINT("checkpoint.commit")) {
    // Simulated crash between the temp-file sync and the commit renames:
    // the temp file is left behind (as a real crash would) and the
    // previous checkpoint remains the newest valid one.
    return Status::Unavailable("injected fault: checkpoint.commit");
  }

  // Rotate, then commit. A crash between the renames leaves the previous
  // checkpoint at ".prev" (LoadCheckpoint's fallback); rename(2) itself is
  // atomic, so `path` never holds a half-written file.
  const std::string prev_path = path + ".prev";
  if (::rename(path.c_str(), prev_path.c_str()) != 0 && errno != ENOENT) {
    return ckptio::IoError("rename to .prev", path);
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return ckptio::IoError("rename", tmp_path);
  }
  ckptio::SyncDir(ckptio::DirOf(path));
  return Status::OK();
}

Status WriteCheckpoint(ShardedAggregateEngine& engine,
                       const std::string& path) {
  Status flushed = engine.Flush();
  if (!flushed.ok()) return flushed;
  StatusOr<MergedSnapshot> snapshot = engine.Snapshot();
  if (!snapshot.ok()) return snapshot.status();
  return WriteCheckpointSnapshot(*snapshot, path);
}

StatusOr<MergedSnapshot> LoadCheckpoint(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& path) {
  StatusOr<MergedSnapshot> primary = LoadOne(decay, options, path);
  if (primary.ok()) return primary;
  StatusOr<MergedSnapshot> fallback =
      LoadOne(decay, options, path + ".prev");
  if (fallback.ok()) return fallback;
  // Both generations failed: report both, so a checksum mismatch on the
  // file the caller named is never hidden by the fallback's ENOENT — and a
  // corrupted fallback is never hidden by the primary's error either.
  return Status(primary.status().code(),
                primary.status().message() + "; fallback " + path +
                    ".prev: " + fallback.status().message());
}

Status RestoreFromCheckpoint(ShardedAggregateEngine& engine,
                             const std::string& path) {
  StatusOr<MergedSnapshot> snapshot = LoadCheckpoint(
      engine.decay(), engine.options().registry, path);
  if (!snapshot.ok()) return snapshot.status();
  return engine.Restore(std::move(snapshot).value());
}

}  // namespace tds
