#ifndef TDS_ENGINE_MERGED_SNAPSHOT_H_
#define TDS_ENGINE_MERGED_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/registry.h"
#include "util/status.h"

namespace tds {

/// One combined, immutable-by-convention view over every shard of a
/// ShardedAggregateEngine at a single engine-wide cut tick — the
/// "top decayed-sum keys across all flows" read the paper's per-key
/// deployments (RED flow state, per-customer usage) ask for.
///
/// Built by decoding each shard's snapshot blob and folding the decoded
/// registries together with AggregateRegistry::MergeFrom. Because per-key
/// aggregates are pure functions of their own update sequences and the WBMH
/// layout is a pure function of the clock, the merged registry is
/// bit-identical to a single registry fed the same items serially — the
/// merged snapshot's codec output can be byte-compared against a serial
/// reference's EncodeState (see tests/engine_merge_test.cc).
///
/// The cut tick is the maximum shard clock at capture: the shard that
/// received the stream's newest item defines "now", and lagging shards'
/// keys keep their own last-arrival state un-advanced (exactly as a serial
/// registry would hold them).
class MergedSnapshot {
 public:
  struct WeightedKey {
    uint64_t key = 0;
    double weight = 0.0;
  };

  /// Folds already-decoded shard registries (at least one) into one view.
  /// All registries must share decay/backend/epsilon/start and have
  /// pairwise-disjoint keys; they are consumed.
  static StatusOr<MergedSnapshot> FromShards(
      std::vector<AggregateRegistry> shards);

  /// Decodes each shard snapshot blob (through the registry codec's full
  /// audit-on-decode path) and folds the results.
  static StatusOr<MergedSnapshot> FromShardBlobs(
      DecayPtr decay, const AggregateRegistry::Options& options,
      std::span<const std::string> blobs);

  MergedSnapshot(MergedSnapshot&&) = default;
  MergedSnapshot& operator=(MergedSnapshot&&) = default;

  /// The engine-wide cut tick (the merged registry clock).
  Tick cut() const { return registry_.now(); }

  /// Shard snapshots this view was assembled from.
  uint32_t source_shards() const { return source_shards_; }

  size_t KeyCount() const { return registry_.KeyCount(); }
  bool Contains(uint64_t key) const { return registry_.Contains(key); }

  /// Decayed sum of `key` evaluated at max(now, cut()); 0 for absent keys.
  double Query(uint64_t key, Tick now) const;

  /// Sum over all keys at max(now, cut()).
  double QueryTotal(Tick now) const;

  /// All live keys, ascending.
  std::vector<uint64_t> Keys() const;

  /// The k heaviest keys by decayed weight at max(now, cut()), descending
  /// weight with ascending key as the tie-break.
  std::vector<WeightedKey> TopK(size_t k, Tick now) const;

  /// The combined registry itself (key iteration, audits, byte comparison
  /// against a serially-fed reference).
  const AggregateRegistry& registry() const { return registry_; }

  /// Consumes the snapshot, yielding the merged registry (the engine's
  /// Restore() path re-partitions it across shards).
  AggregateRegistry ReleaseRegistry() && { return std::move(registry_); }

  /// Merged-snapshot codec, self-inverse like the registry codec it wraps:
  /// "TDSMRG1" header, source-shard count, then the merged registry blob.
  /// Non-const for the same reason as AggregateRegistry::EncodeState (WBMH
  /// counters sync and the layout log trims first).
  Status EncodeState(std::string* out);
  static StatusOr<MergedSnapshot> Decode(DecayPtr decay,
                                         const AggregateRegistry::Options& options,
                                         std::string_view data);

  /// The inner registry blob alone (what a serially-fed reference's
  /// EncodeState must byte-match).
  Status EncodeRegistryState(std::string* out) {
    return registry_.EncodeState(out);
  }

 private:
  MergedSnapshot(AggregateRegistry registry, uint32_t source_shards)
      : registry_(std::move(registry)), source_shards_(source_shards) {}

  AggregateRegistry registry_;
  uint32_t source_shards_ = 0;
};

}  // namespace tds

#endif  // TDS_ENGINE_MERGED_SNAPSHOT_H_
