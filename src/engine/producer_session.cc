#include "engine/producer_session.h"

#include <algorithm>
#include <utility>

#include "util/audit.h"
#include "util/check.h"
#include "util/schedule_chaos.h"

namespace tds {

StatusOr<std::unique_ptr<ProducerSession>> ShardedAggregateEngine::NewProducer(
    const ProducerSessionOptions& options) {
  if (options.staging_capacity == 0) {
    return Status::InvalidArgument("staging_capacity must be positive");
  }
  if (options.block_deadline.has_value() &&
      *options.block_deadline < std::chrono::nanoseconds::zero()) {
    return Status::InvalidArgument("block_deadline must be non-negative");
  }
  if (stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<ProducerSession>(
      new ProducerSession(this, options, /*internal=*/false));
}

ProducerSession::ProducerSession(ShardedAggregateEngine* engine,
                                 const ProducerSessionOptions& options,
                                 bool internal)
    : engine_(engine),
      options_(options),
      internal_(internal),
      policy_(options.backpressure.value_or(engine->options().backpressure)),
      block_deadline_(
          options.block_deadline.value_or(engine->options().block_deadline)) {
  runs_.resize(engine->shards());
  // Offered-load heat only matters where the rebalancer can act on it:
  // long-lived sessions on multi-shard engines. The internal one-shot
  // sessions behind the deprecated shims skip it, which keeps the legacy
  // surface's per-call cost (and its key-count-ordered rebalancing
  // behavior) unchanged.
  if (!internal_ && engine->shards() > 1) {
    slice_counts_.assign(engine->route_slices(), 0);
  }
}

ProducerSession::~ProducerSession() {
  if (staged_now_ > 0) {
    (void)Flush();
  }
  if (!internal_) {
    engine_->sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status ProducerSession::Add(uint64_t key, Tick t, uint64_t value) {
  const KeyedItem item{key, t, value};
  const Status status = AddBatch({&item, 1});
  TDS_AUDIT_MUTATION(AuditInvariants());
  return status;
}

Status ProducerSession::AddBatch(std::span<const KeyedItem> items) {
  if (items.empty()) return Status::OK();
  // Sticky stop flag: fail fast instead of staging items that can never
  // be flushed (the flush path re-checks under the fence regardless).
  if (engine_->stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  size_t i = 0;
  while (i < items.size()) {
    if (staged_now_ >= options_.staging_capacity) {
      const Status status = Flush();
      if (!status.ok()) return status;
      continue;
    }
    if (table_ == nullptr) table_ = engine_->CurrentRoute();
    const size_t take = std::min(options_.staging_capacity - staged_now_,
                                 items.size() - i);
    const std::span<const KeyedItem> chunk = items.subspan(i, take);
    if (runs_.size() == 1) {
      runs_[0].insert(runs_[0].end(), chunk.begin(), chunk.end());
    } else {
      const auto& shard_of_slice = table_->shard_of_slice;
      const auto slice_count =
          static_cast<uint32_t>(shard_of_slice.size());
      if (slice_counts_.empty()) {
        for (const KeyedItem& item : chunk) {
          runs_[shard_of_slice[ShardedAggregateEngine::SliceForKey(
                     item.key, slice_count)]]
              .push_back(item);
        }
      } else {
        for (const KeyedItem& item : chunk) {
          const uint32_t slice =
              ShardedAggregateEngine::SliceForKey(item.key, slice_count);
          runs_[shard_of_slice[slice]].push_back(item);
          ++slice_counts_[slice];
        }
      }
    }
    staged_now_ += take;
    stats_.items_staged += take;
    engine_->session_staged_.fetch_add(take, std::memory_order_relaxed);
    i += take;
  }
  if (staged_now_ >= options_.staging_capacity) {
    return Flush();
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
  return Status::OK();
}

Status ProducerSession::Flush() {
  const Deadline deadline =
      policy_ == BackpressurePolicy::kBlockWithDeadline
          ? Deadline::After(block_deadline_)
          : Deadline::Infinite();
  const Status status = FlushStaged(deadline);
  TDS_AUDIT_MUTATION(AuditInvariants());
  return status;
}

Status ProducerSession::FlushStaged(const Deadline& deadline) {
  if (staged_now_ == 0) return Status::OK();
  bool stalled = false;
  const Status enter = engine_->EnterFlush(deadline, &stalled);
  if (!enter.ok()) {
    if (enter.code() == StatusCode::kUnavailable) {
      // Admission control rejected the episode wholesale: same contract
      // as a ring-full deadline miss — drop, count, report.
      const uint64_t dropped = DropStagedAsRejected();
      stats_.items_rejected += dropped;
      if (stalled) {
        ++stats_.flush_stalls;
        engine_->session_flush_stalls_.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
    }
    // kFailedPrecondition (stopped engine): items stay staged — nothing
    // was admitted, nothing is counted.
    return enter;
  }
  // The fence is held from here on: the route table cannot change until
  // ExitFlush, and a migration waits for us before moving any key.
  const auto table = engine_->CurrentRoute();
  if (table_ == nullptr || table->generation != table_->generation) {
    // A migration published a newer epoch since these items were staged:
    // re-group them so no run lands on a stale shard.
    TDS_INTERLEAVE_POINT("engine.session.reroute");
    RepartitionStaged(*table);
    table_ = table;
  }
  Status result = Status::OK();
  uint64_t rejected = 0;
  for (uint32_t s = 0; s < runs_.size(); ++s) {
    std::vector<KeyedItem>& run = runs_[s];
    if (run.empty()) continue;
    ShardedAggregateEngine::PushCounters counters;
    // Admission is per shard (as on the legacy surface): one shard
    // rejecting does not stop the other shards' runs from landing.
    const Status status = engine_->PushToShard(
        *engine_->shards_[s], run, policy_, deadline, &counters);
    rejected += counters.rejected;
    stalled = stalled || counters.stalled;
    if (result.ok() && !status.ok()) result = status;
    run.clear();
  }
  engine_->ExitFlush();
  PublishSliceCounts();
  const uint64_t flushed = staged_now_ - rejected;
  staged_now_ = 0;
  stats_.items_flushed += flushed;
  stats_.items_rejected += rejected;
  engine_->session_flushed_.fetch_add(flushed, std::memory_order_relaxed);
  if (stalled) {
    ++stats_.flush_stalls;
    engine_->session_flush_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
  return result;
}

void ProducerSession::RepartitionStaged(
    const ShardedAggregateEngine::RouteTable& table) {
  scratch_.clear();
  for (std::vector<KeyedItem>& run : runs_) {
    scratch_.insert(scratch_.end(), run.begin(), run.end());
    run.clear();
  }
  // Restore a valid per-shard order: concatenating runs loses the global
  // arrival order, but a *stable* sort by tick rebuilds one — per-key
  // state only depends on that key's own subsequence, and a key's items
  // all sat in the same old run (same slice), so stability preserves
  // their relative order; cross-key order within a tick never affects
  // registry state. The result satisfies the non-decreasing-tick contract
  // on every new run.
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const KeyedItem& a, const KeyedItem& b) {
                     return a.t < b.t;
                   });
  const auto slice_count =
      static_cast<uint32_t>(table.shard_of_slice.size());
  for (const KeyedItem& item : scratch_) {
    runs_[table.shard_of_slice[ShardedAggregateEngine::SliceForKey(
               item.key, slice_count)]]
        .push_back(item);
  }
  scratch_.clear();
}

uint64_t ProducerSession::DropStagedAsRejected() {
  uint64_t dropped = 0;
  for (uint32_t s = 0; s < runs_.size(); ++s) {
    std::vector<KeyedItem>& run = runs_[s];
    if (run.empty()) continue;
    engine_->shards_[s]->items_rejected.fetch_add(
        run.size(), std::memory_order_relaxed);
    dropped += run.size();
    run.clear();
  }
  PublishSliceCounts();
  staged_now_ = 0;
  return dropped;
}

void ProducerSession::PublishSliceCounts() {
  if (slice_counts_.empty()) return;
  for (uint32_t s = 0; s < slice_counts_.size(); ++s) {
    if (slice_counts_[s] == 0) continue;
    engine_->AddSliceIngest(s, slice_counts_[s]);
    slice_counts_[s] = 0;
  }
}

ProducerSession::Stats ProducerSession::stats() const {
  Stats out = stats_;
  out.staged_now = staged_now_;
  return out;
}

Status ProducerSession::AuditInvariants() const {
  size_t total = 0;
  for (const std::vector<KeyedItem>& run : runs_) total += run.size();
  if (total != staged_now_) {
    return Status::FailedPrecondition(
        "session staging buffers disagree with staged()");
  }
  if (!slice_counts_.empty() && runs_.size() > 1) {
    uint64_t counted = 0;
    for (const uint64_t c : slice_counts_) counted += c;
    if (counted != staged_now_) {
      return Status::FailedPrecondition(
          "session slice offered-load counts disagree with staged()");
    }
  }
  if (stats_.items_staged <
      stats_.items_flushed + stats_.items_rejected) {
    return Status::FailedPrecondition("session item counters are inconsistent");
  }
  return Status::OK();
}

}  // namespace tds
