#include "engine/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace tds {
namespace {

/// Items popped per writer iteration; also the natural UpdateBatch size.
constexpr size_t kDrainChunk = 4096;

}  // namespace

ShardedAggregateEngine::ShardedAggregateEngine(const Options& options)
    : options_(options) {}

StatusOr<std::unique_ptr<ShardedAggregateEngine>>
ShardedAggregateEngine::Create(DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  if (options.shards == 0) {
    return Status::InvalidArgument("at least one shard required");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue capacity must be positive");
  }
  if (options.route_slices < options.shards) {
    return Status::InvalidArgument("route_slices must be >= shards");
  }
  if (!(options.rebalance_skew >= 1.0)) {
    return Status::InvalidArgument("rebalance_skew must be >= 1");
  }
  std::unique_ptr<ShardedAggregateEngine> engine(
      new ShardedAggregateEngine(options));
  engine->decay_ = decay;
  engine->shards_.reserve(options.shards);
  for (uint32_t i = 0; i < options.shards; ++i) {
    auto shard = std::make_unique<Shard>(options.queue_capacity);
    auto registry = AggregateRegistry::Create(decay, options.registry);
    if (!registry.ok()) return registry.status();
    shard->registry.emplace(std::move(registry).value());
    engine->shards_.push_back(std::move(shard));
  }
  {
    // Initial route: slices round-robin over shards. No other thread can
    // hold route_mutex_ yet; locking anyway keeps the guarded-field write
    // inside the analyzed discipline (and is uncontended).
    WriterMutexLock route_lock(engine->route_mutex_);
    engine->route_.resize(options.route_slices);
    for (uint32_t s = 0; s < options.route_slices; ++s) {
      engine->route_[s] = s % options.shards;
    }
  }
  // Registries are fully constructed before any writer starts: thread
  // creation is the happens-before edge that hands each registry to its
  // writer.
  for (auto& shard : engine->shards_) {
    Shard* raw = shard.get();
    raw->writer = std::thread([engine = engine.get(), raw] {
      engine->WriterLoop(*raw);
    });
  }
  return engine;
}

ShardedAggregateEngine::~ShardedAggregateEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->writer.joinable()) shard->writer.join();
  }
}

uint32_t ShardedAggregateEngine::SliceForKey(uint64_t key,
                                             uint32_t slice_count) {
  // Re-mix before reducing: the registry's table probe uses SplitMix64(key)
  // directly, so deriving the slice from a differently-salted hash keeps
  // the two partitions independent.
  return static_cast<uint32_t>(HashCombine(key, 0x7364726168735344ull) %
                               slice_count);
}

uint32_t ShardedAggregateEngine::RouteForKey(uint64_t key) const {
  ReaderMutexLock route_lock(route_mutex_);
  return route_[SliceForKey(key, static_cast<uint32_t>(route_.size()))];
}

void ShardedAggregateEngine::Ingest(uint64_t key, Tick t, uint64_t value) {
  const KeyedItem item{key, t, value};
  IngestBatch({&item, 1});
}

void ShardedAggregateEngine::IngestBatch(std::span<const KeyedItem> items) {
  if (items.empty()) return;
  // Shared route lock: many producers ingest concurrently; a migration
  // takes it exclusively, so no item can land on a stale route entry.
  ReaderMutexLock route_lock(route_mutex_);
  const uint32_t shard_count = shards();
  if (shard_count == 1) {
    Shard& shard = *shards_[0];
    MutexLock lock(shard.producer_mutex);
    size_t offset = 0;
    while (offset < items.size()) {
      const size_t pushed =
          shard.queue.TryPushN(items.data() + offset, items.size() - offset);
      shard.enqueued.fetch_add(pushed, std::memory_order_release);
      offset += pushed;
      if (offset < items.size()) std::this_thread::yield();
    }
    return;
  }
  // Partition into per-shard slices, preserving arrival order within each.
  const auto slice_count = static_cast<uint32_t>(route_.size());
  std::vector<std::vector<KeyedItem>> buckets(shard_count);
  for (const KeyedItem& item : items) {
    buckets[route_[SliceForKey(item.key, slice_count)]].push_back(item);
  }
  for (uint32_t i = 0; i < shard_count; ++i) {
    if (buckets[i].empty()) continue;
    Shard& shard = *shards_[i];
    MutexLock lock(shard.producer_mutex);
    size_t offset = 0;
    while (offset < buckets[i].size()) {
      const size_t pushed = shard.queue.TryPushN(
          buckets[i].data() + offset, buckets[i].size() - offset);
      shard.enqueued.fetch_add(pushed, std::memory_order_release);
      offset += pushed;
      if (offset < buckets[i].size()) std::this_thread::yield();
    }
  }
}

void ShardedAggregateEngine::Flush() {
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued.load(std::memory_order_acquire);
    while (shard->applied.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
}

void ShardedAggregateEngine::WaitQueuesDrained() {
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued.load(std::memory_order_acquire);
    while (shard->applied.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
}

uint64_t ShardedAggregateEngine::ItemsApplied() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<ShardedAggregateEngine::ShardStats>
ShardedAggregateEngine::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.live_keys = shard->live_keys.load(std::memory_order_relaxed);
    s.arena_extent = shard->arena_extent.load(std::memory_order_relaxed);
    s.items_applied = shard->applied.load(std::memory_order_acquire);
    const uint64_t enqueued = shard->enqueued.load(std::memory_order_acquire);
    s.queue_depth = enqueued - std::min(enqueued, s.items_applied);
    stats.push_back(s);
  }
  return stats;
}

void ShardedAggregateEngine::UpdateStats(Shard& shard) {
  shard.live_keys.store(shard.registry->KeyCount(),
                        std::memory_order_relaxed);
  shard.arena_extent.store(shard.registry->ArenaExtent(),
                           std::memory_order_relaxed);
}

void ShardedAggregateEngine::WriterLoop(Shard& shard) {
  std::vector<KeyedItem> buffer(kDrainChunk);
  while (true) {
    const size_t n = shard.queue.TryPopN(buffer.data(), buffer.size());
    if (n > 0) {
      if (options_.apply_batched) {
        shard.registry->UpdateBatch({buffer.data(), n});
      } else {
        for (size_t i = 0; i < n; ++i) {
          shard.registry->Update(buffer[i].key, buffer[i].t, buffer[i].value);
        }
      }
      // Stats before the applied-counter release: once Flush() observes the
      // count, the occupancy mirrors are current too.
      UpdateStats(shard);
      shard.applied.fetch_add(n, std::memory_order_release);
    }
    if (shard.snapshot_requested.exchange(false,
                                          std::memory_order_acq_rel)) {
      PublishSnapshot(shard);
    }
    if (shard.command_requested.exchange(false, std::memory_order_acq_rel)) {
      RunPendingCommand(shard);
    }
    if (n > 0) continue;  // keep draining while the queue is hot
    if (stop_.load(std::memory_order_acquire)) {
      if (shard.queue.EmptyApprox()) break;
      continue;
    }
    std::this_thread::yield();
  }
  // Serve anything that raced shutdown: a pending command first (its poster
  // is blocked on it), then a final publish so no snapshot reader hangs.
  if (shard.command_requested.exchange(false, std::memory_order_acq_rel)) {
    RunPendingCommand(shard);
  }
  PublishSnapshot(shard);
  {
    MutexLock lock(shard.snapshot_mutex);
    shard.stopped = true;
  }
  shard.snapshot_cv.NotifyAll();
}

void ShardedAggregateEngine::PublishSnapshot(Shard& shard) {
  uint64_t serving;
  {
    MutexLock lock(shard.snapshot_mutex);
    serving = shard.tickets_issued;
  }
  // Clone via the snapshot codec: everything applied before this point is
  // in the clone, so any ticket issued before `serving` was read is served.
  // The encode blob is retained alongside the clone — the merged-snapshot
  // gather decodes from it without re-encoding.
  auto blob = std::make_shared<std::string>();
  const Status encoded = shard.registry->EncodeState(blob.get());
  TDS_CHECK_MSG(encoded.ok(), encoded.message().c_str());
  auto decoded =
      AggregateRegistry::Decode(decay_, options_.registry, *blob);
  TDS_CHECK_MSG(decoded.ok(), decoded.status().message().c_str());
  auto clone = std::make_shared<const AggregateRegistry>(
      std::move(decoded).value());
  {
    MutexLock lock(shard.snapshot_mutex);
    shard.snapshot = std::move(clone);
    shard.snapshot_blob = std::move(blob);
    shard.tickets_served = std::max(shard.tickets_served, serving);
  }
  shard.snapshot_cv.NotifyAll();
}

void ShardedAggregateEngine::RunPendingCommand(Shard& shard) {
  std::function<void(AggregateRegistry&)> fn;
  {
    MutexLock lock(shard.command_mutex);
    fn = std::move(shard.command);
    shard.command = nullptr;
  }
  if (fn) fn(*shard.registry);
  UpdateStats(shard);
  {
    MutexLock lock(shard.command_mutex);
    shard.command_done = true;
  }
  shard.command_cv.NotifyAll();
}

void ShardedAggregateEngine::RunOnWriter(
    Shard& shard, std::function<void(AggregateRegistry&)> fn) {
  {
    MutexLock lock(shard.command_mutex);
    TDS_CHECK_MSG(shard.command == nullptr,
                  "one writer command at a time (hold the route lock)");
    shard.command = std::move(fn);
    shard.command_done = false;
  }
  shard.command_requested.store(true, std::memory_order_release);
  MutexLock lock(shard.command_mutex);
  while (!shard.command_done) shard.command_cv.Wait(shard.command_mutex);
}

std::pair<std::shared_ptr<const AggregateRegistry>,
          std::shared_ptr<const std::string>>
ShardedAggregateEngine::TakeShardSnapshot(Shard& shard) {
  uint64_t ticket;
  {
    MutexLock lock(shard.snapshot_mutex);
    ticket = ++shard.tickets_issued;
  }
  shard.snapshot_requested.store(true, std::memory_order_release);
  MutexLock lock(shard.snapshot_mutex);
  while (shard.tickets_served < ticket && !shard.stopped) {
    shard.snapshot_cv.Wait(shard.snapshot_mutex);
  }
  return {shard.snapshot, shard.snapshot_blob};
}

std::shared_ptr<const AggregateRegistry> ShardedAggregateEngine::ShardSnapshot(
    uint32_t shard_index) {
  TDS_CHECK_LT(shard_index, shards_.size());
  return TakeShardSnapshot(*shards_[shard_index]).first;
}

StatusOr<MergedSnapshot> ShardedAggregateEngine::Snapshot() {
  // Shared route lock across the whole gather: a migration between two
  // shard captures would otherwise double-count (or drop) the moving keys.
  std::vector<std::string> blobs;
  {
    ReaderMutexLock route_lock(route_mutex_);
    // Issue every ticket first so the shard writers publish concurrently.
    for (auto& shard : shards_) {
      MutexLock lock(shard->snapshot_mutex);
      ++shard->tickets_issued;
    }
    for (auto& shard : shards_) {
      shard->snapshot_requested.store(true, std::memory_order_release);
    }
    blobs.reserve(shards_.size());
    for (auto& shard : shards_) {
      MutexLock lock(shard->snapshot_mutex);
      const uint64_t ticket = shard->tickets_issued;
      while (shard->tickets_served < ticket && !shard->stopped) {
        shard->snapshot_cv.Wait(shard->snapshot_mutex);
      }
      if (shard->snapshot_blob == nullptr) {
        return Status::FailedPrecondition("shard snapshot unavailable");
      }
      blobs.push_back(*shard->snapshot_blob);
    }
  }
  // Decode + fold outside the lock: the blobs are already a consistent cut.
  return MergedSnapshot::FromShardBlobs(decay_, options_.registry, blobs);
}

double ShardedAggregateEngine::QueryKey(uint64_t key, Tick now) {
  // The shared route lock pins the key's shard for the duration (a
  // migration between the route read and the snapshot would serve a
  // snapshot that no longer holds the key).
  ReaderMutexLock route_lock(route_mutex_);
  const uint32_t shard_index =
      route_[SliceForKey(key, static_cast<uint32_t>(route_.size()))];
  const auto snapshot = TakeShardSnapshot(*shards_[shard_index]).first;
  if (snapshot == nullptr) return 0.0;
  return snapshot->Query(key, std::max(now, snapshot->now()));
}

double ShardedAggregateEngine::QueryTotal(Tick now) {
  double total = 0.0;
  for (uint32_t i = 0; i < shards(); ++i) {
    const auto snapshot = ShardSnapshot(i);
    if (snapshot == nullptr) continue;
    total += snapshot->QueryTotal(std::max(now, snapshot->now()));
  }
  return total;
}

size_t ShardedAggregateEngine::KeyCount() {
  size_t total = 0;
  for (uint32_t i = 0; i < shards(); ++i) {
    const auto snapshot = ShardSnapshot(i);
    if (snapshot != nullptr) total += snapshot->KeyCount();
  }
  return total;
}

Status ShardedAggregateEngine::MoveSlicesLocked(
    uint32_t from_index, uint32_t to_index,
    const std::vector<uint32_t>& moving) {
  if (moving.empty() || from_index == to_index) return Status::OK();
  const auto slice_count = static_cast<uint32_t>(route_.size());
  std::vector<char> member(slice_count, 0);
  for (const uint32_t slice : moving) {
    TDS_CHECK_LT(slice, slice_count);
    TDS_CHECK(route_[slice] == from_index);
    member[slice] = 1;
  }
  // Flip the route first: producers are excluded by the exclusive lock, so
  // nothing can land on the donor mid-move, and once the lock drops every
  // new item for these slices already targets the receiver.
  for (const uint32_t slice : moving) route_[slice] = to_index;
  Shard& donor = *shards_[from_index];
  Shard& receiver = *shards_[to_index];
  // Both registry mutations run on their owner writer threads — the
  // registries are never touched from this (caller) thread.
  StatusOr<AggregateRegistry> extracted =
      Status::FailedPrecondition("extraction did not run");
  RunOnWriter(donor, [&](AggregateRegistry& registry) {
    extracted = registry.ExtractIf([&](uint64_t key) {
      return member[SliceForKey(key, slice_count)] != 0;
    });
  });
  if (!extracted.ok()) return extracted.status();
  Status merge_status = Status::OK();
  RunOnWriter(receiver, [&](AggregateRegistry& registry) {
    merge_status = registry.MergeFrom(std::move(extracted).value());
  });
  if (!merge_status.ok()) return merge_status;
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedAggregateEngine::MigrateSlices(std::span<const uint32_t> slices,
                                             uint32_t to_shard) {
  if (to_shard >= shards()) {
    return Status::InvalidArgument("target shard out of range");
  }
  WriterMutexLock route_lock(route_mutex_);
  const auto slice_count = static_cast<uint32_t>(route_.size());
  for (const uint32_t slice : slices) {
    if (slice >= slice_count) {
      return Status::InvalidArgument("route slice out of range");
    }
  }
  WaitQueuesDrained();
  // Group the requested slices by current owner and move per owner.
  for (uint32_t owner = 0; owner < shards(); ++owner) {
    if (owner == to_shard) continue;
    std::vector<uint32_t> moving;
    for (const uint32_t slice : slices) {
      if (route_[slice] == owner) moving.push_back(slice);
    }
    const Status status = MoveSlicesLocked(owner, to_shard, moving);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

StatusOr<bool> ShardedAggregateEngine::RebalanceIfSkewed() {
  if (shards() < 2) return false;
  WriterMutexLock route_lock(route_mutex_);
  // Drain so the live-key stats are exact and no in-flight item targets a
  // slice about to move (producers are excluded by the exclusive lock).
  WaitQueuesDrained();
  uint32_t donor_index = 0;
  uint32_t receiver_index = 0;
  for (uint32_t i = 1; i < shards(); ++i) {
    const uint64_t keys = shards_[i]->live_keys.load(std::memory_order_relaxed);
    if (keys > shards_[donor_index]->live_keys.load(std::memory_order_relaxed)) {
      donor_index = i;
    }
    if (keys <
        shards_[receiver_index]->live_keys.load(std::memory_order_relaxed)) {
      receiver_index = i;
    }
  }
  const uint64_t donor_keys =
      shards_[donor_index]->live_keys.load(std::memory_order_relaxed);
  const uint64_t receiver_keys =
      shards_[receiver_index]->live_keys.load(std::memory_order_relaxed);
  if (donor_index == receiver_index ||
      donor_keys < options_.rebalance_min_keys ||
      static_cast<double>(donor_keys) <
          options_.rebalance_skew * static_cast<double>(receiver_keys)) {
    return false;
  }
  // Per-slice live-key histogram of the donor, computed on its writer.
  const auto slice_count = static_cast<uint32_t>(route_.size());
  std::vector<uint64_t> slice_keys(slice_count, 0);
  RunOnWriter(*shards_[donor_index], [&](AggregateRegistry& registry) {
    registry.ForEachKey([&](uint64_t key, Tick, const DecayedAggregate&) {
      ++slice_keys[SliceForKey(key, slice_count)];
    });
  });
  // Greedy heaviest-first selection: accept a slice while it still shrinks
  // the donor/receiver gap (moving m keys changes the gap by -2m, so a
  // slice helps iff 2*moved + its_keys < gap).
  std::vector<uint32_t> candidates;
  for (uint32_t s = 0; s < slice_count; ++s) {
    if (route_[s] == donor_index && slice_keys[s] > 0) candidates.push_back(s);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](uint32_t a, uint32_t b) {
              if (slice_keys[a] != slice_keys[b]) {
                return slice_keys[a] > slice_keys[b];
              }
              return a < b;
            });
  const uint64_t gap = donor_keys - receiver_keys;
  std::vector<uint32_t> moving;
  uint64_t moved = 0;
  for (const uint32_t s : candidates) {
    if (2 * moved + slice_keys[s] < gap) {
      moving.push_back(s);
      moved += slice_keys[s];
    }
  }
  if (moving.empty()) return false;
  const Status status = MoveSlicesLocked(donor_index, receiver_index, moving);
  if (!status.ok()) return status;
  return true;
}

}  // namespace tds
